"""User-side library behaviour: transparency, latency accounting."""

from __future__ import annotations

import pytest

from repro.client import DirectClient, PProxClient
from repro.crypto.provider import FastCryptoProvider
from repro.lrs.service import HarnessService
from repro.proxy import PProxConfig, build_pprox
from repro.proxy.costs import DEFAULT_COSTS
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry


def _harness_stack(config: PProxConfig, seed: int = 41):
    rng = RngRegistry(seed=seed)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"))
    harness = HarnessService(loop=loop, rng=rng.stream("lrs"), frontend_count=3)
    harness.engine.trainer.llr_threshold = 0.0
    provider = FastCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
    service = build_pprox(loop, network, rng, config,
                          lrs_picker=harness.pick_frontend, provider=provider)
    client = PProxClient(loop=loop, network=network, provider=provider,
                         service=service, costs=DEFAULT_COSTS, rng=rng.stream("c"))
    direct = DirectClient(loop=loop, network=network, lrs_picker=harness.pick_frontend)
    return loop, harness, client, direct


FEEDBACK = [
    ("alice", "i1"), ("alice", "i2"), ("alice", "i3"),
    ("bob", "i1"), ("bob", "i2"), ("bob", "i4"),
    ("carol", "i2"), ("carol", "i3"), ("carol", "i4"),
]


def test_proxy_and_direct_clients_get_identical_recommendations():
    """PProx 'does not modify in any way the results returned by the
    LRS' — the central transparency claim."""
    loop, harness, client, _ = _harness_stack(PProxConfig(shuffle_size=0))
    for user, item in FEEDBACK:
        client.post(user, item)
    loop.run()
    harness.train()
    through_proxy = {}
    for user in ("alice", "bob", "carol"):
        client.get(user, on_complete=lambda c, u=user: through_proxy.update({u: c.items}))
    loop.run()

    # Fresh identical deployment, queried directly (no proxy).
    loop2, harness2, _, direct2 = _harness_stack(PProxConfig(shuffle_size=0), seed=41)
    for user, item in FEEDBACK:
        direct2.post(user, item)
    loop2.run()
    harness2.train()
    direct_results = {}
    for user in ("alice", "bob", "carol"):
        direct2.get(user, on_complete=lambda c, u=user: direct_results.update({u: c.items}))
    loop2.run()

    assert through_proxy == direct_results
    assert through_proxy["alice"]  # non-trivial recommendations


def test_completed_call_latency_accounting():
    loop, harness, client, _ = _harness_stack(PProxConfig(shuffle_size=0))
    calls = []
    client.post("u", "i", on_complete=calls.append)
    loop.run()
    call = calls[0]
    assert call.ok
    assert call.latency > 0
    assert call.completed_at == call.started_at + call.latency


def test_call_counters():
    loop, harness, client, _ = _harness_stack(PProxConfig(shuffle_size=0))
    for _ in range(3):
        client.get("u")
    loop.run()
    assert client.calls_started == 3
    assert client.calls_completed == 3


def test_default_client_address_derives_from_user():
    loop, harness, client, _ = _harness_stack(PProxConfig(shuffle_size=0))
    calls = []
    client.get("zoe", on_complete=calls.append)
    loop.run()
    # Flow records should show the per-user client address.
    assert any(f.source == "client-zoe" for f in client.network.flows)


def test_explicit_client_address_is_used():
    loop, harness, client, _ = _harness_stack(PProxConfig(shuffle_size=0))
    client.get("zoe", client_address="client-nat-1")
    loop.run()
    assert any(f.source == "client-nat-1" for f in client.network.flows)


def test_get_before_training_returns_empty_list():
    loop, harness, client, _ = _harness_stack(PProxConfig(shuffle_size=0))
    calls = []
    client.get("nobody", on_complete=calls.append)
    loop.run()
    assert calls[0].ok
    assert calls[0].items == []


def test_direct_client_counts_completions():
    loop, harness, _, direct = _harness_stack(PProxConfig(shuffle_size=0))
    direct.post("u", "i")
    direct.get("u")
    loop.run()
    assert direct.calls_completed == 2


def test_encryption_delay_is_charged():
    """The client-side crypto work shifts the send time."""
    loop, harness, client, _ = _harness_stack(PProxConfig(shuffle_size=0))
    client.get("u")
    assert loop.pending > 0
    loop.step()  # advances the clock to the first scheduled event
    assert loop.now >= DEFAULT_COSTS.client_encrypt_seconds(client.config)
