"""The overload sweep scenario: graceful degradation, privacy, determinism."""

from __future__ import annotations

import pytest

from repro.experiments.overload import (
    GOODPUT_RETENTION_FLOOR,
    OverloadResult,
    run_overload,
)
from repro.experiments.registry import EXPERIMENT_INDEX
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def sweep():
    """One shared sweep (the scenario is deterministic)."""
    return run_overload(seed=7, duration=6.0)


def test_sweep_passes_all_acceptance_checks(sweep):
    assert sweep.problems() == []
    assert sweep.ok


def test_protected_goodput_survives_2x_overload(sweep):
    saturation = sweep.point(protected=True, multiplier=1.0)
    overloaded = sweep.point(protected=True, multiplier=2.0)
    assert overloaded.goodput_rps >= GOODPUT_RETENTION_FLOOR * saturation.goodput_rps


def test_unprotected_baseline_collapses(sweep):
    """The control arm: without protection the same load melts down,
    which is what makes the protected numbers meaningful."""
    saturation = sweep.point(protected=False, multiplier=1.0)
    baseline = sweep.point(protected=False, multiplier=2.0)
    protected = sweep.point(protected=True, multiplier=2.0)
    assert baseline.goodput_rps < 0.5 * saturation.goodput_rps
    assert protected.goodput_rps > 2 * baseline.goodput_rps
    assert protected.p99_seconds < baseline.p99_seconds


def test_sheds_happened_and_are_accounted_by_stage(sweep):
    overloaded = sweep.point(protected=True, multiplier=2.0)
    assert overloaded.shed_total > 0
    assert sum(overloaded.shed_by_stage.values()) == overloaded.shed_total
    assert "queue" in overloaded.shed_by_stage  # the bounded ingress bit


def test_anonymity_floor_holds_through_the_episode(sweep):
    """Sheds are pre-shuffle only: during the overloaded window no
    flush ever carried fewer than S entries, so the effective
    anonymity set never dropped below S*I."""
    for multiplier in (1.0, 2.0):
        point = sweep.point(protected=True, multiplier=multiplier)
        assert point.min_flush_during_load is not None
        assert point.anonymity_floor >= point.required_anonymity


def test_rejects_are_uniform_on_protected_hops(sweep):
    for point in sweep.points:
        if point.protected:
            assert point.reject_audit == []


def test_redaction_audit_clean_under_overload(sweep):
    for point in sweep.points:
        assert point.audit_violations == 0


def test_same_seed_sweeps_are_identical(sweep):
    again = run_overload(seed=7, duration=6.0)
    assert again.to_dict() == sweep.to_dict()


def test_telemetry_artifact_records_the_headline_cell(tmp_path):
    telemetry = Telemetry()
    result = run_overload(seed=3, duration=4.0, telemetry=telemetry)
    paths = telemetry.write_artifact(str(tmp_path))
    prom = (tmp_path / "telemetry.prom").read_text(encoding="utf-8")
    assert "pprox_shed_total" in prom
    assert "pprox_queue_sojourn_seconds" in prom
    assert "pprox_breaker_state" in prom
    assert "pprox_deadline_remaining_seconds" in prom
    events = (tmp_path / "telemetry.jsonl").read_text(encoding="utf-8")
    assert '"request_shed"' in events
    assert paths["events"].endswith("telemetry.jsonl")
    # The headline cell is the protected 2x point.
    headline = result.point(protected=True, multiplier=2.0)
    assert headline is not None and headline.shed_total > 0


def test_overload_is_registered_experiment():
    experiment = EXPERIMENT_INDEX["overload"]
    assert "repro.overload" in experiment.modules
    assert experiment.bench == "tests/test_overload_scenario.py"


def test_result_to_dict_is_json_ready(sweep):
    import json

    payload = json.dumps(sweep.to_dict())
    assert json.loads(payload)["capacity_rps"] == sweep.capacity_rps


def test_empty_result_is_not_ok():
    empty = OverloadResult(seed=0, duration=0.0, capacity_rps=85.0, shuffle_size=4)
    assert not empty.ok  # no points: the sweep proves nothing
