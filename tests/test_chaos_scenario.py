"""The chaos drill scenario: availability, recovery, determinism."""

from __future__ import annotations

import pytest

from repro.experiments.chaos import ChaosResult, run_chaos
from repro.experiments.registry import EXPERIMENT_INDEX
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def drill():
    """One shared short drill (the scenario is deterministic)."""
    return run_chaos(seed=7, rps=50.0, duration=8.0)


def test_drill_passes_all_acceptance_checks(drill):
    assert drill.problems() == []
    assert drill.ok


def test_availability_stays_above_floor(drill):
    assert drill.issued > 0
    assert drill.availability >= drill.availability_floor


def test_all_three_fault_kinds_actually_bit(drill):
    # Enclave crashes...
    assert drill.crashes_injected > 0
    # ...network faults (partition, random loss or delay spikes)...
    assert drill.partition_drops + drill.random_drops + drill.delays_injected > 0
    # ...and the LRS brownout.
    assert drill.brownout_rejected + drill.brownout_slowed > 0


def test_every_crash_recovered_before_the_end(drill):
    assert drill.restarts_completed == drill.crashes_injected
    assert drill.failovers == drill.crashes_injected
    assert drill.readmissions == drill.failovers
    assert drill.recovered


def test_client_resilience_did_the_recovering(drill):
    # The drill's availability comes from retries/hedges, not luck.
    assert drill.retries_performed > 0
    assert drill.retryable_errors > 0
    assert sum(drill.outcomes.values()) == drill.issued
    assert drill.outcomes["failed"] == drill.failed


def test_redaction_audit_clean_on_error_paths(drill):
    assert drill.audit_violations == 0


def test_same_seed_runs_are_identical(drill):
    again = run_chaos(seed=7, rps=50.0, duration=8.0)
    assert again.fault_events == drill.fault_events
    assert again.to_dict() == drill.to_dict()


def test_different_seed_runs_differ(drill):
    other = run_chaos(seed=11, rps=50.0, duration=8.0)
    assert other.fault_events != drill.fault_events


def test_fault_events_cover_injection_and_recovery(drill):
    names = [event["event"] for event in drill.fault_events]
    for expected in (
        "instance_crashed", "instance_restarted",
        "instance_ejected", "instance_readmitted",
        "fault_window_open", "fault_window_closed",
    ):
        assert expected in names, f"missing fault event {expected!r}"


def test_telemetry_artifact_records_the_drill(tmp_path):
    telemetry = Telemetry()
    result = run_chaos(seed=3, rps=40.0, duration=6.0, telemetry=telemetry)
    paths = telemetry.write_artifact(str(tmp_path))
    content = (tmp_path / "telemetry.jsonl").read_text(encoding="utf-8")
    assert '"instance_crashed"' in content
    assert result.fault_events  # the same events, structured
    assert (tmp_path / "telemetry.prom").read_text(encoding="utf-8")


def test_chaos_is_registered_experiment():
    experiment = EXPERIMENT_INDEX["chaos"]
    assert "repro.faults" in experiment.modules
    assert experiment.bench == "tests/test_chaos_scenario.py"


def test_result_to_dict_is_json_ready(drill):
    import json

    payload = json.dumps(drill.to_dict())
    assert json.loads(payload)["availability"] == drill.availability


def test_empty_result_defaults():
    empty = ChaosResult(seed=0, rps=0.0, duration=0.0, availability_floor=0.9)
    assert empty.availability == 1.0
    assert not empty.ok  # nothing was injected, so the drill proves nothing
