"""Key rotation / breach response while requests are in flight.

Rotating a layer's keys invalidates every request already encrypted
under the old material.  The instances must not crash on those: the
stale-key decrypt failure becomes a retryable 503, the client retries
with the (live-refreshed) new material, and the run ends with every
call settled.
"""

from __future__ import annotations

import dataclasses

from repro.context import Deployment, SimContext
from repro.crypto.keys import KeyFactory
from repro.lrs.stub import StubLrs, make_pseudonymous_payload
from repro.proxy import PProxConfig

CONFIG = PProxConfig(shuffle_size=0, ua_instances=2, ia_instances=2)


def _stack(seed=77):
    ctx = SimContext.fresh(seed)
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    deployment = Deployment.build(ctx=ctx, config=CONFIG, lrs_picker=lambda: stub)
    stub.items = make_pseudonymous_payload(
        ctx.resolved_provider(),
        deployment.service.provisioner.layer_keys["IA"].symmetric_key,
    )
    return ctx, stub, deployment


def _factory(ctx, name="rotate"):
    return KeyFactory(rsa_bits=1024, rng_bytes=ctx.rng.bytes_fn(name))


def test_rotate_ua_under_inflight_load_does_not_crash():
    ctx, _, deployment = _stack()
    service = deployment.service
    client = deployment.client(request_timeout=0.5, max_retries=3)
    results = []
    for _ in range(10):
        client.get("alice", on_complete=results.append)
    # Rotate while those requests are still on the wire / in queues.
    ctx.loop.schedule(0.0005, lambda: service.rotate_layer("UA", _factory(ctx)))
    ctx.loop.run()

    assert len(results) == 10  # every call settled, none hung
    assert all(instance.alive for instance in service.ua_instances)
    # In-flight requests sealed under the retired key surfaced as
    # transform errors, not crashes...
    total_errors = sum(i.transform_errors for i in service.ua_instances)
    assert total_errors > 0
    # ...which the client saw as retryable and re-issued with the new
    # material (client_material reads live from the service).
    assert client.retryable_errors > 0
    assert any(r.ok for r in results)


def test_rotate_ia_under_inflight_load_does_not_crash():
    ctx, stub, deployment = _stack(seed=78)
    service = deployment.service

    def rotate() -> None:
        service.rotate_layer("IA", _factory(ctx))
        # New IA key: the stub's pseudonymous payload must follow (the
        # paper's breach response re-captures the LRS content).
        stub.items = make_pseudonymous_payload(
            ctx.resolved_provider(),
            service.provisioner.layer_keys["IA"].symmetric_key,
        )

    client = deployment.client(request_timeout=0.5, max_retries=3)
    results = []
    for _ in range(10):
        client.get("bob", on_complete=results.append)
    ctx.loop.schedule(0.0005, rotate)
    ctx.loop.run()

    assert len(results) == 10
    assert all(instance.alive for instance in service.ia_instances)
    # Late traffic (encrypted after rotation) must succeed again.
    late = []
    client.get("bob", on_complete=late.append)
    ctx.loop.run()
    assert late[0].ok


def test_stale_client_material_fails_retryably_not_fatally():
    ctx, _, deployment = _stack(seed=79)
    service = deployment.service
    frozen = service.client_material  # snapshot before rotation
    stale_client = deployment.client(request_timeout=0.5, max_retries=2)
    stale_client.material = frozen
    service.rotate_layer("UA", _factory(ctx))

    results = []
    for _ in range(5):
        stale_client.get("carol", on_complete=results.append)
    ctx.loop.run()

    assert len(results) == 5
    assert all(not r.ok for r in results)  # stale keys cannot succeed...
    assert all(instance.alive for instance in service.ua_instances)  # ...but nothing died
    assert stale_client.retryable_errors > 0
    assert stale_client.outcomes["failed"] == 5


def test_breach_response_under_load_settles_every_call():
    ctx, stub, deployment = _stack(seed=80)
    service = deployment.service
    client = deployment.client(request_timeout=0.5, max_retries=3)
    results = []
    for _ in range(8):
        client.get("dave", on_complete=results.append)
    ctx.loop.schedule(
        0.0005,
        lambda: service.breach_response("IA", _factory(ctx), lrs_store=stub.items),
    )
    ctx.loop.run()
    assert len(results) == 8
    assert stub.items == []  # the store was dropped with the old keys
    assert all(instance.alive for instance in service.ia_instances)
