"""Protocol transformations: the request/response lifecycles of §4.2."""

from __future__ import annotations

import pytest

from repro.crypto.envelope import MAX_RECOMMENDATIONS, b64, encode_identifier, unb64
from repro.proxy import protocol
from repro.proxy.config import PProxConfig
from repro.rest.messages import Response, Verb, make_get, make_post

CONFIG = PProxConfig(shuffle_size=0)
HARDENED = PProxConfig(shuffle_size=0, harden_client_hop=True)
PLAIN = PProxConfig(encryption=False, sgx=False, shuffle_size=0)
NO_ITEM_PSEUDO = PProxConfig(shuffle_size=0, item_pseudonymization=False)


@pytest.fixture
def material(layer_keys, second_layer_keys):
    return protocol.ClientMaterial(
        ua=layer_keys.public_material, ia=second_layer_keys.public_material
    )


@pytest.fixture
def ua_keys(layer_keys):
    return layer_keys


@pytest.fixture
def ia_keys(second_layer_keys):
    return second_layer_keys


def test_post_lifecycle_figure3(any_provider, material, ua_keys, ia_keys):
    """End-to-end field transformations of Figure 3."""
    request = make_post("alice", "movie-1", client_address="client-alice")
    encoded, keys = protocol.client_encode_post(any_provider, material, CONFIG, request)
    # Client output: both fields are ciphertext, distinct from inputs.
    assert encoded.fields["user"] != "alice"
    assert encoded.fields["item"] != "movie-1"
    assert keys.temporary_key is None

    forwarded, response_key = protocol.ua_transform_request(
        any_provider, ua_keys, CONFIG, encoded, "pprox-ua-0"
    )
    assert response_key is None
    # UA pseudonymized the user: deterministic, so re-encoding the same
    # user yields the same wire value.
    again, _ = protocol.client_encode_post(
        any_provider, material, CONFIG, make_post("alice", "movie-2")
    )
    forwarded2, _ = protocol.ua_transform_request(
        any_provider, ua_keys, CONFIG, again, "pprox-ua-0"
    )
    assert forwarded.fields["user"] == forwarded2.fields["user"]
    # Item ciphertext passes through the UA untouched.
    assert forwarded.fields["item"] == encoded.fields["item"]
    # Origin hidden from the IA layer.
    assert forwarded.client_address == "pprox-ua-0"

    to_lrs, context = protocol.ia_transform_request(
        any_provider, ia_keys, CONFIG, forwarded, "pprox-ia-0"
    )
    assert context.verb == Verb.POST
    # Item now deterministic pseudonym: same item -> same value.
    third, _ = protocol.client_encode_post(
        any_provider, material, CONFIG, make_post("bob", "movie-1")
    )
    fwd3, _ = protocol.ua_transform_request(any_provider, ua_keys, CONFIG, third, "pprox-ua-0")
    to_lrs3, _ = protocol.ia_transform_request(any_provider, ia_keys, CONFIG, fwd3, "pprox-ia-0")
    assert to_lrs.fields["item"] == to_lrs3.fields["item"]
    # And the pseudonym is not the cleartext.
    assert to_lrs.fields["item"] != "movie-1"


def test_get_lifecycle_figure4(any_provider, material, ua_keys, ia_keys):
    """End-to-end field transformations of Figure 4."""
    request = make_get("alice", client_address="client-alice")
    encoded, keys = protocol.client_encode_get(any_provider, material, CONFIG, request)
    assert keys.temporary_key is not None
    assert "tmpkey" in encoded.fields

    forwarded, _ = protocol.ua_transform_request(
        any_provider, ua_keys, CONFIG, encoded, "pprox-ua-0"
    )
    # tmpkey passes through UA opaque.
    assert forwarded.fields["tmpkey"] == encoded.fields["tmpkey"]

    to_lrs, context = protocol.ia_transform_request(
        any_provider, ia_keys, CONFIG, forwarded, "pprox-ia-0"
    )
    # IA stripped the tmpkey and recovered k_u.
    assert "tmpkey" not in to_lrs.fields
    assert context.temporary_key == keys.temporary_key

    # LRS answers with pseudonymous items.
    pseudo_items = [
        b64(any_provider.pseudonymize(ia_keys.symmetric_key, encode_identifier(item)))
        for item in ("rec-1", "rec-2")
    ]
    lrs_response = Response(status=200, fields={"items": pseudo_items},
                            request_id=request.request_id)
    back = protocol.ia_transform_response(any_provider, ia_keys, CONFIG, context, lrs_response)
    # Response is an opaque blob of padded size.
    assert set(back.fields) == {"blob"}

    items = protocol.client_decode_response(any_provider, CONFIG, back, keys)
    assert items == ["rec-1", "rec-2"]


def test_get_response_is_padded(any_provider, material, ua_keys, ia_keys):
    """Blobs for 1-item and 2-item lists have identical size (§4.3)."""
    sizes = []
    for item_count in (1, 2):
        request = make_get("u")
        encoded, keys = protocol.client_encode_get(any_provider, material, CONFIG, request)
        fwd, _ = protocol.ua_transform_request(any_provider, ua_keys, CONFIG, encoded, "ua")
        to_lrs, context = protocol.ia_transform_request(any_provider, ia_keys, CONFIG, fwd, "ia")
        pseudo = [
            b64(any_provider.pseudonymize(ia_keys.symmetric_key, encode_identifier(f"i{n}")))
            for n in range(item_count)
        ]
        back = protocol.ia_transform_response(
            any_provider, ia_keys, CONFIG, context,
            Response(status=200, fields={"items": pseudo}, request_id=request.request_id),
        )
        sizes.append(len(back.fields["blob"]))
    assert sizes[0] == sizes[1]


def test_overlong_lrs_list_is_truncated(any_provider, material, ua_keys, ia_keys):
    request = make_get("u")
    encoded, keys = protocol.client_encode_get(any_provider, material, CONFIG, request)
    fwd, _ = protocol.ua_transform_request(any_provider, ua_keys, CONFIG, encoded, "ua")
    _, context = protocol.ia_transform_request(any_provider, ia_keys, CONFIG, fwd, "ia")
    pseudo = [
        b64(any_provider.pseudonymize(ia_keys.symmetric_key, encode_identifier(f"i{n}")))
        for n in range(MAX_RECOMMENDATIONS + 5)
    ]
    back = protocol.ia_transform_response(
        any_provider, ia_keys, CONFIG, context,
        Response(status=200, fields={"items": pseudo}, request_id=request.request_id),
    )
    items = protocol.client_decode_response(any_provider, CONFIG, back, keys)
    assert len(items) == MAX_RECOMMENDATIONS


def test_encryption_disabled_passthrough(any_provider, material, ua_keys, ia_keys):
    request = make_post("alice", "i1")
    encoded, keys = protocol.client_encode_post(any_provider, material, PLAIN, request)
    assert encoded.fields == {"user": "alice", "item": "i1"}
    forwarded, _ = protocol.ua_transform_request(any_provider, None, PLAIN, encoded, "ua")
    assert forwarded.fields["user"] == "alice"
    to_lrs, _ = protocol.ia_transform_request(any_provider, None, PLAIN, forwarded, "ia")
    assert to_lrs.fields["item"] == "i1"


def test_item_pseudonymization_disabled_sends_clear_items(
    any_provider, material, ua_keys, ia_keys
):
    """§6.3: items go to the LRS in the clear; users stay pseudonymous."""
    request = make_post("alice", "movie-7")
    encoded, _ = protocol.client_encode_post(any_provider, material, NO_ITEM_PSEUDO, request)
    fwd, _ = protocol.ua_transform_request(any_provider, ua_keys, NO_ITEM_PSEUDO, encoded, "ua")
    to_lrs, _ = protocol.ia_transform_request(any_provider, ia_keys, NO_ITEM_PSEUDO, fwd, "ia")
    assert to_lrs.fields["item"] == "movie-7"
    assert to_lrs.fields["user"] != "alice"


def test_post_response_passes_through(any_provider, ia_keys):
    context = protocol.IaRequestContext(verb=Verb.POST, temporary_key=None)
    response = Response(status=200, fields={})
    assert protocol.ia_transform_response(any_provider, ia_keys, CONFIG, context, response) is response


def test_error_response_passes_through(any_provider, ia_keys):
    context = protocol.IaRequestContext(verb=Verb.GET, temporary_key=b"k" * 32)
    response = Response(status=500, fields={"error": "boom"})
    assert protocol.ia_transform_response(any_provider, ia_keys, CONFIG, context, response) is response


def test_client_decode_rejects_error_response(any_provider):
    with pytest.raises(ValueError, match="status"):
        protocol.client_decode_response(
            any_provider, CONFIG, Response(status=500), protocol.CallKeys()
        )


def test_client_decode_requires_temporary_key(any_provider):
    response = Response(status=200, fields={"blob": b64(b"x" * 32)})
    with pytest.raises(ValueError, match="temporary key"):
        protocol.client_decode_response(any_provider, CONFIG, response, protocol.CallKeys())


# -- hardened client hop (extension) --------------------------------------


def test_hardened_post_hides_item_ciphertext(any_provider, material, ua_keys, ia_keys):
    request = make_post("alice", "movie-1", client_address="client-alice")
    encoded, keys = protocol.client_encode_post(any_provider, material, HARDENED, request)
    assert set(encoded.fields) == {"sealed"}
    assert keys.response_key is not None

    forwarded, response_key = protocol.ua_transform_request(
        any_provider, ua_keys, HARDENED, encoded, "pprox-ua-0"
    )
    assert response_key == keys.response_key
    # After the UA, the message has the paper's regular shape.
    assert "item" in forwarded.fields
    to_lrs, _ = protocol.ia_transform_request(any_provider, ia_keys, HARDENED, forwarded, "ia")
    assert to_lrs.fields["item"] != "movie-1"


def test_hardened_get_full_roundtrip(any_provider, material, ua_keys, ia_keys):
    request = make_get("alice")
    encoded, keys = protocol.client_encode_get(any_provider, material, HARDENED, request)
    forwarded, response_key = protocol.ua_transform_request(
        any_provider, ua_keys, HARDENED, encoded, "ua"
    )
    to_lrs, context = protocol.ia_transform_request(any_provider, ia_keys, HARDENED, forwarded, "ia")
    assert context.temporary_key == keys.temporary_key
    pseudo = [b64(any_provider.pseudonymize(ia_keys.symmetric_key, encode_identifier("rec-9")))]
    ia_back = protocol.ia_transform_response(
        any_provider, ia_keys, HARDENED, context,
        Response(status=200, fields={"items": pseudo}, request_id=request.request_id),
    )
    ua_back = protocol.ua_wrap_response(any_provider, HARDENED, response_key, ia_back)
    assert set(ua_back.fields) == {"sealed_resp"}
    items = protocol.client_decode_response(any_provider, HARDENED, ua_back, keys)
    assert items == ["rec-9"]


def test_ua_wrap_is_noop_without_hardening(any_provider):
    response = Response(status=200, fields={"blob": "x"})
    assert protocol.ua_wrap_response(any_provider, CONFIG, None, response) is response
