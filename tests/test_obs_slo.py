"""SLO engine tests: objective validation, multi-window burn-rate
math for ratio/floor/ceiling kinds, static evaluation, histogram
quantiles, and the bounded tick that lets a run drain."""

import json

import pytest

from repro.obs.slo import (
    Objective,
    SloEngine,
    evaluate_static,
    histogram_quantile,
    write_slo,
)
from repro.simnet.clock import make_event_loop
from repro.telemetry.registry import Histogram


# -- objective validation ------------------------------------------------


def test_objective_rejects_unknown_kinds():
    with pytest.raises(ValueError):
        Objective(name="x", kind="median", target=1.0, value="x")


def test_ratio_objective_needs_good_and_total():
    with pytest.raises(ValueError):
        Objective(name="x", kind="ratio", target=0.9, good="good")
    Objective(name="x", kind="ratio", target=0.9, good="good", total="total")


def test_level_objectives_need_a_value_source():
    for kind in ("floor", "ceiling"):
        with pytest.raises(ValueError):
            Objective(name="x", kind=kind, target=1.0)
        Objective(name="x", kind=kind, target=1.0, value="x")


# -- burn-rate math ------------------------------------------------------


def fed_engine(rows, short_window=2.0):
    """An engine with no loop, fed explicit (time, {source: value}) rows."""
    engine = SloEngine(short_window=short_window)
    state = {}

    keys = {key for _, row in rows for key in row}
    for key in sorted(keys):
        engine.track(key, lambda _key=key: state.get(_key))
    for when, row in rows:
        state.update(row)
        engine.sample_now(when)
    return engine


def test_ratio_burn_alerts_on_a_fast_short_window_burn():
    # 100 calls over 10s; errors start at t=8, so the trailing 2s
    # window burns at 5x while the long window sits exactly at 1x.
    rows = []
    for t in range(11):
        good = 10 * t if t <= 8 else 80 + 5 * (t - 8)
        rows.append((float(t), {"good": float(good), "total": float(10 * t)}))
    engine = fed_engine(rows)
    report = engine.evaluate(
        [Objective(name="goodput", kind="ratio", target=0.9, good="good", total="total")],
        experiment="unit",
    )
    [m] = report.measurements
    assert m.value == pytest.approx(0.9)
    assert m.ok  # exactly on target
    assert m.burn_long == pytest.approx(1.0)
    assert m.burn_short == pytest.approx(5.0)
    assert m.alert  # short >= alert_burn (2.0) and long >= 1.0


def test_ratio_burn_stays_quiet_when_the_long_window_absorbed_it():
    # Same trailing spike, but the long window is nowhere near budget:
    # multi-window alerting must not page on an already-absorbed blip.
    rows = []
    for t in range(101):
        good = float(t) if t <= 98 else 98 + 0.5 * (t - 98)
        rows.append((float(t), {"good": good, "total": float(t)}))
    engine = fed_engine(rows)
    report = engine.evaluate(
        [Objective(name="goodput", kind="ratio", target=0.9, good="good", total="total")],
        experiment="unit",
    )
    [m] = report.measurements
    assert m.ok
    assert m.burn_long < 1.0
    assert m.burn_short == pytest.approx(5.0)
    assert not m.alert


def test_floor_is_judged_on_the_minimum_sample():
    rows = [(0.0, {"floor": 10.0}), (1.0, {"floor": 8.0}), (2.0, {"floor": 9.0})]
    engine = fed_engine(rows)
    report = engine.evaluate(
        [Objective(name="anon", kind="floor", target=9.0, value="floor")],
        experiment="unit",
    )
    [m] = report.measurements
    assert m.value == 8.0
    assert not m.ok
    assert m.burn_long == pytest.approx(0.25)  # 1 breach in 4 samples


def test_ceiling_is_judged_on_where_the_run_ended():
    rows = [(0.0, {"p99": 5.0}), (1.0, {"p99": 3.0}), (2.0, {"p99": 1.0})]
    engine = fed_engine(rows)
    report = engine.evaluate(
        [Objective(name="p99", kind="ceiling", target=2.0, value="p99")],
        experiment="unit",
    )
    [m] = report.measurements
    assert m.value == 1.0
    assert m.ok  # early breaches burned budget but the run recovered
    assert m.burn_long == pytest.approx(0.5)


def test_missing_source_fails_closed():
    engine = fed_engine([(0.0, {"other": 1.0})])
    report = engine.evaluate(
        [Objective(name="anon", kind="floor", target=1.0, value="absent")],
        experiment="unit",
    )
    [m] = report.measurements
    assert m.value is None
    assert not m.ok
    assert "(no samples)" in m.description
    assert not report.ok
    assert report.problems()


def test_none_returning_sources_skip_the_sample():
    engine = SloEngine()
    window = {"open": False}
    engine.track("gated", lambda: 4.0 if window["open"] else None)
    engine.sample_now(0.0)
    window["open"] = True
    engine.sample_now(1.0)
    window["open"] = False
    report = engine.evaluate(
        [Objective(name="gated", kind="floor", target=4.0, value="gated")],
        experiment="unit",
    )
    [m] = report.measurements
    assert m.ok  # only the in-window sample counts
    assert m.value == 4.0


# -- report / artifact ---------------------------------------------------


def test_report_lookup_and_slo_json_round_trip(tmp_path):
    engine = fed_engine([(0.0, {"v": 1.0}), (1.0, {"v": 2.0})])
    report = engine.evaluate(
        [Objective(name="v", kind="ceiling", target=3.0, value="v")],
        experiment="unit",
    )
    assert report.objective("v").ok
    with pytest.raises(KeyError):
        report.objective("missing")
    path = write_slo(report, str(tmp_path))
    data = json.loads((tmp_path / "slo.json").read_text())
    assert path.endswith("slo.json")
    assert data["experiment"] == "unit"
    assert data["ok"] is True
    assert data["objectives"][0]["name"] == "v"


def test_evaluate_static_reads_totals_without_an_engine():
    report = evaluate_static(
        [
            Objective(name="goodput", kind="ratio", target=0.9, good="ok", total="all"),
            Objective(name="floor", kind="floor", target=8.0, value="floor"),
            Objective(name="p99", kind="ceiling", target=0.5, value="p99"),
            Objective(name="ghost", kind="floor", target=1.0, value="absent"),
        ],
        {"ok": 99.0, "all": 100.0, "floor": 8.0, "p99": 0.7},
        experiment="scale",
    )
    by_name = {m.name: m for m in report.measurements}
    assert by_name["goodput"].ok and by_name["goodput"].value == pytest.approx(0.99)
    assert by_name["goodput"].burn_long is None  # no windows statically
    assert by_name["floor"].ok
    assert not by_name["p99"].ok
    assert not by_name["ghost"].ok and by_name["ghost"].value is None


# -- histogram quantiles -------------------------------------------------


def test_histogram_quantile_interpolates_within_buckets():
    hist = Histogram("pprox_test_seconds", buckets=(1.0, 2.0, 4.0))
    for _ in range(50):
        hist.observe(0.5)
    for _ in range(50):
        hist.observe(1.5)
    assert histogram_quantile(hist, 0.5) == pytest.approx(1.0)
    assert histogram_quantile(hist, 0.75) == pytest.approx(1.5)


def test_histogram_quantile_clamps_overflow_to_last_finite_bound():
    hist = Histogram("pprox_test_seconds", buckets=(1.0, 2.0, 4.0))
    hist.observe(100.0)
    assert histogram_quantile(hist, 0.99) == pytest.approx(4.0)


def test_histogram_quantile_is_none_when_empty():
    hist = Histogram("pprox_test_seconds", buckets=(1.0,))
    assert histogram_quantile(hist, 0.99) is None


# -- bounded tick --------------------------------------------------------


def test_attached_engine_samples_on_the_virtual_clock():
    loop = make_event_loop("calendar")
    counter = {"n": 0}

    def pump():
        counter["n"] += 1
        if counter["n"] < 20:
            loop.schedule(0.5, pump)

    loop.schedule(0.0, pump)
    engine = SloEngine(interval=0.25)
    engine.track("n", lambda: float(counter["n"]))
    engine.attach(loop)
    loop.run()
    # ~4 samples per pump tick; the tick stops when the loop drains.
    assert len(engine.samples) > 20
    assert engine.samples[-1][0] <= 9.5 + engine.interval


def test_until_horizon_stops_the_tick_before_the_drain_tail():
    # Two self-re-arming samplers on one loop livelock without a
    # horizon: each sees the other's pending tick and re-arms forever.
    loop = make_event_loop("calendar")
    counter = {"n": 0}

    def pump():
        counter["n"] += 1
        if counter["n"] < 8:
            loop.schedule(0.5, pump)

    loop.schedule(0.0, pump)
    first = SloEngine(interval=0.25)
    second = SloEngine(interval=0.25)
    for engine in (first, second):
        engine.track("t", lambda: 1.0)
        engine.attach(loop, until=2.0)
    loop.run()  # must drain — would hang forever without the horizon
    for engine in (first, second):
        assert len(engine.samples) >= 8
        assert engine.samples[-1][0] <= 2.0 + engine.interval
