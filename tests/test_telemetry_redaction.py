"""Redaction boundary tests: the audit must catch a planted leak and
pass on the real pipeline."""

import pytest

from repro.cluster.deployments import MICRO_CONFIGS
from repro.experiments.runner import run_micro
from repro.telemetry import EventLog, RedactionPolicy, Telemetry, audit_events


@pytest.fixture
def policy():
    return RedactionPolicy()


def test_ua_must_not_carry_item_ids(policy):
    clean, violations = policy.scrub("ua", {"item": "opaque", "note": "item-42"})
    assert clean["item"] == "[redacted:item-id]"  # key-based
    assert clean["note"] == "[redacted:item-id]"  # marker-based
    assert {v.kind for v in violations} == {"item-id"}
    # User ids are legitimate on the UA side.
    clean, violations = policy.scrub("ua", {"user": "user-7"})
    assert clean == {"user": "user-7"}
    assert violations == []


def test_ia_must_not_carry_user_ids(policy):
    clean, violations = policy.scrub("ia", {"user": "pseudonym", "src": "client-user-3"})
    assert clean["user"] == "[redacted:user-id]"
    assert clean["src"] == "[redacted:user-id]"
    assert {v.kind for v in violations} == {"user-id"}
    clean, violations = policy.scrub("ia", {"item": "item-9"})
    assert clean == {"item": "item-9"}
    assert violations == []


def test_lrs_may_carry_neither(policy):
    _, violations = policy.scrub("lrs", {"user": "x", "items": ["movie-1"]})
    assert {v.kind for v in violations} == {"user-id", "item-id"}


def test_client_and_operator_are_unrestricted(policy):
    for role in ("client", "operator"):
        payload = {"user": "user-1", "item": "item-2"}
        clean, violations = policy.scrub(role, payload)
        assert clean == payload
        assert violations == []


def test_nested_structures_and_paths(policy):
    payload = {"batch": [{"ref": "static-item-03"}, {"ok": 1}]}
    clean, violations = policy.scrub("ua", payload)
    assert clean["batch"][0]["ref"] == "[redacted:item-id]"
    [violation] = violations
    assert violation.path == "batch[0].ref"
    assert "item-id leak" in violation.describe()


def test_bytes_reduced_to_size(policy):
    clean, violations = policy.scrub("ua", {"blob": b"\x00" * 48})
    assert clean["blob"] == "<48 bytes>"
    assert violations == []


def test_event_log_scrubs_at_emission():
    log = EventLog()
    event = log.emit("span", "ia", {"user": "user-5"})
    assert event.payload["user"] == "[redacted:user-id]"
    assert len(log.violations) == 1


def test_audit_catches_deliberate_leak():
    telemetry = Telemetry()
    assert telemetry.audit() == []
    # Plant a leak past the boundary, as a buggy instrument would.
    telemetry.event_log.emit_raw("span", "ua", {"item": "item-31337"})
    leaks = telemetry.audit()
    assert len(leaks) == 1
    assert leaks[0].kind == "item-id"
    assert leaks[0].role == "ua"


def test_real_pipeline_passes_audit_and_artifact_round_trips(tmp_path):
    """Acceptance: a full encrypted+shuffled run emits zero identifier
    leaks, and the JSONL artifact re-parses to the same clean verdict."""
    telemetry = Telemetry()
    result = run_micro(MICRO_CONFIGS["m6"], 25.0, seed=11, runs=1,
                      duration=4.0, trim=1.0, telemetry=telemetry)
    assert sum(report.completed for report in result.reports) > 0
    assert len(telemetry.event_log) > 0
    # Nothing was even scrubbed at the boundary: the instrumentation
    # never hands identifiers to the wrong role in the first place.
    assert telemetry.boundary_violations == []
    assert telemetry.audit() == []

    paths = telemetry.write_artifact(str(tmp_path))
    text = open(paths["events"], encoding="utf-8").read()
    records = EventLog.parse_jsonl(text)
    assert len(records) == len(telemetry.event_log)
    assert audit_events(records) == []
    prom = open(paths["metrics"], encoding="utf-8").read()
    assert "pprox_shuffle_batch_fill" in prom
    assert "pprox_effective_anonymity_set" in prom


def test_parse_jsonl_reports_bad_line_number():
    with pytest.raises(ValueError, match="line 2"):
        EventLog.parse_jsonl('{"ok": 1}\nnot-json\n')
