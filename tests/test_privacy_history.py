"""History-based intersection attack (§6.3) and its mitigation."""

from __future__ import annotations

import random

from repro.privacy.history import HistoryAttack


def _decoys(count: int, universe: int, size: int, seed: int):
    rng = random.Random(seed)
    return [
        {f"item-{rng.randrange(universe)}" for _ in range(size)} for _ in range(count)
    ]


def test_stable_profile_converges():
    """A user who keeps receiving the same items is identified after a
    few rounds, exactly as §6.3 warns."""
    target = [{"movie-a", "movie-b", "movie-c"}] * 8
    attack = HistoryAttack(shuffle_size=10, seed=1)
    result = attack.run(target, _decoys(200, universe=1000, size=3, seed=2))
    assert result.converged
    assert result.candidates == {"movie-a", "movie-b", "movie-c"}


def test_varying_profile_resists():
    """If recommendations change every round, the intersection never
    stabilizes on the target's items."""
    rng = random.Random(3)
    target = [{f"movie-{rng.randrange(10_000)}" for _ in range(3)} for _ in range(8)]
    attack = HistoryAttack(shuffle_size=10, seed=4)
    result = attack.run(target, _decoys(200, universe=10_000, size=3, seed=5))
    assert not result.converged
    assert result.precision < 0.5


def test_more_rounds_improve_precision():
    target = [{"x", "y"}] * 2
    short = HistoryAttack(shuffle_size=10, seed=6).run(
        target[:2], _decoys(100, universe=50, size=3, seed=7)
    )
    long = HistoryAttack(shuffle_size=10, seed=6).run(
        [{"x", "y"}] * 10, _decoys(100, universe=50, size=3, seed=7)
    )
    assert long.precision >= short.precision


def test_single_round_gives_whole_anonymity_set():
    target = [{"a"}]
    attack = HistoryAttack(shuffle_size=5, seed=8)
    result = attack.run(target, _decoys(50, universe=100, size=4, seed=9))
    assert "a" in result.candidates
    assert len(result.candidates) > 1  # still hidden among decoys


def test_larger_shuffle_buffer_slows_convergence():
    decoys = _decoys(300, universe=200, size=3, seed=10)
    target = [{"t1", "t2"}] * 3
    small = HistoryAttack(shuffle_size=2, seed=11).run(target, decoys)
    large = HistoryAttack(shuffle_size=20, seed=11).run(target, decoys)
    assert len(large.candidates) >= len(small.candidates)


def test_empty_rounds_rejected():
    import pytest

    with pytest.raises(ValueError):
        HistoryAttack(shuffle_size=5).run([], [])
