"""Deployment tables (Table 2 / Table 3) and the elastic autoscaler."""

from __future__ import annotations

import pytest

from repro.cluster.autoscaler import ElasticScaler
from repro.cluster.deployments import (
    CLUSTER_NODE_BUDGET,
    MACRO_BASELINES,
    MACRO_FULL,
    MICRO_CONFIGS,
    cluster_plan,
)
from repro.lrs.stub import StubLrs
from repro.proxy import PProxConfig, build_pprox
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry


def test_table2_has_nine_configurations():
    assert list(MICRO_CONFIGS) == [f"m{i}" for i in range(1, 10)]


def test_table2_feature_ladder():
    """m1 -> m2 adds encryption; m2 -> m3 adds SGX; m4 disables item
    pseudonymization; m5/m6 add shuffling; m7-m9 scale out."""
    assert not MICRO_CONFIGS["m1"].encryption
    assert MICRO_CONFIGS["m2"].encryption and not MICRO_CONFIGS["m2"].sgx
    assert MICRO_CONFIGS["m3"].sgx and MICRO_CONFIGS["m3"].shuffle_size == 0
    assert not MICRO_CONFIGS["m4"].item_pseudonymization
    assert MICRO_CONFIGS["m5"].shuffle_size == 5
    assert MICRO_CONFIGS["m6"].shuffle_size == 10
    for name, instances in [("m7", 2), ("m8", 3), ("m9", 4)]:
        assert MICRO_CONFIGS[name].ua_instances == instances
        assert MICRO_CONFIGS[name].ia_instances == instances


def test_table2_rps_ladder():
    """Each proxy pair buys 250 RPS (§8.1.2)."""
    for index, name in enumerate(["m6", "m7", "m8", "m9"], start=1):
        assert MICRO_CONFIGS[name].max_rps == 250 * index


def test_micro_config_to_pprox_config():
    config = MICRO_CONFIGS["m4"].pprox_config()
    assert isinstance(config, PProxConfig)
    assert config.encryption and not config.item_pseudonymization


def test_table3_baselines_frontend_ladder():
    assert [MACRO_BASELINES[f"b{i}"].frontends for i in (1, 2, 3, 4)] == [3, 6, 9, 12]
    assert all(not c.with_proxy for c in MACRO_BASELINES.values())


def test_table3_full_configs_pair_proxy_with_lrs():
    for index in (1, 2, 3, 4):
        config = MACRO_FULL[f"f{index}"]
        assert config.with_proxy
        assert config.ua_instances == config.ia_instances == index
        assert config.frontends == 3 * index
        assert config.shuffle_size == 10


def test_table3_node_accounting():
    """b1-b4 use 7-16 LRS nodes; f-configs add 30-50 % overhead (§8.2)."""
    assert [MACRO_BASELINES[f"b{i}"].lrs_nodes for i in (1, 2, 3, 4)] == [7, 10, 13, 16]
    assert MACRO_FULL["f1"].proxy_overhead == pytest.approx(2 / 7)
    assert MACRO_FULL["f4"].proxy_overhead == pytest.approx(8 / 16)


def test_baseline_pprox_config_is_none():
    assert MACRO_BASELINES["b1"].pprox_config() is None


def test_cluster_plans_fit_the_testbed():
    for name in list(MICRO_CONFIGS) + list(MACRO_BASELINES) + list(MACRO_FULL):
        roles, count = cluster_plan(name)
        assert count <= CLUSTER_NODE_BUDGET
        assert len(roles) == count


def test_biggest_plan_nearly_fills_27_nodes():
    _, count = cluster_plan("f4")
    assert count == 26  # 12 fe + 4 support + 4 UA + 4 IA + 2 injectors


def test_unknown_plan_rejected():
    with pytest.raises(KeyError):
        cluster_plan("z9")


# -- autoscaler ------------------------------------------------------------


def _scaled_service():
    rng = RngRegistry(seed=17)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"), record_flows=False)
    stub = StubLrs(loop=loop, rng=rng.stream("stub"))
    service = build_pprox(
        loop, network, rng, PProxConfig(shuffle_size=0),
        lrs_picker=lambda: stub,
    )
    return loop, service


def test_autoscaler_scales_up_under_load():
    loop, service = _scaled_service()
    scaler = ElasticScaler(loop=loop, service=service, interval=1.0, high_rps=10.0)
    scaler.start()
    # Simulate heavy per-instance throughput by bumping counters.
    def pump():
        for instance in service.ua_instances:
            instance.requests_processed += 100
        loop.schedule(1.0, pump)

    loop.schedule(0.5, pump)
    loop.run_until(3.5)
    scaler.stop()
    assert len(service.ua_instances) > 1
    assert any(d.action == "scale-up" for d in scaler.decisions)


def test_autoscaler_scales_down_when_idle():
    loop, service = _scaled_service()
    service.scale_ua()
    service.scale_ua()
    scaler = ElasticScaler(loop=loop, service=service, interval=1.0, low_rps=5.0)
    scaler.start()
    loop.run_until(3.5)
    scaler.stop()
    assert len(service.ua_instances) < 3
    assert any(d.action == "scale-down" for d in scaler.decisions)


def test_autoscaler_respects_min_instances():
    loop, service = _scaled_service()
    scaler = ElasticScaler(loop=loop, service=service, interval=1.0, low_rps=5.0,
                           min_instances=1)
    scaler.start()
    loop.run_until(10.0)
    scaler.stop()
    assert len(service.ua_instances) >= 1
    assert len(service.ia_instances) >= 1


def test_evaluate_without_liveness_info_still_scales_down():
    """``_evaluate``'s liveness argument is optional.  The regression:
    it once defaulted to a shared tuple typed as a List, so callers
    passing nothing got a value that broke list-normalizing branches.
    ``None`` must behave as "no liveness info" and still act."""
    loop, service = _scaled_service()
    service.scale_ua()
    scaler = ElasticScaler(loop=loop, service=service, low_rps=5.0)
    scaler._evaluate("UA", 0.0, 2, None)
    assert [d.action for d in scaler.decisions] == ["scale-down"]
    assert len(service.ua_instances) == 1


def test_evaluate_empty_live_list_with_overload_trigger_armed():
    """An empty live list (every instance just crashed) must not trip
    the overload branch or crash — the rate branch still decides."""
    loop, service = _scaled_service()
    service.scale_ua()
    scaler = ElasticScaler(
        loop=loop, service=service, low_rps=5.0, overload_sojourn_threshold=0.01
    )
    scaler._evaluate("UA", 0.0, 2, [])
    assert scaler.overload_scale_ups == 0
    assert [d.action for d in scaler.decisions] == ["scale-down"]


def test_scale_down_deferred_while_a_shard_is_splitting():
    """Mirror of the rotation-guard deferral: the fleet supervisor's
    guard holds instance retirement while a split is mid-handoff (a
    splitting source still owes full-size flushes), then releases it."""
    from repro.context import SimContext
    from repro.fleet import FleetSupervisor, build_fleet

    ctx = SimContext.fresh(31)
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    fleet = build_fleet(
        ctx, PProxConfig(shuffle_size=0, ua_instances=2, ia_instances=2),
        lambda: stub, shards=2,
    )
    supervisor = FleetSupervisor(
        loop=ctx.loop, fleet=fleet, tick_interval=0.05, drain_grace=1.5
    )
    scaler = ElasticScaler(
        loop=ctx.loop, service=fleet, interval=1.0, low_rps=5.0,
        rotation_guard=supervisor.guard,
    )
    supervisor.start()
    supervisor.split("s0")
    scaler.start()
    ctx.loop.run_until(1.2)  # first scaler tick lands mid-split
    assert scaler.deferred_scale_downs >= 1
    actions = [d.action for d in scaler.decisions]
    assert "scale-down-deferred" in actions
    assert "scale-down" not in actions
    ctx.loop.run_until(4.5)  # split done, idle fleet may now shrink
    scaler.stop()
    supervisor.stop()
    assert "scale-down" in [d.action for d in scaler.decisions]


def test_autoscaler_respects_max_instances():
    loop, service = _scaled_service()
    scaler = ElasticScaler(loop=loop, service=service, interval=1.0, high_rps=1.0,
                           max_instances=2)
    scaler.start()

    def pump():
        for instance in service.ua_instances:
            instance.requests_processed += 1000
        for instance in service.ia_instances:
            instance.requests_processed += 1000
        loop.schedule(1.0, pump)

    loop.schedule(0.5, pump)
    loop.run_until(8.0)
    scaler.stop()
    assert len(service.ua_instances) <= 2
    assert len(service.ia_instances) <= 2
