"""Enclave model: sealing, provisioning gates, compromise, rotation."""

from __future__ import annotations

import pytest

from repro.sgx.enclave import Enclave, EnclaveError, EnclaveMeasurement, SealedStore


def _enclave(attested: bool = True) -> Enclave:
    enclave = Enclave(
        name="e0",
        measurement=EnclaveMeasurement.of_code("code-v1"),
        host_node="node-0",
    )
    enclave.attested = attested
    return enclave


def test_measurement_is_deterministic():
    assert EnclaveMeasurement.of_code("x") == EnclaveMeasurement.of_code("x")


def test_measurement_distinguishes_code():
    assert EnclaveMeasurement.of_code("x") != EnclaveMeasurement.of_code("y")


def test_provision_requires_attestation():
    enclave = _enclave(attested=False)
    with pytest.raises(EnclaveError, match="attested"):
        enclave.provision({"k": b"secret"})


def test_secret_requires_provisioning():
    enclave = _enclave()
    with pytest.raises(EnclaveError, match="not provisioned"):
        enclave.secret("k")


def test_secret_roundtrip_and_ecall_count():
    enclave = _enclave()
    enclave.provision({"k": b"secret"})
    assert enclave.secret("k") == b"secret"
    assert enclave.secret("k") == b"secret"
    assert enclave.ecall_count == 2


def test_missing_secret_raises():
    enclave = _enclave()
    enclave.provision({"k": b"secret"})
    with pytest.raises(EnclaveError, match="no entry"):
        enclave.secret("other")


def test_leak_requires_compromise():
    enclave = _enclave()
    enclave.provision({"k": b"secret"})
    with pytest.raises(EnclaveError, match="not compromised"):
        enclave.leak_secrets()


def test_leak_after_compromise_exposes_all_secrets():
    enclave = _enclave()
    enclave.provision({"k1": b"a", "k2": b"b"})
    enclave.mark_compromised()
    assert enclave.leak_secrets() == {"k1": b"a", "k2": b"b"}


def test_rotation_clears_compromise_and_installs_new_secrets():
    enclave = _enclave()
    enclave.provision({"k": b"old"})
    enclave.mark_compromised()
    enclave.performance_penalty = 3.0
    enclave.rotate({"k": b"new"})
    assert not enclave.compromised
    assert enclave.performance_penalty == 1.0
    assert enclave.secret("k") == b"new"
    with pytest.raises(EnclaveError):
        enclave.leak_secrets()


def test_sealed_store_snapshot_is_a_copy():
    store = SealedStore()
    store.put("k", b"v")
    snapshot = store.snapshot()
    snapshot["k"] = b"tampered"
    assert store.get("k") == b"v"


def test_sealed_store_wipe():
    store = SealedStore()
    store.put("k", b"v")
    store.wipe()
    assert not store.contains("k")
