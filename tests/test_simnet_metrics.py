"""Latency metrics: percentiles, candlesticks, trimming."""

from __future__ import annotations

import numpy
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.metrics import (
    CandlestickSummary,
    LatencyRecorder,
    SlottedLatencyRecorder,
    percentile,
    trim_window,
)


def test_percentile_matches_numpy():
    data = sorted([3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3])
    for fraction in (0.0, 0.25, 0.5, 0.75, 0.99, 1.0):
        assert percentile(data, fraction) == pytest.approx(
            numpy.percentile(data, fraction * 100)
        )


def test_percentile_single_sample():
    assert percentile([7.0], 0.5) == 7.0


def test_percentile_empty_rejected():
    with pytest.raises(ValueError):
        percentile([], 0.5)


def test_recorder_records_and_summarizes():
    recorder = LatencyRecorder("test")
    for index in range(1, 101):
        recorder.record(float(index), index / 1000.0)
    summary = recorder.summarize()
    assert summary.count == 100
    assert summary.median == pytest.approx(0.0505, abs=1e-3)
    assert summary.p25 < summary.median < summary.p75


def test_recorder_rejects_negative_latency():
    with pytest.raises(ValueError, match="negative"):
        LatencyRecorder().record(1.0, -0.1)


def test_whiskers_exclude_outliers():
    recorder = LatencyRecorder()
    values = [0.01] * 50 + [0.011] * 50 + [10.0]  # one extreme outlier
    for index, value in enumerate(values):
        recorder.record(float(index), value)
    summary = recorder.summarize()
    assert summary.whisker_high < 10.0
    assert summary.maximum == 10.0


def test_whiskers_within_data():
    recorder = LatencyRecorder()
    for index in range(20):
        recorder.record(float(index), 0.001 * (index + 1))
    summary = recorder.summarize()
    assert summary.whisker_low >= 0.001
    assert summary.whisker_high <= 0.020


def test_trimmed_selects_window():
    recorder = LatencyRecorder()
    for t in range(100):
        recorder.record(float(t), 0.5)
    assert len(recorder.trimmed(10.0, 20.0)) == 11


def test_extend_merges_runs():
    one, two = LatencyRecorder(), LatencyRecorder()
    one.record(1.0, 0.1)
    two.record(2.0, 0.2)
    one.extend(two)
    assert len(one.samples) == 2


def test_summarize_empty_rejected():
    with pytest.raises(ValueError, match="no samples"):
        LatencyRecorder("empty").summarize()


def test_trim_window():
    assert trim_window(0.0, 300.0, 15.0) == (15.0, 285.0)


def test_trim_window_too_short_rejected():
    with pytest.raises(ValueError, match="too short"):
        trim_window(0.0, 20.0, 15.0)


def test_candlestick_row_rendering():
    summary = CandlestickSummary(
        p25=0.010, median=0.020, p75=0.030, whisker_low=0.005,
        whisker_high=0.045, count=10, mean=0.021, p99=0.044, maximum=0.050,
    )
    row = summary.row()
    assert "med=    20.0" in row
    assert "n=10" in row
    assert summary.iqr == pytest.approx(0.020)


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=60))
def test_candlestick_invariants(values):
    recorder = LatencyRecorder()
    for index, value in enumerate(values):
        recorder.record(float(index), value)
    summary = recorder.summarize()
    assert summary.p25 <= summary.median <= summary.p75
    # Interpolated quartiles may fall between data points; the whisker
    # endpoints are actual data, so compare against the median.
    assert summary.whisker_low <= summary.median
    assert summary.whisker_high >= summary.median
    assert summary.whisker_high <= summary.maximum
    assert min(values) <= summary.mean <= max(values)


# ---------------------------------------------------------------------------
# SlottedLatencyRecorder: bounded-memory estimates track the exact ones.
# ---------------------------------------------------------------------------

def test_slotted_recorder_tracks_exact_recorder():
    import random

    rng = random.Random(11)
    exact = LatencyRecorder()
    binned = SlottedLatencyRecorder(slot_seconds=1.0)
    for index in range(50_000):
        t = index * 0.002
        latency = rng.lognormvariate(-5.5, 0.6)
        exact.record(t, latency)
        binned.record(t, latency)
    reference = exact.summarize(exact.trimmed(10.0, 90.0))
    estimate = binned.summarize(10.0, 90.0)
    for attribute in ("p25", "median", "p75", "p99"):
        got = getattr(estimate, attribute)
        want = getattr(reference, attribute)
        assert got == pytest.approx(want, rel=0.06), attribute
    assert estimate.mean == pytest.approx(reference.mean, rel=1e-6)
    assert estimate.maximum == reference.maximum
    assert estimate.p25 <= estimate.median <= estimate.p75 <= estimate.maximum


def test_slotted_recorder_memory_is_bounded_by_bins():
    binned = SlottedLatencyRecorder(slot_seconds=1.0)
    for index in range(100_000):
        binned.record((index % 10) * 1.0, 0.001 + (index % 97) * 1e-5)
    stats = binned.stats()
    assert stats["samples"] == 100_000
    assert stats["slots"] == 10  # resident state ~ slots x buckets, not samples


def test_slotted_recorder_merge_and_validation():
    a = SlottedLatencyRecorder()
    b = SlottedLatencyRecorder()
    for index in range(100):
        a.record(0.5, 0.002)
        b.record(0.5, 0.004)
    a.merge(b)
    assert a.count == 200
    summary = a.summarize()
    assert summary.count == 200
    assert 0.002 <= summary.median <= 0.004
    with pytest.raises(ValueError):
        a.merge(SlottedLatencyRecorder(slot_seconds=2.0))
    with pytest.raises(ValueError):
        a.record(1.0, -0.1)
    empty = SlottedLatencyRecorder()
    with pytest.raises(ValueError, match="no samples"):
        empty.summarize()


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(min_value=1e-5, max_value=50.0), min_size=2, max_size=60))
def test_slotted_candlestick_invariants(values):
    recorder = SlottedLatencyRecorder()
    for index, value in enumerate(values):
        recorder.record(float(index), value)
    summary = recorder.summarize()
    assert summary.p25 <= summary.median <= summary.p75
    assert summary.whisker_high <= summary.maximum
    assert min(values) <= summary.mean <= max(values)
    assert summary.count == len(values)
