"""Full-stack integration: real crypto, real CCO, full attack lifecycle."""

from __future__ import annotations

import pytest

from repro.client import PProxClient
from repro.crypto.keys import KeyFactory
from repro.crypto.provider import RealCryptoProvider
from repro.lrs.service import HarnessService
from repro.privacy import Adversary, KnowledgeEngine
from repro.proxy import PProxConfig, build_pprox
from repro.proxy.costs import DEFAULT_COSTS
from repro.sgx.sidechannel import BreachDetector, SideChannelAttack
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry


def _full_stack(config=None, seed=61):
    rng = RngRegistry(seed=seed)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"))
    harness = HarnessService(loop=loop, rng=rng.stream("lrs"), frontend_count=3)
    harness.engine.trainer.llr_threshold = 0.0
    provider = RealCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
    service = build_pprox(
        loop, network, rng, config or PProxConfig(shuffle_size=2, shuffle_timeout=0.05),
        lrs_picker=harness.pick_frontend, provider=provider,
    )
    client = PProxClient(loop=loop, network=network, provider=provider,
                         service=service, costs=DEFAULT_COSTS, rng=rng.stream("c"))
    return rng, loop, network, harness, service, client


FEEDBACK = {
    "alice": ["sci-fi-1", "sci-fi-2", "drama-1"],
    "bob": ["sci-fi-1", "sci-fi-2", "sci-fi-3"],
    "carol": ["sci-fi-2", "sci-fi-3", "drama-1"],
    "dave": ["drama-1", "drama-2"],
}


def test_recommendations_flow_end_to_end_with_real_crypto():
    _, loop, _, harness, service, client = _full_stack()
    for user, items in FEEDBACK.items():
        for item in items:
            client.post(user, item)
    loop.run()
    harness.train()
    results = {}
    for user in FEEDBACK:
        client.get(user, on_complete=lambda c, u=user: results.update({u: c.items}))
    loop.run()
    # Alice, sharing sci-fi taste with bob, is recommended sci-fi-3.
    assert "sci-fi-3" in results["alice"]
    # Recommendations never include the user's own history.
    for user, items in FEEDBACK.items():
        assert not set(results[user]) & set(items)


def test_lrs_database_is_fully_pseudonymous():
    _, loop, _, harness, service, client = _full_stack()
    for user, items in FEEDBACK.items():
        for item in items:
            client.post(user, item)
    loop.run()
    cleartext_terms = set(FEEDBACK) | {i for items in FEEDBACK.values() for i in items}
    for event in harness.engine.store.dump():
        assert event.user not in cleartext_terms
        assert event.item not in cleartext_terms


def test_side_channel_attack_lifecycle_with_detection_and_rotation():
    """The full §2.3 / footnote-1 story: attack degrades an enclave,
    the detector fires, keys rotate, the stolen secrets die, and a
    later attack on the other layer still cannot link anything."""
    rng, loop, network, harness, service, client = _full_stack()
    adversary = Adversary()
    adversary.attach(network)
    adversary.observe_lrs(harness.engine.store)

    factory = KeyFactory(rsa_bits=1024, rng_int=rng.int_fn("rot"),
                         rng_bytes=rng.bytes_fn("rot-bytes"))

    rotations = []

    def respond(enclave) -> None:
        # Rotation restarts the enclave with fresh secrets, which also
        # terminates the in-progress side-channel campaign.
        layer = "UA" if enclave.name.startswith("ua") else "IA"
        service.rotate_layer(layer, factory)
        adversary.drop_secrets(layer)
        attack.abort()
        rotations.append(layer)

    detector = BreachDetector(
        loop=loop, enclaves=service.all_enclaves(), response=respond,
        sampling_interval=30.0, confirmation_samples=3,
    )
    detector.start()

    target = service.ua_instances[0].enclave
    attack = SideChannelAttack(
        loop=loop, target=target, duration=1800.0,
        on_success=lambda secrets: adversary.harvest_enclave("UA", target),
    )
    attack.launch()

    # Traffic keeps flowing during the attack.
    for user, items in FEEDBACK.items():
        for item in items:
            client.post(user, item)
    loop.run_until(2000.0)
    detector.stop()
    loop.run()

    # Detector fired and the layer was rotated.
    assert rotations and rotations[0] == "UA"
    # The adversary's UA secrets were retired by the rotation; a
    # subsequent IA attack is now inside the model.
    ia_enclave = service.ia_instances[0].enclave
    ia_enclave.mark_compromised()
    adversary.harvest_enclave("IA", ia_enclave)

    provider = client.provider
    engine = KnowledgeEngine.for_adversary(
        adversary, provider,
        catalog={i for items in FEEDBACK.values() for i in items},
    )
    links = engine.derive_links(
        adversary.messages_at("pprox-ia"), adversary.lrs_dump()
    )
    assert links == set()


def test_performance_degrades_during_attack():
    """Attacked enclaves slow down — measurable at the client."""
    _, loop, _, harness, service, client = _full_stack(
        PProxConfig(shuffle_size=0)
    )
    latencies = {"before": [], "during": []}
    client.get("u1", on_complete=lambda c: latencies["before"].append(c.latency))
    loop.run()

    attack = SideChannelAttack(
        loop=loop, target=service.ia_instances[0].enclave,
        duration=10_000.0, performance_penalty=5.0,
    )
    attack.launch()
    client.get("u2", on_complete=lambda c: latencies["during"].append(c.latency))
    loop.run_until(loop.now + 100.0)

    assert latencies["during"][0] > latencies["before"][0]


def test_scaled_deployment_handles_concurrent_users():
    _, loop, _, harness, service, client = _full_stack(
        PProxConfig(shuffle_size=5, shuffle_timeout=0.1, ua_instances=2, ia_instances=2)
    )
    done = []
    for index in range(30):
        client.post(f"user-{index % 6}", f"item-{index % 9}",
                    on_complete=done.append)
    loop.run()
    assert len(done) == 30
    assert all(call.ok for call in done)
    assert harness.engine.event_count == 30
