"""Shared fixtures: deterministic RNG, key material, small deployments."""

from __future__ import annotations

import random

import pytest

from repro.crypto.keys import LayerKeys
from repro.crypto.provider import FastCryptoProvider, RealCryptoProvider, SimCryptoProvider
from repro.crypto.rsa import generate_keypair
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry


@pytest.fixture
def rng_registry() -> RngRegistry:
    return RngRegistry(seed=1234)


@pytest.fixture
def loop() -> EventLoop:
    return EventLoop()


@pytest.fixture
def network(loop, rng_registry) -> Network:
    return Network(loop=loop, rng=rng_registry.stream("net"))


# Key generation is the slowest fixture; share one deterministic
# keypair per session.
@pytest.fixture(scope="session")
def session_keypair():
    rng = random.Random(99)
    return generate_keypair(1024, lambda bound: rng.randrange(bound))


@pytest.fixture(scope="session")
def layer_keys(session_keypair) -> LayerKeys:
    _, private_key = session_keypair
    return LayerKeys(private_key=private_key, symmetric_key=bytes(range(32)))


@pytest.fixture(scope="session")
def second_layer_keys() -> LayerKeys:
    rng = random.Random(77)
    _, private_key = generate_keypair(1024, lambda bound: rng.randrange(bound))
    return LayerKeys(private_key=private_key, symmetric_key=bytes(range(32, 64)))


def _seeded_bytes(seed: int):
    rng = random.Random(seed)
    return lambda n: rng.getrandbits(8 * n).to_bytes(n, "big") if n else b""


@pytest.fixture(params=["real", "fast", "sim"])
def any_provider(request):
    """Parametrized fixture covering all three crypto providers."""
    factories = {
        "real": lambda: RealCryptoProvider(rng_bytes=_seeded_bytes(5)),
        "fast": lambda: FastCryptoProvider(rng_bytes=_seeded_bytes(6)),
        "sim": lambda: SimCryptoProvider(rng_bytes=_seeded_bytes(7)),
    }
    return factories[request.param]()


@pytest.fixture
def real_provider():
    return RealCryptoProvider(rng_bytes=_seeded_bytes(8))


@pytest.fixture
def fast_provider():
    return FastCryptoProvider(rng_bytes=_seeded_bytes(9))


@pytest.fixture
def sim_provider():
    return SimCryptoProvider(rng_bytes=_seeded_bytes(10))
