"""Property-based tests of the full protocol transformation chain.

Hypothesis drives random identifiers, item lists and feature
combinations through the complete client -> UA -> IA -> LRS -> IA ->
UA -> client pipeline of pure protocol functions, checking the
invariants every §4.2 lifecycle must satisfy.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.envelope import FIXED_ID_BYTES, MAX_RECOMMENDATIONS, b64, encode_identifier
from repro.crypto.provider import FastCryptoProvider
from repro.proxy import protocol
from repro.proxy.config import PProxConfig
from repro.rest.messages import Response, make_get, make_post

# Identifiers the application might realistically use: unicode included,
# bounded by the fixed-size encoding's capacity.
identifiers = st.text(min_size=1, max_size=14).filter(
    lambda s: len(s.encode("utf-8")) <= FIXED_ID_BYTES - 2
)

configs = st.builds(
    PProxConfig,
    item_pseudonymization=st.booleans(),
    harden_client_hop=st.booleans(),
    shuffle_size=st.just(0),
)


@pytest.fixture(scope="module")
def chain(layer_keys, second_layer_keys):
    provider = FastCryptoProvider()
    material = protocol.ClientMaterial(
        ua=layer_keys.public_material, ia=second_layer_keys.public_material
    )
    return provider, material, layer_keys, second_layer_keys


@settings(max_examples=40, deadline=None)
@given(user=identifiers, item=identifiers, config=configs)
def test_post_pipeline_properties(chain, user, item, config):
    provider, material, ua_keys, ia_keys = chain
    request = make_post(user, item, client_address="client-x")
    encoded, keys = protocol.client_encode_post(provider, material, config, request)
    # Cleartext never appears as a field value.
    assert user not in encoded.fields.values()
    assert item not in encoded.fields.values()
    forwarded, response_key = protocol.ua_transform_request(
        provider, ua_keys, config, encoded, "pprox-ua-0"
    )
    assert forwarded.client_address == "pprox-ua-0"
    to_lrs, context = protocol.ia_transform_request(
        provider, ia_keys, config, forwarded, "pprox-ia-0"
    )
    assert context.verb == "POST"
    # User pseudonym is deterministic and not the cleartext.
    assert to_lrs.fields["user"] != user
    if config.item_pseudonymization:
        assert to_lrs.fields["item"] != item
    else:
        assert to_lrs.fields["item"] == item
    # Hardened mode produced a response key, plain mode did not.
    assert (response_key is not None) == config.harden_client_hop


@settings(max_examples=40, deadline=None)
@given(
    user=identifiers,
    items=st.lists(identifiers, min_size=0, max_size=MAX_RECOMMENDATIONS, unique=True),
    config=configs,
)
def test_get_pipeline_roundtrip(chain, user, items, config):
    provider, material, ua_keys, ia_keys = chain
    request = make_get(user, client_address="client-x")
    encoded, keys = protocol.client_encode_get(provider, material, config, request)
    forwarded, response_key = protocol.ua_transform_request(
        provider, ua_keys, config, encoded, "pprox-ua-0"
    )
    to_lrs, context = protocol.ia_transform_request(
        provider, ia_keys, config, forwarded, "pprox-ia-0"
    )
    assert "tmpkey" not in to_lrs.fields

    if config.item_pseudonymization:
        wire_items = [
            b64(provider.pseudonymize(ia_keys.symmetric_key, encode_identifier(i)))
            for i in items
        ]
    else:
        wire_items = list(items)
    lrs_response = Response(status=200, fields={"items": wire_items},
                            request_id=request.request_id)
    ia_back = protocol.ia_transform_response(
        provider, ia_keys, config, context, lrs_response
    )
    ua_back = protocol.ua_wrap_response(provider, config, response_key, ia_back)
    decoded = protocol.client_decode_response(provider, config, ua_back, keys)
    # The application receives exactly the LRS's list, in order.
    assert decoded == list(items)
    # And the wire response carries only opaque blobs — no item field.
    assert set(ua_back.fields) <= {"blob", "sealed_resp"}
    for item in items:
        assert item not in ua_back.fields.values()


@settings(max_examples=20, deadline=None)
@given(user=identifiers)
def test_pseudonyms_are_stable_across_requests(chain, user):
    provider, material, ua_keys, ia_keys = chain
    config = PProxConfig(shuffle_size=0)
    outs = []
    for _ in range(2):
        encoded, _ = protocol.client_encode_get(
            provider, material, config, make_get(user)
        )
        forwarded, _ = protocol.ua_transform_request(
            provider, ua_keys, config, encoded, "ua"
        )
        outs.append(forwarded.fields["user"])
    assert outs[0] == outs[1]


@settings(max_examples=20, deadline=None)
@given(first=identifiers, second=identifiers)
def test_distinct_users_get_distinct_pseudonyms(chain, first, second):
    provider, material, ua_keys, ia_keys = chain
    if first == second:
        return
    config = PProxConfig(shuffle_size=0)
    pseudonyms = []
    for user in (first, second):
        encoded, _ = protocol.client_encode_get(
            provider, material, config, make_get(user)
        )
        forwarded, _ = protocol.ua_transform_request(
            provider, ua_keys, config, encoded, "ua"
        )
        pseudonyms.append(forwarded.fields["user"])
    assert pseudonyms[0] != pseudonyms[1]
