"""Metrics collection over virtual time."""

from __future__ import annotations

import pytest

from repro.simnet.clock import EventLoop
from repro.simnet.monitoring import MetricsCollector, TimeSeries, node_gauges
from repro.simnet.node import SimNode


def test_collector_samples_on_interval():
    loop = EventLoop()
    collector = MetricsCollector(loop=loop, interval=1.0)
    counter = {"value": 0}

    def gauge():
        counter["value"] += 1
        return counter["value"]

    collector.register("counter", gauge)
    collector.start()
    loop.run_until(5.5)
    collector.stop()
    assert len(collector.series["counter"].points) == 5
    assert collector.series["counter"].values() == [1, 2, 3, 4, 5]


def test_sample_timestamps_are_virtual_time():
    loop = EventLoop()
    collector = MetricsCollector(loop=loop, interval=2.0)
    collector.register("g", lambda: 1.0)
    collector.start()
    loop.run_until(6.5)
    collector.stop()
    times = [time for time, _ in collector.series["g"].points]
    assert times == [2.0, 4.0, 6.0]


def test_duplicate_gauge_rejected():
    collector = MetricsCollector(loop=EventLoop())
    collector.register("g", lambda: 0)
    with pytest.raises(ValueError, match="already registered"):
        collector.register("g", lambda: 0)


def test_node_gauges_track_load():
    loop = EventLoop()
    node = SimNode(name="n", loop=loop, cores=1)
    collector = MetricsCollector(loop=loop, interval=0.5)
    node_gauges(collector, node)
    collector.start()
    for _ in range(4):
        node.submit(1.0, lambda: None)
    loop.run_until(2.0)
    collector.stop()
    loop.run()
    queue_series = collector.series["n.queue_length"]
    assert queue_series.maximum() >= 2
    busy = collector.series["n.busy_cores"]
    assert busy.maximum() == 1


def test_series_window_and_stats():
    series = TimeSeries(name="s")
    for time in range(10):
        series.append(float(time), float(time * 2))
    assert series.window(2.0, 4.0) == [4.0, 6.0, 8.0]
    assert series.mean() == pytest.approx(9.0)
    assert series.last() == 18.0


def test_series_stats_require_samples():
    with pytest.raises(ValueError):
        TimeSeries(name="empty").mean()


def test_render_contains_all_series():
    loop = EventLoop()
    collector = MetricsCollector(loop=loop, interval=1.0)
    collector.register("a.b", lambda: 1.5)
    collector.register("never.sampled", lambda: 0)
    collector.start()
    loop.run_until(1.0)
    collector.stop()
    text = collector.render()
    assert "a.b" in text and "never.sampled" in text


def test_render_with_never_sampled_series():
    collector = MetricsCollector(loop=EventLoop())
    collector.register("quiet", lambda: 3.0)
    text = collector.render()  # must not raise on the empty series
    assert "quiet" in text
    assert "-" in text


def test_stop_then_start_does_not_double_schedule():
    loop = EventLoop()
    collector = MetricsCollector(loop=loop, interval=1.0)
    collector.register("g", lambda: 1.0)
    collector.start()
    assert collector.running
    loop.run_until(2.5)
    collector.stop()
    assert not collector.running
    collector.start()
    collector.start()  # second start while running is a no-op
    loop.run_until(5.5)
    collector.stop()
    # One sample per elapsed interval, never two per tick: the stop at
    # t=2.5 cancelled the pending tick, and restart re-arms exactly one.
    assert collector.samples_taken == 5
    assert len(collector.series["g"].points) == 5


def test_render_prometheus_exposes_registered_gauges():
    loop = EventLoop()
    collector = MetricsCollector(loop=loop, interval=1.0)
    collector.register("node.queue_length", lambda: 4.0)
    text = collector.render_prometheus()
    assert "# TYPE node_queue_length gauge" in text
    assert 'node_queue_length{series="node.queue_length"} 4' in text
