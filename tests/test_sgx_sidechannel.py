"""Side-channel attacks, detection, and the one-enclave invariant."""

from __future__ import annotations

import pytest

from repro.sgx.enclave import Enclave, EnclaveMeasurement
from repro.sgx.sidechannel import (
    AttackModelError,
    BreachDetector,
    SideChannelAttack,
    SingleEnclaveInvariant,
)
from repro.simnet.clock import EventLoop


def _enclave(name: str = "e") -> Enclave:
    enclave = Enclave(
        name=name, measurement=EnclaveMeasurement.of_code("c"), host_node="n"
    )
    enclave.attested = True
    enclave.provision({"k": b"secret"})
    return enclave


def test_attack_degrades_performance_while_running():
    loop = EventLoop()
    enclave = _enclave()
    attack = SideChannelAttack(loop=loop, target=enclave, duration=100.0)
    attack.launch()
    assert enclave.performance_penalty > 1.0
    assert attack.running


def test_attack_leaks_secrets_on_completion():
    loop = EventLoop()
    enclave = _enclave()
    leaked = []
    attack = SideChannelAttack(
        loop=loop, target=enclave, duration=100.0, on_success=leaked.append
    )
    attack.launch()
    loop.run()
    assert enclave.compromised
    assert leaked == [{"k": b"secret"}]
    assert enclave.performance_penalty == 1.0  # attack over, load normal


def test_attack_takes_tens_of_minutes_by_default():
    attack = SideChannelAttack(loop=EventLoop(), target=_enclave())
    assert attack.duration >= 10 * 60


def test_aborted_attack_leaks_nothing():
    loop = EventLoop()
    enclave = _enclave()
    attack = SideChannelAttack(loop=loop, target=enclave, duration=50.0)
    attack.launch()
    attack.abort()
    loop.run()
    assert not enclave.compromised
    assert enclave.performance_penalty == 1.0


def test_attack_cannot_launch_twice():
    attack = SideChannelAttack(loop=EventLoop(), target=_enclave(), duration=1.0)
    attack.launch()
    with pytest.raises(AttackModelError, match="already"):
        attack.launch()


def test_detector_fires_on_sustained_degradation():
    loop = EventLoop()
    enclave = _enclave()
    responses = []
    detector = BreachDetector(
        loop=loop,
        enclaves=[enclave],
        response=lambda e: responses.append(e.name),
        sampling_interval=10.0,
        confirmation_samples=3,
    )
    detector.start()
    attack = SideChannelAttack(loop=loop, target=enclave, duration=10_000.0)
    attack.launch()
    loop.run_until(100.0)
    assert responses == [enclave.name]
    assert detector.detections == [enclave.name]


def test_detector_ignores_healthy_enclaves():
    loop = EventLoop()
    enclave = _enclave()
    responses = []
    detector = BreachDetector(
        loop=loop, enclaves=[enclave], response=lambda e: responses.append(e)
    )
    detector.start()
    loop.run_until(500.0)
    detector.stop()
    assert responses == []


def test_detector_beats_a_second_attack():
    """The model's core timing assumption: detection + response happen
    well before a second enclave could be broken (attack duration is
    tens of minutes, detection takes ~minutes)."""
    detector = BreachDetector(loop=EventLoop(), enclaves=[], response=lambda e: None)
    attack = SideChannelAttack(loop=EventLoop(), target=_enclave())
    assert detector.detection_time() < attack.duration


def test_detector_resets_suspicion_on_recovery():
    loop = EventLoop()
    enclave = _enclave()
    responses = []
    detector = BreachDetector(
        loop=loop,
        enclaves=[enclave],
        response=lambda e: responses.append(e),
        sampling_interval=10.0,
        confirmation_samples=3,
    )
    detector.start()
    enclave.performance_penalty = 3.0
    loop.run_until(20.0)  # two suspicious samples, below threshold
    enclave.performance_penalty = 1.0
    loop.run_until(60.0)
    enclave.performance_penalty = 3.0
    loop.run_until(80.0)  # two more suspicious samples, still < 3 consecutive
    detector.stop()
    assert responses == []


def test_invariant_allows_one_layer():
    invariant = SingleEnclaveInvariant()
    invariant.record_leak("UA")
    assert invariant.satisfied


def test_invariant_rejects_both_layers():
    invariant = SingleEnclaveInvariant()
    invariant.record_leak("UA")
    with pytest.raises(AttackModelError, match="both layers"):
        invariant.record_leak("IA")
    assert invariant.violations == 1


def test_invariant_allows_second_layer_after_rotation():
    """Sequential compromises with a rotation in between are inside
    the model — the rotated layer's leaked keys are dead."""
    invariant = SingleEnclaveInvariant()
    invariant.record_leak("UA")
    invariant.record_rotation("UA")
    invariant.record_leak("IA")
    assert invariant.satisfied


def test_invariant_rejects_unknown_layer():
    with pytest.raises(AttackModelError, match="unknown layer"):
        SingleEnclaveInvariant().record_leak("XX")
