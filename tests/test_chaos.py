"""Chaos experiment: instance failure under live load.

Runs a full-feature deployment at steady load, kills a proxy instance
mid-run, and verifies the recovery story end-to-end: the health
monitor ejects the dead backend, client retries recover lost calls,
the autoscaler replaces capacity, and availability returns to 100 %.
"""

from __future__ import annotations

import pytest

from repro.client import PProxClient
from repro.cluster.autoscaler import ElasticScaler
from repro.cluster.health import HealthMonitor
from repro.crypto.provider import FastCryptoProvider
from repro.lrs.stub import StubLrs, make_pseudonymous_payload
from repro.proxy import PProxConfig, build_pprox
from repro.proxy.costs import DEFAULT_COSTS
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry
from repro.workload.injector import Injector


@pytest.fixture
def chaos_stack():
    rng = RngRegistry(seed=131)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"), record_flows=False)
    stub = StubLrs(loop=loop, rng=rng.stream("stub"))
    provider = FastCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
    service = build_pprox(
        loop, network, rng,
        PProxConfig(shuffle_size=5, shuffle_timeout=0.2, ua_instances=2,
                    ia_instances=2),
        lrs_picker=lambda: stub, provider=provider,
    )
    stub.items = make_pseudonymous_payload(
        provider, service.provisioner.layer_keys["IA"].symmetric_key
    )
    client = PProxClient(
        loop=loop, network=network, provider=provider, service=service,
        costs=DEFAULT_COSTS, rng=rng.stream("client"),
        request_timeout=2.0, max_retries=3,
    )
    return rng, loop, service, client


def test_full_recovery_story(chaos_stack):
    rng, loop, service, client = chaos_stack
    monitor = HealthMonitor(loop=loop, service=service, interval=1.0)
    monitor.start()

    injector = Injector(loop, rng.stream("injector"))
    injector.inject(100, 30.0, lambda cb: client.get("user", on_complete=cb))

    # Kill one instance of each layer 10 s in.
    loop.schedule(10.0, service.ua_instances[0].fail)
    loop.schedule(10.0, service.ia_instances[1].fail)

    loop.run_until(40.0)
    monitor.stop()
    loop.run()

    # Every injected call eventually succeeded (retries absorbed the
    # in-flight losses).
    assert injector.report.issued == 3000
    assert injector.report.completed == 3000
    assert injector.report.failed == 0
    # The dead backends were ejected.
    assert len(service.ua_balancer) == 1
    assert len(service.ia_balancer) == 1
    # Some calls did need the retry path.
    assert client.retries_performed > 0


def test_latency_degrades_then_recovers(chaos_stack):
    rng, loop, service, client = chaos_stack
    monitor = HealthMonitor(loop=loop, service=service, interval=0.5)
    monitor.start()

    injector = Injector(loop, rng.stream("injector"))
    injector.inject(100, 30.0, lambda cb: client.get("user", on_complete=cb))
    loop.schedule(10.0, service.ua_instances[0].fail)

    loop.run_until(40.0)
    monitor.stop()
    loop.run()

    before = injector.recorder.trimmed(2.0, 9.5)
    during = injector.recorder.trimmed(10.0, 13.0)
    after = injector.recorder.trimmed(20.0, 29.0)
    assert before and during and after

    def median(values):
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    # The failure window shows the timeout/retry penalty; steady state
    # afterwards returns to the healthy baseline's neighbourhood.
    assert max(during) > 2.0  # at least one retried call (>= timeout)
    assert median(after) < 2 * median(before)


def test_autoscaler_replaces_lost_capacity(chaos_stack):
    """After an instance dies under load, the elastic scaler detects
    the per-instance rate spike on the survivors and scales back up —
    and the new instance goes through attestation + provisioning."""
    rng, loop, service, client = chaos_stack
    monitor = HealthMonitor(loop=loop, service=service, interval=0.5)
    scaler = ElasticScaler(loop=loop, service=service, interval=2.0,
                           low_rps=20.0, high_rps=150.0, max_instances=3)
    monitor.start()
    scaler.start()

    injector = Injector(loop, rng.stream("injector"))
    injector.inject(250, 40.0, lambda cb: client.get("user", on_complete=cb))
    loop.schedule(10.0, service.ua_instances[0].fail)

    loop.run_until(45.0)
    monitor.stop()
    scaler.stop()
    loop.run()

    assert any(d.action == "scale-up" and d.layer == "UA" for d in scaler.decisions)
    newest = service.ua_instances[-1]
    assert newest.alive
    assert newest.enclave.attested and newest.enclave.provisioned
    assert injector.report.completion_ratio > 0.99
