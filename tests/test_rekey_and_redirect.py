"""Footnote-1 option 2 (LRS re-encryption) and §6.3 HTTP redirection."""

from __future__ import annotations

import pytest

from repro.client import PProxClient
from repro.client.redirect import RedirectedService, RedirectFrontend
from repro.crypto.keys import KeyFactory
from repro.crypto.provider import FastCryptoProvider
from repro.lrs.service import HarnessService
from repro.privacy import Adversary
from repro.proxy import PProxConfig, build_pprox
from repro.proxy.costs import DEFAULT_COSTS
from repro.proxy.rekey import reencrypt_store
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry


def _stack(config=None, seed=81):
    rng = RngRegistry(seed=seed)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"))
    harness = HarnessService(loop=loop, rng=rng.stream("lrs"), frontend_count=3)
    harness.engine.trainer.llr_threshold = 0.0
    provider = FastCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
    service = build_pprox(
        loop, network, rng, config or PProxConfig(shuffle_size=0),
        lrs_picker=harness.pick_frontend, provider=provider,
    )
    client = PProxClient(loop=loop, network=network, provider=provider,
                         service=service, costs=DEFAULT_COSTS, rng=rng.stream("c"))
    return rng, loop, network, harness, service, client


FEEDBACK = [("a", "i1"), ("a", "i2"), ("b", "i1"), ("b", "i3"), ("c", "i2"), ("c", "i3")]


# -- re-encryption ---------------------------------------------------------


def _rekey_setup():
    rng, loop, network, harness, service, client = _stack()
    for user, item in FEEDBACK:
        client.post(user, item)
    loop.run()
    factory = KeyFactory(rsa_bits=1024, rng_int=rng.int_fn("rot"),
                         rng_bytes=rng.bytes_fn("rot-b"))
    return rng, loop, harness, service, client, factory


def test_rekey_preserves_event_count_and_structure():
    _, loop, harness, service, client, factory = _rekey_setup()
    old_keys = service.provisioner.layer_keys["IA"]
    before = [(e.user, e.item) for e in harness.engine.store.dump()]
    new_keys = service.rotate_layer("IA", factory)
    report = reencrypt_store(
        harness.engine.store, client.provider, old_keys, new_keys, layer="IA"
    )
    after = [(e.user, e.item) for e in harness.engine.store.dump()]
    assert report.events_processed == len(FEEDBACK)
    assert report.items_rekeyed == len(FEEDBACK)
    assert len(after) == len(before)
    # Users untouched, items re-pseudonymized.
    assert [u for u, _ in after] == [u for u, _ in before]
    assert all(a != b for (_, a), (_, b) in zip(after, before))


def test_rekey_keeps_the_service_functional():
    """After rotation + re-encryption, gets still decrypt correctly —
    the history is preserved (unlike the drop-database response)."""
    _, loop, harness, service, client, factory = _rekey_setup()
    old_keys = service.provisioner.layer_keys["IA"]
    new_keys = service.rotate_layer("IA", factory)
    reencrypt_store(harness.engine.store, client.provider, old_keys, new_keys, "IA")
    harness.train()
    results = []
    client.get("a", on_complete=results.append)
    loop.run()
    assert results[0].ok
    assert "i3" in results[0].items  # history survived the rotation


def test_rekey_ua_layer():
    _, loop, harness, service, client, factory = _rekey_setup()
    old_keys = service.provisioner.layer_keys["UA"]
    before_users = {e.user for e in harness.engine.store.dump()}
    new_keys = service.rotate_layer("UA", factory)
    report = reencrypt_store(
        harness.engine.store, client.provider, old_keys, new_keys, layer="UA"
    )
    after_users = {e.user for e in harness.engine.store.dump()}
    assert report.users_rekeyed == len(FEEDBACK)
    assert after_users.isdisjoint(before_users)
    # Pseudonym consistency preserved: same number of distinct users.
    assert len(after_users) == len(before_users)


def test_rekey_defeats_stolen_keys():
    """The point of the exercise: the adversary's stolen kIA no longer
    resolves anything in the re-encrypted store."""
    _, loop, harness, service, client, factory = _rekey_setup()
    stolen = service.provisioner.layer_keys["IA"]
    new_keys = service.rotate_layer("IA", factory)
    reencrypt_store(harness.engine.store, client.provider, stolen, new_keys, "IA")
    from repro.crypto.envelope import unb64

    for event in harness.engine.store.dump():
        with pytest.raises(Exception):
            client.provider.depseudonymize(stolen.symmetric_key, unb64(event.item))


def test_rekey_rejects_unknown_layer():
    _, loop, harness, service, client, factory = _rekey_setup()
    keys = service.provisioner.layer_keys["IA"]
    with pytest.raises(ValueError, match="layer"):
        reencrypt_store(harness.engine.store, client.provider, keys, keys, "XX")


# -- HTTP redirection ------------------------------------------------------


def _redirected_stack(seed=83):
    rng, loop, network, harness, service, client = _stack(
        PProxConfig(shuffle_size=2, shuffle_timeout=0.05), seed=seed
    )
    frontend = RedirectFrontend(
        loop=loop, network=network, rng=rng.stream("relay"),
        pick_entry=service.ua_balancer.pick,
    )
    client.service = RedirectedService(inner=service, frontend=frontend)
    return rng, loop, network, harness, service, client, frontend


def test_redirect_roundtrip_works():
    _, loop, _, harness, _, client, frontend = _redirected_stack()
    for user, item in FEEDBACK:
        client.post(user, item)
    loop.run()
    harness.train()
    results = []
    client.get("a", on_complete=results.append)
    loop.run()
    assert results[0].ok
    assert "i3" in results[0].items
    assert frontend.relayed == len(FEEDBACK) + 1


def test_redirect_hides_client_addresses_from_the_raas():
    """The adversary inside the RaaS cloud sees only the application
    frontend as a source — no per-user IP to anchor history attacks."""
    _, loop, network, harness, _, client, frontend = _redirected_stack()
    for user, item in FEEDBACK:
        client.post(user, item)
    loop.run()
    raas_inbound = [
        f for f in network.flows
        if f.destination.startswith("pprox-ua") and not f.source.startswith("pprox")
    ]
    assert raas_inbound
    assert {f.source for f in raas_inbound} == {frontend.address}
    assert not any(f.source.startswith("client") for f in raas_inbound)


def test_redirect_adds_latency():
    """The trade-off §6.3 names: privacy for latency."""
    _, loop, _, harness, _, client, _ = _redirected_stack()
    direct_rng, direct_loop, _, direct_harness, _, direct_client = _stack(
        PProxConfig(shuffle_size=2, shuffle_timeout=0.05), seed=83
    )

    relayed, direct = [], []
    client.post("u", "i", on_complete=relayed.append)
    loop.run()
    direct_client.post("u", "i", on_complete=direct.append)
    direct_loop.run()
    assert relayed[0].latency > direct[0].latency
