"""Multi-tenancy: shared proxy layers serving several applications."""

from __future__ import annotations

import pytest

from repro.client import PProxClient
from repro.crypto.keys import KeyFactory
from repro.crypto.provider import FastCryptoProvider
from repro.lrs.service import HarnessService
from repro.privacy import Adversary
from repro.proxy import PProxConfig
from repro.proxy.costs import DEFAULT_COSTS
from repro.sgx.provisioning import IA_SECRET_K, UA_SECRET_K
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry
from repro.tenancy import TenantDirectory, build_multi_tenant_pprox, tenant_slot


# RSA keygen dominates test time; share per-tenant key material across
# the module's tests (stacks stay otherwise independent).
_TENANT_KEY_CACHE: dict = {}


def _tenant_keys(name: str, factory: KeyFactory):
    if name not in _TENANT_KEY_CACHE:
        _TENANT_KEY_CACHE[name] = (factory.layer_keys(), factory.layer_keys())
    return _TENANT_KEY_CACHE[name]


def _multi_tenant_stack(config=None, tenant_names=("shop", "forum"), seed=71,
                        codec=None):
    rng = RngRegistry(seed=seed)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"))
    factory = KeyFactory(
        rsa_bits=1024, rng_int=rng.int_fn("keys"), rng_bytes=rng.bytes_fn("keys-b")
    )
    directory = TenantDirectory()
    harnesses = {}
    for name in tenant_names:
        harness = HarnessService(
            loop=loop, rng=rng.stream(f"lrs-{name}"), frontend_count=3,
            name=f"harness-{name}",
        )
        harness.engine.trainer.llr_threshold = 0.0
        harnesses[name] = harness
        ua_keys, ia_keys = _tenant_keys(name, factory)
        from repro.tenancy import TenantRecord

        directory.register(
            TenantRecord(name=name, ua_keys=ua_keys, ia_keys=ia_keys,
                         lrs_picker=harness.pick_frontend)
        )
    provider = FastCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
    service = build_multi_tenant_pprox(
        loop, network, rng,
        config or PProxConfig(shuffle_size=0),
        directory, provider=provider, codec=codec,
    )
    clients = {
        name: PProxClient(
            loop=loop, network=network, provider=provider, service=service,
            costs=DEFAULT_COSTS, rng=rng.stream(f"client-{name}"),
            material=directory.record(name).client_material, tenant=name,
            # Clients must speak the same wire as the proxies (and
            # share the codec *object* — identity checks rely on it).
            codec=service.runtime.codec,
        )
        for name in tenant_names
    }
    return loop, network, directory, harnesses, service, clients


def test_tenants_are_served_through_shared_layers():
    loop, _, _, harnesses, service, clients = _multi_tenant_stack()
    clients["shop"].post("alice", "lamp")
    clients["forum"].post("alice", "thread-9")
    loop.run()
    assert harnesses["shop"].engine.event_count == 1
    assert harnesses["forum"].engine.event_count == 1
    # Both flowed through the same UA instance.
    assert service.ua_instances[0].requests_processed == 2


def test_tenant_pseudonyms_are_isolated():
    """The same user id pseudonymizes differently per tenant: no
    cross-application profile linkage even inside the LRS stores."""
    loop, _, _, harnesses, _, clients = _multi_tenant_stack()
    clients["shop"].post("alice", "lamp")
    clients["forum"].post("alice", "lamp")
    loop.run()
    shop_user = harnesses["shop"].engine.store.dump()[0].user
    forum_user = harnesses["forum"].engine.store.dump()[0].user
    assert shop_user != forum_user


def test_tenant_get_roundtrip():
    loop, _, _, harnesses, _, clients = _multi_tenant_stack()
    for user, item in [("a", "i1"), ("a", "i2"), ("b", "i1"), ("b", "i3")]:
        clients["shop"].post(user, item)
    loop.run()
    harnesses["shop"].train()
    results = []
    clients["shop"].get("a", on_complete=results.append)
    loop.run()
    assert results[0].ok
    assert "i3" in results[0].items


def test_shared_buffer_aggregates_tenant_traffic():
    """The §6.3 motivation: one tenant alone cannot fill the buffer,
    but two tenants together can — no timer flush needed."""
    loop, _, _, harnesses, service, clients = _multi_tenant_stack(
        config=PProxConfig(shuffle_size=4, shuffle_timeout=60.0)
    )
    done = []
    clients["shop"].post("u1", "i1", on_complete=done.append)
    clients["shop"].post("u2", "i2", on_complete=done.append)
    clients["forum"].post("u1", "t1", on_complete=done.append)
    clients["forum"].post("u2", "t2", on_complete=done.append)
    loop.run()
    # All four completed without waiting for the 60 s timer.
    assert len(done) == 4
    assert all(call.latency < 1.0 for call in done)


def test_broken_shared_enclave_leaks_all_tenants():
    """The paper's warning: "secrets for multiple applications could
    be stolen at once"."""
    loop, _, directory, _, service, clients = _multi_tenant_stack()
    enclave = service.ua_instances[0].enclave
    enclave.mark_compromised()
    leaked = enclave.leak_secrets()
    for name in directory.names():
        assert tenant_slot(UA_SECRET_K, name) in leaked
        assert leaked[tenant_slot(UA_SECRET_K, name)] == directory.record(name).ua_keys.symmetric_key


def test_unknown_tenant_rejected():
    loop, _, directory, _, _, _ = _multi_tenant_stack()
    with pytest.raises(KeyError, match="unknown tenant"):
        directory.record("ghost")


def test_duplicate_tenant_rejected():
    _, _, directory, _, _, _ = _multi_tenant_stack()
    factory_record = directory.record("shop")
    with pytest.raises(ValueError, match="already registered"):
        directory.register(factory_record)


def test_tenant_label_is_public_on_the_wire():
    """Tenancy does not hide which application a client uses — only
    who/what inside it.  The label survives every hop."""
    loop, network, _, _, _, clients = _multi_tenant_stack()
    taps = []
    network.add_wiretap(lambda record, payload: taps.append(payload))
    clients["shop"].post("alice", "lamp")
    loop.run()
    requests = [p for p in taps if hasattr(p, "verb")]
    assert all(p.fields.get("tenant") == "shop" for p in requests if "tenant" in p.fields)


def _run_tenant_mix(codec):
    """One seeded multi-tenant traffic mix under *codec*; returns the
    semantic outcome (per-call results + trained recommendations) plus
    the adversary's wire observations for auditing."""
    loop, network, _, harnesses, _, clients = _multi_tenant_stack(codec=codec)
    adversary = Adversary()
    adversary.attach(network)
    outcomes = []
    for tenant, user, item in [
        ("shop", "alice", "lamp"), ("shop", "alice", "rug"),
        ("shop", "bob", "lamp"), ("shop", "bob", "desk"),
        ("forum", "alice", "thread-1"), ("forum", "carol", "thread-1"),
        ("forum", "carol", "thread-2"),
    ]:
        clients[tenant].post(
            user, item,
            on_complete=lambda call, t=tenant: outcomes.append((t, "post", call.ok)),
        )
    loop.run()
    for harness in harnesses.values():
        harness.train()
    clients["shop"].get(
        "alice",
        on_complete=lambda call: outcomes.append(
            ("shop", "get", call.ok, tuple(sorted(map(str, call.items or ()))))
        ),
    )
    clients["forum"].get(
        "carol",
        on_complete=lambda call: outcomes.append(
            ("forum", "get", call.ok, tuple(sorted(map(str, call.items or ()))))
        ),
    )
    loop.run()
    return outcomes, adversary.observations


@pytest.mark.parametrize("codec", [None, "json", "binary"])
def test_multi_tenant_redaction_audit_per_codec(codec):
    """No wire hop leaks a raw user or item id for either tenant, on
    any codec.  The tenant label itself is public by design."""
    outcomes, observations = _run_tenant_mix(codec)
    assert all(entry[2] for entry in outcomes)
    raw_identifiers = {"alice", "bob", "carol", "lamp", "rug", "desk",
                       "thread-1", "thread-2"}
    for obs in observations:
        fields = getattr(obs, "fields", None) or {}
        for key, value in fields.items():
            if key == "tenant":
                continue
            assert str(value) not in raw_identifiers, (
                f"raw identifier {value!r} on the wire under field {key!r}"
                f" ({obs.source}->{obs.destination}, codec={codec})"
            )


def test_multi_tenant_codec_parity():
    """The wire format must change bytes, never results: the same
    seeded mix yields identical per-tenant outcomes on the legacy
    object wire, the JSON codec and the binary codec."""
    legacy, _ = _run_tenant_mix(None)
    for codec in ("json", "binary"):
        outcomes, _ = _run_tenant_mix(codec)
        assert outcomes == legacy, f"codec={codec} diverged from legacy wire"


def test_cross_tenant_requests_cannot_be_decrypted_with_other_keys():
    """A request encrypted for tenant A fails under tenant B's keys."""
    loop, _, directory, _, _, clients = _multi_tenant_stack()
    provider = clients["shop"].provider
    from repro.crypto.envelope import encode_identifier, unb64

    shop = directory.record("shop")
    forum = directory.record("forum")
    blob = provider.asym_encrypt(shop.client_material.ua, encode_identifier("alice"))
    with pytest.raises(Exception):
        provider.asym_decrypt(forum.ua_keys, blob)
