"""Concurrent work queue: FIFO handoff between server and workers."""

from __future__ import annotations

from repro.simnet.queueing import ConcurrentQueue


def test_push_then_consume():
    queue = ConcurrentQueue()
    got = []
    queue.push("a")
    queue.request_item(got.append)
    assert got == ["a"]


def test_consumer_waits_for_item():
    queue = ConcurrentQueue()
    got = []
    queue.request_item(got.append)
    assert got == []
    assert queue.idle_consumers == 1
    queue.push("late")
    assert got == ["late"]
    assert queue.idle_consumers == 0


def test_fifo_across_items():
    queue = ConcurrentQueue()
    got = []
    queue.push_all(["a", "b", "c"])
    for _ in range(3):
        queue.request_item(got.append)
    assert got == ["a", "b", "c"]


def test_fifo_across_consumers():
    queue = ConcurrentQueue()
    got = []
    queue.request_item(lambda item: got.append(("first", item)))
    queue.request_item(lambda item: got.append(("second", item)))
    queue.push("x")
    queue.push("y")
    assert got == [("first", "x"), ("second", "y")]


def test_depth_and_counters():
    queue = ConcurrentQueue()
    queue.push_all([1, 2, 3])
    assert queue.depth == 3
    assert queue.enqueued == 3
    assert queue.max_depth == 3
    queue.request_item(lambda _: None)
    assert queue.depth == 2


def test_rng_registry_streams_are_independent():
    from repro.simnet.rng import RngRegistry

    registry = RngRegistry(seed=1)
    a1 = registry.stream("a").random()
    # Drawing from stream b must not perturb stream a's continuation.
    registry.stream("b").random()
    registry2 = RngRegistry(seed=1)
    b1 = registry2.stream("a").random()
    registry2.stream("a").random()  # second draw from a
    assert a1 == b1


def test_rng_registry_is_seed_deterministic():
    from repro.simnet.rng import RngRegistry

    one = RngRegistry(seed=42).stream("x").random()
    two = RngRegistry(seed=42).stream("x").random()
    assert one == two


def test_rng_registry_bytes_and_int_functions():
    from repro.simnet.rng import RngRegistry

    registry = RngRegistry(seed=3)
    assert len(registry.bytes_fn("b")(16)) == 16
    assert 0 <= registry.int_fn("i")(10) < 10
