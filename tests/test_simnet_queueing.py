"""Concurrent work queue: FIFO handoff between server and workers."""

from __future__ import annotations

from repro.simnet.queueing import ConcurrentQueue


def test_push_then_consume():
    queue = ConcurrentQueue()
    got = []
    queue.push("a")
    queue.request_item(got.append)
    assert got == ["a"]


def test_consumer_waits_for_item():
    queue = ConcurrentQueue()
    got = []
    queue.request_item(got.append)
    assert got == []
    assert queue.idle_consumers == 1
    queue.push("late")
    assert got == ["late"]
    assert queue.idle_consumers == 0


def test_fifo_across_items():
    queue = ConcurrentQueue()
    got = []
    queue.push_all(["a", "b", "c"])
    for _ in range(3):
        queue.request_item(got.append)
    assert got == ["a", "b", "c"]


def test_fifo_across_consumers():
    queue = ConcurrentQueue()
    got = []
    queue.request_item(lambda item: got.append(("first", item)))
    queue.request_item(lambda item: got.append(("second", item)))
    queue.push("x")
    queue.push("y")
    assert got == [("first", "x"), ("second", "y")]


def test_depth_and_counters():
    queue = ConcurrentQueue()
    queue.push_all([1, 2, 3])
    assert queue.depth == 3
    assert queue.enqueued == 3
    assert queue.max_depth == 3
    queue.request_item(lambda _: None)
    assert queue.depth == 2


def test_rng_registry_streams_are_independent():
    from repro.simnet.rng import RngRegistry

    registry = RngRegistry(seed=1)
    a1 = registry.stream("a").random()
    # Drawing from stream b must not perturb stream a's continuation.
    registry.stream("b").random()
    registry2 = RngRegistry(seed=1)
    b1 = registry2.stream("a").random()
    registry2.stream("a").random()  # second draw from a
    assert a1 == b1


def test_rng_registry_is_seed_deterministic():
    from repro.simnet.rng import RngRegistry

    one = RngRegistry(seed=42).stream("x").random()
    two = RngRegistry(seed=42).stream("x").random()
    assert one == two


def test_rng_registry_bytes_and_int_functions():
    from repro.simnet.rng import RngRegistry

    registry = RngRegistry(seed=3)
    assert len(registry.bytes_fn("b")(16)) == 16
    assert 0 <= registry.int_fn("i")(10) < 10


# --- bounded queues + shed policies (overload protection) -------------


def test_legacy_default_is_explicitly_unbounded():
    queue = ConcurrentQueue()
    assert queue.unbounded
    for item in range(1000):
        assert queue.push(item)
    assert queue.depth == 1000
    assert queue.shed == 0


def test_tail_drop_refuses_newcomer_at_capacity():
    from repro.simnet.queueing import SHED_TAIL, TailDropPolicy

    queue = ConcurrentQueue(capacity=2, shed_policy=TailDropPolicy())
    assert not queue.unbounded
    assert queue.push("a")
    assert queue.push("b")
    assert not queue.push("c")
    assert queue.depth == 2
    assert queue.shed == 1
    assert queue.shed_by_reason == {SHED_TAIL: 1}
    assert queue.pop() == "a"  # survivors keep FIFO order


def test_capacity_without_policy_defaults_to_tail_drop():
    from repro.simnet.queueing import SHED_TAIL

    queue = ConcurrentQueue(capacity=1)
    assert queue.push("a")
    assert not queue.push("b")
    assert queue.shed_by_reason == {SHED_TAIL: 1}


def test_front_drop_evicts_oldest_to_admit_newcomer():
    from repro.simnet.queueing import SHED_FRONT, FrontDropPolicy

    queue = ConcurrentQueue(capacity=2, shed_policy=FrontDropPolicy())
    queue.push("a")
    queue.push("b")
    assert queue.push("c")  # admitted: "a" is evicted instead
    assert queue.shed_by_reason == {SHED_FRONT: 1}
    assert [queue.pop(), queue.pop()] == ["b", "c"]


def test_on_shed_hook_sees_item_and_reason():
    from repro.simnet.queueing import SHED_TAIL, TailDropPolicy

    queue = ConcurrentQueue(capacity=1, shed_policy=TailDropPolicy())
    shed = []
    queue.on_shed = lambda item, reason: shed.append((item, reason))
    queue.push("keep")
    queue.push("drop")
    assert shed == [("drop", SHED_TAIL)]


def test_codel_drops_at_dequeue_after_sustained_sojourn():
    from repro.simnet.queueing import SHED_SOJOURN, CoDelPolicy

    now = [0.0]
    queue = ConcurrentQueue(
        capacity=10,
        shed_policy=CoDelPolicy(target=0.05, interval=0.1),
        clock=lambda: now[0],
    )
    queue.push_all(["a", "b", "c"])
    now[0] = 0.2  # every entry's sojourn is now far above target
    # First dequeue only *starts* the above-target streak.
    assert queue.pop() == "a"
    now[0] = 0.4  # streak (started at 0.2) has exceeded the interval:
    # dropping continues until sojourn falls back under target.
    assert queue.pop() is None
    assert queue.shed_by_reason == {SHED_SOJOURN: 2}
    queue.push("fresh")
    assert queue.pop() == "fresh"  # sub-target sojourn clears the streak


def test_codel_streak_resets_when_sojourn_recovers():
    from repro.simnet.queueing import CoDelPolicy

    now = [0.0]
    queue = ConcurrentQueue(
        capacity=10,
        shed_policy=CoDelPolicy(target=0.05, interval=0.1),
        clock=lambda: now[0],
    )
    queue.push("slow")
    now[0] = 0.2
    assert queue.pop() == "slow"  # starts the streak
    queue.push("fast")
    assert queue.pop() == "fast"  # sojourn 0 < target: streak cleared
    queue.push("slow-again")
    now[0] = 0.4
    assert queue.pop() == "slow-again"  # new streak, first offender passes
    assert queue.shed == 0


def test_on_pop_reports_sojourn_seconds():
    now = [1.0]
    queue = ConcurrentQueue(clock=lambda: now[0])
    sojourns = []
    queue.on_pop = sojourns.append
    queue.push("x")
    now[0] = 1.25
    assert queue.pop() == "x"
    assert sojourns == [0.25]


def test_oldest_sojourn_tracks_head_entry():
    now = [0.0]
    queue = ConcurrentQueue(clock=lambda: now[0])
    assert queue.oldest_sojourn() == 0.0
    queue.push("x")
    now[0] = 0.5
    assert queue.oldest_sojourn() == 0.5


def test_make_shed_policy_by_name_and_unknown():
    import pytest

    from repro.simnet.queueing import make_shed_policy

    assert make_shed_policy("tail-drop").name == "tail-drop"
    assert make_shed_policy("front-drop").name == "front-drop"
    codel = make_shed_policy("codel", target=0.01, interval=0.02)
    assert codel.name == "codel" and codel.target == 0.01
    with pytest.raises(ValueError, match="unknown shed policy"):
        make_shed_policy("red")
