"""The million-user scale sweep: completeness, parity, determinism."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.scale import ScaleConfig, run_scale_sweep

#: Miniature sweep: the full pipeline shape at test-suite cost.
TINY = ScaleConfig(users=50_000, pairs_sweep=(1, 2), rate_per_pair=10_000.0,
                   duration=1.0, trim=0.25)


@pytest.fixture(scope="module")
def sweep():
    artifact, meta = run_scale_sweep(TINY)
    return artifact, meta


def test_every_request_completes_within_deadline(sweep):
    artifact, _ = sweep
    for point in artifact["points"]:
        assert point["issued"] > 0
        assert point["completed"] == point["issued"]
        assert point["expired"] == 0


def test_throughput_scales_with_pairs(sweep):
    artifact, _ = sweep
    first, second = artifact["points"]
    assert second["offered_rps"] == 2 * first["offered_rps"]
    assert second["completed"] >= 1.9 * first["completed"]
    # Latency must not collapse when the pool doubles (Figure-8 claim:
    # capacity scales with proxy pairs).
    assert second["latency"]["median"] < 2 * first["latency"]["median"]


def test_population_and_shuffling_are_exercised(sweep):
    artifact, _ = sweep
    for point in artifact["points"]:
        assert 0 < point["unique_users"] <= TINY.users
        assert point["shuffle_flushes"] > 0
        assert 1 <= point["min_flush_fill"] <= TINY.shuffle_size


def test_latency_summary_is_sane(sweep):
    artifact, _ = sweep
    for point in artifact["points"]:
        latency = point["latency"]
        assert 0 < latency["p25"] <= latency["median"] <= latency["p75"] <= latency["max"]
        assert latency["median"] < TINY.deadline
        assert latency["window_count"] > 0


def test_meta_reports_wall_clock_numbers(sweep):
    _, meta = sweep
    assert meta["engine"] == "calendar"
    assert meta["total_events"] > 0
    for point_meta in meta["points"]:
        assert point_meta["events_per_second"] > 0
        assert point_meta["peak_pending"] > 0


def test_artifact_is_byte_identical_across_engines(sweep):
    calendar_artifact, _ = sweep
    reference_artifact, reference_meta = run_scale_sweep(
        dataclasses.replace(TINY, engine="reference")
    )
    assert reference_meta["engine"] == "reference"
    assert (
        json.dumps(calendar_artifact, sort_keys=True)
        == json.dumps(reference_artifact, sort_keys=True)
    )


def test_same_seed_runs_are_identical(sweep):
    artifact, _ = sweep
    again, _ = run_scale_sweep(TINY)
    assert json.dumps(artifact, sort_keys=True) == json.dumps(again, sort_keys=True)


def test_seed_changes_the_traffic():
    artifact, _ = run_scale_sweep(dataclasses.replace(TINY, pairs_sweep=(1,), seed=1))
    other, _ = run_scale_sweep(dataclasses.replace(TINY, pairs_sweep=(1,), seed=2))
    assert artifact["points"][0]["latency"] != other["points"][0]["latency"]
