"""Causal-trace wire field tests: fixed-width codec, severing at the
UA boundary, the wire auditor, and the redaction boundary's trace-id
identifier class."""

import pytest

from repro.obs.causal import CausalTracer
from repro.obs.tracewire import (
    TRACE_FIELD,
    TRACE_PREFIX,
    TRACE_WIDTH,
    decode_trace,
    encode_trace_id,
    looks_like_trace_id,
    stamp_trace,
    strip_trace,
)
from repro.privacy.adversary import ObservedMessage
from repro.privacy.wire import trace_field_exposures
from repro.rest.messages import Request
from repro.telemetry import EventLog, RedactionPolicy


def make_request(**fields):
    return Request(verb="GET", fields=fields, request_id=1, client_address="client-user-1")


# -- codec ---------------------------------------------------------------


def test_encode_is_fixed_width_for_any_serial():
    for serial in (0, 1, 7, 10**6, 16**13 - 1, 16**13):
        encoded = encode_trace_id(serial)
        assert len(encoded) == TRACE_WIDTH
        assert encoded.startswith(TRACE_PREFIX)
        assert looks_like_trace_id(encoded)


def test_encode_rejects_negative_serials():
    with pytest.raises(ValueError):
        encode_trace_id(-1)


def test_looks_like_trace_id_rejects_malformed_values():
    good = encode_trace_id(3)
    assert looks_like_trace_id(good)
    assert not looks_like_trace_id(good + "0")  # too wide
    assert not looks_like_trace_id(good[:-1])  # too narrow
    assert not looks_like_trace_id(good[:-1] + "G")  # non-hex digit
    assert not looks_like_trace_id("xx" + good[2:])  # wrong prefix
    assert not looks_like_trace_id(None)
    assert not looks_like_trace_id(12345)


def test_stamp_and_decode_round_trip():
    trace_id = encode_trace_id(42)
    stamped = stamp_trace(make_request(user="sealed"), trace_id)
    assert stamped.fields[TRACE_FIELD] == trace_id
    assert decode_trace(stamped) == trace_id
    assert decode_trace({TRACE_FIELD: trace_id}) == trace_id


def test_stamp_rejects_malformed_trace_ids():
    with pytest.raises(ValueError):
        stamp_trace(make_request(), "not-a-trace-id")


def test_decode_ignores_malformed_wire_values():
    assert decode_trace(make_request(trace="garbage")) is None
    assert decode_trace(make_request()) is None


def test_strip_trace_removes_the_field_and_returns_the_id():
    trace_id = encode_trace_id(9)
    stamped = stamp_trace(make_request(user="sealed"), trace_id)
    clean, recovered = strip_trace(stamped)
    assert recovered == trace_id
    assert TRACE_FIELD not in clean.fields
    assert clean.fields["user"] == "sealed"
    # Untraced requests pass through unchanged.
    untouched, recovered = strip_trace(make_request(user="sealed"))
    assert recovered is None
    assert untouched.fields == {"user": "sealed"}


# -- causal tracer -------------------------------------------------------


def test_severing_invariant_on_a_clean_exchange():
    clock = {"now": 0.0}
    log = EventLog(clock=lambda: clock["now"])
    tracer = CausalTracer(clock=lambda: clock["now"], event_log=log)

    trace_id = tracer.start_call("get")
    request = tracer.stamp(make_request(user="sealed"), trace_id)
    # UA front door: strip, then tell the tracer the id is gone.
    _, recovered = strip_trace(request)
    tracer.absorb("pprox-ua-0")
    assert recovered == trace_id
    clock["now"] = 0.5
    tracer.batch_flush("pprox-ua-0", size=4, timer_fired=False)
    tracer.settle_call(trace_id, ok=True)

    assert tracer.severed_cleanly()
    report = tracer.link_report()
    assert report["attempts_stamped"] == report["traces_severed"] == 1
    assert report["batch_spans"] == 1
    assert report["fan_in_total"] == 1
    # Retried attempt that never arrives breaks the clean-severing claim.
    second = tracer.start_call("get")
    tracer.stamp(make_request(), second)
    assert not tracer.severed_cleanly()


def test_batch_spans_carry_only_aggregates():
    clock = {"now": 1.0}
    log = EventLog(clock=lambda: clock["now"])
    tracer = CausalTracer(clock=lambda: clock["now"], event_log=log)
    for _ in range(3):
        trace_id = tracer.start_call("get")
        tracer.stamp(make_request(), trace_id)
        tracer.absorb("pprox-ua-1")
    tracer.batch_flush("pprox-ua-1", size=4, timer_fired=True)

    [span] = log.of_kind("bspan")
    assert span.payload["fan_in"] == 3
    assert span.payload["size"] == 4
    assert span.payload["timer_fired"] is True
    # No trace id (nor anything shaped like one) in the batch span.
    assert not any(looks_like_trace_id(v) for v in span.payload.values())
    assert TRACE_FIELD not in span.payload


def test_client_spans_record_attempts_and_duration():
    clock = {"now": 2.0}
    log = EventLog(clock=lambda: clock["now"])
    tracer = CausalTracer(clock=lambda: clock["now"], event_log=log)
    trace_id = tracer.start_call("get")
    tracer.stamp(make_request(), trace_id)
    tracer.stamp(make_request(), trace_id)  # one retry
    clock["now"] = 2.75
    tracer.settle_call(trace_id, ok=False)
    [span] = log.of_kind("cspan")
    assert span.payload["attempts"] == 2
    assert span.payload["duration"] == pytest.approx(0.75)
    assert span.payload["ok"] is False
    # Settling an unknown id is a no-op, not an error.
    tracer.settle_call("tw:ffffffffffffffff"[:TRACE_WIDTH], ok=True)
    assert tracer.calls_settled == 1


# -- wire auditor --------------------------------------------------------


def observation(source, destination, fields):
    return ObservedMessage(
        time=1.0,
        source=source,
        destination=destination,
        size_bytes=128,
        kind="request",
        verb="GET",
        fields=fields,
    )


def test_trace_exposures_allows_only_the_client_ua_hop():
    trace_id = encode_trace_id(5)
    clean = [
        observation("client-user-1", "pprox-ua-0", {TRACE_FIELD: trace_id}),
        observation("pprox-ua-0", "pprox-ia-0", {"user": "sealed"}),
    ]
    assert trace_field_exposures(clean) == []


def test_trace_exposures_flags_ids_past_the_ua():
    trace_id = encode_trace_id(5)
    leaked = [observation("pprox-ua-0", "pprox-ia-0", {TRACE_FIELD: trace_id})]
    [finding] = trace_field_exposures(leaked)
    assert "ua->ia" in finding and TRACE_FIELD in finding


def test_trace_exposures_catches_ids_smuggled_under_other_names():
    # A component that copied the id into a differently-named field is
    # still caught by the value-shape check.
    trace_id = encode_trace_id(6)
    smuggled = [observation("pprox-ia-0", "lrs-stub", {"note": trace_id})]
    [finding] = trace_field_exposures(smuggled)
    assert "ia->lrs" in finding


# -- redaction boundary --------------------------------------------------


def test_redaction_scrubs_trace_ids_on_proxy_roles():
    policy = RedactionPolicy()
    trace_id = encode_trace_id(8)
    for role in ("ua", "ia", "lrs"):
        clean, violations = policy.scrub(role, {"trace": trace_id, "echo": trace_id})
        assert clean["trace"] == "[redacted:trace-id]"  # key-based
        assert clean["echo"] == "[redacted:trace-id]"  # marker-based
        assert {v.kind for v in violations} == {"trace-id"}


def test_redaction_leaves_client_trace_ids_alone():
    # The client legitimately knows its own trace ids (cspan events).
    policy = RedactionPolicy()
    trace_id = encode_trace_id(8)
    clean, violations = policy.scrub("client", {"trace": trace_id})
    assert clean == {"trace": trace_id}
    assert violations == []
