"""Latency-breakdown probe: stage accounting from wire events."""

from __future__ import annotations

import pytest

from repro.client import PProxClient
from repro.crypto.provider import FastCryptoProvider
from repro.lrs.stub import StubLrs, make_pseudonymous_payload
from repro.proxy import PProxConfig, build_pprox
from repro.proxy.costs import DEFAULT_COSTS
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry
from repro.simnet.tracing import STAGES, BreakdownProbe


def _traced_stack(config: PProxConfig, seed=91):
    rng = RngRegistry(seed=seed)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"), record_flows=False)
    stub = StubLrs(loop=loop, rng=rng.stream("stub"))
    provider = FastCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
    service = build_pprox(loop, network, rng, config, lrs_picker=lambda: stub,
                          provider=provider)
    if config.encryption and config.item_pseudonymization:
        stub.items = make_pseudonymous_payload(
            provider, service.provisioner.layer_keys["IA"].symmetric_key
        )
    probe = BreakdownProbe()
    probe.attach(network)
    client = PProxClient(loop=loop, network=network, provider=provider,
                         service=service, costs=DEFAULT_COSTS, rng=rng.stream("c"))
    return loop, client, probe


def test_probe_collects_complete_traces():
    loop, client, probe = _traced_stack(PProxConfig(shuffle_size=0))
    for index in range(5):
        client.get(f"user-{index}")
    loop.run()
    traces = probe.complete_traces()
    assert len(traces) == 5
    for durations in traces:
        assert set(durations) == set(STAGES)
        assert all(value >= 0 for value in durations.values())


def test_stage_sum_is_close_to_total_latency():
    loop, client, probe = _traced_stack(PProxConfig(shuffle_size=0))
    calls = []
    client.get("user", on_complete=calls.append)
    loop.run()
    durations = probe.complete_traces()[0]
    stage_sum = sum(durations.values())
    # Stage sum excludes only the first/last network hop + client work.
    assert stage_sum <= calls[0].latency
    assert stage_sum > 0.5 * calls[0].latency


def test_shuffle_buffers_show_in_the_right_stages():
    """A lone request under S=4 waits on both shuffle timers: the
    ua_inbound and ia_outbound stages absorb ~one timeout each."""
    loop, client, probe = _traced_stack(
        PProxConfig(shuffle_size=4, shuffle_timeout=0.2)
    )
    client.get("solo")
    loop.run()
    durations = probe.complete_traces()[0]
    assert durations["ua_inbound"] >= 0.2
    assert durations["ia_outbound"] >= 0.2
    assert durations["ia_inbound"] < 0.05
    assert durations["ua_outbound"] < 0.05


def test_aggregate_and_render():
    loop, client, probe = _traced_stack(PProxConfig(shuffle_size=0))
    for index in range(10):
        client.get(f"user-{index}")
    loop.run()
    aggregated = probe.aggregate()
    assert set(aggregated) == set(STAGES)
    text = probe.render()
    assert "ua_inbound" in text and "total" in text


def test_aggregate_without_traces_raises():
    with pytest.raises(ValueError, match="no complete traces"):
        BreakdownProbe().aggregate()
