"""Offline quality evaluation and the pseudonymization-invariance claim."""

from __future__ import annotations

import pytest

from repro.lrs.baselines import ItemKnnRecommender, PopularityRecommender
from repro.lrs.cco import CcoTrainer
from repro.lrs.evaluation import evaluate_recommender, leave_latest_out_split
from repro.workload.movielens import SyntheticMovieLens


@pytest.fixture(scope="module")
def trace():
    return SyntheticMovieLens(seed=3, scale=0.02)


@pytest.fixture(scope="module")
def split(trace):
    return leave_latest_out_split(trace.events, holdout=1, min_history=4)


def test_split_withholds_one_item_per_eligible_user(trace, split):
    train, test = split
    assert len(train) + sum(len(v) for v in test.values()) == len(trace.events)
    assert all(len(held) == 1 for held in test.values())
    # Held-out items never appear in the user's training events.
    train_pairs = set(train)
    for user, held in test.items():
        for item in held:
            assert (user, item) not in train_pairs


def test_split_skips_short_histories():
    events = [("tiny", "i1"), ("tiny", "i2")]
    train, test = leave_latest_out_split(events, holdout=1, min_history=4)
    assert test == {}
    assert train == events


def _cco_recommend(train):
    model = CcoTrainer(llr_threshold=0.0).train(train)
    return lambda history, n: model.recommend(history, n=n)


def test_cco_beats_random_chance(trace, split):
    train, test = split
    result = evaluate_recommender(_cco_recommend(train), train, test, k=10)
    assert result.users_evaluated > 20
    # Random chance of hitting one held-out item in 10 picks from the
    # catalog is ~10/|catalog|; CCO must beat it by a wide margin.
    chance = 10 / len({item for _, item in train})
    assert result.recall_at_k > 3 * chance


def test_cco_beats_popularity_baseline(trace, split):
    train, test = split
    cco = evaluate_recommender(_cco_recommend(train), train, test, k=10)
    popularity = PopularityRecommender()
    popularity.fit(train)
    pop = evaluate_recommender(
        lambda history, n: popularity.recommend(history, n=n), train, test, k=10
    )
    # With genre-clustered tastes, personalization clearly wins.
    assert cco.ndcg_at_k > pop.ndcg_at_k
    assert cco.recall_at_k > pop.recall_at_k
    assert cco.coverage > pop.coverage


def test_item_knn_is_competitive(trace, split):
    train, test = split
    knn = ItemKnnRecommender()
    knn.fit(train)
    result = evaluate_recommender(
        lambda history, n: knn.recommend(history, n=n), train, test, k=10
    )
    assert result.recall_at_k > 0


def test_metrics_are_bounded(trace, split):
    train, test = split
    result = evaluate_recommender(_cco_recommend(train), train, test, k=10)
    assert 0.0 <= result.precision_at_k <= 1.0
    assert 0.0 <= result.recall_at_k <= 1.0
    assert 0.0 <= result.ndcg_at_k <= 1.0
    assert 0.0 <= result.coverage <= 1.0
    assert "P@10" in result.row()


def test_quality_is_invariant_under_pseudonymization(trace, split):
    """The paper's transparency claim, quantified: renaming every user
    and item bijectively (what PProx's deterministic encryption does)
    leaves all offline metrics exactly unchanged."""
    train, test = split

    def rename_user(user: str) -> str:
        return f"pseudo-u::{user[::-1]}"

    def rename_item(item: str) -> str:
        return f"pseudo-i::{item[::-1]}"

    pseudo_train = [(rename_user(u), rename_item(i)) for u, i in train]
    pseudo_test = {
        rename_user(u): [rename_item(i) for i in held] for u, held in test.items()
    }

    plain = evaluate_recommender(_cco_recommend(train), train, test, k=10)
    pseudo = evaluate_recommender(
        _cco_recommend(pseudo_train), pseudo_train, pseudo_test, k=10
    )
    assert pseudo.users_evaluated == plain.users_evaluated
    # Not bit-exact: score ties break lexicographically, and renaming
    # permutes lexicographic order.  (The same caveat applies to the
    # real system when the LRS tie-breaks on identifier order.)  The
    # metrics agree to well under a percent.
    assert pseudo.precision_at_k == pytest.approx(plain.precision_at_k, abs=0.01)
    assert pseudo.recall_at_k == pytest.approx(plain.recall_at_k, abs=0.02)
    assert pseudo.ndcg_at_k == pytest.approx(plain.ndcg_at_k, abs=0.02)
    assert pseudo.coverage == pytest.approx(plain.coverage, abs=0.02)


def test_empty_test_set_yields_zero_metrics():
    result = evaluate_recommender(lambda h, n: [], [("u", "i")], {}, k=5)
    assert result.users_evaluated == 0
    assert result.precision_at_k == 0.0
