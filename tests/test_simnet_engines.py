"""Calendar engine vs seed reference heap: equivalence + introspection.

The calendar-queue :class:`EventLoop` must be observationally
indistinguishable from the seed implementation preserved as
:class:`ReferenceEventLoop`: identical event order, identical clocks,
identical counters, for any interleaving of schedule / post / cancel /
step / run_until — including callbacks that schedule into the window
currently being drained and cancel not-yet-fired events.  Hypothesis
drives both engines through random interleavings and compares the full
observable trace.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.clock import (
    DEFAULT_SLOT_WIDTH,
    ENGINES,
    CalendarEventLoop,
    EventHandle,
    EventLoop,
    ReferenceEventLoop,
    SimulationError,
    make_event_loop,
)

BOTH_ENGINES = pytest.mark.parametrize("engine_cls", [EventLoop, ReferenceEventLoop],
                                       ids=["calendar", "reference"])


# ---------------------------------------------------------------------------
# Property: identical observable behaviour under random interleavings.
# ---------------------------------------------------------------------------

_DELAYS = st.floats(min_value=0.0, max_value=0.01, allow_nan=False, allow_infinity=False)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), _DELAYS, st.booleans()),
        st.tuples(st.just("post"), _DELAYS),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=63)),
        st.tuples(st.just("run_until"), _DELAYS),
        st.tuples(st.just("step"), st.none()),
        st.tuples(st.just("run_some"), st.integers(min_value=1, max_value=16)),
    ),
    min_size=1,
    max_size=60,
)


def _drive(engine_cls, ops):
    """Apply *ops* to a fresh engine; return the observable trace."""
    loop = engine_cls()
    log = []
    handles = []
    counter = [0]

    def make_callback(spawn_child):
        tag = counter[0]
        counter[0] += 1

        def callback():
            log.append((tag, round(loop.now, 9)))
            if spawn_child:
                # Schedule from inside a callback — possibly into the
                # slot currently being drained — and cancel an older
                # pending handle, the churn pattern proxies generate.
                handles.append(loop.schedule(0.0003, make_callback(False)))
                if handles:
                    handles[len(log) % len(handles)].cancel()

        return callback

    for op in ops:
        kind = op[0]
        try:
            if kind == "schedule":
                handles.append(loop.schedule(op[1], make_callback(op[2])))
            elif kind == "post":
                loop.post(op[1], make_callback(False))
            elif kind == "cancel":
                if handles:
                    handles[op[1] % len(handles)].cancel()
            elif kind == "run_until":
                loop.run_until(loop.now + op[1])
            elif kind == "step":
                loop.step()
            elif kind == "run_some":
                loop.run(max_events=op[1])
        except SimulationError as error:
            log.append(("error", str(error)))
    loop.run(max_events=100_000)
    return {
        "log": log,
        "now": round(loop.now, 9),
        "events_processed": loop.events_processed,
        "pending": loop.pending,
    }


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_engines_trace_identically(ops):
    assert _drive(EventLoop, ops) == _drive(ReferenceEventLoop, ops)


@settings(max_examples=50, deadline=None)
@given(
    ops=_OPS,
    slot_width=st.sampled_from([0.00005, DEFAULT_SLOT_WIDTH, 0.01, 1.0]),
)
def test_slot_width_never_changes_semantics(ops, slot_width):
    """Any slot width replays the same trace (it only shifts cost)."""
    wide = _drive(lambda: EventLoop(slot_width=slot_width), ops)
    assert wide == _drive(ReferenceEventLoop, ops)


# ---------------------------------------------------------------------------
# Determinism contract details, on both engines.
# ---------------------------------------------------------------------------

@BOTH_ENGINES
def test_post_and_schedule_share_fifo_order(engine_cls):
    loop = engine_cls()
    fired = []
    loop.schedule(1.0, lambda: fired.append("a"))
    loop.post(1.0, lambda: fired.append("b"))
    loop.schedule(1.0, lambda: fired.append("c"))
    loop.post_at(1.0, lambda: fired.append("d"))
    loop.run()
    assert fired == ["a", "b", "c", "d"]


@BOTH_ENGINES
def test_run_until_ignores_cancelled_head_past_boundary(engine_cls):
    """A cancelled head must not drag a later live event over the limit.

    Regression for a seed bug: ``run_until`` peeked the head timestamp
    to decide "one more step", but when that head was cancelled,
    ``step`` skipped it and executed the next live event even if it
    lay beyond the boundary.
    """
    loop = engine_cls()
    fired = []
    doomed = loop.schedule(1.0, lambda: fired.append("cancelled"))
    loop.schedule(5.0, lambda: fired.append("late"))
    doomed.cancel()
    loop.run_until(2.0)
    assert fired == []
    assert loop.now == 2.0
    loop.run_until(5.0)
    assert fired == ["late"]


@BOTH_ENGINES
def test_schedule_into_active_window_preserves_order(engine_cls):
    """Events scheduled mid-drain land in exact (time, seq) order."""
    loop = engine_cls()
    fired = []

    def first():
        fired.append("first")
        # Lands in the same slot/window currently being drained.
        loop.schedule(0.0, lambda: fired.append("child-now"))
        loop.post(0.00001, lambda: fired.append("child-soon"))

    loop.schedule(1.0, first)
    loop.schedule(1.0, lambda: fired.append("second"))
    loop.run()
    assert fired == ["first", "second", "child-now", "child-soon"]


@BOTH_ENGINES
def test_run_budget_error_reports_events_processed(engine_cls):
    loop = engine_cls()

    def rearm():
        loop.post(0.001, rearm)

    loop.post(0.0, rearm)
    with pytest.raises(SimulationError) as excinfo:
        loop.run(max_events=25)
    message = str(excinfo.value)
    assert "25" in message  # the budget
    assert "events processed" in message  # satellite: include progress


# ---------------------------------------------------------------------------
# Live-count bookkeeping, compaction, and introspection.
# ---------------------------------------------------------------------------

@BOTH_ENGINES
def test_pending_excludes_cancelled_events(engine_cls):
    loop = engine_cls()
    keep = loop.schedule(1.0, lambda: None)
    doomed = [loop.schedule(2.0, lambda: None) for _ in range(5)]
    assert loop.pending == 6
    for handle in doomed:
        handle.cancel()
    assert loop.pending == 1
    stats = loop.queue_stats()
    assert stats["live"] == 1
    assert stats["cancels_total"] == 5
    assert keep.cancelled is False


@BOTH_ENGINES
def test_double_cancel_counts_once(engine_cls):
    loop = engine_cls()
    handle = loop.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert loop.pending == 0
    assert loop.queue_stats()["cancels_total"] == 1


def test_compaction_sweeps_cancelled_entries():
    loop = EventLoop()
    keep = loop.schedule(100.0, lambda: None)
    doomed = [loop.schedule(50.0 + i * 0.001, lambda: None) for i in range(600)]
    for handle in doomed:
        handle.cancel()
    stats = loop.queue_stats()
    # Cancelled (600) outnumbers live (1) and exceeds the 256 floor, so
    # sweeps ran and only the post-last-sweep stragglers stay resident.
    assert stats["compactions"] >= 1
    assert stats["live"] == 1
    assert stats["cancelled"] < 256
    assert stats["queued"] == stats["live"] + stats["cancelled"]
    keep.cancel()
    loop.run()
    assert loop.events_processed == 0


def test_queue_stats_exposes_engine_and_depth():
    calendar = EventLoop()
    reference = ReferenceEventLoop()
    for loop in (calendar, reference):
        for index in range(10):
            loop.schedule(1.0 + index, lambda: None)
    assert calendar.queue_stats()["engine"] == "calendar"
    assert reference.queue_stats()["engine"] == "reference-heap"
    assert calendar.queue_stats()["peak_pending"] == 10
    assert calendar.queue_stats()["slots"] >= 1


def test_event_handle_is_slotted():
    assert not hasattr(EventHandle(1.0, 0, lambda: None), "__dict__")


def test_make_event_loop_selects_engines():
    assert isinstance(make_event_loop("calendar"), CalendarEventLoop)
    assert isinstance(make_event_loop("reference"), ReferenceEventLoop)
    assert isinstance(make_event_loop(), EventLoop)
    assert set(ENGINES) == {"calendar", "reference"}
    with pytest.raises(ValueError):
        make_event_loop("btree")


def test_calendar_slot_width_validation():
    with pytest.raises(SimulationError):
        EventLoop(slot_width=0.0)
