"""Event loop: ordering, cancellation, time semantics."""

from __future__ import annotations

import pytest

from repro.simnet.clock import EventLoop, SimulationError


def test_starts_at_time_zero():
    assert EventLoop().now == 0.0


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(2.0, lambda: fired.append("late"))
    loop.schedule(1.0, lambda: fired.append("early"))
    loop.run()
    assert fired == ["early", "late"]


def test_same_time_events_fire_fifo():
    loop = EventLoop()
    fired = []
    for index in range(5):
        loop.schedule(1.0, lambda i=index: fired.append(i))
    loop.run()
    assert fired == [0, 1, 2, 3, 4]


def test_now_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule(3.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [3.5]
    assert loop.now == 3.5


def test_nested_scheduling():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: loop.schedule(1.0, lambda: fired.append(loop.now)))
    loop.run()
    assert fired == [2.0]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError, match="past"):
        EventLoop().schedule(-0.1, lambda: None)


def test_schedule_at_in_the_past_rejected():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.run()
    with pytest.raises(SimulationError, match="current time"):
        loop.schedule_at(0.5, lambda: None)


def test_cancelled_events_are_skipped():
    loop = EventLoop()
    fired = []
    handle = loop.schedule(1.0, lambda: fired.append("cancelled"))
    loop.schedule(2.0, lambda: fired.append("kept"))
    handle.cancel()
    loop.run()
    assert fired == ["kept"]
    assert handle.cancelled


def test_run_until_executes_only_due_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append("a"))
    loop.schedule(5.0, lambda: fired.append("b"))
    loop.run_until(2.0)
    assert fired == ["a"]
    assert loop.now == 2.0
    loop.run()
    assert fired == ["a", "b"]


def test_run_until_does_not_rewind():
    loop = EventLoop()
    loop.schedule(4.0, lambda: None)
    loop.run()
    loop.run_until(2.0)
    assert loop.now == 4.0


def test_event_budget_guard():
    loop = EventLoop()

    def reschedule():
        loop.schedule(0.1, reschedule)

    loop.schedule(0.1, reschedule)
    with pytest.raises(SimulationError, match="budget"):
        loop.run(max_events=100)


def test_events_processed_counter():
    loop = EventLoop()
    for _ in range(3):
        loop.schedule(1.0, lambda: None)
    loop.run()
    assert loop.events_processed == 3


def test_step_returns_false_when_empty():
    assert EventLoop().step() is False
