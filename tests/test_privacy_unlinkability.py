"""User-Interest unlinkability: the six cases of §6.1, mechanically.

Each scenario runs the real protocol end-to-end through the simulated
deployment with real cryptography, hands the adversary the paper's
observation surface (network flows, LRS database, one layer's leaked
secrets), and derives the closure of everything it can learn.  The
paper's claims hold at the paper's observation points; the suite also
pins down a *wire-level extension of case 2* this reproduction found
(see ``test_finding_wire_observation_extends_case_2``) and verifies
that the hardened-client-hop extension closes it.
"""

from __future__ import annotations

import pytest

from repro.client import PProxClient
from repro.crypto.provider import RealCryptoProvider
from repro.lrs.service import HarnessService
from repro.privacy import Adversary, KnowledgeEngine, fifo_correlation
from repro.proxy import PProxConfig, build_pprox
from repro.proxy.costs import DEFAULT_COSTS
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry

CATALOG = {"i1", "i2", "i3", "i4", "i5"}
FEEDBACK = {
    "alice": ["i1", "i2", "i3"],
    "bob": ["i1", "i2", "i4"],
    "carol": ["i2", "i3", "i4"],
}


class Scenario:
    """One full run: posts, training, gets, optional compromise."""

    def __init__(self, config: PProxConfig, seed: int = 13):
        rng = RngRegistry(seed=seed)
        self.loop = EventLoop()
        self.network = Network(loop=self.loop, rng=rng.stream("net"))
        self.harness = HarnessService(loop=self.loop, rng=rng.stream("lrs"), frontend_count=3)
        self.harness.engine.trainer.llr_threshold = 0.0
        self.provider = RealCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
        self.service = build_pprox(
            self.loop, self.network, rng, config,
            lrs_picker=self.harness.pick_frontend, provider=self.provider,
        )
        self.adversary = Adversary()
        self.adversary.attach(self.network)
        self.adversary.observe_lrs(self.harness.engine.store)
        self.client = PProxClient(
            loop=self.loop, network=self.network, provider=self.provider,
            service=self.service, costs=DEFAULT_COSTS, rng=rng.stream("client"),
        )

    def drive_workload(self):
        for user, items in FEEDBACK.items():
            for item in items:
                self.client.post(user, item)
        self.loop.run()
        self.harness.train()
        for user in FEEDBACK:
            self.client.get(user)
        self.loop.run()

    def compromise(self, layer: str) -> None:
        instances = self.service.ua_instances if layer == "UA" else self.service.ia_instances
        enclave = instances[0].enclave
        enclave.mark_compromised()
        self.adversary.harvest_enclave(layer, enclave)

    def engine(self) -> KnowledgeEngine:
        return KnowledgeEngine.for_adversary(self.adversary, self.provider, catalog=CATALOG)

    def links_at_enclave(self, layer: str):
        """The paper's §6.1 observation point: messages at the broken
        enclave, plus the LRS database."""
        prefix = "pprox-ua" if layer == "UA" else "pprox-ia"
        return self.engine().derive_links(
            self.adversary.messages_at(prefix), self.adversary.lrs_dump()
        )

    def links_full_wire(self):
        """Everything the §2.3 adversary observes, everywhere."""
        return self.engine().derive_links(
            self.adversary.observations, self.adversary.lrs_dump()
        )


SHUFFLED = PProxConfig(shuffle_size=3, shuffle_timeout=0.05)


@pytest.fixture(scope="module")
def ua_broken():
    scenario = Scenario(SHUFFLED)
    scenario.drive_workload()
    scenario.compromise("UA")
    return scenario


@pytest.fixture(scope="module")
def ia_broken():
    scenario = Scenario(SHUFFLED)
    scenario.drive_workload()
    scenario.compromise("IA")
    return scenario


def test_no_compromise_no_links():
    scenario = Scenario(SHUFFLED)
    scenario.drive_workload()
    assert scenario.links_full_wire() == set()


def test_case_1a_1b_ua_broken_messages_at_enclave(ua_broken):
    """Cases 1(a) and 1(b): post interception and get-response
    interception at a broken UA enclave reveal no (user, item) link."""
    assert ua_broken.links_at_enclave("UA") == set()


def test_case_1c_ua_broken_plus_lrs_database(ua_broken):
    """Case 1(c): kUA de-pseudonymizes users in the LRS store, but
    items stay pseudonymous — no link."""
    links = ua_broken.engine().derive_links((), ua_broken.adversary.lrs_dump())
    assert links == set()


def test_ua_broken_full_wire_still_safe(ua_broken):
    """Stronger than the paper's case analysis: even observing every
    hop, UA secrets alone link nothing (items always under IA keys)."""
    assert ua_broken.links_full_wire() == set()


def test_case_2a_2b_ia_broken_messages_at_enclave(ia_broken):
    """Cases 2(a) and 2(b): at the IA enclave the adversary decrypts
    items and temporary keys, but every message's origin is a UA
    instance — shuffling removed the client correlation — so no link."""
    assert ia_broken.links_at_enclave("IA") == set()


def test_case_2c_ia_broken_plus_lrs_database(ia_broken):
    """Case 2(c): kIA de-pseudonymizes items in the LRS store, but
    users stay pseudonymous under kUA — no link."""
    links = ia_broken.engine().derive_links((), ia_broken.adversary.lrs_dump())
    assert links == set()


def test_ua_keys_resolve_users_but_not_items(ua_broken):
    """Sanity: the stolen secrets do decrypt what they should."""
    engine = ua_broken.engine()
    dump = ua_broken.adversary.lrs_dump()
    assert dump
    resolved_users = {engine.resolve_user(event.user) for event in dump}
    assert resolved_users == set(FEEDBACK)
    assert all(engine.resolve_item(event.item) is None for event in dump)


def test_ia_keys_resolve_items_but_not_users(ia_broken):
    engine = ia_broken.engine()
    dump = ia_broken.adversary.lrs_dump()
    resolved_items = {engine.resolve_item(event.item) for event in dump}
    assert resolved_items == set(CATALOG) - {"i5"}
    assert all(engine.resolve_user(event.user) is None for event in dump)


def test_finding_wire_observation_extends_case_2(ia_broken):
    """REPRODUCTION FINDING (documented in EXPERIMENTS.md):

    The paper's case 2(a) scopes interception to the IA enclave, where
    shuffling hides request origins.  But ``enc(i, pkIA)`` travels
    *unchanged* from the client to the UA, where the client's address
    is visible; an adversary holding skIA who also watches the
    client->UA wire decrypts items (and temporary keys, hence response
    blobs) right next to the IP — unlinkability falls without touching
    any UA secret.  Shuffling cannot help: no correlation is needed.
    """
    links = ia_broken.links_full_wire()
    assert links, "expected the wire-level case-2 extension to produce links"
    # Every user's items are exposed via their client address.
    for user, items in FEEDBACK.items():
        for item in items:
            assert (f"client-{user}", item) in links


def test_hardened_client_hop_closes_the_finding():
    """With the sealed client hop, the same IA-compromise + full-wire
    adversary learns nothing."""
    scenario = Scenario(PProxConfig(shuffle_size=3, shuffle_timeout=0.05,
                                    harden_client_hop=True))
    scenario.drive_workload()
    scenario.compromise("IA")
    assert scenario.links_full_wire() == set()


def test_hardened_hop_still_safe_under_ua_compromise():
    scenario = Scenario(PProxConfig(shuffle_size=3, shuffle_timeout=0.05,
                                    harden_client_hop=True))
    scenario.drive_workload()
    scenario.compromise("UA")
    assert scenario.links_full_wire() == set()


def test_both_layers_break_everything():
    """Outside the model: with both layers' secrets the closure engine
    recovers the complete user-item graph (showing the checker has
    teeth, and why the single-enclave assumption is load-bearing)."""
    scenario = Scenario(SHUFFLED)
    scenario.drive_workload()
    engine = KnowledgeEngine(
        provider=scenario.provider,
        ua_keys=scenario.service.provisioner.layer_keys["UA"],
        ia_keys=scenario.service.provisioner.layer_keys["IA"],
        catalog=CATALOG,
    )
    links = engine.derive_links(
        scenario.adversary.observations, scenario.adversary.lrs_dump()
    )
    for user, items in FEEDBACK.items():
        for item in items:
            assert (user, item) in links


def test_no_shuffling_plus_fifo_correlation_breaks_unlinkability():
    """§4.3's motivation: without shuffling, FIFO timing correlation
    plus IA secrets links a client address to its cleartext items."""
    scenario = Scenario(PProxConfig(shuffle_size=0))
    scenario.drive_workload()
    scenario.compromise("IA")
    engine = scenario.engine()
    observations = scenario.adversary.observations
    client_requests = [
        o for o in observations
        if o.kind == "request" and o.source.startswith("client") and o.verb == "POST"
    ]
    ua_to_ia = [
        o for o in observations
        if o.kind == "request" and o.source.startswith("pprox-ua") and o.verb == "POST"
    ]
    pairs = fifo_correlation(client_requests, ua_to_ia)
    links = engine.derive_links((), (), correlations=pairs)
    assert links
    assert any(identity.startswith("client-") for identity, _ in links)


def test_item_pseudonymization_disabled_weakens_case_1c():
    """§6.3: with items in the clear at the LRS, unlinkability only
    survives if UA enclaves are NOT broken — breaking one now links."""
    scenario = Scenario(PProxConfig(shuffle_size=3, shuffle_timeout=0.05,
                                    item_pseudonymization=False))
    scenario.drive_workload()
    scenario.compromise("UA")
    links = scenario.engine().derive_links((), scenario.adversary.lrs_dump())
    assert links  # kUA resolves users; items are already cleartext
    assert ("alice", "i1") in links


def test_item_pseudonymization_disabled_still_safe_without_compromise():
    scenario = Scenario(PProxConfig(shuffle_size=3, shuffle_timeout=0.05,
                                    item_pseudonymization=False))
    scenario.drive_workload()
    assert scenario.links_full_wire() == set()
