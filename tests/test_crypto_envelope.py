"""Fixed-size identifier encoding and recommendation-list padding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.envelope import (
    FIXED_ID_BYTES,
    MAX_RECOMMENDATIONS,
    PaddingError,
    b64,
    decode_identifier,
    encode_identifier,
    is_padding_item,
    pad_item_list,
    strip_padding_items,
    unb64,
)


def test_encoded_identifier_has_fixed_size():
    for identifier in ("a", "user-123", "x" * 40):
        assert len(encode_identifier(identifier)) == FIXED_ID_BYTES


def test_roundtrip():
    assert decode_identifier(encode_identifier("movie-917")) == "movie-917"


def test_unicode_identifier_roundtrip():
    assert decode_identifier(encode_identifier("usér-ñ")) == "usér-ñ"


def test_empty_identifier_roundtrip():
    assert decode_identifier(encode_identifier("")) == ""


def test_identifier_too_long_rejected():
    with pytest.raises(PaddingError, match="too long"):
        encode_identifier("x" * (FIXED_ID_BYTES - 1))


def test_decode_rejects_wrong_size():
    with pytest.raises(PaddingError, match="bytes"):
        decode_identifier(b"short")


def test_decode_rejects_corrupt_length_prefix():
    blob = bytes([0xFF, 0xFF]) + bytes(FIXED_ID_BYTES - 2)
    with pytest.raises(PaddingError, match="length"):
        decode_identifier(blob)


def test_decode_rejects_nonzero_padding():
    blob = bytearray(encode_identifier("ab"))
    blob[-1] = 7
    with pytest.raises(PaddingError, match="padding"):
        decode_identifier(bytes(blob))


def test_pad_item_list_to_default_size():
    padded = pad_item_list(["a", "b"])
    assert len(padded) == MAX_RECOMMENDATIONS
    assert padded[:2] == ["a", "b"]


def test_pad_item_list_full_list_untouched():
    items = [f"i{n}" for n in range(MAX_RECOMMENDATIONS)]
    assert pad_item_list(items) == items


def test_pad_item_list_rejects_overflow():
    with pytest.raises(PaddingError, match="longer"):
        pad_item_list(["x"] * (MAX_RECOMMENDATIONS + 1))


def test_strip_padding_recovers_original():
    assert strip_padding_items(pad_item_list(["a", "b", "c"])) == ["a", "b", "c"]


def test_strip_padding_on_empty_list():
    assert strip_padding_items(pad_item_list([])) == []


def test_padding_items_are_recognizable():
    padded = pad_item_list(["real"])
    assert not is_padding_item(padded[0])
    assert all(is_padding_item(item) for item in padded[1:])


def test_real_identifiers_cannot_collide_with_padding():
    """The padding sentinel starts with NUL, which no UTF-8 app id
    produced by the catalog would."""
    padded = pad_item_list([])
    assert all(item.startswith("\x00") for item in padded)


def test_b64_roundtrip():
    assert unb64(b64(b"\x00\x01\xffdata")) == b"\x00\x01\xffdata"


def test_unb64_rejects_invalid():
    with pytest.raises(Exception):
        unb64("not!!base64$$")


@settings(max_examples=30, deadline=None)
@given(
    identifier=st.text(max_size=20).filter(
        lambda s: len(s.encode("utf-8")) <= FIXED_ID_BYTES - 2
    )
)
def test_identifier_roundtrip_property(identifier):
    assert decode_identifier(encode_identifier(identifier)) == identifier


@settings(max_examples=20, deadline=None)
@given(items=st.lists(st.text(alphabet="abc123-", min_size=1, max_size=8), max_size=MAX_RECOMMENDATIONS))
def test_pad_strip_roundtrip_property(items):
    assert strip_padding_items(pad_item_list(items)) == items
