"""Crypto provider interface: all three implementations, same contract."""

from __future__ import annotations

import pytest

from repro.crypto.envelope import encode_identifier
from repro.crypto.keys import SYMMETRIC_KEY_BYTES
from repro.crypto.provider import CryptoProvider


def test_asym_roundtrip(any_provider, layer_keys):
    plaintext = encode_identifier("user-1")
    blob = any_provider.asym_encrypt(layer_keys.public_material, plaintext)
    assert any_provider.asym_decrypt(layer_keys, blob) == plaintext


def test_asym_encryption_is_randomized(any_provider, layer_keys):
    plaintext = encode_identifier("user-1")
    first = any_provider.asym_encrypt(layer_keys.public_material, plaintext)
    second = any_provider.asym_encrypt(layer_keys.public_material, plaintext)
    assert first != second


def test_asym_wrong_key_fails(any_provider, layer_keys, second_layer_keys):
    blob = any_provider.asym_encrypt(layer_keys.public_material, b"secret-data")
    with pytest.raises(Exception):
        any_provider.asym_decrypt(second_layer_keys, blob)


def test_asym_large_payload_roundtrip(any_provider, layer_keys):
    """Payloads beyond OAEP capacity use the hybrid envelope."""
    plaintext = b"x" * 600
    blob = any_provider.asym_encrypt(layer_keys.public_material, plaintext)
    assert any_provider.asym_decrypt(layer_keys, blob) == plaintext


def test_pseudonym_is_deterministic(any_provider, layer_keys):
    identifier = encode_identifier("user-7")
    first = any_provider.pseudonymize(layer_keys.symmetric_key, identifier)
    second = any_provider.pseudonymize(layer_keys.symmetric_key, identifier)
    assert first == second


def test_pseudonym_distinguishes_identifiers(any_provider, layer_keys):
    one = any_provider.pseudonymize(layer_keys.symmetric_key, encode_identifier("u1"))
    two = any_provider.pseudonymize(layer_keys.symmetric_key, encode_identifier("u2"))
    assert one != two


def test_pseudonym_roundtrip(any_provider, layer_keys):
    identifier = encode_identifier("movie-33")
    pseudonym = any_provider.pseudonymize(layer_keys.symmetric_key, identifier)
    assert any_provider.depseudonymize(layer_keys.symmetric_key, pseudonym) == identifier


def test_pseudonym_differs_from_identifier(any_provider, layer_keys):
    identifier = encode_identifier("user-9")
    assert any_provider.pseudonymize(layer_keys.symmetric_key, identifier) != identifier


def test_pseudonym_key_dependence(any_provider, layer_keys, second_layer_keys):
    identifier = encode_identifier("user-9")
    one = any_provider.pseudonymize(layer_keys.symmetric_key, identifier)
    two = any_provider.pseudonymize(second_layer_keys.symmetric_key, identifier)
    assert one != two


def test_sym_roundtrip(any_provider):
    key = bytes(range(32))
    blob = any_provider.sym_encrypt(key, b"[\"i1\", \"i2\"]")
    assert any_provider.sym_decrypt(key, blob) == b"[\"i1\", \"i2\"]"


def test_sym_encryption_is_randomized(any_provider):
    key = bytes(range(32))
    assert any_provider.sym_encrypt(key, b"data") != any_provider.sym_encrypt(key, b"data")


def test_sym_wrong_key_garbles(any_provider):
    key = bytes(range(32))
    other = bytes(range(1, 33))
    blob = any_provider.sym_encrypt(key, b"the recommendation list")
    assert any_provider.sym_decrypt(other, blob) != b"the recommendation list"


def test_sym_decrypt_rejects_short_blob(any_provider):
    with pytest.raises(Exception):
        any_provider.sym_decrypt(bytes(32), b"tiny")


def test_temporary_keys_are_fresh(any_provider):
    assert any_provider.new_temporary_key() != any_provider.new_temporary_key()


def test_temporary_key_size(any_provider):
    assert len(any_provider.new_temporary_key()) == SYMMETRIC_KEY_BYTES


def test_provider_names_distinct(real_provider, fast_provider, sim_provider):
    names = {real_provider.name, fast_provider.name, sim_provider.name}
    assert names == {"real", "fast", "sim"}


def test_abstract_provider_is_abstract(layer_keys):
    provider = CryptoProvider()
    with pytest.raises(NotImplementedError):
        provider.asym_encrypt(layer_keys.public_material, b"x")
    with pytest.raises(NotImplementedError):
        provider.pseudonymize(b"k", b"x")
    with pytest.raises(NotImplementedError):
        provider.sym_encrypt(b"k", b"x")


def test_sim_provider_rejects_unknown_token(sim_provider, layer_keys):
    with pytest.raises(ValueError, match="unknown"):
        sim_provider.asym_decrypt(layer_keys, b"ASYM:9999".ljust(144, b"\x00"))


def test_sim_provider_rejects_unknown_pseudonym(sim_provider, layer_keys):
    with pytest.raises(ValueError, match="pseudonym"):
        sim_provider.depseudonymize(layer_keys.symmetric_key, b"\x00" * 16)


def test_fast_provider_odd_length_pseudonym_roundtrip(fast_provider, layer_keys):
    """The Feistel padding distinguishes odd- and even-length inputs."""
    for raw in (b"odd", b"even", b"x", b""):
        pseudonym = fast_provider.pseudonymize(layer_keys.symmetric_key, raw)
        assert fast_provider.depseudonymize(layer_keys.symmetric_key, pseudonym) == raw
