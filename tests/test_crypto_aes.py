"""AES block cipher: FIPS-197 vectors, roundtrips, error handling.

The FIPS-197 Appendix C known-answer tests (AES-128/192/256) plus the
cross-checks against the straight-line reference cipher are the guard
rail for the T-table rewrite: any divergence would silently break
pseudonym stability across requests.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.reference import ReferenceAES

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

FIPS_VECTORS = [
    # (key hex, expected ciphertext hex) — FIPS-197 appendix C.
    ("000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617", "dda97ca4864cdfe06eaf70a0ec0d7191"),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


@pytest.mark.parametrize("key_hex,expected_hex", FIPS_VECTORS)
def test_fips_197_encrypt_vectors(key_hex, expected_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(PLAINTEXT).hex() == expected_hex


@pytest.mark.parametrize("key_hex,expected_hex", FIPS_VECTORS)
def test_fips_197_decrypt_vectors(key_hex, expected_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.decrypt_block(bytes.fromhex(expected_hex)) == PLAINTEXT


@pytest.mark.parametrize("key_size,rounds", [(16, 10), (24, 12), (32, 14)])
def test_round_counts(key_size, rounds):
    assert AES(bytes(key_size)).rounds == rounds


@pytest.mark.parametrize("bad_size", [0, 1, 15, 17, 20, 31, 33, 64])
def test_rejects_bad_key_sizes(bad_size):
    with pytest.raises(ValueError, match="AES key"):
        AES(bytes(bad_size))


@pytest.mark.parametrize("bad_block", [b"", b"short", bytes(15), bytes(17)])
def test_rejects_bad_block_sizes(bad_block):
    cipher = AES(bytes(16))
    with pytest.raises(ValueError, match="block"):
        cipher.encrypt_block(bad_block)
    with pytest.raises(ValueError, match="block"):
        cipher.decrypt_block(bad_block)


def test_block_size_constant():
    assert BLOCK_SIZE == 16


def test_encryption_changes_data():
    cipher = AES(bytes(32))
    assert cipher.encrypt_block(bytes(16)) != bytes(16)


def test_different_keys_different_ciphertexts():
    one = AES(bytes(16)).encrypt_block(PLAINTEXT)
    other = AES(bytes([1] * 16)).encrypt_block(PLAINTEXT)
    assert one != other


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16) | st.binary(min_size=32, max_size=32),
    block=st.binary(min_size=16, max_size=16),
)
def test_roundtrip_property(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=10, deadline=None)
@given(block=st.binary(min_size=16, max_size=16))
def test_encrypt_is_permutation_like(block):
    """Distinct plaintexts map to distinct ciphertexts (injectivity)."""
    cipher = AES(bytes(range(16)))
    other = bytes(b ^ 0xFF for b in block)
    assert cipher.encrypt_block(block) != cipher.encrypt_block(other)


@settings(max_examples=30, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16)
    | st.binary(min_size=24, max_size=24)
    | st.binary(min_size=32, max_size=32),
    block=st.binary(min_size=16, max_size=16),
)
def test_t_table_cipher_matches_reference(key, block):
    """T-table encrypt/decrypt is byte-identical to the seed cipher."""
    optimized = AES(key)
    reference = ReferenceAES(key)
    ciphertext = optimized.encrypt_block(block)
    assert ciphertext == reference.encrypt_block(block)
    assert optimized.decrypt_block(ciphertext) == reference.decrypt_block(ciphertext)


def test_encrypt_ctr_blocks_matches_per_block_encryption():
    """The batched keystream equals block-at-a-time counter encryption,
    including wrap-around at the 128-bit counter boundary."""
    cipher = AES(bytes(range(32)))
    start = (1 << 128) - 2  # wraps to 0 on the third block
    batched = cipher.encrypt_ctr_blocks(start, 4)
    mask = (1 << 128) - 1
    for i in range(4):
        counter = ((start + i) & mask).to_bytes(BLOCK_SIZE, "big")
        assert batched[16 * i:16 * i + 16] == cipher.encrypt_block(counter)
