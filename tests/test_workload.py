"""Workload: synthetic MovieLens trace, injector, two-phase scenario."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.client import DirectClient
from repro.lrs.service import HarnessService
from repro.simnet.clock import EventLoop
from repro.simnet.metrics import LatencyRecorder
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry
from repro.workload.injector import Injector
from repro.workload.movielens import PAPER_SLICE, SyntheticMovieLens
from repro.workload.scenario import ScenarioTimings, TwoPhaseScenario


def test_trace_is_deterministic():
    one = SyntheticMovieLens(seed=1, scale=0.005)
    two = SyntheticMovieLens(seed=1, scale=0.005)
    assert one.events == two.events


def test_trace_seeds_differ():
    assert SyntheticMovieLens(seed=1, scale=0.005).events != SyntheticMovieLens(
        seed=2, scale=0.005
    ).events


def test_trace_scale_controls_size():
    small = SyntheticMovieLens(seed=1, scale=0.002)
    large = SyntheticMovieLens(seed=1, scale=0.02)
    assert len(large.events) > len(small.events) * 4
    assert len(large.users) == pytest.approx(PAPER_SLICE["users"] * 0.02, rel=0.1)


def test_item_popularity_is_heavy_tailed():
    trace = SyntheticMovieLens(seed=3, scale=0.02)
    counts = Counter(item for _, item in trace.events).most_common()
    top_share = sum(c for _, c in counts[: len(counts) // 10]) / len(trace.events)
    assert top_share > 0.25  # top 10 % of items draw an outsized share
    uniform_share = 0.10
    assert top_share > 2 * uniform_share


def test_no_duplicate_user_item_pairs():
    trace = SyntheticMovieLens(seed=4, scale=0.005)
    assert len(set(trace.events)) == len(trace.events)


def test_user_histories_partition_events():
    trace = SyntheticMovieLens(seed=5, scale=0.005)
    histories = trace.user_histories()
    assert sum(len(h) for h in histories.values()) == len(trace.events)


def test_query_users_weighted_by_activity():
    trace = SyntheticMovieLens(seed=6, scale=0.01)
    histories = trace.user_histories()
    sampled = trace.query_users(2000, random.Random(1))
    counts = Counter(sampled)
    heavy = max(histories, key=lambda u: len(histories[u]))
    light = min(histories, key=lambda u: len(histories[u]))
    assert counts[heavy] > counts.get(light, 0)


# -- injector -------------------------------------------------------------


def test_injector_issues_rate_times_duration_calls():
    loop = EventLoop()
    injector = Injector(loop, random.Random(1), recorder=LatencyRecorder())
    calls = []

    def issue(on_complete):
        calls.append(loop.now)
        on_complete_stub(on_complete)

    def on_complete_stub(cb):
        from repro.client.library import CompletedCall

        cb(CompletedCall(verb="GET", user="u", ok=True, items=[],
                         started_at=loop.now, completed_at=loop.now + 0.01,
                         request_id=1))

    injector.inject(50, 2.0, issue)
    loop.run()
    assert len(calls) == 100
    assert injector.report.issued == 100
    assert injector.report.completed == 100


def test_injector_counts_failures():
    loop = EventLoop()
    injector = Injector(loop, random.Random(1))
    from repro.client.library import CompletedCall

    def issue(on_complete):
        on_complete(CompletedCall(verb="GET", user="u", ok=False, items=[],
                                  started_at=0, completed_at=0, request_id=1))

    injector.inject(10, 1.0, issue)
    loop.run()
    assert injector.report.failed == 10
    assert injector.report.completion_ratio == 0.0


def test_injector_rejects_bad_rate():
    with pytest.raises(ValueError):
        Injector(EventLoop(), random.Random(1)).inject(0, 1.0, lambda cb: None)


def test_arrivals_spread_over_duration():
    loop = EventLoop()
    injector = Injector(loop, random.Random(1))
    times = []
    injector.inject(10, 1.0, lambda cb: times.append(loop.now))
    loop.run()
    assert min(times) < 0.2
    assert max(times) > 0.8


# -- two-phase scenario ----------------------------------------------------


def test_two_phase_scenario_runs_and_reports():
    rng = RngRegistry(seed=9)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"), record_flows=False)
    harness = HarnessService(loop=loop, rng=rng.stream("lrs"), frontend_count=3)
    client = DirectClient(loop=loop, network=network, lrs_picker=harness.pick_frontend)
    scenario = TwoPhaseScenario(
        loop=loop,
        rng=rng.stream("scenario"),
        client=client,
        lrs=harness,
        workload=SyntheticMovieLens(seed=9, scale=0.003),
        timings=ScenarioTimings.quick(),
        feedback_rate=100.0,
    )
    result = scenario.run(query_rate=50.0)
    assert result.feedback_report.issued == 400
    assert result.report.completed > 0
    assert not result.saturated
    summary = result.summary()
    assert 0 < summary.median < 0.3
    # Training happened: the engine has a model.
    assert harness.engine.model is not None


def test_paper_timings_match_section8():
    timings = ScenarioTimings.paper()
    assert timings.feedback_seconds == 60.0
    assert timings.query_seconds == 300.0
    assert timings.trim_seconds == 15.0
