"""Network fabric: delivery, latency model, observer taps."""

from __future__ import annotations

import random

import pytest

from repro.simnet.clock import EventLoop
from repro.simnet.network import FlowRecord, LatencyModel, Network


@pytest.fixture
def net():
    loop = EventLoop()
    return loop, Network(loop=loop, rng=random.Random(1))


def test_message_is_delivered(net):
    loop, network = net
    got = []
    network.send("a", "b", {"x": 1}, 100, got.append)
    loop.run()
    assert got == [{"x": 1}]


def test_delivery_takes_positive_time(net):
    loop, network = net
    times = []
    network.send("a", "b", "payload", 100, lambda _: times.append(loop.now))
    loop.run()
    assert times[0] > 0


def test_latency_within_model_bounds():
    loop = EventLoop()
    model = LatencyModel(base_seconds=0.001, jitter_seconds=0.002, seconds_per_byte=0)
    network = Network(loop=loop, rng=random.Random(2), latency=model)
    times = []
    for _ in range(50):
        network.send("a", "b", None, 0, lambda _: times.append(loop.now))
        loop.run()
        loop = network.loop  # unchanged; readability
    deltas = [t for t in times]
    assert all(0.001 <= d for d in deltas)


def test_size_proportional_latency():
    loop = EventLoop()
    model = LatencyModel(base_seconds=0.0, jitter_seconds=0.0, seconds_per_byte=0.001)
    network = Network(loop=loop, rng=random.Random(3), latency=model)
    times = []
    network.send("a", "b", None, 10, lambda _: times.append(loop.now))
    loop.run()
    assert times[0] == pytest.approx(0.01)


def test_flow_records_capture_metadata(net):
    loop, network = net
    network.send("client-1", "ua-0", "req", 345, lambda _: None)
    loop.run()
    record = network.flows[0]
    assert record.source == "client-1"
    assert record.destination == "ua-0"
    assert record.size_bytes == 345
    assert record.flow_id == 1


def test_flow_ids_are_unique_and_increasing(net):
    loop, network = net
    for _ in range(3):
        network.send("a", "b", None, 1, lambda _: None)
    ids = [record.flow_id for record in network.flows]
    assert ids == sorted(set(ids))


def test_observers_see_flows_live(net):
    loop, network = net
    seen = []
    network.add_observer(seen.append)
    network.send("a", "b", None, 9, lambda _: None)
    assert len(seen) == 1
    assert isinstance(seen[0], FlowRecord)


def test_wiretap_sees_payload(net):
    loop, network = net
    taps = []
    network.add_wiretap(lambda record, payload: taps.append((record.source, payload)))
    network.send("a", "b", {"ciphertext": "..."}, 10, lambda _: None)
    assert taps == [("a", {"ciphertext": "..."})]


def test_record_flows_can_be_disabled():
    loop = EventLoop()
    network = Network(loop=loop, rng=random.Random(4), record_flows=False)
    network.send("a", "b", None, 1, lambda _: None)
    assert network.flows == []
    assert network.messages_sent == 1


def test_extra_delay_defers_delivery(net):
    loop, network = net
    times = []
    network.send("a", "b", None, 0, lambda _: times.append(loop.now), extra_delay=5.0)
    loop.run()
    assert times[0] >= 5.0


def test_clear_flows(net):
    loop, network = net
    network.send("a", "b", None, 1, lambda _: None)
    network.clear_flows()
    assert network.flows == []


def test_counters(net):
    loop, network = net
    network.send("a", "b", None, 10, lambda _: None)
    network.send("b", "c", None, 20, lambda _: None)
    assert network.messages_sent == 2
    assert network.bytes_sent == 30
