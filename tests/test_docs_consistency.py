"""Documentation stays in sync with the code tree."""

from __future__ import annotations

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/architecture.md", "docs/protocol.md",
                 "docs/threat-model.md"):
        assert (REPO / name).exists(), f"missing {name}"


def test_readme_examples_table_matches_files():
    readme = (REPO / "README.md").read_text()
    for script in re.findall(r"`(\w+\.py)`", readme):
        if script in {"settings.py"}:
            continue
        candidates = [REPO / "examples" / script]
        assert any(c.exists() for c in candidates), f"README references missing {script}"


def test_design_module_map_matches_packages():
    design = (REPO / "DESIGN.md").read_text()
    source = REPO / "src" / "repro"
    packages = {
        p.name for p in source.iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    }
    for package in packages:
        assert f"{package}" in design, f"DESIGN.md does not mention repro.{package}"


def test_experiments_md_references_existing_benches():
    experiments = (REPO / "EXPERIMENTS.md").read_text()
    for bench in re.findall(r"`(?:benchmarks/)?(test_\w+\.py)", experiments):
        paths = [REPO / "benchmarks" / bench, REPO / "tests" / bench]
        assert any(p.exists() for p in paths), f"EXPERIMENTS.md references missing {bench}"


def test_every_package_module_has_a_docstring():
    missing = []
    for path in (REPO / "src" / "repro").rglob("*.py"):
        text = path.read_text()
        stripped = text.lstrip()
        if not (stripped.startswith('"""') or stripped.startswith("'''")):
            missing.append(str(path.relative_to(REPO)))
    assert missing == [], f"modules without docstrings: {missing}"


def test_every_test_file_has_a_docstring():
    missing = []
    for path in (REPO / "tests").glob("test_*.py"):
        stripped = path.read_text().lstrip()
        if not stripped.startswith('"""'):
            missing.append(path.name)
    assert missing == []


def test_paper_constants_consistent():
    """The headline constants appear consistently across docs."""
    readme = (REPO / "README.md").read_text()
    design = (REPO / "DESIGN.md").read_text()
    assert "27-node" in readme and "27-node" in design
    assert "250" in readme  # the per-pair capacity figure
    from repro.cluster.deployments import CLUSTER_NODE_BUDGET, MICRO_CONFIGS

    assert CLUSTER_NODE_BUDGET == 27
    assert MICRO_CONFIGS["m6"].max_rps == 250
