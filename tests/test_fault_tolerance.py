"""Failure injection: dead instances, health ejection, client retries."""

from __future__ import annotations

import pytest

from repro.client import PProxClient
from repro.cluster.health import HealthMonitor
from repro.crypto.provider import FastCryptoProvider
from repro.lrs.stub import StubLrs, make_pseudonymous_payload
from repro.proxy import PProxConfig, build_pprox
from repro.proxy.costs import DEFAULT_COSTS
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry


def _stack(config=None, seed=101, **client_kwargs):
    rng = RngRegistry(seed=seed)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"), record_flows=False)
    stub = StubLrs(loop=loop, rng=rng.stream("stub"))
    provider = FastCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
    service = build_pprox(
        loop, network, rng, config or PProxConfig(shuffle_size=0, ua_instances=2,
                                                  ia_instances=2),
        lrs_picker=lambda: stub, provider=provider,
    )
    if service.config.encryption:
        stub.items = make_pseudonymous_payload(
            provider, service.provisioner.layer_keys["IA"].symmetric_key
        )
    client = PProxClient(loop=loop, network=network, provider=provider,
                         service=service, costs=DEFAULT_COSTS, rng=rng.stream("c"),
                         **client_kwargs)
    return loop, service, client


def test_dead_instance_drops_requests_silently():
    loop, service, client = _stack()
    service.ua_instances[0].fail()
    service.ua_instances[1].fail()
    done = []
    client.get("u", on_complete=done.append)
    loop.run()
    assert done == []  # lost, no reply ever comes


def test_timeout_reports_failure():
    loop, service, client = _stack()
    client.request_timeout = 1.0
    for instance in service.ua_instances:
        instance.fail()
    done = []
    client.get("u", on_complete=done.append)
    loop.run()
    assert len(done) == 1
    assert not done[0].ok
    assert client.timeouts == 1


def test_retry_through_surviving_instance():
    """One dead UA instance: retries eventually land on the healthy
    one and the call completes."""
    loop, service, client = _stack(
        PProxConfig(shuffle_size=0, ua_instances=2, ia_instances=2,
                    balancing="round-robin")
    )
    client.request_timeout = 1.0
    client.max_retries = 3
    service.ua_instances[0].fail()
    done = []
    for index in range(4):
        client.get(f"user-{index}", on_complete=done.append)
    loop.run()
    assert len(done) == 4
    assert all(call.ok for call in done)
    assert client.retries_performed >= 1


def test_health_monitor_ejects_dead_instances():
    loop, service, client = _stack()
    monitor = HealthMonitor(loop=loop, service=service, interval=1.0)
    monitor.start()
    service.ua_instances[0].fail()
    service.ia_instances[1].fail()
    loop.run_until(3.0)
    monitor.stop()
    assert len(service.ua_balancer) == 1
    assert len(service.ia_balancer) == 1
    assert set(monitor.ejected) == {"pprox-ua-0", "pprox-ia-1"}


def test_traffic_flows_after_ejection_without_retries():
    """Once the balancer is pruned, new calls never touch the dead
    instance — no timeouts needed."""
    loop, service, client = _stack()
    monitor = HealthMonitor(loop=loop, service=service, interval=0.5)
    monitor.start()
    service.ua_instances[0].fail()
    loop.run_until(1.0)
    done = []
    for index in range(6):
        client.get(f"user-{index}", on_complete=done.append)
    loop.run_until(30.0)
    monitor.stop()
    loop.run()
    assert len(done) == 6
    assert all(call.ok for call in done)
    assert client.timeouts == 0


def test_dead_ia_instance_loses_in_flight_responses():
    loop, service, client = _stack(
        PProxConfig(shuffle_size=0, ua_instances=1, ia_instances=1)
    )
    client.request_timeout = 2.0
    done = []
    client.get("u", on_complete=done.append)
    # Kill the IA while the request is in flight.
    loop.run_until(0.001)
    service.ia_instances[0].fail()
    loop.run()
    assert len(done) == 1
    assert not done[0].ok


def test_retries_preserve_latency_accounting():
    loop, service, client = _stack(
        PProxConfig(shuffle_size=0, ua_instances=2, ia_instances=2,
                    balancing="round-robin")
    )
    client.request_timeout = 0.5
    client.max_retries = 2
    service.ua_instances[0].fail()
    done = []
    client.get("user-0", on_complete=done.append)  # round-robin hits dead first
    loop.run()
    assert done[0].latency >= 0.5  # includes the timed-out attempt
