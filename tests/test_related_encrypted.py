"""Paillier cryptosystem and the encrypted Slope One baseline (§9)."""

from __future__ import annotations

import random

import pytest

from repro.related.encrypted_slope_one import SCALE, EncryptedSlopeOne, PlainSlopeOne
from repro.related.paillier import generate_paillier_keypair


@pytest.fixture(scope="module")
def keypair():
    rng = random.Random(19)
    return generate_paillier_keypair(512, lambda b: rng.randrange(b))


# -- Paillier primitives -----------------------------------------------------


def test_encrypt_decrypt_roundtrip(keypair):
    public, private = keypair
    for message in (0, 1, 42, 123456, -1, -9999):
        assert private.decrypt(public.encrypt(message)) == message


def test_encryption_is_randomized(keypair):
    public, _ = keypair
    assert public.encrypt(7) != public.encrypt(7)


def test_homomorphic_addition(keypair):
    public, private = keypair
    c = public.add(public.encrypt(20), public.encrypt(22))
    assert private.decrypt(c) == 42


def test_homomorphic_addition_with_negatives(keypair):
    public, private = keypair
    c = public.add(public.encrypt(10), public.encrypt(-25))
    assert private.decrypt(c) == -15


def test_homomorphic_plain_addition(keypair):
    public, private = keypair
    assert private.decrypt(public.add_plain(public.encrypt(5), 37)) == 42


def test_homomorphic_plain_multiplication(keypair):
    public, private = keypair
    assert private.decrypt(public.mul_plain(public.encrypt(-6), 7)) == -42


def test_plaintext_range_enforced(keypair):
    public, _ = keypair
    with pytest.raises(ValueError, match="range"):
        public.encrypt(public.n)


def test_keypair_generation_rejects_tiny_keys():
    with pytest.raises(ValueError):
        generate_paillier_keypair(64)


def test_deterministic_keygen():
    one = generate_paillier_keypair(256, random.Random(5).randrange)
    two = generate_paillier_keypair(256, random.Random(5).randrange)
    assert one[0].n == two[0].n


# -- Slope One ---------------------------------------------------------------

RATINGS = [
    ("alice", "a", 5.0), ("alice", "b", 3.0), ("alice", "c", 2.0),
    ("bob", "a", 3.0), ("bob", "b", 4.0),
    ("carol", "b", 2.0), ("carol", "c", 5.0),
]


def test_plain_slope_one_known_value():
    """The canonical Slope One worked example structure: prediction is
    a weighted blend of per-pair deviations."""
    model = PlainSlopeOne()
    model.fit(RATINGS)
    prediction = model.predict("bob", "c")
    assert prediction is not None
    # dev(c,a) = ((2-5)) / 1 = -3 ; dev(c,b) = ((2-3)+(5-2))/2 = 1
    # weighted: ((-3+3)*1 + (1+4)*2) / 3 = 10/3
    assert prediction == pytest.approx(10 / 3)


def test_plain_slope_one_unknown_user():
    model = PlainSlopeOne()
    model.fit(RATINGS)
    assert model.predict("stranger", "a") is None


def test_encrypted_matches_plain(keypair):
    """The encrypted pipeline computes exactly the weighted Slope One
    value, end to end, without the cloud touching a plaintext."""
    public, private = keypair
    plain = PlainSlopeOne()
    plain.fit(RATINGS)

    cloud = EncryptedSlopeOne(public=public)
    by_user = {}
    for user, item, value in RATINGS:
        by_user.setdefault(user, {})[item] = value
    for user, ratings in by_user.items():
        encrypted = EncryptedSlopeOne.client_encrypt_ratings(public, ratings)
        cloud.submit_user_ratings(user, encrypted)

    for user, item in [("bob", "c"), ("carol", "a"), ("alice", "a")]:
        expected = plain.predict(user, item)
        result = cloud.predict_encrypted(user, item)
        if expected is None:
            assert result is None
            continue
        encrypted_numerator, denominator = result
        value = EncryptedSlopeOne.decrypt_prediction(
            private, encrypted_numerator, denominator
        )
        assert value == pytest.approx(expected, abs=1.0 / SCALE)


def test_cloud_state_is_ciphertext_only(keypair):
    public, private = keypair
    cloud = EncryptedSlopeOne(public=public)
    encrypted = EncryptedSlopeOne.client_encrypt_ratings(public, {"a": 5.0, "b": 1.0})
    cloud.submit_user_ratings("u", encrypted)
    # Stored values are Paillier ciphertexts: huge integers, useless
    # without the private key, and never equal to the scaled ratings.
    for ciphertext in cloud.encrypted_ratings["u"].values():
        assert ciphertext > public.n  # far beyond any scaled rating
    for ciphertext in cloud.encrypted_dev_sums.values():
        assert ciphertext > public.n


def test_homomorphic_op_counter_grows(keypair):
    public, _ = keypair
    cloud = EncryptedSlopeOne(public=public)
    encrypted = EncryptedSlopeOne.client_encrypt_ratings(
        public, {"a": 1.0, "b": 2.0, "c": 3.0}
    )
    cloud.submit_user_ratings("u", encrypted)
    assert cloud.homomorphic_ops >= 6  # 3 items -> 6 ordered pairs
