"""Fault-injection subsystem: plans, wire faults, brownouts, supervision."""

from __future__ import annotations

import random

import pytest

from repro.context import Deployment, SimContext
from repro.faults import (
    BrownoutLrs,
    ChaosSpec,
    FaultEvent,
    FaultPlan,
    FaultSupervisor,
    NetworkFaultController,
)
from repro.lrs.stub import StubLrs
from repro.proxy import PProxConfig
from repro.proxy.layers import RETRYABLE_STATUS
from repro.rest.messages import make_get
from repro.simnet.rng import RngRegistry
from repro.telemetry import Telemetry

NOSHUF = PProxConfig(
    shuffle_size=0, ua_instances=2, ia_instances=2, balancing="round-robin"
)


def _deployment(seed=31, config=NOSHUF, telemetry=None):
    ctx = SimContext.fresh(seed, telemetry=telemetry)
    if telemetry is not None:
        telemetry.bind(ctx.loop, run_label="faults-test")
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    deployment = Deployment.build(
        ctx=ctx, config=PProxConfig(
            encryption=False, sgx=False, shuffle_size=config.shuffle_size,
            ua_instances=config.ua_instances, ia_instances=config.ia_instances,
            balancing=config.balancing,
        ), lrs_picker=lambda: stub,
    )
    return ctx, stub, deployment


# -- plans --------------------------------------------------------------


def test_plan_orders_events_by_time():
    plan = FaultPlan.from_events([
        FaultEvent(at=5.0, kind="crash", target="b"),
        FaultEvent(at=1.0, kind="drop", magnitude=0.1, duration=1.0),
        FaultEvent(at=3.0, kind="crash", target="a"),
    ])
    assert [event.at for event in plan] == [1.0, 3.0, 5.0]
    assert len(plan) == 3


def test_plan_rejects_unknown_kind_and_negative_time():
    with pytest.raises(ValueError):
        FaultEvent(at=1.0, kind="meteor")
    with pytest.raises(ValueError):
        FaultEvent(at=-1.0, kind="crash")


def test_plan_shifted_moves_every_event():
    plan = FaultPlan.from_events([FaultEvent(at=1.0, kind="crash", target="x")])
    assert plan.shifted(2.5).events[0].at == 3.5


def test_chaos_spec_sampling_is_seed_deterministic():
    spec = ChaosSpec(horizon=10.0)
    names = (["pprox-ua-0", "pprox-ua-1"], ["pprox-ia-0"])
    plan_a = spec.sample(RngRegistry(seed=42), *names)
    plan_b = spec.sample(RngRegistry(seed=42), *names)
    plan_c = spec.sample(RngRegistry(seed=43), *names)
    assert plan_a == plan_b
    assert plan_a != plan_c
    kinds = {event.kind for event in plan_a}
    assert kinds == {"crash", "partition", "drop", "delay", "brownout"}
    assert all(0.15 * 10 <= event.at <= 0.7 * 10 for event in plan_a)


# -- wire faults --------------------------------------------------------


def _controller(ctx):
    controller = NetworkFaultController(
        network=ctx.network, rng=ctx.rng.stream("netfaults")
    )
    controller.install()
    return controller


def _send_one(ctx, source="client-0", destination="pprox-ua-0"):
    delivered = []
    ctx.network.send(source, destination, "payload", 100, delivered.append)
    ctx.loop.run()
    return delivered


def test_partition_drops_both_directions_until_healed():
    ctx = SimContext.fresh(1)
    ctx.network.register_role("client-0", "client")
    ctx.network.register_role("pprox-ua-0", "ua")
    controller = _controller(ctx)
    controller.begin_partition("client", "ua")
    assert _send_one(ctx) == []
    assert _send_one(ctx, source="pprox-ua-0", destination="client-0") == []
    assert controller.partition_drops == 2
    controller.end_partition("client", "ua")
    assert controller.quiescent
    assert _send_one(ctx) == ["payload"]


def test_partition_leaves_other_role_pairs_alone():
    ctx = SimContext.fresh(2)
    ctx.network.register_role("pprox-ua-0", "ua")
    ctx.network.register_role("pprox-ia-0", "ia")
    ctx.network.register_role("lrs-stub", "lrs")
    controller = _controller(ctx)
    controller.begin_partition("ua", "ia")
    assert _send_one(ctx, source="pprox-ia-0", destination="lrs-stub") == ["payload"]
    assert controller.partition_drops == 0


def test_drop_window_loses_messages_probabilistically():
    ctx = SimContext.fresh(3)
    controller = _controller(ctx)
    controller.begin_drop(1.0)
    assert _send_one(ctx) == []
    controller.end_drop(1.0)
    assert _send_one(ctx) == ["payload"]
    assert controller.random_drops == 1
    assert ctx.network.messages_dropped == 1


def test_overlapping_drop_windows_use_max_probability():
    ctx = SimContext.fresh(4)
    controller = _controller(ctx)
    controller.begin_drop(0.0)
    controller.begin_drop(1.0)
    assert _send_one(ctx) == []
    controller.end_drop(1.0)
    assert _send_one(ctx) == ["payload"]


def test_delay_window_stretches_delivery():
    ctx = SimContext.fresh(5)
    controller = _controller(ctx)
    baseline_arrival = []
    ctx.network.send("a", "b", "x", 10, lambda _: baseline_arrival.append(ctx.loop.now))
    ctx.loop.run()
    controller.begin_delay(0.5)
    slow_arrival = []
    sent_at = ctx.loop.now
    ctx.network.send("a", "b", "x", 10, lambda _: slow_arrival.append(ctx.loop.now))
    ctx.loop.run()
    assert slow_arrival[0] - sent_at >= 0.5
    assert controller.delays_injected == 1


def test_double_install_raises_unless_same_controller():
    ctx = SimContext.fresh(6)
    controller = _controller(ctx)
    controller.install()  # idempotent for the same controller
    other = NetworkFaultController(network=ctx.network, rng=random.Random(0))
    with pytest.raises(RuntimeError):
        other.install()
    controller.uninstall()
    other.install()


def test_invalid_window_parameters_rejected():
    ctx = SimContext.fresh(7)
    controller = _controller(ctx)
    with pytest.raises(ValueError):
        controller.begin_drop(1.5)
    with pytest.raises(ValueError):
        controller.begin_delay(-0.1)


# -- brownouts ----------------------------------------------------------


def test_brownout_rejects_with_retryable_errors():
    ctx = SimContext.fresh(8)
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    brown = BrownoutLrs(inner=stub, loop=ctx.loop, rng=ctx.rng.stream("brownout"))
    brown.begin(error_rate=1.0)
    replies = []
    brown.handle(make_get("u", "k"), replies.append)
    ctx.loop.run()
    assert replies[0].status == RETRYABLE_STATUS
    assert replies[0].fields == {"retryable": True, "error": "BrownoutError"}
    assert brown.rejected == 1
    assert stub.requests_served == 0


def test_brownout_slows_served_requests():
    ctx = SimContext.fresh(9)
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    brown = BrownoutLrs(
        inner=stub, loop=ctx.loop, rng=ctx.rng.stream("brownout"), extra_delay=0.2
    )
    brown.begin(error_rate=0.0)
    done = []
    brown.handle(make_get("u", "k"), lambda r: done.append(ctx.loop.now))
    ctx.loop.run()
    assert done[0] >= 0.2
    assert brown.slowed == 1
    assert stub.requests_served == 1


def test_brownout_passthrough_when_inactive():
    ctx = SimContext.fresh(10)
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    brown = BrownoutLrs(inner=stub, loop=ctx.loop, rng=ctx.rng.stream("brownout"))
    replies = []
    brown.handle(make_get("u", "k"), replies.append)
    ctx.loop.run()
    assert replies[0].ok
    assert brown.rejected == 0 and brown.slowed == 0
    # Attribute delegation: the wrapper drops into any lrs_picker.
    assert brown.address == stub.address
    assert brown.requests_served == 1


def test_brownout_end_without_begin_raises():
    ctx = SimContext.fresh(11)
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    brown = BrownoutLrs(inner=stub, loop=ctx.loop, rng=ctx.rng.stream("brownout"))
    with pytest.raises(RuntimeError):
        brown.end()


# -- supervised crash + recovery ---------------------------------------


def test_crash_event_kills_then_restarts_with_fresh_generation():
    telemetry = Telemetry()
    ctx, _, deployment = _deployment(telemetry=telemetry)
    service = deployment.service
    victim = service.ua_instances[0]
    supervisor = FaultSupervisor(
        loop=ctx.loop, service=service,
        netfaults=NetworkFaultController(
            network=ctx.network, rng=ctx.rng.stream("netfaults")
        ),
        telemetry=telemetry,
    )
    supervisor.arm(FaultPlan.from_events([
        FaultEvent(at=1.0, kind="crash", target=victim.name, duration=0.5)
    ]))
    ctx.loop.run_until(1.1)
    assert not victim.alive
    ctx.loop.run()
    assert victim.alive
    assert victim.generation == 1
    assert victim.enclave.attested
    assert victim.enclave.name.endswith("-g1")
    assert supervisor.crashes_injected == 1
    assert supervisor.restarts_completed == 1
    events = [e.payload["event"] for e in telemetry.event_log.of_kind("fault")]
    assert "instance_crashed" in events
    assert "instance_restarted" in events


def test_crash_of_dead_instance_is_skipped():
    ctx, _, deployment = _deployment()
    service = deployment.service
    victim = service.ia_instances[0]
    victim.fail()
    supervisor = FaultSupervisor(
        loop=ctx.loop, service=service,
        netfaults=NetworkFaultController(
            network=ctx.network, rng=ctx.rng.stream("netfaults")
        ),
    )
    supervisor.arm(FaultPlan.from_events([
        FaultEvent(at=0.5, kind="crash", target=victim.name, duration=0.1)
    ]))
    ctx.loop.run()
    assert supervisor.crashes_injected == 0
    assert supervisor.skipped == 1
    assert not victim.alive  # nobody restarted it either


def test_health_monitor_ejects_then_readmits_after_restart():
    telemetry = Telemetry()
    ctx, _, deployment = _deployment(seed=32, telemetry=telemetry)
    service = deployment.service
    victim = service.ua_instances[1]
    monitor = deployment.health_monitor(interval=0.2)
    monitor.start()
    supervisor = FaultSupervisor(
        loop=ctx.loop, service=service,
        netfaults=NetworkFaultController(
            network=ctx.network, rng=ctx.rng.stream("netfaults")
        ),
        telemetry=telemetry,
    )
    supervisor.arm(FaultPlan.from_events([
        FaultEvent(at=1.0, kind="crash", target=victim.name, duration=1.0)
    ]))
    ctx.loop.run_until(1.5)
    assert not service.ua_balancer.contains(victim)
    assert monitor.failovers == 1
    ctx.loop.run_until(3.0)
    monitor.stop()
    ctx.loop.run()
    assert service.ua_balancer.contains(victim)
    assert monitor.readmitted == [victim.name]
    # Readmission only happens after attestation + provisioning.
    readmit = next(
        e.payload for e in telemetry.event_log.of_kind("fault")
        if e.payload["event"] == "instance_readmitted"
    )
    assert readmit["attested"] is True
    assert readmit["generation"] == 1
    assert readmit["recovery_seconds"] > 0
    # Recovery histogram observed the eject->readmit span.
    histogram = telemetry.registry.get("pprox_recovery_seconds")
    assert histogram is not None and histogram.count == 1


def test_window_events_are_emitted_in_pairs():
    telemetry = Telemetry()
    ctx, stub, deployment = _deployment(seed=33, telemetry=telemetry)
    brown = BrownoutLrs(inner=stub, loop=ctx.loop, rng=ctx.rng.stream("brownout"))
    supervisor = FaultSupervisor(
        loop=ctx.loop, service=deployment.service,
        netfaults=NetworkFaultController(
            network=ctx.network, rng=ctx.rng.stream("netfaults")
        ),
        lrs=brown,
        telemetry=telemetry,
    )
    supervisor.arm(FaultPlan.from_events([
        FaultEvent(at=0.5, kind="drop", duration=0.5, magnitude=0.5),
        FaultEvent(at=0.6, kind="delay", duration=0.5, magnitude=0.01),
        FaultEvent(at=0.7, kind="partition", target="ua|ia", duration=0.5),
        FaultEvent(at=0.8, kind="brownout", target="lrs", duration=0.5, magnitude=0.5),
    ]))
    ctx.loop.run()
    events = [e.payload["event"] for e in telemetry.event_log.of_kind("fault")]
    assert events.count("fault_window_open") == 4
    assert events.count("fault_window_closed") == 4
    assert supervisor.windows_opened == 4
    assert supervisor.netfaults.quiescent
    assert brown.active == 0


def test_brownout_event_without_wrapper_is_skipped():
    ctx, _, deployment = _deployment(seed=34)
    supervisor = FaultSupervisor(
        loop=ctx.loop, service=deployment.service,
        netfaults=NetworkFaultController(
            network=ctx.network, rng=ctx.rng.stream("netfaults")
        ),
    )
    supervisor.arm(FaultPlan.from_events([
        FaultEvent(at=0.5, kind="brownout", target="lrs", duration=1.0, magnitude=0.5)
    ]))
    ctx.loop.run()
    assert supervisor.skipped == 1
