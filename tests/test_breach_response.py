"""Breach response flows: footnote 1's options, end to end."""

from __future__ import annotations

import pytest

from repro.client import PProxClient
from repro.crypto.keys import KeyFactory
from repro.crypto.provider import FastCryptoProvider
from repro.lrs.service import HarnessService
from repro.proxy import PProxConfig, build_pprox
from repro.proxy.costs import DEFAULT_COSTS
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry


@pytest.fixture
def stack():
    rng = RngRegistry(seed=151)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"), record_flows=False)
    harness = HarnessService(loop=loop, rng=rng.stream("lrs"), frontend_count=3)
    harness.engine.trainer.llr_threshold = 0.0
    provider = FastCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
    service = build_pprox(loop, network, rng, PProxConfig(shuffle_size=0),
                          lrs_picker=harness.pick_frontend, provider=provider)
    client = PProxClient(loop=loop, network=network, provider=provider,
                         service=service, costs=DEFAULT_COSTS, rng=rng.stream("c"))
    factory = KeyFactory(rsa_bits=1024, rng_int=rng.int_fn("rot"),
                         rng_bytes=rng.bytes_fn("rot-b"))
    for user, item in [("a", "i1"), ("a", "i2"), ("b", "i1")]:
        client.post(user, item)
    loop.run()
    return loop, harness, service, client, factory


def test_breach_response_drops_database(stack):
    loop, harness, service, client, factory = stack
    assert harness.engine.event_count == 3
    service.breach_response("IA", factory, lrs_store=harness.engine.store)
    assert harness.engine.event_count == 0


def test_breach_response_without_store_keeps_data(stack):
    loop, harness, service, client, factory = stack
    service.breach_response("IA", factory)
    assert harness.engine.event_count == 3


def test_service_works_after_drop_response(stack):
    """Fresh keys + empty store: the deployment restarts cleanly and
    accumulates new (re-pseudonymized) feedback."""
    loop, harness, service, client, factory = stack
    old_ua = service.provisioner.layer_keys["UA"].symmetric_key
    service.breach_response("UA", factory, lrs_store=harness.engine.store)
    assert service.provisioner.layer_keys["UA"].symmetric_key != old_ua
    done = []
    client.post("a", "i1", on_complete=done.append)
    loop.run()
    assert done[0].ok
    assert harness.engine.event_count == 1


def test_compromised_enclaves_are_cleared(stack):
    loop, harness, service, client, factory = stack
    for instance in service.ia_instances:
        instance.enclave.mark_compromised()
    service.breach_response("IA", factory, lrs_store=harness.engine.store)
    assert all(not i.enclave.compromised for i in service.ia_instances)


def test_rotation_invalidates_old_client_material(stack):
    """A client still holding the pre-rotation public keys can no
    longer be served — its envelopes fail under the new private key.
    (Real deployments push fresh material to the user-side library.)"""
    loop, harness, service, client, factory = stack
    from repro.proxy import protocol

    stale_material = service.client_material
    service.breach_response("UA", factory)
    # Encrypt against the stale keys, decrypt with the rotated ones.
    encoded, _ = protocol.client_encode_get(
        client.provider, stale_material, service.config,
        __import__("repro.rest.messages", fromlist=["make_get"]).make_get("a"),
    )
    from repro.crypto.envelope import unb64

    with pytest.raises(Exception):
        client.provider.asym_decrypt(
            service.provisioner.layer_keys["UA"], unb64(encoded.fields["user"])
        )
    # With refreshed material, service resumes.
    client.get("a", on_complete=lambda c: None)
    loop.run()
