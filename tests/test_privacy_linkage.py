"""Shuffling bound (§6.2): empirical linkage success ~= 1/(S*I)."""

from __future__ import annotations

import pytest

from repro.privacy.linkage import ShuffleLinkageExperiment


@pytest.mark.parametrize("shuffle_size,instances", [(5, 1), (10, 1), (5, 2), (10, 4)])
def test_linkage_probability_matches_theory(shuffle_size, instances):
    experiment = ShuffleLinkageExperiment(
        shuffle_size=shuffle_size, instances=instances, seed=3
    )
    outcome = experiment.run(trials=3000)
    theory = outcome.theoretical_probability
    assert theory == pytest.approx(1.0 / (shuffle_size * instances))
    # Three-sigma binomial tolerance around the theoretical rate.
    sigma = (theory * (1 - theory) / outcome.trials) ** 0.5
    assert abs(outcome.empirical_probability - theory) < 4 * sigma + 1e-9


def test_larger_buffers_reduce_linkage():
    small = ShuffleLinkageExperiment(shuffle_size=2, instances=1, seed=5).run(2000)
    large = ShuffleLinkageExperiment(shuffle_size=10, instances=1, seed=5).run(2000)
    assert large.empirical_probability < small.empirical_probability


def test_more_instances_reduce_linkage():
    """Horizontal scaling of the downstream layer *improves*
    unlinkability (§6.2)."""
    one = ShuffleLinkageExperiment(shuffle_size=5, instances=1, seed=7).run(2000)
    four = ShuffleLinkageExperiment(shuffle_size=5, instances=4, seed=7).run(2000)
    assert four.empirical_probability < one.empirical_probability


def test_no_shuffle_means_certain_linkage():
    """S = 1 with one instance: the adversary always wins."""
    outcome = ShuffleLinkageExperiment(shuffle_size=1, instances=1, seed=9).run(200)
    assert outcome.empirical_probability == 1.0


def test_outcome_accounting():
    outcome = ShuffleLinkageExperiment(shuffle_size=5, instances=2, seed=1).run(100)
    assert outcome.trials == 100
    assert 0 <= outcome.successes <= 100
