"""Shuffle buffer: batch flush, timer flush, randomized order."""

from __future__ import annotations

import random

import pytest

from repro.proxy.shuffler import ShuffleBuffer
from repro.simnet.clock import EventLoop


def _buffer(size=5, timeout=1.0, seed=1):
    loop = EventLoop()
    released = []
    buffer = ShuffleBuffer(
        loop=loop,
        rng=random.Random(seed),
        size=size,
        timeout=timeout,
        release=released.append,
    )
    return loop, buffer, released


def test_holds_until_batch_full():
    loop, buffer, released = _buffer(size=3)
    buffer.add("a")
    buffer.add("b")
    assert released == []
    buffer.add("c")
    assert sorted(released) == ["a", "b", "c"]


def test_flush_releases_all_entries_exactly_once():
    loop, buffer, released = _buffer(size=4)
    for item in "abcd":
        buffer.add(item)
    assert sorted(released) == ["a", "b", "c", "d"]
    assert buffer.pending == 0


def test_order_is_randomized():
    """Across many batches, at least one must be released out of
    arrival order (probability of failure ~ (1/S!)^trials)."""
    permutations = set()
    for seed in range(20):
        _, buffer, released = _buffer(size=5, seed=seed)
        for item in range(5):
            buffer.add(item)
        permutations.add(tuple(released))
    assert len(permutations) > 1
    assert any(p != (0, 1, 2, 3, 4) for p in permutations)


def test_timer_flushes_partial_batch():
    loop, buffer, released = _buffer(size=10, timeout=0.5)
    buffer.add("only")
    loop.run_until(0.4)
    assert released == []
    loop.run_until(0.6)
    assert released == ["only"]
    assert buffer.timer_flushes == 1


def test_timer_resets_after_size_flush():
    loop, buffer, released = _buffer(size=2, timeout=0.5)
    buffer.add("a")
    buffer.add("b")  # size flush; timer cancelled
    loop.run_until(1.0)
    assert buffer.timer_flushes == 0
    buffer.add("c")
    loop.run()
    assert "c" in released
    assert buffer.timer_flushes == 1


def test_counters():
    loop, buffer, released = _buffer(size=2)
    for item in "abcd":
        buffer.add(item)
    assert buffer.flushes == 2
    assert buffer.entries_buffered == 4


def test_size_one_is_passthrough():
    loop, buffer, released = _buffer(size=1)
    buffer.add("x")
    assert released == ["x"]


def test_invalid_parameters_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError, match="size"):
        ShuffleBuffer(loop=loop, rng=random.Random(), size=0, timeout=1.0, release=print)
    with pytest.raises(ValueError, match="timeout"):
        ShuffleBuffer(loop=loop, rng=random.Random(), size=2, timeout=0.0, release=print)


def test_drain_discards_batch_and_cancels_timer():
    """An instance crash drains the buffer: nothing is released, the
    armed timeout never fires, and the drain is counted."""
    loop, buffer, released = _buffer(size=5, timeout=1.0)
    buffer.add("a")
    buffer.add("b")
    assert buffer.drain() == 2
    assert released == []
    assert buffer.pending == 0
    assert buffer.drains == 1
    assert buffer.entries_drained == 2
    assert buffer.last_flush_size == 0
    loop.run()  # the cancelled timer must not flush ghosts
    assert released == []


def test_buffer_usable_again_after_drain():
    loop, buffer, released = _buffer(size=2)
    buffer.add("a")
    buffer.drain()
    buffer.add("x")
    buffer.add("y")
    assert sorted(released) == ["x", "y"]


def test_every_permutation_is_reachable():
    """With enough batches, all 3! = 6 permutations of a 3-batch occur
    — the uniformity the 1/S anonymity argument needs."""
    seen = set()
    for seed in range(200):
        _, buffer, released = _buffer(size=3, seed=seed)
        for item in range(3):
            buffer.add(item)
        seen.add(tuple(released))
    assert len(seen) == 6
