"""Provider hot-path machinery: pseudonym LRU memo, xor helper, batching."""

from __future__ import annotations

import pytest

from repro.crypto import ctr
from repro.crypto.provider import (
    FastCryptoProvider,
    RealCryptoProvider,
    SimCryptoProvider,
    _LruMemo,
)
from repro.crypto.xor import xor_bytes
from repro.simnet.clock import EventLoop
from repro.simnet.monitoring import MetricsCollector, crypto_cache_gauges

KEY = bytes(range(32))


# ---------------------------------------------------------------- xor_bytes


def test_xor_bytes_matches_per_byte_loop():
    a = bytes(range(200))
    b = bytes((i * 7 + 3) % 256 for i in range(200))
    assert xor_bytes(a, b) == bytes(x ^ y for x, y in zip(a, b))


def test_xor_bytes_truncates_to_shorter_input():
    assert xor_bytes(b"\xff\xff\xff", b"\x0f") == b"\xf0"
    assert xor_bytes(b"\x0f", b"\xff\xff\xff") == b"\xf0"


def test_xor_bytes_empty():
    assert xor_bytes(b"", b"anything") == b""
    assert xor_bytes(b"anything", b"") == b""


def test_xor_bytes_preserves_leading_zero_bytes():
    assert xor_bytes(b"\x00\x00\x01", b"\x00\x00\x00") == b"\x00\x00\x01"


def test_xor_bytes_is_involution():
    data = bytes(range(64))
    stream = bytes(reversed(range(64)))
    assert xor_bytes(xor_bytes(data, stream), stream) == data


# ---------------------------------------------------------------- _LruMemo


def test_lru_memo_counts_hits_and_misses():
    memo = _LruMemo(4)
    assert memo.get("a") is None
    memo.put("a", 1)
    assert memo.get("a") == 1
    assert memo.stats() == {"hits": 1, "misses": 1, "size": 1, "maxsize": 4}


def test_lru_memo_evicts_least_recently_used():
    memo = _LruMemo(2)
    memo.put("a", 1)
    memo.put("b", 2)
    assert memo.get("a") == 1  # refresh "a": "b" is now oldest
    memo.put("c", 3)
    assert memo.get("b") is None
    assert memo.get("a") == 1
    assert memo.get("c") == 3
    assert len(memo) == 2


def test_lru_memo_zero_size_disables_caching():
    memo = _LruMemo(0)
    memo.put("a", 1)
    assert memo.get("a") is None
    assert len(memo) == 0


# ------------------------------------------------- RealCryptoProvider memo


def test_real_provider_pseudonym_memo_hits_on_repeats():
    provider = RealCryptoProvider()
    first = provider.pseudonymize(KEY, b"user-42")
    second = provider.pseudonymize(KEY, b"user-42")
    assert first == second
    stats = provider.cache_stats()
    assert stats["pseudonymize"]["hits"] == 1
    assert stats["pseudonymize"]["misses"] == 1


def test_real_provider_memo_results_identical_to_uncached():
    cached = RealCryptoProvider()
    uncached = RealCryptoProvider(pseudonym_cache_size=0)
    for identifier in [b"user-1", b"user-2", b"user-1", b"item-9" * 5]:
        assert cached.pseudonymize(KEY, identifier) == uncached.pseudonymize(KEY, identifier)
        assert cached.pseudonymize(KEY, identifier) == ctr.det_encrypt(KEY, identifier)


def test_real_provider_pseudonymize_seeds_reverse_memo():
    provider = RealCryptoProvider()
    pseudonym = provider.pseudonymize(KEY, b"user-7")
    assert provider.depseudonymize(KEY, pseudonym) == b"user-7"
    stats = provider.cache_stats()
    # The request path already populated the reverse direction.
    assert stats["depseudonymize"]["hits"] == 1
    assert stats["depseudonymize"]["misses"] == 0


def test_real_provider_depseudonymize_without_prior_encrypt():
    provider = RealCryptoProvider()
    pseudonym = ctr.det_encrypt(KEY, b"cold-item")
    assert provider.depseudonymize(KEY, pseudonym) == b"cold-item"
    assert provider.cache_stats()["depseudonymize"]["misses"] == 1


def test_real_provider_memo_is_bounded():
    provider = RealCryptoProvider(pseudonym_cache_size=8)
    for i in range(50):
        provider.pseudonymize(KEY, b"user-%d" % i)
    assert provider.cache_stats()["pseudonymize"]["size"] <= 8
    # Evicted entries still produce correct (recomputed) pseudonyms.
    assert provider.pseudonymize(KEY, b"user-0") == ctr.det_encrypt(KEY, b"user-0")


def test_real_provider_memo_distinguishes_keys():
    provider = RealCryptoProvider()
    other_key = bytes(range(1, 33))
    assert provider.pseudonymize(KEY, b"u") != provider.pseudonymize(other_key, b"u")


# --------------------------------------------------------- batched helpers


@pytest.mark.parametrize("provider_cls", [RealCryptoProvider, FastCryptoProvider, SimCryptoProvider])
def test_pseudonymize_many_roundtrip(provider_cls):
    provider = provider_cls()
    identifiers = [b"user-%d" % i for i in range(5)]
    pseudonyms = provider.pseudonymize_many(KEY, identifiers)
    assert pseudonyms == [provider.pseudonymize(KEY, i) for i in identifiers]
    assert provider.depseudonymize_many(KEY, pseudonyms) == identifiers


# ------------------------------------------------------------ metrics glue


def test_crypto_cache_gauges_sample_hit_ratio():
    loop = EventLoop()
    collector = MetricsCollector(loop=loop, interval=1.0)
    provider = RealCryptoProvider()
    crypto_cache_gauges(collector, provider)
    provider.pseudonymize(KEY, b"user-1")
    provider.pseudonymize(KEY, b"user-1")
    collector.start()
    loop.run_until(2.5)
    series = collector.series["crypto.pseudonymize.hits"]
    assert series.last() == 1.0
    assert collector.series["crypto.pseudonymize.misses"].last() == 1.0


def test_crypto_cache_gauges_skip_providers_without_stats():
    loop = EventLoop()
    collector = MetricsCollector(loop=loop, interval=1.0)
    crypto_cache_gauges(collector, FastCryptoProvider())
    assert not any(name.startswith("crypto.") for name in collector.series)
