"""The live re-key drill: zero downtime, floor intact, linkage-free."""

from __future__ import annotations

import pytest

from repro.experiments.registry import EXPERIMENT_INDEX
from repro.experiments.rotation import RotationResult, run_rotation
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def drill():
    """One shared drill at the defaults (the scenario is deterministic)."""
    return run_rotation(seed=11)


def test_drill_passes_all_acceptance_checks(drill):
    assert drill.problems() == []
    assert drill.ok


def test_rotation_completed_with_zero_aborted_calls(drill):
    assert drill.rotation_completed
    assert drill.final_state == "retired"
    assert (drill.old_epoch, drill.new_epoch) == (0, 1)
    assert drill.issued > 0
    assert drill.failed == 0
    assert drill.completed == drill.issued
    assert drill.outcomes["failed"] == 0
    # Zero downtime is resilience, not luck: the client hedged its way
    # across the crash and the partition before any timeout could fire.
    assert drill.hedges_launched > 0
    assert drill.outcomes.get("hedged", 0) > 0


def test_crash_paused_the_drill_and_recovery_resumed_it(drill):
    assert drill.crashes_injected > 0
    assert drill.restarts_completed == drill.crashes_injected
    assert drill.readmissions >= drill.crashes_injected
    assert drill.partition_drops > 0
    assert drill.pauses > 0
    assert drill.pause_reasons.get("instance_down", 0) > 0
    # ...and yet it retired: paused is a state, never an abort.
    assert drill.rotation_completed


def test_dual_epoch_window_did_real_work(drill):
    # Stale clients kept sending under the outgoing keys after the
    # announce; the UA accepted them via trial decryption...
    assert drill.previous_epoch_decrypts > 0
    # ...while refreshed clients tagged their epoch on the first hop...
    assert drill.epoch_tags_seen > 0
    assert drill.epoch_bumps > 0
    # ...and the background pass translated the whole old prefix.
    assert drill.rekey_events_processed > 0
    assert drill.rekey_users_rekeyed > 0
    assert drill.translate_cache_hits > 0
    assert drill.window_seconds > 0.0


def test_anonymity_floor_holds_at_every_observable_instant(drill):
    assert drill.window_flushes > 0
    assert drill.min_window_flush is not None
    assert drill.min_window_flush >= drill.shuffle_size
    assert drill.effective_anonymity_floor >= drill.required_anonymity


def test_no_wire_identifier_links_across_epochs(drill):
    # The adversary saw plenty of pseudonyms on the inner hops on both
    # sides of the window, and the two populations are disjoint.
    assert drill.pre_announce_pseudonyms > 0
    assert drill.post_retire_pseudonyms > 0
    assert drill.cross_epoch_user_overlap == 0
    # The epoch tag itself never travelled past the client->UA hop.
    assert drill.tag_exposures == []


def test_redaction_audit_clean(drill):
    assert drill.audit_violations == 0


def test_rotation_events_cover_the_full_lifecycle(drill):
    names = [event["event"] for event in drill.rotation_events]
    for expected in (
        "epoch_announced",
        "rotation_paused",
        "rotation_resumed",
        "rekey_cutover",
        "epoch_retired",
    ):
        assert expected in names, f"missing rotation event {expected!r}"
    # Announce strictly precedes retire precedes nothing further.
    assert names.index("epoch_announced") < names.index("epoch_retired")
    assert names[-1] == "epoch_retired"


def test_same_seed_runs_are_identical(drill):
    again = run_rotation(seed=11)
    assert again.rotation_events == drill.rotation_events
    assert again.to_dict() == drill.to_dict()


def test_different_seed_runs_differ(drill):
    other = run_rotation(seed=23)
    assert other.to_dict() != drill.to_dict()


def test_telemetry_artifact_records_the_drill(tmp_path):
    telemetry = Telemetry()
    result = run_rotation(seed=5, rps=120.0, duration=8.0, telemetry=telemetry)
    telemetry.write_artifact(str(tmp_path))
    content = (tmp_path / "telemetry.jsonl").read_text(encoding="utf-8")
    assert '"epoch_announced"' in content
    assert '"epoch_retired"' in content
    assert result.rotation_events  # the same events, structured
    prom = (tmp_path / "telemetry.prom").read_text(encoding="utf-8")
    assert "pprox_rotation_state" in prom
    assert "pprox_rekey_progress_ratio" in prom


def test_rotation_is_registered_experiment():
    experiment = EXPERIMENT_INDEX["rotation"]
    assert "repro.proxy.epochs" in experiment.modules
    assert experiment.bench == "tests/test_rotation_scenario.py"


def test_result_to_dict_is_json_ready(drill):
    import json

    payload = json.dumps(drill.to_dict())
    assert json.loads(payload)["min_window_flush"] == drill.min_window_flush


def test_empty_result_defaults():
    empty = RotationResult(seed=0, rps=0.0, duration=0.0, announce_at=0.0)
    assert empty.required_anonymity == 0
    assert empty.effective_anonymity_floor == 0
    assert not empty.ok  # nothing rotated, so the drill proves nothing
