"""Unit tests of the knowledge-closure engine's resolution steps."""

from __future__ import annotations

import json

import pytest

from repro.crypto.envelope import b64, encode_identifier
from repro.crypto.provider import FastCryptoProvider
from repro.privacy.adversary import ObservedMessage
from repro.privacy.unlinkability import KnowledgeEngine, fifo_correlation


@pytest.fixture
def provider():
    return FastCryptoProvider()


def _message(fields, source="pprox-ua-0", destination="pprox-ia-0",
             kind="request", verb="POST"):
    return ObservedMessage(
        time=0.0, source=source, destination=destination, size_bytes=100,
        kind=kind, verb=verb, fields=fields,
    )


def test_resolve_user_needs_ua_keys(provider, layer_keys):
    ciphertext = b64(provider.asym_encrypt(layer_keys.public_material,
                                           encode_identifier("alice")))
    without = KnowledgeEngine(provider=provider)
    assert without.resolve_user(ciphertext) is None
    with_keys = KnowledgeEngine(provider=provider, ua_keys=layer_keys)
    assert with_keys.resolve_user(ciphertext) == "alice"


def test_resolve_user_handles_pseudonyms(provider, layer_keys):
    pseudonym = b64(provider.pseudonymize(layer_keys.symmetric_key,
                                          encode_identifier("bob")))
    engine = KnowledgeEngine(provider=provider, ua_keys=layer_keys)
    assert engine.resolve_user(pseudonym) == "bob"


def test_resolve_user_cleartext_fallback(provider):
    engine = KnowledgeEngine(provider=provider)
    # Not base64: must be a cleartext identifier (encryption-off mode).
    assert engine.resolve_user("plain-user") == "plain-user"


def test_resolve_user_ignores_catalog_items(provider):
    engine = KnowledgeEngine(provider=provider, catalog={"movie-1"})
    assert engine.resolve_user("movie-1") is None


def test_resolve_item_needs_ia_keys(provider, second_layer_keys):
    ciphertext = b64(provider.asym_encrypt(second_layer_keys.public_material,
                                           encode_identifier("movie-7")))
    without = KnowledgeEngine(provider=provider)
    assert without.resolve_item(ciphertext) is None
    with_keys = KnowledgeEngine(provider=provider, ia_keys=second_layer_keys)
    assert with_keys.resolve_item(ciphertext) == "movie-7"


def test_resolve_item_catalog_membership(provider):
    engine = KnowledgeEngine(provider=provider, catalog={"movie-1"})
    assert engine.resolve_item("movie-1") == "movie-1"
    assert engine.resolve_item("not-in-catalog") is None


def test_resolve_temporary_key(provider, second_layer_keys):
    key = provider.new_temporary_key()
    field_value = b64(provider.asym_encrypt(second_layer_keys.public_material, key))
    engine = KnowledgeEngine(provider=provider, ia_keys=second_layer_keys)
    assert engine.resolve_temporary_key(field_value) == key
    assert KnowledgeEngine(provider=provider).resolve_temporary_key(field_value) is None


def test_harvest_keys_collects_all_tmpkeys(provider, second_layer_keys):
    keys = [provider.new_temporary_key() for _ in range(3)]
    observations = [
        _message({"tmpkey": b64(provider.asym_encrypt(
            second_layer_keys.public_material, key))}, verb="GET")
        for key in keys
    ]
    engine = KnowledgeEngine(provider=provider, ia_keys=second_layer_keys)
    harvested, response_keys = engine.harvest_keys(observations)
    assert sorted(harvested) == sorted(keys)
    assert response_keys == []


def test_trial_decrypt_items_with_harvested_keys(provider, second_layer_keys):
    key = provider.new_temporary_key()
    wire_items = [b64(encode_identifier("movie-1")), b64(encode_identifier("movie-2"))]
    blob = b64(provider.sym_encrypt(key, json.dumps(wire_items).encode()))
    engine = KnowledgeEngine(provider=provider, ia_keys=second_layer_keys)
    # Wrong keys produce nothing; the right key in the set decrypts.
    assert engine._trial_decrypt_items(blob, [provider.new_temporary_key()]) == []
    decoys = [provider.new_temporary_key(), key]
    assert engine._trial_decrypt_items(blob, decoys) == ["movie-1", "movie-2"]


def test_unseal_requires_ua_keys(provider, layer_keys):
    inner = {"user": b64(encode_identifier("carol"))}
    payload = json.dumps({"fields": inner, "resp_key": b64(b"k" * 32)})
    sealed = {"sealed": b64(provider.asym_encrypt(layer_keys.public_material,
                                                  payload.encode()))}
    without = KnowledgeEngine(provider=provider)
    fields, response_key = without.unseal(sealed)
    assert fields == sealed and response_key is None
    with_keys = KnowledgeEngine(provider=provider, ua_keys=layer_keys)
    fields, response_key = with_keys.unseal(sealed)
    assert fields == inner
    assert response_key == b"k" * 32


def test_message_identity_from_endpoints(provider):
    engine = KnowledgeEngine(provider=provider)
    inbound = _message({}, source="client-alice", destination="pprox-ua-0")
    outbound = _message({}, source="pprox-ua-0", destination="client-alice",
                        kind="response", verb=None)
    internal = _message({})
    assert engine.message_identity(inbound) == "client-alice"
    assert engine.message_identity(outbound) == "client-alice"
    assert engine.message_identity(internal) is None


def test_fifo_correlation_pairs_in_order():
    a = [_message({"n": i}) for i in range(3)]
    b = [_message({"m": i}) for i in range(3)]
    pairs = fifo_correlation(a, b)
    assert len(pairs) == 3
    assert pairs[0] == (a[0], b[0])


def test_derive_links_empty_without_material(provider):
    engine = KnowledgeEngine(provider=provider)
    observations = [_message({"user": "x" * 16, "item": "y" * 16})]
    assert engine.derive_links(observations) == set()
