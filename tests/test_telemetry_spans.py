"""Tracer unit tests plus the span-vs-wire parity acceptance check."""

import pytest

from repro.cluster.deployments import MICRO_CONFIGS
from repro.experiments.runner import run_micro
from repro.simnet.tracing import STAGES, BreakdownProbe
from repro.telemetry import PIPELINE_STAGES, Telemetry
from repro.telemetry.spans import Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def drive_full_pipeline(tracer, clock, request_id=1):
    hops = [
        ("client", "ua"),
        ("ua", "ia"),
        ("ia", "lrs"),
        ("lrs", "ia"),
        ("ia", "ua"),
        ("ua", "client"),
    ]
    for src, dst in hops:
        clock.now += 1.0
        tracer.record_hop(request_id, src, dst)
    tracer.end_trace(request_id, ok=True)


def test_tracer_builds_complete_trace_from_hops():
    clock = FakeClock()
    tracer = Tracer(clock)
    drive_full_pipeline(tracer, clock)
    assert tracer.traces_completed == 1
    [trace] = tracer.complete_traces()
    assert trace.is_complete()
    assert list(trace.stages) == list(PIPELINE_STAGES)
    # Each hop advanced the clock by 1s, so every stage lasted 1s.
    assert trace.stage_durations() == {stage: 1.0 for stage in PIPELINE_STAGES}
    # Root span opens at the first hop (t=1) and closes at settle (t=6).
    assert trace.total_duration() == pytest.approx(5.0)
    # Stage roles follow the pipeline, not the sender.
    assert trace.stages["lrs"].role == "lrs"
    assert trace.stages["ua_outbound"].role == "ua"


def test_tracer_mid_pipeline_sighting_is_ignored():
    clock = FakeClock()
    tracer = Tracer(clock)
    tracer.record_hop(42, "ua", "ia")  # never saw client->ua
    assert tracer.active_count == 0
    assert tracer.hops_recorded == 1


def test_tracer_unknown_hop_counted_not_traced():
    clock = FakeClock()
    tracer = Tracer(clock)
    tracer.record_hop(1, "unknown", "ua")
    assert tracer.unknown_hops == 1
    assert tracer.active_count == 0


def test_tracer_abandon_marks_dangling_stage():
    clock = FakeClock()
    tracer = Tracer(clock)
    clock.now = 1.0
    tracer.record_hop(7, "client", "ua")
    clock.now = 2.0
    tracer.abandon(7)
    assert tracer.traces_abandoned == 1
    [trace] = tracer.finished
    assert trace.status == "abandoned"
    assert trace.stages["ua_inbound"].status == "abandoned"
    assert not trace.is_complete()


def test_tracer_annotate_targets_open_stage():
    clock = FakeClock()
    tracer = Tracer(clock)
    tracer.record_hop(1, "client", "ua")
    tracer.annotate(1, shuffle_wait_seconds=0.25)
    tracer.record_hop(1, "ua", "ia")
    tracer.annotate(1, backend="lrs-0")
    trace = tracer._active[1]
    assert trace.stages["ua_inbound"].attributes == {"shuffle_wait_seconds": 0.25}
    assert trace.stages["ia_inbound"].attributes == {"backend": "lrs-0"}


def test_tracer_overflow_evicts_oldest_as_abandoned():
    clock = FakeClock()
    tracer = Tracer(clock, max_active=2)
    for request_id in (1, 2, 3):
        tracer.record_hop(request_id, "client", "ua")
    assert tracer.active_count == 2
    assert tracer.traces_abandoned == 1
    assert tracer.finished[0].request_id == 1


def test_span_duration_requires_closed_span():
    clock = FakeClock()
    tracer = Tracer(clock)
    tracer.record_hop(1, "client", "ua")
    span = tracer._active[1].stages["ua_inbound"]
    with pytest.raises(ValueError):
        _ = span.duration


def test_e2e_spans_match_wire_probe_to_float_precision():
    """Acceptance: every completed request yields a five-stage trace and
    the span-derived stage durations equal the BreakdownProbe's
    wire-level reconstruction on the same run."""
    telemetry = Telemetry()
    probe = BreakdownProbe()
    config = MICRO_CONFIGS["m6"]  # full pipeline: crypto + sgx + shuffling
    result = run_micro(
        config, 25.0, seed=3, runs=1, duration=5.0, trim=1.0,
        telemetry=telemetry, probe=probe,
    )
    completed = sum(report.completed for report in result.reports)
    assert completed > 0
    traces = telemetry.tracer.complete_traces()
    assert len(traces) == completed == probe.completed_count
    for trace in traces:
        assert set(trace.stages) == set(STAGES)

    span_values = telemetry.tracer.stage_values()
    wire_values = probe.stage_values()
    assert tuple(PIPELINE_STAGES) == tuple(STAGES)
    for stage in STAGES:
        spans = sorted(span_values[stage])
        wire = sorted(wire_values[stage])
        assert len(spans) == len(wire)
        for a, b in zip(spans, wire):
            assert a == pytest.approx(b, abs=1e-9)


def test_e2e_no_shuffle_config_also_traces():
    telemetry = Telemetry()
    config = MICRO_CONFIGS["m1"]  # no encryption, no shuffle
    result = run_micro(config, 20.0, seed=5, runs=1, duration=4.0, trim=1.0,
                       telemetry=telemetry)
    completed = sum(report.completed for report in result.reports)
    assert completed > 0
    assert len(telemetry.tracer.complete_traces()) == completed
