"""Golden wire vectors: the two codecs pinned to exact byte literals.

The JSON vectors are captured from the *seed* wire (``Request.body_json``
et al.) and hold :class:`JsonCodec` byte-identical to it; the binary
vectors freeze the v1 frame layout so any accidental change to offsets,
tags or prefixes fails loudly instead of silently versioning the wire.
"""

from __future__ import annotations

import pytest

from repro.crypto.envelope import EnvelopeCodec
from repro.rest.codec import BINARY_WIRE_CODEC, JSON_WIRE_CODEC, CodecError
from repro.rest.messages import Request, Response, Verb

# One fully loaded UA-bound get(u): base64 pseudonym text, raw sealed
# key bytes, and all three fixed-width header fields stamped.
GOLDEN_REQUEST = Request(
    verb=Verb.GET,
    fields={
        "user": "dXNlcg==",
        "tmpkey": b"\x01\x02\x03\x04",
        "deadline": "000004.50000",
        "kepoch": "0007",
        "trace": "tw:0000000000012",
    },
    request_id=7,
    client_address="client-a",
)

#: 4-byte length prefix (63) | "PW" 01 kind=01 | verb=02 flags=07 |
#: deadline[6:18] epoch[18:22] trace[22:38] | count=2 | entries
#: (user: tag 01 type str len 8; tmpkey: tag 03 type bytes len 4).
GOLDEN_REQUEST_FRAME = (
    b"\x00\x00\x00?PW\x01\x01\x02\x07"
    b"000004.50000" b"0007" b"tw:0000000000012"
    b"\x02"
    b"\x01\x02\x00\x00\x00\x08dXNlcg=="
    b"\x03\x01\x00\x00\x00\x04\x01\x02\x03\x04"
)

GOLDEN_RESPONSE = Response(
    status=200,
    fields={"blob": b"\xaa\xbb\xcc", "retryable": False},
    request_id=7,
)

#: length 27 | "PW" 01 kind=02 | status 00c8 | count=2 | entries
#: (blob: tag 07 bytes; retryable: tag 0a json "false").
GOLDEN_RESPONSE_FRAME = (
    b"\x00\x00\x00\x1bPW\x01\x02\x00\xc8\x02"
    b"\x07\x01\x00\x00\x00\x03\xaa\xbb\xcc"
    b"\x0a\x03\x00\x00\x00\x05false"
)


class TestBinaryVectors:
    def test_request_frame_bytes(self):
        assert BINARY_WIRE_CODEC.encode_request(GOLDEN_REQUEST) == GOLDEN_REQUEST_FRAME

    def test_request_frame_decodes_back(self):
        decoded = BINARY_WIRE_CODEC.decode_request(
            GOLDEN_REQUEST_FRAME, request_id=7, client_address="client-a"
        )
        assert decoded.verb == Verb.GET  # self-describing: no verb argument
        materialized = {
            name: bytes(value) if isinstance(value, memoryview) else value
            for name, value in decoded.fields.items()
        }
        assert materialized == GOLDEN_REQUEST.fields
        assert decoded.request_id == 7
        assert decoded.client_address == "client-a"

    def test_response_frame_bytes(self):
        assert (
            BINARY_WIRE_CODEC.encode_response(GOLDEN_RESPONSE)
            == GOLDEN_RESPONSE_FRAME
        )

    def test_response_frame_decodes_back(self):
        decoded = BINARY_WIRE_CODEC.decode_response(GOLDEN_RESPONSE_FRAME, request_id=7)
        assert decoded.status == 200
        assert bytes(decoded.fields["blob"]) == b"\xaa\xbb\xcc"
        assert decoded.fields["retryable"] is False

    def test_severing_offsets(self):
        """The epoch and trace live at exactly the documented byte
        ranges (after the 4-byte length prefix): zeroing them is the
        UA front door's severing operation."""
        frame = GOLDEN_REQUEST_FRAME[4:]
        assert frame[6:18] == b"000004.50000"
        assert frame[18:22] == b"0007"
        assert frame[22:38] == b"tw:0000000000012"

    def test_envelope_payload_bytes(self):
        payload = BINARY_WIRE_CODEC.pack_envelope(
            {"user": "dXNlcg==", "tmpkey": b"\x01\x02"}, b"\x10\x11\x12"
        )
        assert payload == (
            b"EV\x03\x10\x11\x12\x02"
            b"\x01\x02\x00\x00\x00\x08dXNlcg=="
            b"\x03\x01\x00\x00\x00\x02\x01\x02"
        )
        fields, key = BINARY_WIRE_CODEC.unpack_envelope(payload)
        assert key == b"\x10\x11\x12"
        assert fields["user"] == "dXNlcg=="
        assert bytes(fields["tmpkey"]) == b"\x01\x02"

    def test_response_fields_payload_bytes(self):
        payload = BINARY_WIRE_CODEC.pack_response_fields({"blob": b"\xaa\xbb"})
        assert payload == b"RF\x01\x07\x01\x00\x00\x00\x02\xaa\xbb"
        fields = BINARY_WIRE_CODEC.unpack_response_fields(payload)
        assert bytes(fields["blob"]) == b"\xaa\xbb"

    def test_item_payload_is_raw_concatenation(self):
        blobs = [bytes(range(48)), bytes(48)]
        packed = BINARY_WIRE_CODEC.pack_items(blobs)
        assert packed == blobs[0] + blobs[1]
        assert [bytes(b) for b in BINARY_WIRE_CODEC.unpack_items(packed)] == blobs

    def test_batch_frame_packing_bytes(self):
        packed = EnvelopeCodec.pack_frames([b"abc", b"de"])
        assert packed == b"\x00\x00\x00\x02\x00\x00\x00\x03abc\x00\x00\x00\x02de"
        assert [bytes(f) for f in EnvelopeCodec.unpack_frames(packed)] == [b"abc", b"de"]


class TestJsonVectors:
    """The JSON codec *is* the seed wire: sorted compact bodies,
    base64 text blobs."""

    def test_request_body_bytes(self):
        request = Request(
            verb=Verb.GET,
            fields={"user": "dXNlcg==", "tmpkey": "AQIDBA=="},
            request_id=7,
            client_address="client-a",
        )
        body = JSON_WIRE_CODEC.encode_request(request)
        assert body == b'{"tmpkey":"AQIDBA==","user":"dXNlcg=="}'
        assert body == request.body_json().encode("utf-8")  # == seed

    def test_response_body_bytes(self):
        response = Response(status=200, fields={"blob": "qrvM"}, request_id=7)
        body = JSON_WIRE_CODEC.encode_response(response)
        assert body == b'{"blob":"qrvM"}'
        assert body == response.body_json().encode("utf-8")  # == seed

    def test_wire_sizes_match_seed_accounting(self):
        """The latency model must charge the same transport bytes the
        seed's ``size_bytes()`` charged."""
        request = Request(
            verb=Verb.GET, fields={"user": "dXNlcg=="}, request_id=1,
            client_address="c",
        )
        response = Response(status=200, fields={"blob": "qrvM"}, request_id=1)
        assert JSON_WIRE_CODEC.request_size_bytes(request) == request.size_bytes()
        assert JSON_WIRE_CODEC.response_size_bytes(response) == response.size_bytes()

    def test_blob_representation_is_base64(self):
        assert JSON_WIRE_CODEC.wire_value(b"\xaa\xbb\xcc") == "qrvM"
        assert JSON_WIRE_CODEC.blob_value("qrvM") == b"\xaa\xbb\xcc"

    def test_json_frames_are_not_self_describing(self):
        body = b'{"user":"dXNlcg=="}'
        with pytest.raises(CodecError):
            JSON_WIRE_CODEC.decode_request(body)  # verb required
        decoded = JSON_WIRE_CODEC.decode_request(body, verb=Verb.GET)
        assert decoded.verb == Verb.GET
