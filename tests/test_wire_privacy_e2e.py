"""Privacy invariants re-proven end-to-end on the binary wire.

The §6.1 closure analysis, the §4.3 constant-size property and the
reject-uniformity audit were all established on the seed wire; this
suite replays them with ``codec="binary"`` (batch envelopes armed) and
requires the *same verdicts* — including the reproduction's wire-level
case-2 finding and its hardened-hop fix.  A wire format that changed
any of these answers would be a privacy regression, however fast.
"""

from __future__ import annotations

import pytest

from repro.client import PProxClient
from repro.crypto.provider import RealCryptoProvider
from repro.lrs.service import HarnessService
from repro.privacy import Adversary, KnowledgeEngine
from repro.privacy.wire import (
    RejectAuditor,
    constant_size_violations,
    epoch_tag_exposures,
    trace_field_exposures,
)
from repro.proxy import PProxConfig, build_pprox
from repro.proxy.costs import DEFAULT_COSTS
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry

CATALOG = {"i1", "i2", "i3", "i4", "i5"}
FEEDBACK = {
    "alice": ["i1", "i2", "i3"],
    "bob": ["i1", "i2", "i4"],
    "carol": ["i2", "i3", "i4"],
}


class WireScenario:
    """One full posts/train/gets run under a chosen wire codec."""

    def __init__(self, config: PProxConfig, codec, seed: int = 13):
        rng = RngRegistry(seed=seed)
        self.loop = EventLoop()
        self.network = Network(loop=self.loop, rng=rng.stream("net"))
        self.harness = HarnessService(
            loop=self.loop, rng=rng.stream("lrs"), frontend_count=3
        )
        self.harness.engine.trainer.llr_threshold = 0.0
        self.provider = RealCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
        self.service = build_pprox(
            self.loop, self.network, rng, config,
            lrs_picker=self.harness.pick_frontend, provider=self.provider,
            codec=codec,
        )
        self.adversary = Adversary()
        self.adversary.attach(self.network)
        self.adversary.observe_lrs(self.harness.engine.store)
        self.rejects = RejectAuditor()
        self.network.add_wiretap(self.rejects.observe)
        self.client = PProxClient(
            loop=self.loop, network=self.network, provider=self.provider,
            service=self.service, costs=DEFAULT_COSTS, rng=rng.stream("client"),
            codec=self.service.runtime.codec,
        )
        self.results = {}

    def drive_workload(self):
        for user, items in FEEDBACK.items():
            for item in items:
                self.client.post(user, item)
        self.loop.run()
        self.harness.train()
        self.get_phase_start = self.loop.now
        for user in FEEDBACK:
            def capture(user=user):
                def on_complete(call):
                    self.results[user] = (call.ok, sorted(
                        str(item) for item in (call.items or ())
                    ))
                return on_complete

            self.client.get(user, on_complete=capture())
        self.loop.run()
        return self

    def compromise(self, layer: str) -> None:
        instances = (self.service.ua_instances if layer == "UA"
                     else self.service.ia_instances)
        enclave = instances[0].enclave
        enclave.mark_compromised()
        self.adversary.harvest_enclave(layer, enclave)

    def links_full_wire(self):
        engine = KnowledgeEngine.for_adversary(
            self.adversary, self.provider, catalog=CATALOG
        )
        return engine.derive_links(
            self.adversary.observations, self.adversary.lrs_dump()
        )

    def batch_counters(self):
        sealed = sum(i.batch_envelopes_sealed for i in self.service.ua_instances)
        opened = sum(i.batch_envelopes_opened for i in self.service.ia_instances)
        return sealed, opened


SHUFFLED = PProxConfig(shuffle_size=3, shuffle_timeout=0.05)
HARDENED = PProxConfig(shuffle_size=3, shuffle_timeout=0.05, harden_client_hop=True)


@pytest.fixture(scope="module")
def binary_run():
    return WireScenario(SHUFFLED, codec="binary").drive_workload()


@pytest.fixture(scope="module")
def binary_ia_broken(binary_run):
    binary_run.compromise("IA")
    return binary_run


def test_binary_run_completes_and_uses_batch_envelopes(binary_run):
    assert set(binary_run.results) == set(FEEDBACK)
    assert all(ok for ok, _ in binary_run.results.values())
    sealed, opened = binary_run.batch_counters()
    assert sealed > 0, "batch-envelope path never exercised"
    assert sealed == opened


def test_binary_wire_semantic_parity_with_json_and_legacy():
    """Same seed, three wires: the recommendations must be identical —
    the codec changes bytes, never results."""
    runs = {
        label: WireScenario(SHUFFLED, codec=codec).drive_workload().results
        for label, codec in (("legacy", None), ("json", "json"), ("binary", "binary"))
    }
    assert runs["json"] == runs["legacy"]
    assert runs["binary"] == runs["legacy"]


def test_binary_frames_keep_constant_size(binary_run):
    """§4.3 on the binary wire: fixed-offset headers plus raw
    fixed-size ciphertext fields keep every protected hop at one
    frame size regardless of identifiers.  The property holds per
    call type (a post ack and an item response legitimately differ on
    any wire), so it is checked within the get phase."""
    get_flows = [flow for flow in binary_run.network.flows
                 if flow.time >= binary_run.get_phase_start]
    violations = constant_size_violations(get_flows)
    assert violations == [], violations


def test_binary_wire_audits_clean(binary_run):
    assert epoch_tag_exposures(binary_run.adversary.observations) == []
    assert trace_field_exposures(binary_run.adversary.observations) == []
    assert binary_run.rejects.violations() == []


def test_binary_no_compromise_no_links(binary_run):
    assert binary_run.links_full_wire() == set()


def test_binary_wire_finding_still_detected(binary_ia_broken):
    """The wire-level case-2 extension (IA secrets + full wire) must
    reproduce on binary framing too — a codec that *hid* the finding
    would be masking information the adversary demonstrably has."""
    links = binary_ia_broken.links_full_wire()
    assert links, "expected the case-2 wire extension to produce links"


def test_binary_hardened_hop_closes_the_finding():
    scenario = WireScenario(HARDENED, codec="binary").drive_workload()
    assert set(scenario.results) == set(FEEDBACK)
    assert all(ok for ok, _ in scenario.results.values())
    sealed, opened = scenario.batch_counters()
    assert sealed > 0 and sealed == opened
    scenario.compromise("IA")
    assert scenario.links_full_wire() == set()
