"""The fleet drill: a whole failure domain dies mid-split, nobody notices."""

from __future__ import annotations

import json

import pytest

from repro.experiments.registry import EXPERIMENT_INDEX
from repro.fleet import FleetDrillResult, run_fleet_drill
from repro.obs.slo import SloEngine
from repro.telemetry import Telemetry

SEED, RPS, DURATION = 23, 360.0, 6.0


@pytest.fixture(scope="module")
def drill():
    """One shared drill (deterministic, so sharing is safe)."""
    return run_fleet_drill(seed=SEED, rps=RPS, duration=DURATION)


def test_drill_passes_all_acceptance_checks(drill):
    assert drill.problems() == []
    assert drill.ok


def test_domain_kill_cost_zero_client_calls(drill):
    assert drill.issued > 0
    assert drill.failed == 0
    assert drill.goodput >= 0.9
    # The ride-over is retries/hedges re-rolling their nonce (hence
    # their shard), not luck: the client visibly worked for it.
    assert drill.retries_performed + drill.hedges_launched > 0
    assert drill.failovers > 0
    assert drill.routed >= drill.issued


def test_whole_domain_crash_was_injected_and_healed(drill):
    assert drill.crashes_injected == 2 * drill.instances_per_shard
    assert drill.restarts_completed == drill.crashes_injected
    assert drill.ejections >= drill.crashes_injected
    assert drill.readmissions >= drill.ejections


def test_split_completed_with_the_kill_inside_its_window(drill):
    assert drill.splits_started == drill.splits_completed == 1
    assert drill.split_started_at <= drill.kill_time <= drill.split_completed_at
    assert drill.split_flipped_at is not None
    assert drill.shards_final == drill.shards_initial + 1


def test_anonymity_floor_holds_throughout(drill):
    assert drill.window_flushes > 0
    assert drill.min_window_flush >= drill.shuffle_size
    assert drill.min_effective_anonymity >= drill.required_anonymity


def test_every_audit_clean(drill):
    assert drill.tag_exposures == []
    assert drill.trace_exposures == []
    assert drill.shard_violations == []
    assert drill.reject_violations == []
    assert drill.placement_problems == []
    assert drill.audit_violations == 0


def test_fleet_events_cover_the_split_lifecycle(drill):
    names = [event["event"] for event in drill.fleet_events]
    for expected in (
        "shard_split_started",
        "shard_ring_flipped",
        "shard_split_completed",
        "shard_instance_ejected",
        "shard_instance_readmitted",
    ):
        assert expected in names, f"missing fleet event {expected!r}"
    assert names.index("shard_split_started") < names.index("shard_split_completed")


def test_same_seed_drills_are_identical(drill):
    again = run_fleet_drill(seed=SEED, rps=RPS, duration=DURATION)
    assert again.to_dict() == drill.to_dict()
    assert again.fleet_events == drill.fleet_events


def test_slo_verdict_and_telemetry_artifact(tmp_path):
    telemetry = Telemetry()
    slo = SloEngine()
    result = run_fleet_drill(
        seed=5, rps=300.0, duration=5.0, telemetry=telemetry, slo=slo
    )
    assert result.ok
    report = result.slo_report
    assert report is not None and report.ok
    assert {m.name for m in report.measurements} == {
        "goodput", "anonymity_floor", "p99_latency_seconds",
    }
    paths = telemetry.write_artifact(str(tmp_path))
    content = (tmp_path / "telemetry.jsonl").read_text(encoding="utf-8")
    assert '"shard_split_completed"' in content
    assert '"shard_instance_ejected"' in content


def test_result_to_dict_is_json_ready(drill):
    payload = json.dumps(drill.to_dict(), sort_keys=True)
    assert json.loads(payload)["min_window_flush"] == drill.min_window_flush


def test_empty_result_defaults():
    empty = FleetDrillResult(
        seed=0, rps=0.0, duration=0.0, split_at=0.0, kill_at=0.0, outage=0.0
    )
    assert empty.goodput == 0.0
    assert not empty.ok  # nothing happened, so the drill proves nothing


def test_fleet_is_registered_experiment():
    experiment = EXPERIMENT_INDEX["fleet"]
    assert "repro.fleet" in experiment.modules
    assert experiment.bench == "tests/test_fleet_scenario.py"
