"""Layer key material and the key factory."""

from __future__ import annotations

import random

import pytest

from repro.crypto.keys import SYMMETRIC_KEY_BYTES, KeyFactory, LayerKeys


def _factory(seed: int) -> KeyFactory:
    rng = random.Random(seed)
    return KeyFactory(
        rsa_bits=1024,
        rng_int=lambda bound: rng.randrange(bound),
        rng_bytes=lambda n: rng.getrandbits(8 * n).to_bytes(n, "big") if n else b"",
    )


def test_layer_keys_validates_symmetric_key_size():
    factory = _factory(1)
    keys = factory.layer_keys()
    with pytest.raises(ValueError, match="symmetric key"):
        LayerKeys(private_key=keys.private_key, symmetric_key=b"short")


def test_factory_produces_working_keys():
    keys = _factory(2).layer_keys()
    public = keys.public_material.public_key
    assert keys.private_key.decrypt(public.encrypt(b"ping")) == b"ping"


def test_factory_is_deterministic():
    assert _factory(3).layer_keys().symmetric_key == _factory(3).layer_keys().symmetric_key


def test_factory_seeds_differ():
    assert _factory(4).layer_keys().private_key.n != _factory(5).layer_keys().private_key.n


def test_temporary_key_length():
    assert len(_factory(6).temporary_key()) == SYMMETRIC_KEY_BYTES


def test_public_material_hides_private_key():
    keys = _factory(7).layer_keys()
    material = keys.public_material
    assert not hasattr(material, "private_key")
    assert not hasattr(material, "symmetric_key")
