"""Event store: the MongoDB-like feedback persistence layer."""

from __future__ import annotations

from repro.lrs.store import EventStore


def test_insert_and_history():
    store = EventStore()
    store.insert("u1", "i1")
    store.insert("u1", "i2")
    store.insert("u2", "i1")
    assert store.user_history("u1") == ["i1", "i2"]
    assert store.user_history("u2") == ["i1"]


def test_history_limit_keeps_most_recent():
    store = EventStore()
    for index in range(10):
        store.insert("u", f"i{index}")
    assert store.user_history("u", limit=3) == ["i7", "i8", "i9"]


def test_unknown_user_has_empty_history():
    assert EventStore().user_history("ghost") == []


def test_item_audience():
    store = EventStore()
    store.insert("u1", "i1")
    store.insert("u2", "i1")
    assert store.item_audience("i1") == ["u1", "u2"]


def test_users_and_items_in_first_seen_order():
    store = EventStore()
    store.insert("b-user", "z-item")
    store.insert("a-user", "y-item")
    assert store.users() == ["b-user", "a-user"]
    assert store.items() == ["z-item", "y-item"]


def test_interactions_iterates_in_insertion_order():
    store = EventStore()
    store.insert("u1", "i1")
    store.insert("u2", "i2")
    assert list(store.interactions()) == [("u1", "i1"), ("u2", "i2")]


def test_payload_is_stored():
    store = EventStore()
    event = store.insert("u", "i", payload="rating=5")
    assert event.payload == "rating=5"


def test_dump_is_the_adversary_view():
    store = EventStore()
    store.insert("pseudo-u", "pseudo-i")
    dump = store.dump()
    assert len(dump) == 1
    assert dump[0].user == "pseudo-u"
    # Dump is a copy: mutating it does not affect the store.
    dump.clear()
    assert len(store) == 1


def test_clear_resets_everything():
    store = EventStore()
    store.insert("u", "i")
    store.clear()
    assert len(store) == 0
    assert store.user_history("u") == []


def test_sequence_numbers_are_monotonic():
    store = EventStore()
    events = [store.insert("u", f"i{n}") for n in range(3)]
    assert [event.sequence for event in events] == [0, 1, 2]
