"""Overload protection: breaker, limiter, admission, deadlines, guard.

Unit coverage of :mod:`repro.overload` plus the layer-level behaviours
it hooks into: typed NoUpstream rejection at the UA, uniform rejects
on every shed path, and the client's single-budget deadline semantics
across retries and hedges (satellite of the overload PR).
"""

from __future__ import annotations

import pytest

from repro.context import Deployment, SimContext
from repro.faults import BrownoutLrs
from repro.lrs.stub import StubLrs
from repro.overload import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DEADLINE_FIELD,
    DEADLINE_WIDTH,
    MAX_DEADLINE,
    AdmissionController,
    AimdLimiter,
    CircuitBreaker,
    GuardedLrs,
    OverloadPolicy,
    OverloadSignal,
    charge,
    decode_deadline,
    encode_deadline,
    is_uniform_reject,
    reject_size_bytes,
    stamp_deadline,
    uniform_reject,
)
from repro.privacy.wire import hop_of
from repro.proxy import PProxConfig
from repro.rest.messages import make_get


# -- circuit breaker ----------------------------------------------------


def test_breaker_trips_after_failure_streak():
    breaker = CircuitBreaker(failure_threshold=3)
    assert breaker.state == BREAKER_CLOSED
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED and breaker.allow()
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    assert breaker.trips == 1
    assert not breaker.allow()


def test_breaker_success_resets_the_streak():
    breaker = CircuitBreaker(failure_threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED  # streak broken, no trip


def test_breaker_half_open_probe_recloses_on_success():
    now = [0.0]
    breaker = CircuitBreaker(
        clock=lambda: now[0], failure_threshold=1, reset_timeout=1.0
    )
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    now[0] = 0.5
    assert not breaker.allow()  # still inside the reset window
    now[0] = 1.0
    assert breaker.allow()  # the half-open probe
    assert breaker.state == BREAKER_HALF_OPEN
    assert not breaker.allow()  # only one probe allowed
    breaker.record_success()
    assert breaker.state == BREAKER_CLOSED
    assert breaker.allow()


def test_breaker_half_open_failure_reopens():
    now = [0.0]
    breaker = CircuitBreaker(
        clock=lambda: now[0], failure_threshold=1, reset_timeout=1.0
    )
    breaker.record_failure()
    now[0] = 1.5
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    assert breaker.trips == 2
    assert breaker.opened_at == 1.5  # reset window restarts from now


# -- AIMD limiter -------------------------------------------------------


def test_aimd_rejects_at_limit_and_releases():
    limiter = AimdLimiter(initial=2.0)
    assert limiter.try_acquire() and limiter.try_acquire()
    assert not limiter.try_acquire()
    assert limiter.rejected_total == 1
    limiter.release(True)
    assert limiter.try_acquire()


def test_aimd_additive_increase_multiplicative_decrease():
    limiter = AimdLimiter(initial=8.0, max_limit=64.0)
    limiter.try_acquire()
    limiter.release(True)
    assert limiter.limit == pytest.approx(8.0 + 1.0 / 8.0)
    limiter.try_acquire()
    limiter.release(False)
    assert limiter.limit == pytest.approx((8.0 + 1.0 / 8.0) * 0.5)
    assert limiter.backoffs == 1


def test_aimd_clamps_to_bounds():
    limiter = AimdLimiter(initial=1.0, min_limit=1.0, max_limit=2.0)
    limiter.try_acquire()
    limiter.release(False)
    assert limiter.limit == 1.0  # never below min
    for _ in range(50):
        limiter.try_acquire()
        limiter.release(True)
    assert limiter.limit == 2.0  # never above max


# -- admission control --------------------------------------------------


def test_admission_guards_sojourn_pressure_and_depth():
    controller = AdmissionController(max_sojourn=0.25, max_pressure=1.0, max_depth=10)
    assert controller.admit(OverloadSignal()) is None
    assert controller.admit(OverloadSignal(queue_sojourn=0.3)) == "sojourn"
    assert controller.admit(OverloadSignal(epc_pressure=1.5)) == "epc_pressure"
    assert controller.admit(OverloadSignal(queue_depth=10)) == "queue_depth"
    assert controller.admitted == 1 and controller.rejected == 3
    assert controller.rejected_by_reason == {
        "sojourn": 1, "epc_pressure": 1, "queue_depth": 1,
    }


# -- deadline budgets ---------------------------------------------------


def test_deadline_encoding_is_fixed_width():
    for value in (0.0, 0.5, 1.234567, 99.9, MAX_DEADLINE, MAX_DEADLINE * 2, -3.0):
        assert len(encode_deadline(value)) == DEADLINE_WIDTH
    assert encode_deadline(-3.0) == encode_deadline(0.0)  # clamped


def test_stamp_decode_roundtrip_and_charge():
    request = make_get("alice")
    stamped = stamp_deadline(request, 0.75)
    assert decode_deadline(stamped) == pytest.approx(0.75)
    assert DEADLINE_FIELD not in request.fields  # original untouched
    assert stamp_deadline(request, None) is request
    assert decode_deadline(request) is None
    assert charge(0.75, 0.5) == pytest.approx(0.25)
    assert charge(None, 0.5) is None
    assert charge(0.75, -1.0) == pytest.approx(0.75)  # elapsed never negative


# -- the uniform reject -------------------------------------------------


def test_uniform_reject_is_constant_size_and_canonical():
    one, two = uniform_reject(1), uniform_reject(987654)
    assert one.fields == two.fields
    assert one.size_bytes() == two.size_bytes() == reject_size_bytes()
    assert is_uniform_reject(one)
    assert not one.ok and one.fields["retryable"] is True
    # No cause ever travels: the canonical body has exactly these keys.
    assert sorted(one.fields) == ["error", "pad", "retryable"]


# -- GuardedLrs ---------------------------------------------------------


def _guarded(ctx, policy=None, inner=None):
    policy = policy or OverloadPolicy()
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    wrapped = inner(stub) if inner is not None else stub
    guard = GuardedLrs(
        inner=wrapped,
        breaker=policy.make_breaker(clock=lambda: ctx.loop.now),
        limiter=policy.make_limiter(),
    )
    return stub, wrapped, guard


def test_guard_sheds_expired_deadline_before_inner():
    ctx = SimContext.fresh(21)
    stub, _, guard = _guarded(ctx)
    replies = []
    guard.handle(stamp_deadline(make_get("u"), 0.0), replies.append)
    ctx.loop.run()
    assert guard.expired_rejections == 1
    assert stub.requests_served == 0
    assert is_uniform_reject(replies[0])


def test_guard_limiter_bounds_inflight_work():
    ctx = SimContext.fresh(22)
    policy = OverloadPolicy(limiter_initial=1.0)
    stub, _, guard = _guarded(ctx, policy=policy)
    replies = []
    guard.handle(make_get("u1"), replies.append)
    guard.handle(make_get("u2"), replies.append)  # over the window
    ctx.loop.run()
    assert guard.limiter_rejections == 1
    assert stub.requests_served == 1
    rejected = [r for r in replies if not r.ok]
    assert len(rejected) == 1 and is_uniform_reject(rejected[0])


def test_guard_composes_with_brownout_trips_then_recovers():
    """Retryable brownout 503s trip the breaker; a half-open probe
    after the reset timeout re-closes it once the brownout ends."""
    ctx = SimContext.fresh(23)
    policy = OverloadPolicy(breaker_failure_threshold=3, breaker_reset_timeout=0.5)
    stub, brown, guard = _guarded(
        ctx, policy=policy,
        inner=lambda stub: BrownoutLrs(
            inner=stub, loop=ctx.loop, rng=ctx.rng.stream("brownout")
        ),
    )
    brown.begin(error_rate=1.0)
    for index in range(3):
        guard.handle(make_get(f"u{index}"), lambda r: None)
        ctx.loop.run()
    assert guard.breaker.state == BREAKER_OPEN
    assert guard.failures_observed == 3

    # While open: local reject, no wire trip, no brownout load.
    rejected_before = brown.rejected
    replies = []
    guard.handle(make_get("blocked"), replies.append)
    ctx.loop.run()
    assert guard.breaker_rejections == 1
    assert brown.rejected == rejected_before
    assert is_uniform_reject(replies[0])

    # Heal the LRS, let the reset window pass, probe, recover.
    brown.end()
    ctx.loop.schedule(0.6, lambda: None)
    ctx.loop.run()
    done = []
    guard.handle(make_get("probe"), done.append)
    ctx.loop.run()
    assert done[0].ok
    assert guard.breaker.state == BREAKER_CLOSED
    assert stub.requests_served == 1


def test_guard_delegates_unknown_attributes():
    ctx = SimContext.fresh(24)
    stub, _, guard = _guarded(ctx)
    assert guard.address == stub.address  # lrs_picker-compatible


# -- layer integration: NoUpstream + uniform shed replies ---------------


def _overload_deployment(seed=31, policy=None, client_options=None, lrs=None):
    ctx = SimContext.fresh(seed)
    stub = lrs if lrs is not None else StubLrs(
        loop=ctx.loop, rng=ctx.rng.stream("stub")
    )
    deployment = Deployment.build(
        ctx=ctx,
        config=PProxConfig(
            encryption=False, sgx=False, shuffle_size=0,
            ua_instances=1, ia_instances=1, balancing="round-robin",
        ),
        lrs_picker=lambda: stub,
        overload=policy if policy is not None else OverloadPolicy(),
    )
    client = deployment.client(**(client_options or {}))
    return ctx, stub, deployment, client


def test_ua_rejects_uniformly_when_all_ia_ejected():
    """Health ejection emptying the IA pool must not crash the UA: the
    request is counted as an upstream shed and the client receives the
    canonical retryable reject."""
    ctx, _, deployment, client = _overload_deployment(
        client_options={"max_retries": 0}
    )
    service = deployment.service
    for instance in list(service.ia_instances):
        service.ia_balancer.eject(instance)

    rejects = []

    def tap(record, payload):
        if hop_of(record) == ("ua", "client") and getattr(payload, "ok", True) is False:
            rejects.append(payload)

    ctx.network.add_wiretap(tap)
    calls = []
    client.get("alice", on_complete=calls.append)
    ctx.loop.run()

    ua = service.ua_instances[0]
    assert ua.no_upstream == 1
    assert ua.shed_totals.get(("upstream", "no_upstream")) == 1
    assert not calls[0].ok
    assert rejects and all(is_uniform_reject(reject) for reject in rejects)


def test_deadline_expired_request_shed_at_front_door():
    ctx, stub, deployment, client = _overload_deployment(seed=32)
    ua = deployment.service.ua_instances[0]
    replies = []
    expired = stamp_deadline(make_get("alice", client_address="client-0"), 0.0)
    ua.receive_request(expired, replies.append)
    ctx.loop.run()
    assert ua.shed_totals.get(("deadline", "expired")) == 1
    assert stub.requests_served == 0  # shed before any enclave work
    assert is_uniform_reject(replies[0])


def test_shed_events_pass_role_aware_redaction_audit():
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    ctx = SimContext.fresh(33, telemetry=telemetry)
    telemetry.bind(ctx.loop, run_label="overload-audit-test")
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    deployment = Deployment.build(
        ctx=ctx,
        config=PProxConfig(
            encryption=False, sgx=False, shuffle_size=0,
            ua_instances=1, ia_instances=1, balancing="round-robin",
        ),
        lrs_picker=lambda: stub,
        overload=OverloadPolicy(),
    )
    client = deployment.client(max_retries=0)
    for instance in list(deployment.service.ia_instances):
        deployment.service.ia_balancer.eject(instance)
    client.get("alice", on_complete=lambda call: None)
    ctx.loop.run()
    shed_events = [e for e in telemetry.event_log.events if e.kind == "shed"]
    assert shed_events, "shedding emitted no structured event"
    assert telemetry.audit() == []


# -- client deadline budget vs retries and hedging (satellite) ----------


def test_deadline_budget_stamps_every_attempt_fixed_width():
    ctx, _, _, client = _overload_deployment(
        seed=34, client_options={"deadline_budget": 0.9}
    )
    stamped = []

    def tap(record, payload):
        if hop_of(record) == ("client", "ua"):
            stamped.append(payload.fields.get(DEADLINE_FIELD))

    ctx.network.add_wiretap(tap)
    calls = []
    client.get("alice", on_complete=calls.append)
    ctx.loop.run()
    assert calls[0].ok
    assert stamped and all(len(value) == DEADLINE_WIDTH for value in stamped)
    assert float(stamped[0]) == pytest.approx(0.9, abs=1e-6)


def test_no_retry_scheduled_past_expiry():
    """The budget is one per *call*: once now + backoff would cross the
    expiry, the client settles instead of burning another attempt."""
    ctx, _, deployment, client = _overload_deployment(
        seed=35,
        client_options={
            "deadline_budget": 0.3, "max_retries": 10,
            "request_timeout": 5.0, "backoff_base": 0.2, "backoff_jitter": 0.0,
        },
    )
    for instance in list(deployment.service.ia_instances):
        deployment.service.ia_balancer.eject(instance)
    calls = []
    client.get("alice", on_complete=calls.append)
    ctx.loop.run()
    call = calls[0]
    assert not call.ok
    assert client.retries_performed < 10
    assert call.completed_at <= call.started_at + 0.3 + 1e-9


def test_hedge_does_not_double_spend_the_budget():
    """A hedge launched hedge_delay later carries only the *remaining*
    budget — the two attempts share one expiry."""

    class SlowLrs:
        def __init__(self, inner, loop, delay):
            self.inner, self.loop, self.delay = inner, loop, delay

        def handle(self, request, reply):
            self.loop.schedule(
                self.delay, lambda: self.inner.handle(request, reply)
            )

        def __getattr__(self, name):
            return getattr(self.inner, name)

    ctx = SimContext.fresh(36)
    slow = SlowLrs(
        StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub")), ctx.loop, 0.6
    )
    deployment = Deployment.build(
        ctx=ctx,
        config=PProxConfig(
            encryption=False, sgx=False, shuffle_size=0,
            ua_instances=1, ia_instances=1, balancing="round-robin",
        ),
        lrs_picker=lambda: slow,
        overload=OverloadPolicy(),
    )
    client = deployment.client(
        deadline_budget=1.5, hedge_delay=0.2, request_timeout=5.0, max_retries=0
    )
    budgets = []

    def tap(record, payload):
        if hop_of(record) == ("client", "ua"):
            budgets.append(decode_deadline(payload))

    ctx.network.add_wiretap(tap)
    calls = []
    client.get("alice", on_complete=calls.append)
    ctx.loop.run()
    assert calls[0].ok
    assert client.hedges_launched == 1
    assert len(budgets) == 2
    first, hedge = budgets
    assert first == pytest.approx(1.5, abs=1e-6)
    assert hedge < first  # no fresh budget for the hedge
    assert hedge == pytest.approx(1.5 - 0.2, abs=0.05)


# -- OverloadSignal consumers: autoscaler and health monitor ------------


def _plant_stale_ingress(ctx, ua):
    """Park an entry in the ingress queue; its sojourn grows as the
    virtual clock advances, making the instance read as overloaded."""
    ua.ingress.push((make_get("ghost", client_address="client-0"),
                     lambda response: None, ctx.loop.now, None))


def test_autoscaler_scales_up_on_overload_signal():
    from repro.cluster.autoscaler import ElasticScaler

    ctx, _, deployment, _ = _overload_deployment(seed=37)
    service = deployment.service
    scaler = ElasticScaler(
        loop=ctx.loop, service=service, interval=1.0,
        overload_sojourn_threshold=0.1,
    )
    scaler.start()
    ua = service.ua_instances[0]
    _plant_stale_ingress(ctx, ua)
    # Advance past the first tick: sojourn ~1.0s > threshold there.
    ctx.loop.run_until(1.05)
    scaler.stop()
    ctx.loop.run()  # drain the final (no-op) tick
    assert scaler.overload_scale_ups >= 1
    actions = [decision.action for decision in scaler.decisions]
    assert "scale-up-overload" in actions
    assert len(service.ua_instances) == 2


def test_health_monitor_emits_edge_triggered_overload_events():
    from repro.cluster.health import HealthMonitor
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    ctx = SimContext.fresh(38, telemetry=telemetry)
    telemetry.bind(ctx.loop, run_label="overload-health-test")
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    deployment = Deployment.build(
        ctx=ctx,
        config=PProxConfig(
            encryption=False, sgx=False, shuffle_size=0,
            ua_instances=1, ia_instances=1, balancing="round-robin",
        ),
        lrs_picker=lambda: stub,
        overload=OverloadPolicy(),
    )
    service = deployment.service
    monitor = HealthMonitor(
        loop=ctx.loop, service=service, interval=0.5,
        telemetry=telemetry, overload_sojourn_threshold=0.1,
    )
    monitor.start()
    ua = service.ua_instances[0]
    _plant_stale_ingress(ctx, ua)
    ctx.loop.run_until(1.2)  # two probes fire while overloaded
    assert ua.ingress.pop() is not None  # drain: sojourn back to zero
    ctx.loop.run_until(1.8)  # next probe sees recovery
    monitor.stop()
    ctx.loop.run()  # drain the final (no-op) probe
    events = [
        event.payload["event"]
        for event in telemetry.event_log.events
        if event.kind == "fault"
        and event.payload.get("event", "").startswith("instance_overload")
    ]
    # Edge-triggered: one onset despite multiple overloaded probes,
    # then exactly one clear.
    assert events == ["instance_overloaded", "instance_overload_cleared"]
    assert telemetry.audit() == []
