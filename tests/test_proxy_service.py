"""Proxy service assembly: provisioning, scaling, breach response."""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyFactory
from repro.lrs.stub import StubLrs
from repro.proxy import PProxConfig, build_pprox
from repro.proxy.service import IA_CODE_IDENTITY, UA_CODE_IDENTITY
from repro.sgx.enclave import EnclaveMeasurement
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry


def _service(config=None, seed=31):
    rng = RngRegistry(seed=seed)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"))
    stub = StubLrs(loop=loop, rng=rng.stream("stub"))
    service = build_pprox(
        loop, network, rng, config or PProxConfig(), lrs_picker=lambda: stub
    )
    return rng, service


def test_builds_requested_instance_counts():
    _, service = _service(PProxConfig(ua_instances=3, ia_instances=2))
    assert len(service.ua_instances) == 3
    assert len(service.ia_instances) == 2
    assert len(service.ua_balancer) == 3


def test_all_enclaves_attested_and_provisioned():
    _, service = _service()
    for enclave in service.all_enclaves():
        assert enclave.attested
        assert enclave.provisioned


def test_layer_measurements_differ():
    assert EnclaveMeasurement.of_code(UA_CODE_IDENTITY) != EnclaveMeasurement.of_code(
        IA_CODE_IDENTITY
    )


def test_layers_have_distinct_keys():
    _, service = _service()
    ua = service.provisioner.layer_keys["UA"]
    ia = service.provisioner.layer_keys["IA"]
    assert ua.private_key.n != ia.private_key.n
    assert ua.symmetric_key != ia.symmetric_key


def test_same_layer_instances_share_keys():
    """§5: all enclaves from the same layer are provisioned with the
    same secrets (no shared mutable state needed)."""
    _, service = _service(PProxConfig(ua_instances=2, ia_instances=2))
    from repro.sgx.provisioning import UA_SECRET_K

    keys = {inst.enclave.secret(UA_SECRET_K) for inst in service.ua_instances}
    assert len(keys) == 1


def test_scale_out_attests_new_enclave():
    _, service = _service()
    new_instance = service.scale_ua()
    assert new_instance.enclave.attested
    assert new_instance.enclave.provisioned
    assert len(service.ua_instances) == 2


def test_client_material_exposes_public_halves_only():
    _, service = _service()
    material = service.client_material
    assert material.ua.public_key.n == service.provisioner.layer_keys["UA"].private_key.n
    assert not hasattr(material.ua, "symmetric_key")


def test_entry_picks_a_ua_instance():
    _, service = _service(PProxConfig(ua_instances=2))
    assert service.entry() in service.ua_instances


def test_rotate_layer_replaces_keys_everywhere():
    rng, service = _service()
    old_public = service.client_material.ua.public_key.n
    factory = KeyFactory(
        rsa_bits=1024,
        rng_int=rng.int_fn("rotation"),
        rng_bytes=rng.bytes_fn("rotation-bytes"),
    )
    service.rotate_layer("UA", factory)
    assert service.client_material.ua.public_key.n != old_public
    for instance in service.ua_instances:
        assert not instance.enclave.compromised


def test_rotation_clears_compromise_flag():
    rng, service = _service()
    service.ua_instances[0].enclave.mark_compromised()
    factory = KeyFactory(
        rsa_bits=1024,
        rng_int=rng.int_fn("rotation"),
        rng_bytes=rng.bytes_fn("rotation-bytes"),
    )
    service.rotate_layer("UA", factory)
    assert not service.ua_instances[0].enclave.compromised


def test_deterministic_build_for_same_seed():
    _, one = _service(seed=55)
    _, two = _service(seed=55)
    assert (
        one.provisioner.layer_keys["UA"].symmetric_key
        == two.provisioner.layer_keys["UA"].symmetric_key
    )
