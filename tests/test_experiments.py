"""Experiment harness: runners, figure builders, report rendering."""

from __future__ import annotations

import pytest

from repro.cluster.deployments import MACRO_BASELINES, MACRO_FULL, MICRO_CONFIGS
from repro.experiments.figures import FigureData, figure6, figure7
from repro.experiments.report import render_figure, render_medians, render_table2, render_table3
from repro.experiments.runner import RunResult, run_baseline, run_full, run_micro
from repro.workload.scenario import ScenarioTimings

QUICK = dict(runs=1, duration=8.0, trim=2.0)
QUICK_TIMINGS = ScenarioTimings.quick()


def test_run_micro_produces_samples():
    result = run_micro(MICRO_CONFIGS["m1"], 50, seed=2, **QUICK)
    assert result.window_latencies
    assert not result.saturated
    assert result.summary().median < 0.05


def test_run_micro_is_deterministic():
    one = run_micro(MICRO_CONFIGS["m3"], 50, seed=3, **QUICK)
    two = run_micro(MICRO_CONFIGS["m3"], 50, seed=3, **QUICK)
    assert one.window_latencies == two.window_latencies


def test_run_micro_seed_changes_results():
    one = run_micro(MICRO_CONFIGS["m3"], 50, seed=3, **QUICK)
    two = run_micro(MICRO_CONFIGS["m3"], 50, seed=4, **QUICK)
    assert one.window_latencies != two.window_latencies


def test_run_micro_aggregates_runs():
    single = run_micro(MICRO_CONFIGS["m1"], 50, seed=5, runs=1, duration=8.0, trim=2.0)
    double = run_micro(MICRO_CONFIGS["m1"], 50, seed=5, runs=2, duration=8.0, trim=2.0)
    assert len(double.window_latencies) == 2 * len(single.window_latencies)


def test_micro_overload_is_flagged_saturated():
    result = run_micro(MICRO_CONFIGS["m6"], 400, seed=2, **QUICK)
    assert result.saturated


def test_run_baseline_and_full():
    baseline = run_baseline(MACRO_BASELINES["b1"], 50, seed=2, runs=1,
                            timings=QUICK_TIMINGS, workload_scale=0.003)
    full = run_full(MACRO_FULL["f1"], 50, seed=2, runs=1,
                    timings=QUICK_TIMINGS, workload_scale=0.003)
    assert baseline.window_latencies and full.window_latencies
    # The full system pays the proxy + shuffling overhead.
    assert full.summary().median > baseline.summary().median


def test_run_baseline_rejects_full_config():
    with pytest.raises(ValueError):
        run_baseline(MACRO_FULL["f1"], 50)


def test_run_full_rejects_baseline_config():
    with pytest.raises(ValueError):
        run_full(MACRO_BASELINES["b1"], 50)


def test_figure_builders_produce_series():
    data = figure6(seed=2, runs=1, duration=8.0, trim=2.0, rps_grid=[50])
    assert set(data.series) == {"m1", "m2", "m3", "m4"}
    point = data.point("m1", 50)
    assert point.summary is not None
    medians = data.medians("m1")
    assert 50 in medians


def test_figure_data_point_lookup_missing():
    data = FigureData("figX", "test")
    with pytest.raises(KeyError):
        data.point("m1", 50)


def test_render_figure_contains_all_rows():
    data = figure7(seed=2, runs=1, duration=8.0, trim=2.0, rps_grid=[50])
    text = render_figure(data)
    for name in ("m3", "m5", "m6"):
        assert name in text
    assert "med" in text


def test_render_medians_compact_view():
    data = figure6(seed=2, runs=1, duration=8.0, trim=2.0, rps_grid=[50])
    text = render_medians(data)
    assert "m1:" in text and "50rps=" in text


def test_render_table2_lists_all_micro_configs():
    text = render_table2()
    for name in MICRO_CONFIGS:
        assert name in text
    assert "enc=*" in text  # m4's star notation


def test_render_table3_lists_all_macro_configs():
    text = render_table3()
    for name in list(MACRO_BASELINES) + list(MACRO_FULL):
        assert name in text
    assert "no proxy" in text
