"""Load-balancing policies and pool management."""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

import pytest

from repro.simnet.loadbalancer import (
    BalancerError,
    LeastPendingPolicy,
    LoadBalancer,
    NoUpstream,
    RandomPolicy,
    RoundRobinPolicy,
    make_policy,
)


@dataclass
class FakeBackend:
    name: str
    pending: int = 0


def test_round_robin_cycles():
    balancer = LoadBalancer(name="lb", policy=RoundRobinPolicy())
    backends = [FakeBackend(f"b{i}") for i in range(3)]
    for backend in backends:
        balancer.add(backend)
    picks = [balancer.pick().name for _ in range(6)]
    assert picks == ["b0", "b1", "b2", "b0", "b1", "b2"]


def test_random_policy_covers_all_backends():
    balancer = LoadBalancer(name="lb", policy=RandomPolicy(rng=random.Random(1)))
    for index in range(4):
        balancer.add(FakeBackend(f"b{index}"))
    counts = Counter(balancer.pick().name for _ in range(400))
    assert set(counts) == {"b0", "b1", "b2", "b3"}
    # Roughly uniform: no backend below half the fair share.
    assert min(counts.values()) > 50


def test_least_pending_picks_idlest():
    balancer = LoadBalancer(name="lb", policy=LeastPendingPolicy())
    busy = FakeBackend("busy", pending=10)
    idle = FakeBackend("idle", pending=1)
    balancer.add(busy)
    balancer.add(idle)
    assert balancer.pick() is idle


def test_least_pending_tie_breaks_by_order():
    balancer = LoadBalancer(name="lb", policy=LeastPendingPolicy())
    first = FakeBackend("first", pending=2)
    second = FakeBackend("second", pending=2)
    balancer.add(first)
    balancer.add(second)
    assert balancer.pick() is first


def test_empty_pool_raises():
    balancer = LoadBalancer(name="lb", policy=RoundRobinPolicy())
    with pytest.raises(RuntimeError, match="no backends"):
        balancer.pick()


def test_remove_backend():
    balancer = LoadBalancer(name="lb", policy=RoundRobinPolicy())
    backend = FakeBackend("b0")
    balancer.add(backend)
    balancer.remove(backend)
    assert len(balancer) == 0


def test_decision_counter():
    balancer = LoadBalancer(name="lb", policy=RoundRobinPolicy())
    balancer.add(FakeBackend("b0"))
    for _ in range(5):
        balancer.pick()
    assert balancer.decisions == 5


@pytest.mark.parametrize("name", ["random", "round-robin", "least-pending"])
def test_make_policy_by_name(name):
    policy = make_policy(name, random.Random(1))
    assert policy.name == name


def test_make_policy_rejects_unknown():
    with pytest.raises(ValueError, match="unknown"):
        make_policy("weighted", random.Random(1))


def test_remove_missing_backend_raises_clear_error():
    balancer = LoadBalancer(name="ua-lb", policy=RoundRobinPolicy())
    ghost = FakeBackend("ghost")
    with pytest.raises(BalancerError, match="'ua-lb' has no backend 'ghost'"):
        balancer.remove(ghost)


def test_round_robin_survives_eject_mid_rotation():
    """Health-driven ejection while the cursor points past the end.

    With 3 backends and the cursor on b2, ejecting b2 shrinks the pool
    to 2; the next pick must wrap cleanly instead of indexing out of
    range, and rotation must stay a pure cycle over the survivors.
    """
    balancer = LoadBalancer(name="lb", policy=RoundRobinPolicy())
    backends = [FakeBackend(f"b{i}") for i in range(3)]
    for backend in backends:
        balancer.add(backend)
    balancer.pick()  # b0
    balancer.pick()  # b1 -> cursor now points at b2
    assert balancer.eject(backends[2])
    assert balancer.ejections == 1
    picks = [balancer.pick().name for _ in range(4)]
    assert picks == ["b0", "b1", "b0", "b1"]


def test_eject_absent_backend_is_idempotent():
    balancer = LoadBalancer(name="lb", policy=RoundRobinPolicy())
    backend = FakeBackend("b0")
    balancer.add(backend)
    assert balancer.eject(backend)
    assert not balancer.eject(backend)  # second eject: no-op, no raise
    assert balancer.ejections == 1


def test_pick_from_fully_ejected_pool_raises_typed_no_upstream():
    """Health ejection can empty the pool entirely mid-traffic.

    The data plane distinguishes this from a programming error: pick()
    raises the typed NoUpstream (a BalancerError subclass), which the
    proxy layers convert into the uniform retryable reject instead of
    crashing the instance.
    """
    from repro.simnet.loadbalancer import NoUpstream

    balancer = LoadBalancer(name="lb", policy=RoundRobinPolicy())
    backends = [FakeBackend(f"b{i}") for i in range(2)]
    for backend in backends:
        balancer.add(backend)
    balancer.pick()  # rotation underway
    for backend in backends:
        assert balancer.eject(backend)
    with pytest.raises(NoUpstream, match="has no backends"):
        balancer.pick()
    assert isinstance(NoUpstream("x"), BalancerError)
    # Readmission restores service on the same pool object.
    balancer.readmit(backends[0])
    assert balancer.pick() is backends[0]


def test_remove_final_backend_leaves_a_valid_empty_pool():
    """Elastic scale-down of the last instance must read as "no
    upstream right now", not corrupt the pool: the next pick raises
    the typed NoUpstream and later adds restore service."""
    balancer = LoadBalancer(name="lb", policy=RoundRobinPolicy())
    only = FakeBackend("only")
    balancer.add(only)
    balancer.pick()
    balancer.remove(only)
    with pytest.raises(NoUpstream, match="has no backends"):
        balancer.pick()
    balancer.add(only)
    assert balancer.pick() is only


def test_remove_then_add_serves_in_readmission_order():
    """Emptying the pool resets rotation state: backends added to a
    drained balancer are served strictly in (re)admission order, not
    from the stale mid-cycle cursor the old pool left behind."""
    balancer = LoadBalancer(name="lb", policy=RoundRobinPolicy())
    a, b = FakeBackend("a"), FakeBackend("b")
    balancer.add(a)
    balancer.add(b)
    balancer.pick()  # a -> cursor now points at b
    balancer.remove(b)
    balancer.remove(a)
    c, d = FakeBackend("c"), FakeBackend("d")
    balancer.add(c)
    balancer.add(d)
    assert [balancer.pick().name for _ in range(4)] == ["c", "d", "c", "d"]


def test_eject_to_empty_then_readmit_serves_in_order_too():
    """Same contract on the health-driven path: a fully ejected pool
    that readmits survivors rotates from the front."""
    balancer = LoadBalancer(name="lb", policy=RoundRobinPolicy())
    backends = [FakeBackend(f"b{i}") for i in range(3)]
    for backend in backends:
        balancer.add(backend)
    balancer.pick()
    balancer.pick()  # cursor mid-cycle
    for backend in backends:
        assert balancer.eject(backend)
    balancer.readmit(backends[2])
    balancer.readmit(backends[0])
    assert [balancer.pick().name for _ in range(4)] == ["b2", "b0", "b2", "b0"]
