"""REST message model and the routing table T."""

from __future__ import annotations

import pytest

from repro.rest.messages import Request, Response, Verb, make_get, make_post
from repro.rest.routing import RoutingError, RoutingTable


def test_make_post_fields():
    request = make_post("u1", "i1", client_address="client-u1")
    assert request.verb == Verb.POST
    assert request.fields == {"user": "u1", "item": "i1"}
    assert request.client_address == "client-u1"


def test_make_post_with_payload():
    request = make_post("u1", "i1", payload="5-stars")
    assert request.fields["payload"] == "5-stars"


def test_make_get_with_extra_fields():
    request = make_get("u1", tmpkey="abc")
    assert request.verb == Verb.GET
    assert request.fields == {"user": "u1", "tmpkey": "abc"}


def test_request_ids_are_unique():
    assert make_get("u").request_id != make_get("u").request_id


def test_with_fields_replaces_and_removes():
    request = make_get("u1", tmpkey="abc")
    updated = request.with_fields(user="pseudo", tmpkey=None)
    assert updated.fields == {"user": "pseudo"}
    assert updated.request_id == request.request_id
    # original untouched (frozen semantics)
    assert request.fields["tmpkey"] == "abc"


def test_body_json_is_canonical():
    one = Request(verb="POST", fields={"b": 1, "a": 2}, request_id=1, client_address="c")
    two = Request(verb="POST", fields={"a": 2, "b": 1}, request_id=2, client_address="c")
    assert one.body_json() == two.body_json()


def test_size_depends_only_on_fields():
    one = make_post("u1", "i1", request_id=1)
    two = make_post("u1", "i1", request_id=999)
    assert one.size_bytes() == two.size_bytes()


def test_response_ok_range():
    assert Response(status=200).ok
    assert Response(status=204).ok
    assert not Response(status=404).ok
    assert not Response(status=500).ok


def test_response_with_fields():
    response = Response(status=200, fields={"items": ["a"]})
    updated = response.with_fields(blob="x", items=None)
    assert updated.fields == {"blob": "x"}


def test_routing_register_and_consume():
    table: RoutingTable = RoutingTable()
    table.register(1, "ctx-1")
    table.register(2, "ctx-2")
    assert table.consume(1) == "ctx-1"
    assert 1 not in table
    assert len(table) == 1


def test_routing_duplicate_rejected():
    table: RoutingTable = RoutingTable()
    table.register(1, "a")
    with pytest.raises(RoutingError, match="duplicate"):
        table.register(1, "b")


def test_routing_unknown_consume_rejected():
    with pytest.raises(RoutingError, match="no pending route"):
        RoutingTable().consume(42)


def test_routing_peek_does_not_consume():
    table: RoutingTable = RoutingTable()
    table.register(1, "ctx")
    assert table.peek(1) == "ctx"
    assert table.peek(2) is None
    assert len(table) == 1


def test_routing_stats():
    table: RoutingTable = RoutingTable()
    for index in range(5):
        table.register(index, index)
    for index in range(3):
        table.consume(index)
    assert table.max_size == 5
    assert table.total_registered == 5
