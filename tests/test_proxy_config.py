"""Proxy configuration invariants and the cost model's calibration."""

from __future__ import annotations

import pytest

from repro.proxy.config import PProxConfig
from repro.proxy.costs import DEFAULT_COSTS, ProxyCostModel
from repro.sgx.costs import NO_SGX, SgxCostModel


def test_defaults_enable_all_features():
    config = PProxConfig()
    assert config.encryption and config.sgx and config.item_pseudonymization
    assert config.shuffling and config.shuffle_size == 10


def test_shuffle_zero_disables_shuffling():
    assert not PProxConfig(shuffle_size=0).shuffling


def test_negative_shuffle_rejected():
    with pytest.raises(ValueError):
        PProxConfig(shuffle_size=-1)


def test_zero_instances_rejected():
    with pytest.raises(ValueError):
        PProxConfig(ua_instances=0)


def test_no_encryption_implies_no_item_pseudonymization():
    config = PProxConfig(encryption=False, item_pseudonymization=True)
    assert not config.item_pseudonymization


def test_no_encryption_implies_no_hardening():
    config = PProxConfig(encryption=False, harden_client_hop=True)
    assert not config.harden_client_hop


def test_proxy_node_count():
    assert PProxConfig(ua_instances=3, ia_instances=4).proxy_node_count == 7


def test_describe_mentions_features():
    text = PProxConfig(encryption=True, item_pseudonymization=False).describe()
    assert "enc=*" in text
    assert PProxConfig(encryption=False).describe().startswith("enc=no")


# -- cost model ----------------------------------------------------------

FULL = PProxConfig()
NO_ENC = PProxConfig(encryption=False, sgx=False, shuffle_size=0)
ENC_ONLY = PProxConfig(encryption=True, sgx=False, shuffle_size=0)
ENC_SGX = PProxConfig(encryption=True, sgx=True, shuffle_size=0)
NO_ITEM_PSEUDO = PProxConfig(encryption=True, sgx=True, shuffle_size=0,
                             item_pseudonymization=False)


def _round_trip(costs: ProxyCostModel, config: PProxConfig) -> float:
    return (
        costs.ua_request_leg(config, 0)
        + costs.ia_request_leg(config, 0)
        + costs.ia_response_leg(config, 0, items=20)
        + costs.ua_response_leg(config, 0)
    )


def test_encryption_costs_more_than_sgx():
    """The Figure 6 ordering: m1 < m2 delta > m2 < m3 delta."""
    base = _round_trip(DEFAULT_COSTS, NO_ENC)
    with_enc = _round_trip(DEFAULT_COSTS, ENC_ONLY)
    with_sgx = _round_trip(DEFAULT_COSTS, ENC_SGX)
    encryption_cost = with_enc - base
    sgx_cost = with_sgx - with_enc
    assert encryption_cost > sgx_cost > 0


def test_item_pseudonymization_is_cheap():
    """m4 vs m3: 'the impact is negligible' — under 20 % of the total."""
    full = _round_trip(DEFAULT_COSTS, ENC_SGX)
    without = _round_trip(DEFAULT_COSTS, NO_ITEM_PSEUDO)
    assert 0 < full - without < 0.2 * full


def test_single_pair_capacity_matches_paper():
    """One UA+IA pair (4 cores) sustains ~250 RPS: the bottleneck
    layer's per-request core time must sit between 2/300 and 2/250."""
    ua_time = DEFAULT_COSTS.ua_request_leg(FULL, 0) + DEFAULT_COSTS.ua_response_leg(FULL, 0)
    ia_time = DEFAULT_COSTS.ia_request_leg(FULL, 0) + DEFAULT_COSTS.ia_response_leg(FULL, 0, 20)
    bottleneck = max(ua_time, ia_time)
    assert 2.0 / 300 < bottleneck < 2.0 / 250


def test_attack_penalty_scales_cost():
    normal = DEFAULT_COSTS.ua_request_leg(FULL, 0, penalty=1.0)
    attacked = DEFAULT_COSTS.ua_request_leg(FULL, 0, penalty=3.0)
    assert attacked == pytest.approx(3 * normal)


def test_epc_paging_kicks_in_at_scale():
    model = SgxCostModel(epc_entries=100)
    small = model.request_overhead(pending_entries=50)
    large = model.request_overhead(pending_entries=500)
    assert large > small


def test_no_sgx_model_is_free():
    assert NO_SGX.request_overhead(10_000) == 0.0


def test_hardened_hop_costs_extra_on_response():
    hardened = PProxConfig(harden_client_hop=True, shuffle_size=0)
    assert DEFAULT_COSTS.ua_response_leg(hardened, 0) > DEFAULT_COSTS.ua_response_leg(FULL, 0)


def test_client_side_costs_zero_without_encryption():
    assert DEFAULT_COSTS.client_encrypt_seconds(NO_ENC) == 0.0
    assert DEFAULT_COSTS.client_decrypt_seconds(NO_ENC) == 0.0
    assert DEFAULT_COSTS.client_encrypt_seconds(FULL) > 0.0
