"""Harness service model and the nginx stub."""

from __future__ import annotations

import pytest

from repro.lrs.service import HarnessCostModel, HarnessService
from repro.lrs.stub import STATIC_ITEMS, StubLrs
from repro.rest.messages import Verb, make_get, make_post
from repro.simnet.clock import EventLoop
from repro.simnet.rng import RngRegistry


@pytest.fixture
def harness():
    loop = EventLoop()
    rng = RngRegistry(seed=2)
    service = HarnessService(loop=loop, rng=rng.stream("lrs"), frontend_count=3)
    return loop, service


def test_deployment_shape(harness):
    _, service = harness
    assert len(service.frontends) == 3
    assert service.node_count == 7  # 3 frontends + 4 support


def test_post_persists_event(harness):
    loop, service = harness
    responses = []
    frontend = service.pick_frontend()
    frontend.handle(make_post("u1", "i1"), responses.append)
    loop.run()
    assert responses[0].ok
    assert service.engine.event_count == 1


def test_get_returns_recommendations_after_training(harness):
    loop, service = harness
    service.engine.trainer.llr_threshold = 0.0
    for user, item in [("a", "i1"), ("a", "i2"), ("b", "i1"), ("b", "i3")]:
        service.pick_frontend().handle(make_post(user, item), lambda r: None)
    loop.run()
    service.train()
    responses = []
    service.pick_frontend().handle(make_get("a"), responses.append)
    loop.run()
    assert responses[0].ok
    assert "i3" in responses[0].fields["items"]


def test_post_missing_fields_is_bad_request(harness):
    loop, service = harness
    responses = []
    request = make_post("u1", "i1").with_fields(item=None)
    service.pick_frontend().handle(request, responses.append)
    loop.run()
    assert responses[0].status == 400


def test_get_missing_user_is_bad_request(harness):
    loop, service = harness
    responses = []
    request = make_get("u").with_fields(user=None)
    service.pick_frontend().handle(request, responses.append)
    loop.run()
    assert responses[0].status == 400


def test_service_time_is_charged(harness):
    loop, service = harness
    done = []
    service.pick_frontend().handle(make_get("u"), lambda r: done.append(loop.now))
    loop.run()
    assert done[0] > 0.001  # frontend + support work


def test_add_frontend_scales_out(harness):
    _, service = harness
    service.add_frontend()
    assert len(service.frontends) == 4
    assert service.node_count == 8


def test_cost_model_gets_cost_more_than_posts():
    costs = HarnessCostModel()
    rng = RngRegistry(seed=3).stream("t")
    gets = sum(costs.sample_frontend(Verb.GET, rng) for _ in range(200))
    posts = sum(costs.sample_frontend(Verb.POST, rng) for _ in range(200))
    assert gets > posts


def test_frontends_share_one_engine(harness):
    loop, service = harness
    service.frontends[0].handle(make_post("u", "i1"), lambda r: None)
    service.frontends[1].handle(make_post("u", "i2"), lambda r: None)
    loop.run()
    assert service.engine.event_count == 2


# -- stub ---------------------------------------------------------------


def test_stub_serves_static_payload():
    loop = EventLoop()
    stub = StubLrs(loop=loop, rng=RngRegistry(seed=4).stream("stub"))
    responses = []
    stub.handle(make_get("anyone"), responses.append)
    loop.run()
    assert responses[0].fields["items"] == STATIC_ITEMS


def test_stub_post_returns_empty_ok():
    loop = EventLoop()
    stub = StubLrs(loop=loop, rng=RngRegistry(seed=4).stream("stub"))
    responses = []
    stub.handle(make_post("u", "i"), responses.append)
    loop.run()
    assert responses[0].ok
    assert responses[0].fields == {}


def test_stub_is_fast():
    """Median direct latency ~1-2 ms (paper §8.1)."""
    loop = EventLoop()
    stub = StubLrs(loop=loop, rng=RngRegistry(seed=4).stream("stub"))
    times = []
    for _ in range(100):
        start = loop.now
        stub.handle(make_get("u"), lambda r, s=start: times.append(loop.now - s))
        loop.run()
    times.sort()
    assert times[50] < 0.002


def test_stub_payload_is_replaceable():
    loop = EventLoop()
    stub = StubLrs(loop=loop, rng=RngRegistry(seed=4).stream("stub"))
    stub.items = ["custom-1"]
    responses = []
    stub.handle(make_get("u"), responses.append)
    loop.run()
    assert responses[0].fields["items"] == ["custom-1"]
