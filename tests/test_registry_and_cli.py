"""Experiment index integrity and the command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main
from repro.experiments.registry import EXPERIMENT_INDEX, validate_index


def test_index_is_sound():
    assert validate_index() == []


def test_index_covers_every_paper_artefact():
    """All tables, figures and analyses of the paper are indexed."""
    expected = {"table2", "table3", "fig6", "fig7", "fig8", "fig9", "fig10",
                "sec61", "sec62", "sec63", "sec9", "ablations",
                "chaos",      # availability/recovery drill, not a figure
                "overload",   # graceful-degradation sweep, not a figure
                "rotation",   # live re-key drill, not a figure
                "scale",      # million-user engine sweep, not a figure
                "fleet",      # sharded-fleet self-healing drill
                "capacity"}   # solve-then-prove capacity planning
    assert set(EXPERIMENT_INDEX) == expected


def test_every_experiment_has_claims_and_modules():
    for experiment in EXPERIMENT_INDEX.values():
        assert experiment.claims
        assert experiment.modules
        assert experiment.bench.endswith(".py")


def test_cli_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "PProx reproduction" in out
    assert "fig10" in out


def test_cli_validate(capsys):
    assert main(["validate"]) == 0
    assert "OK" in capsys.readouterr().out


def test_cli_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
