"""Deployment manifests stay in sync with the configuration tables."""

from __future__ import annotations

import pytest

from repro.cluster.deployments import MACRO_FULL, MICRO_CONFIGS, cluster_plan
from repro.cluster.manifests import all_manifest_names, render_manifest


def test_every_configuration_has_a_manifest():
    for name in all_manifest_names():
        manifest = render_manifest(name)
        assert f"pprox-{name}" in manifest


def test_micro_manifest_lists_proxy_pods():
    manifest = render_manifest("m9")
    for index in range(4):
        assert f"pprox-ua-{index}" in manifest
        assert f"pprox-ia-{index}" in manifest
    assert "lrs-stub" in manifest
    assert "SHUFFLE_SIZE: 10" in manifest


def test_m1_manifest_disables_sgx_and_encryption():
    manifest = render_manifest("m1")
    assert "sgx: {enabled: false" in manifest
    assert "ENCRYPTION: false" in manifest


def test_macro_manifest_lists_harness_stack():
    manifest = render_manifest("f4")
    for index in range(12):
        assert f"harness-fe-{index}" in manifest
    assert "elasticsearch-0" in manifest
    assert "mongo-spark" in manifest
    assert "kube-proxy" in manifest


def test_baseline_manifest_has_no_proxy_pods():
    manifest = render_manifest("b2")
    assert "pprox-ua" not in manifest
    assert "harness-fe-5" in manifest


def test_pod_count_matches_cluster_plan():
    for name in ("m6", "m9", "b1", "f4"):
        manifest = render_manifest(name)
        _, node_count = cluster_plan(name)
        pods = manifest.count("  - name: ")
        assert pods == node_count, f"{name}: {pods} pods vs {node_count} planned nodes"


def test_manifest_mentions_fluentd_logging():
    assert "fluentd" in render_manifest("m6")


def test_unknown_configuration_rejected():
    with pytest.raises(KeyError):
        render_manifest("x1")
