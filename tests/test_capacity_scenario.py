"""Capacity planning: the solver's shapes and their simulated proof."""

from __future__ import annotations

import json

import pytest

from repro.experiments.capacity import (
    DEFAULT_TARGETS,
    MEASURED_PER_PAIR_RPS,
    SHUFFLE_SIZE_LADDER,
    CapacityTarget,
    capacity_chaos_spec,
    capacity_slo_objectives,
    degraded_p99_ceiling,
    run_capacity,
    solve_plan,
    verify_plan,
    write_artifacts,
)
from repro.experiments.registry import EXPERIMENT_INDEX


# -- solver (pure) ---------------------------------------------------------


def test_solver_shapes_for_the_default_targets():
    shapes = [solve_plan(target) for target in DEFAULT_TARGETS]
    assert [plan.shards for plan in shapes] == [1, 2, 3]
    assert all(plan.instances_per_shard == 2 for plan in shapes)
    assert all(plan.pairs == plan.shards * 2 for plan in shapes)


def test_solver_shards_grow_monotonically_with_rps():
    shards = [
        solve_plan(CapacityTarget(rps=rps, p99_slo=0.5)).shards
        for rps in (100, 250, 500, 750, 1000, 2000)
    ]
    assert shards == sorted(shards)
    assert shards[0] >= 1


def test_solver_shuffle_size_fits_the_fill_budget():
    for target in DEFAULT_TARGETS + (
        CapacityTarget(rps=50.0, p99_slo=0.3),
        CapacityTarget(rps=3000.0, p99_slo=1.0),
    ):
        plan = solve_plan(target)
        assert plan.shuffle_size in SHUFFLE_SIZE_LADDER
        per_instance = target.rps / plan.pairs
        fill_time = plan.shuffle_size / per_instance
        # Either the fill time fits the budget or the solver already
        # bottomed out at the smallest ladder step.
        assert (
            fill_time <= 0.3 * target.p99_slo
            or plan.shuffle_size == min(SHUFFLE_SIZE_LADDER)
        )
        # The timeout is a liveness bound, not the normal release path:
        # above the fill time, but inside the latency budget.
        assert plan.shuffle_timeout <= 0.6 * target.p99_slo
        assert plan.anonymity_bound == plan.shuffle_size * plan.instances_per_shard


def test_solver_rejects_nonpositive_rps():
    with pytest.raises(ValueError, match="positive"):
        solve_plan(CapacityTarget(rps=0.0, p99_slo=0.5))


def test_degraded_ceiling_and_objectives():
    target = DEFAULT_TARGETS[0]
    plan = solve_plan(target)
    spec = capacity_chaos_spec(8.0)
    ceiling = degraded_p99_ceiling(target, spec)
    assert ceiling > target.p99_slo
    chaos = capacity_slo_objectives(target, plan, chaos=True, spec=spec)
    clean = capacity_slo_objectives(target, plan, chaos=False)
    assert [o.name for o in chaos] == [o.name for o in clean] == [
        "goodput", "released_flush_floor", "p99_latency_seconds",
    ]
    assert clean[2].target == target.p99_slo
    assert chaos[2].target == ceiling
    assert chaos[1].value == "min_steady_flush"
    assert clean[1].value == "min_released_flush"


# -- one verified point (clean + chaos legs) -------------------------------


@pytest.fixture(scope="module")
def single_point():
    """run_capacity over the cheapest default target only."""
    return run_capacity(targets=(DEFAULT_TARGETS[0],), seed=11, duration=8.0)


def test_clean_leg_meets_the_steady_state_slo(single_point):
    _, _, results = single_point
    clean = next(r for r in results if r.mode == "clean")
    assert clean.problems() == []
    assert clean.ok
    assert clean.goodput >= 0.99
    assert clean.p99_latency_seconds <= clean.target.p99_slo
    assert clean.min_released_flush >= clean.plan.shuffle_size


def test_chaos_leg_degrades_gracefully(single_point):
    _, _, results = single_point
    chaos = next(r for r in results if r.mode == "chaos")
    assert chaos.problems() == []
    assert chaos.ok
    assert chaos.goodput >= 0.9
    assert chaos.crashes_injected > 0
    assert chaos.restarts_completed == chaos.crashes_injected
    # The floor is judged on flushes outside network-interruption
    # windows; interrupted timer flushes are reported, never hidden.
    assert chaos.min_steady_flush >= chaos.plan.shuffle_size
    spec = capacity_chaos_spec(8.0)
    assert chaos.p99_latency_seconds <= degraded_p99_ceiling(chaos.target, spec)


def test_artifact_shape_and_roundtrip(single_point, tmp_path):
    artifact, meta, results = single_point
    assert artifact["experiment"] == "capacity"
    assert artifact["ok"] is True
    assert artifact["per_pair_rps"] == MEASURED_PER_PAIR_RPS
    (point,) = artifact["points"]
    assert set(point) == {"target", "plan", "clean", "chaos"}
    assert point["clean"]["slo"]["ok"] and point["chaos"]["slo"]["ok"]
    artifact_path, meta_path = write_artifacts(artifact, meta, str(tmp_path))
    body = (tmp_path / "capacity.json").read_text(encoding="utf-8")
    assert body.endswith("\n")
    assert json.loads(body) == artifact
    assert "wall_seconds" in json.loads(
        (tmp_path / "capacity_meta.json").read_text(encoding="utf-8")
    )["points"][0]


def test_verification_is_deterministic_for_a_fixed_seed(single_point):
    _, _, results = single_point
    chaos = next(r for r in results if r.mode == "chaos")
    again = verify_plan(
        chaos.target, chaos.plan, seed=11, duration=8.0, chaos=True
    )
    assert again.to_dict() == chaos.to_dict()


def test_capacity_is_registered_experiment():
    experiment = EXPERIMENT_INDEX["capacity"]
    assert "repro.experiments.capacity" in experiment.modules
    assert experiment.bench == "tests/test_capacity_scenario.py"
