"""Proxy layer instances: data-plane behaviour through the simulator."""

from __future__ import annotations

import pytest

from repro.client import PProxClient
from repro.crypto.provider import FastCryptoProvider
from repro.lrs.stub import StubLrs, make_pseudonymous_payload
from repro.proxy import PProxConfig, build_pprox
from repro.proxy.costs import DEFAULT_COSTS
from repro.rest.routing import RoutingError
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry


def _stack(config: PProxConfig, seed: int = 21):
    rng = RngRegistry(seed=seed)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"))
    stub = StubLrs(loop=loop, rng=rng.stream("stub"))
    provider = FastCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
    service = build_pprox(
        loop, network, rng, config, lrs_picker=lambda: stub, provider=provider
    )
    if config.encryption and config.item_pseudonymization:
        stub.items = make_pseudonymous_payload(
            provider, service.provisioner.layer_keys["IA"].symmetric_key
        )
    client = PProxClient(
        loop=loop, network=network, provider=provider, service=service,
        costs=DEFAULT_COSTS, rng=rng.stream("client"),
    )
    return loop, network, stub, service, client


NOSHUF = PProxConfig(shuffle_size=0)


def test_get_roundtrip_through_both_layers():
    loop, _, _, service, client = _stack(NOSHUF)
    results = []
    client.get("alice", on_complete=results.append)
    loop.run()
    assert results[0].ok
    assert results[0].items  # stub items decrypted back to cleartext
    assert all(item.startswith("static-item-") for item in results[0].items)


def test_post_roundtrip():
    loop, _, _, service, client = _stack(NOSHUF)
    results = []
    client.post("alice", "item-1", on_complete=results.append)
    loop.run()
    assert results[0].ok
    assert results[0].items == []


def test_layers_count_processed_requests():
    loop, _, _, service, client = _stack(NOSHUF)
    for _ in range(3):
        client.get("u", on_complete=lambda c: None)
    loop.run()
    assert service.ua_instances[0].requests_processed == 3
    assert service.ua_instances[0].responses_processed == 3
    assert service.ia_instances[0].requests_processed == 3


def test_routing_tables_drain():
    loop, _, _, service, client = _stack(NOSHUF)
    for _ in range(5):
        client.get("u", on_complete=lambda c: None)
    loop.run()
    assert len(service.ua_instances[0].routing) == 0
    assert len(service.ia_instances[0].routing) == 0


def test_ia_never_sees_client_addresses():
    loop, network, _, service, client = _stack(NOSHUF)
    client.get("alice", on_complete=lambda c: None)
    loop.run()
    ia_inbound = [
        f for f in network.flows if f.destination.startswith("pprox-ia")
    ]
    assert ia_inbound
    # IA traffic comes only from the UA layer and the LRS — never from
    # a client address.
    assert all(not f.source.startswith("client") for f in ia_inbound)
    assert any(f.source.startswith("pprox-ua") for f in ia_inbound)


def test_lrs_sees_only_pseudonyms():
    loop, network, stub, service, client = _stack(NOSHUF)
    taps = []
    network.add_wiretap(lambda record, payload: taps.append((record, payload)))
    client.post("alice", "secret-movie", on_complete=lambda c: None)
    loop.run()
    lrs_requests = [
        payload for record, payload in taps
        if record.destination == stub.address and hasattr(payload, "fields")
    ]
    assert lrs_requests
    for request in lrs_requests:
        assert request.fields.get("user") != "alice"
        assert request.fields.get("item") != "secret-movie"


def test_shuffling_delays_processing():
    loop, _, _, service, client = _stack(PProxConfig(shuffle_size=4, shuffle_timeout=0.5))
    results = []
    client.get("solo", on_complete=results.append)
    loop.run()
    # A lone request waits for the timer on the request and response
    # buffers: total latency ~ 2 x timeout.
    assert results[0].latency >= 0.5


def test_full_shuffle_batch_proceeds_without_timer():
    loop, _, _, service, client = _stack(PProxConfig(shuffle_size=4, shuffle_timeout=60.0))
    results = []
    for index in range(4):
        client.get(f"user-{index}", on_complete=results.append)
    loop.run()
    assert len(results) == 4
    assert all(r.latency < 1.0 for r in results)


def test_multi_instance_layers_balance_load():
    loop, _, _, service, client = _stack(
        PProxConfig(shuffle_size=0, ua_instances=2, ia_instances=2, balancing="round-robin")
    )
    for index in range(10):
        client.get(f"user-{index}", on_complete=lambda c: None)
    loop.run()
    assert all(inst.requests_processed > 0 for inst in service.ua_instances)
    assert all(inst.requests_processed > 0 for inst in service.ia_instances)


def test_encryption_disabled_stays_functional():
    loop, _, _, service, client = _stack(PProxConfig(encryption=False, sgx=False, shuffle_size=0))
    results = []
    client.get("alice", on_complete=results.append)
    loop.run()
    assert results[0].ok
    assert results[0].items


def test_hardened_hop_end_to_end():
    loop, _, _, service, client = _stack(PProxConfig(shuffle_size=0, harden_client_hop=True))
    results = []
    client.get("alice", on_complete=results.append)
    client.post("alice", "item-2", on_complete=results.append)
    loop.run()
    assert all(r.ok for r in results)
    get_result = next(r for r in results if r.verb == "GET")
    assert get_result.items


def test_unknown_response_id_counted_as_stale_and_dropped():
    # A response whose route is gone (e.g. it predates a crash/restart)
    # must not crash the instance: it is counted and dropped, and the
    # client recovers via timeout + retry.
    loop, _, _, service, client = _stack(NOSHUF)
    from repro.rest.messages import Response

    ua = service.ua_instances[0]
    ua._return_to_client(Response(status=200, request_id=424242))
    assert ua.stale_responses == 1
    assert ua.alive

    # Direct consumption of an unknown route still raises.
    with pytest.raises(RoutingError):
        ua.routing.consume(424242)
