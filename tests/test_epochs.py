"""Epoch machinery: wire codec, windows, online rekeyer, coordinator."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.envelope import b64, encode_identifier, unb64
from repro.crypto.keys import KeyFactory
from repro.crypto.provider import FastCryptoProvider
from repro.lrs.store import EventStore
from repro.proxy.epochs import (
    EPOCH_FIELD,
    EPOCH_WIDTH,
    MAX_EPOCH,
    ROTATION_STATES,
    EpochWindow,
    RotationCoordinator,
    decode_epoch,
    encode_epoch,
    epoch_slot,
    epoch_window_of,
    stamp_epoch,
    strip_epoch,
    window_candidates,
)
from repro.proxy.rekey import OnlineRekeyer, RekeyReport
from repro.rest.messages import make_get
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import Enclave, EnclaveMeasurement
from repro.sgx.provisioning import (
    EPOCH_WINDOW_SLOT,
    UA_SECRET_K,
    UA_SECRET_SK,
    KeyProvisioner,
)
from repro.simnet.clock import EventLoop


@pytest.fixture(scope="module")
def factory():
    rng = random.Random(17)
    return KeyFactory(
        rsa_bits=1024,
        rng_int=lambda b: rng.randrange(b),
        rng_bytes=lambda n: bytes(rng.randrange(256) for _ in range(n)),
    )


# -- wire codec ---------------------------------------------------------


def test_encode_epoch_is_fixed_width():
    assert encode_epoch(0) == "0000"
    assert encode_epoch(37) == "0037"
    assert len(encode_epoch(MAX_EPOCH)) == EPOCH_WIDTH


def test_encode_epoch_clamps_out_of_range():
    assert encode_epoch(-5) == "0000"
    assert encode_epoch(MAX_EPOCH + 100) == encode_epoch(MAX_EPOCH)


def test_stamp_and_decode_roundtrip():
    request = make_get("alice")
    stamped = stamp_epoch(request, 3)
    assert decode_epoch(stamped) == 3
    assert stamped.fields[EPOCH_FIELD] == "0003"


def test_stamp_none_returns_request_unchanged():
    request = make_get("alice")
    assert stamp_epoch(request, None) is request


def test_strip_removes_tag_and_returns_id():
    stamped = stamp_epoch(make_get("alice"), 7)
    bare, epoch_id = strip_epoch(stamped)
    assert epoch_id == 7
    assert EPOCH_FIELD not in bare.fields


def test_strip_without_tag_is_noop():
    request = make_get("alice")
    bare, epoch_id = strip_epoch(request)
    assert epoch_id is None
    assert EPOCH_FIELD not in bare.fields


def test_decode_garbage_returns_none():
    assert decode_epoch({EPOCH_FIELD: "notanint"}) is None
    assert decode_epoch({}) is None


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=MAX_EPOCH))
def test_codec_roundtrip_property(epoch_id):
    """Any valid epoch id survives stamp->strip at constant width."""
    stamped = stamp_epoch(make_get("u"), epoch_id)
    assert len(stamped.fields[EPOCH_FIELD]) == EPOCH_WIDTH
    bare, decoded = strip_epoch(stamped)
    assert decoded == epoch_id
    assert EPOCH_FIELD not in bare.fields


# -- provisioner epoch flow --------------------------------------------


def _enclave(code: str = "ua-code", name: str = "e0") -> Enclave:
    return Enclave(
        name=name, measurement=EnclaveMeasurement.of_code(code), host_node="n"
    )


@pytest.fixture
def provisioner(factory):
    return KeyProvisioner(
        attestation=AttestationService(),
        expected_measurements={
            "UA": EnclaveMeasurement.of_code("ua-code"),
            "IA": EnclaveMeasurement.of_code("ia-code"),
        },
        layer_keys={"UA": factory.layer_keys(), "IA": factory.layer_keys()},
    )


def test_announce_flips_active_and_keeps_previous(provisioner, factory):
    enclave = _enclave()
    provisioner.provision("UA", enclave)
    old_keys = provisioner.layer_keys["UA"]
    new_keys = factory.layer_keys()
    old_id, new_id = provisioner.announce_epoch("UA", new_keys, [enclave])
    assert (old_id, new_id) == (0, 1)
    assert provisioner.active_epoch("UA") == 1
    # Base slots hold the new (active) keys; the previous generation
    # stays decryptable under its suffixed slots.
    assert enclave.secret(UA_SECRET_K) == new_keys.symmetric_key
    assert enclave.secret(epoch_slot(UA_SECRET_SK, 0)) is old_keys.private_key
    window = epoch_window_of(enclave)
    assert window == EpochWindow(layer="UA", active_epoch=1, previous_epoch=0)


def test_announce_twice_without_retire_raises(provisioner, factory):
    enclave = _enclave()
    provisioner.provision("UA", enclave)
    provisioner.announce_epoch("UA", factory.layer_keys(), [enclave])
    with pytest.raises(ValueError, match="open epoch window"):
        provisioner.announce_epoch("UA", factory.layer_keys(), [enclave])


def test_retire_wipes_previous_epoch_slots(provisioner, factory):
    enclave = _enclave()
    provisioner.provision("UA", enclave)
    provisioner.announce_epoch("UA", factory.layer_keys(), [enclave])
    retired = provisioner.retire_epoch("UA", [enclave])
    assert retired == 0
    assert epoch_window_of(enclave) is None
    assert not enclave.sealed.contains(epoch_slot(UA_SECRET_SK, 0))
    assert provisioner.active_epoch("UA") == 1


def test_retire_without_window_raises(provisioner):
    with pytest.raises(ValueError, match="no open epoch window"):
        provisioner.retire_epoch("UA", [])


def test_generation_tracking_detects_stale_enclaves(provisioner, factory):
    seen, missed = _enclave(name="seen"), _enclave(name="missed")
    provisioner.provision("UA", seen)
    provisioner.provision("UA", missed)
    provisioner.announce_epoch("UA", factory.layer_keys(), [seen])
    assert provisioner.verify_generation(seen)
    assert not provisioner.verify_generation(missed)
    provisioner.reprovision("UA", missed)
    assert provisioner.verify_generation(missed)
    assert epoch_window_of(missed) is not None


def test_epoch_window_probe_costs_no_ecall_when_closed(provisioner):
    enclave = _enclave()
    provisioner.provision("UA", enclave)
    before = enclave.ecall_count
    assert epoch_window_of(enclave) is None
    assert enclave.ecall_count == before


def test_window_candidates_yield_active_first(provisioner, factory):
    enclave = _enclave()
    provisioner.provision("UA", enclave)
    old_keys = provisioner.layer_keys["UA"]
    provisioner.announce_epoch("UA", factory.layer_keys(), [enclave])
    active = provisioner.layer_keys["UA"]
    window = epoch_window_of(enclave)
    candidates = list(window_candidates(enclave, active, window))
    assert [is_previous for _, is_previous in candidates] == [False, True]
    assert candidates[0][0] is active
    # The previous candidate decrypts with the old private key but
    # always pseudonymizes forward under the ACTIVE symmetric key.
    assert candidates[1][0].private_key is old_keys.private_key
    assert candidates[1][0].symmetric_key == active.symmetric_key


# -- store rewrite + online rekeyer ------------------------------------


def test_rewrite_keeps_indexes_consistent():
    store = EventStore()
    event = store.insert("u-old", "i1", payload="p")
    store.insert("u-other", "i1")
    store.rewrite(event.sequence, user="u-new")
    assert store.user_history("u-new") == ["i1"]
    assert store.user_history("u-old") == []
    assert sorted(store.item_audience("i1")) == ["u-new", "u-other"]
    assert store.events[0].payload == "p"
    assert store.events[0].sequence == event.sequence


def test_rewrite_unchanged_values_is_noop():
    store = EventStore()
    event = store.insert("u", "i")
    same = store.rewrite(event.sequence, user="u")
    assert same is store.events[0]


def _pseudonymous_store(provider, key, pairs):
    store = EventStore()
    for user, item in pairs:
        store.insert(
            b64(provider.pseudonymize(key, encode_identifier(user))),
            b64(provider.pseudonymize(key, encode_identifier(item))),
        )
    return store


def test_online_rekeyer_is_resumable(factory):
    provider = FastCryptoProvider(rng_bytes=random.Random(3).randbytes)
    old_keys, new_keys = factory.layer_keys(), factory.layer_keys()
    store = _pseudonymous_store(
        provider, old_keys.symmetric_key,
        [(f"u{i}", f"i{i}") for i in range(10)],
    )
    rekeyer = OnlineRekeyer(
        store=store, provider=provider, old_keys=old_keys, new_keys=new_keys,
        layer="UA",
    )
    assert rekeyer.target == 10
    assert rekeyer.run_batch(4) == 4
    assert not rekeyer.done
    assert rekeyer.progress_ratio == pytest.approx(0.4)
    # Resume from the cursor (a pause/crash in between changes nothing).
    assert rekeyer.run_batch(100) == 6
    assert rekeyer.done
    for event in store.events:
        plain = provider.depseudonymize(new_keys.symmetric_key, unb64(event.user))
        assert plain.startswith(b"\x00")  # decodes under the NEW key


def test_online_rekeyer_target_excludes_rows_inserted_after_snapshot(factory):
    provider = FastCryptoProvider(rng_bytes=random.Random(4).randbytes)
    old_keys, new_keys = factory.layer_keys(), factory.layer_keys()
    store = _pseudonymous_store(
        provider, old_keys.symmetric_key, [("a", "x"), ("b", "y")]
    )
    rekeyer = OnlineRekeyer(
        store=store, provider=provider, old_keys=old_keys, new_keys=new_keys,
        layer="UA",
    )
    # A new-epoch row lands mid-pass (the proxy layers already encrypt
    # forward under the new keys): the rekeyer must not touch it.
    fresh = b64(provider.pseudonymize(new_keys.symmetric_key, encode_identifier("c")))
    store.insert(fresh, "z")
    rekeyer.run_batch(100)
    assert rekeyer.done
    assert rekeyer.cursor == 2
    assert store.events[2].user == fresh


def test_translate_cache_counts_hits_and_misses(factory):
    provider = FastCryptoProvider(rng_bytes=random.Random(5).randbytes)
    old_keys, new_keys = factory.layer_keys(), factory.layer_keys()
    store = _pseudonymous_store(
        provider, old_keys.symmetric_key,
        [("same", "i1"), ("same", "i2"), ("same", "i3"), ("other", "i4")],
    )
    rekeyer = OnlineRekeyer(
        store=store, provider=provider, old_keys=old_keys, new_keys=new_keys,
        layer="UA",
    )
    rekeyer.run_batch(100)
    report = rekeyer.report()
    assert report.translate_cache_misses == 2  # "same" and "other"
    assert report.translate_cache_hits == 2
    assert report.events_processed == 4


def test_rekeyer_rejects_unknown_layer(factory):
    with pytest.raises(ValueError, match="layer"):
        OnlineRekeyer(
            store=EventStore(), provider=FastCryptoProvider(),
            old_keys=factory.layer_keys(), new_keys=factory.layer_keys(),
            layer="XX",
        )


def test_rekey_report_accepts_legacy_positional_construction():
    report = RekeyReport(10, 10, 0, "UA")
    assert report.translate_cache_hits == 0
    assert report.translate_cache_misses == 0


# -- shuffle floor bookkeeping -----------------------------------------


def test_min_flush_size_tracks_releases_not_drains():
    from repro.proxy.shuffler import ShuffleBuffer

    loop = EventLoop()
    buffer = ShuffleBuffer(
        loop=loop, rng=random.Random(1), size=3, timeout=0.5,
        release=lambda entry: None,
    )
    for entry in range(3):
        buffer.add(entry)
    assert buffer.min_flush_size == 3
    # A crash drain discards its batch without releasing it: the floor
    # of *released* batches must not move.
    buffer.add("doomed")
    buffer.drain()
    assert buffer.min_flush_size == 3
    assert buffer.last_flush_size == 0
    # A timer flush below S is a real release and lowers the floor.
    buffer.add("late")
    loop.run()
    assert buffer.min_flush_size == 1


def test_layer_keys_fingerprint_is_stable_and_key_dependent(factory):
    keys, other = factory.layer_keys(), factory.layer_keys()
    assert keys.fingerprint == keys.fingerprint
    assert keys.fingerprint != other.fingerprint
    assert len(keys.fingerprint) == 16
    # Derived from the public modulus only: swapping the symmetric key
    # leaves the digest unchanged.
    rekeyed = type(keys)(
        private_key=keys.private_key, symmetric_key=other.symmetric_key
    )
    assert rekeyed.fingerprint == keys.fingerprint


# -- coordinator drill (mini stack, no faults) -------------------------


def _mini_stack(seed=23, shuffle_size=0, **config_overrides):
    from repro.context import Deployment, SimContext
    from repro.lrs.service import HarnessService
    from repro.proxy.config import PProxConfig

    ctx = SimContext.fresh(seed)
    harness = HarnessService(loop=ctx.loop, rng=ctx.rng.stream("lrs"), frontend_count=3)
    harness.engine.trainer.llr_threshold = 0.0
    deployment = Deployment.build(
        ctx=ctx,
        config=PProxConfig(shuffle_size=shuffle_size, **config_overrides),
        lrs_picker=harness.pick_frontend,
    )
    client = deployment.client()
    return ctx, harness, deployment.service, client


def _coordinator(ctx, harness, service, **overrides):
    options = dict(
        loop=ctx.loop,
        service=service,
        layer="UA",
        store=harness.engine.store,
        provider=ctx.resolved_provider(),
        factory=KeyFactory(
            rsa_bits=1024,
            rng_int=ctx.rng.int_fn("rot"),
            rng_bytes=ctx.rng.bytes_fn("rot-b"),
        ),
        batch_size=4,
        tick_interval=0.05,
        retire_grace=0.2,
    )
    options.update(overrides)
    return RotationCoordinator(**options)


def test_coordinator_retires_and_rekeys_the_store():
    ctx, harness, service, client = _mini_stack()
    for user, item in [("a", "i1"), ("a", "i2"), ("b", "i1"), ("c", "i3")]:
        client.post(user, item)
    ctx.loop.run()
    old_users = {event.user for event in harness.engine.store.events}

    coordinator = _coordinator(ctx, harness, service, on_cutover=harness.train)
    coordinator.start(ctx.loop.now)
    ctx.loop.run()

    assert coordinator.completed
    assert coordinator.state == "retired"
    assert (coordinator.old_epoch, coordinator.new_epoch) == (0, 1)
    assert coordinator.progress_ratio == 1.0
    assert coordinator.rekeyer.users_rekeyed == 4
    new_users = {event.user for event in harness.engine.store.events}
    assert new_users.isdisjoint(old_users)
    # The deployment still serves: live clients read material live, so
    # a post after retirement lands under the new epoch.
    done = []
    client.post("a", "i9", on_complete=done.append)
    ctx.loop.run()
    assert done[0].ok
    assert epoch_window_of(service.ua_instances[0].enclave) is None


def test_coordinator_pauses_on_dead_instance_and_resumes():
    ctx, harness, service, client = _mini_stack(seed=29)
    for user, item in [("a", "i1"), ("b", "i2")] * 4:
        client.post(user, item)
    ctx.loop.run()

    coordinator = _coordinator(ctx, harness, service, batch_size=1)
    coordinator.start(ctx.loop.now)
    victim = service.ua_instances[0]
    # Kill the rotating instance shortly after the announce, restart it
    # a little later — mirroring what the fault supervisor does.
    ctx.loop.schedule(0.12, victim.fail)
    ctx.loop.schedule(0.6, lambda: service.restart_instance(victim))
    ctx.loop.run()

    assert coordinator.completed
    assert coordinator.pauses >= 1
    assert coordinator.pause_reasons.get("instance_down", 0) >= 1
    # The restarted enclave was re-provisioned at the current
    # generation and still holds the open-window slots it needs.
    assert service.provisioner.verify_generation(victim.enclave)


def test_coordinator_state_code_reports_paused_index():
    ctx, harness, service, _client = _mini_stack(seed=31)
    coordinator = _coordinator(ctx, harness, service)
    assert coordinator.state_code == ROTATION_STATES.index("idle")
    coordinator.state = "reencrypting"
    coordinator.paused = True
    assert coordinator.state_code == ROTATION_STATES.index("paused")


def test_coordinator_guard_covers_only_active_drill():
    ctx, harness, service, _client = _mini_stack(seed=37)
    coordinator = _coordinator(ctx, harness, service)
    assert not coordinator.guard("UA")  # idle
    coordinator.state = "draining"
    assert coordinator.guard("UA")
    assert not coordinator.guard("IA")
    coordinator.state = "retired"
    assert not coordinator.guard("UA")


def test_coordinator_stop_halts_the_drill():
    ctx, harness, service, client = _mini_stack(seed=41)
    client.post("a", "i1")
    ctx.loop.run()
    coordinator = _coordinator(ctx, harness, service)
    coordinator.start(ctx.loop.now + 0.5)
    coordinator.stop()
    ctx.loop.run()
    assert coordinator.state == "idle"  # the announce never fired


def test_coordinator_start_twice_raises():
    ctx, harness, service, _client = _mini_stack(seed=43)
    coordinator = _coordinator(ctx, harness, service)
    coordinator.start(ctx.loop.now)
    with pytest.raises(RuntimeError, match="already started"):
        coordinator.start(ctx.loop.now)
    coordinator.stop()
    ctx.loop.run()


# -- cluster integration: stale-generation readmission + scaling guard --


def test_health_monitor_reprovisions_stale_generation_before_readmit():
    from repro.cluster.health import HealthMonitor

    ctx, harness, service, _client = _mini_stack(seed=47)
    monitor = HealthMonitor(loop=ctx.loop, service=service, interval=0.1)
    monitor.start()
    victim = service.ua_instances[0]
    victim.fail()
    ctx.loop.run_until(ctx.loop.now + 0.3)
    assert victim.name in monitor.ejected

    service.restart_instance(victim)
    # An announce the restarted enclave missed: its recorded generation
    # is now stale, so readmission must re-provision first.
    service.provisioner.key_generation += 1
    ctx.loop.run_until(ctx.loop.now + 0.3)
    monitor.stop()
    ctx.loop.run()

    assert victim.name in monitor.readmitted
    assert monitor.stale_generation_blocks == 1
    assert service.provisioner.verify_generation(victim.enclave)
    assert service.ua_balancer.contains(victim)


def test_autoscaler_defers_scale_down_while_rotating():
    from repro.cluster.autoscaler import ElasticScaler

    ctx, harness, service, _client = _mini_stack(
        seed=53, ua_instances=2, ia_instances=2
    )
    scaler = ElasticScaler(
        loop=ctx.loop,
        service=service,
        low_rps=10_000.0,  # idle traffic: both layers want to shrink
        interval=0.1,
        min_instances=1,
        rotation_guard=lambda layer: layer == "UA",
    )
    ua_before = len(service.ua_instances)
    scaler.start()
    ctx.loop.run_until(ctx.loop.now + 0.15)
    scaler.stop()
    ctx.loop.run()
    assert len(service.ua_instances) == ua_before  # deferred
    assert scaler.deferred_scale_downs >= 1
    actions = {decision.action for decision in scaler.decisions}
    assert "scale-down-deferred" in actions
