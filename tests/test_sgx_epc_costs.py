"""EPC paging costs surfacing under routing-table pressure."""

from __future__ import annotations

import pytest

from repro.proxy.config import PProxConfig
from repro.proxy.costs import ProxyCostModel
from repro.sgx.costs import SgxCostModel


def test_paging_threshold_is_sharp():
    model = SgxCostModel(epc_entries=100, transition_seconds=0.001,
                         epc_paging_seconds=0.002)
    assert model.request_overhead(100) == pytest.approx(0.001)
    assert model.request_overhead(101) == pytest.approx(0.003)


def test_proxy_legs_charge_paging_under_backlog():
    """When the pending-request table outgrows the EPC, every leg of
    an SGX-enabled configuration pays the paging penalty — the §5
    motivation for keeping the in-enclave key-value store small."""
    costs = ProxyCostModel(sgx=SgxCostModel(epc_entries=50))
    config = PProxConfig(shuffle_size=0)
    small = costs.ia_request_leg(config, pending=10)
    large = costs.ia_request_leg(config, pending=10_000)
    assert large > small
    assert large - small == pytest.approx(costs.sgx.epc_paging_seconds)


def test_paging_never_charged_without_sgx():
    costs = ProxyCostModel(sgx=SgxCostModel(epc_entries=1))
    config = PProxConfig(shuffle_size=0, sgx=False)
    assert costs.ua_request_leg(config, pending=10_000) == costs.ua_request_leg(
        config, pending=0
    )


def test_default_epc_capacity_covers_normal_operation():
    """At the paper's rated loads the pending table stays far below
    the default EPC budget, so paging never distorts Figures 6-10."""
    model = SgxCostModel()
    # Worst case pending entries ~ RPS x round-trip (1000 x 0.3 s).
    assert model.epc_entries > 1000 * 0.3
