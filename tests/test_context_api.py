"""SimContext / Deployment facade: equivalence with the legacy API."""

from __future__ import annotations

import warnings

import pytest

from repro.client import PProxClient
from repro.context import Deployment, SimContext
from repro.crypto.provider import FastCryptoProvider, SimCryptoProvider
from repro.lrs.stub import StubLrs, make_pseudonymous_payload
from repro.proxy import PProxConfig, build_pprox
from repro.proxy.costs import DEFAULT_COSTS
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry

CONFIG = PProxConfig(shuffle_size=0, ua_instances=2, ia_instances=2)


def _run_gets(loop, client, count=12):
    results = []
    for index in range(count):
        client.get(f"user-{index}", on_complete=results.append)
    loop.run()
    return [(r.ok, tuple(r.items), r.latency) for r in results]


def _legacy_stack(seed):
    rng = RngRegistry(seed=seed)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"), record_flows=False)
    stub = StubLrs(loop=loop, rng=rng.stream("stub"))
    provider = FastCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        service = build_pprox(
            loop, network, rng, CONFIG, lrs_picker=lambda: stub, provider=provider
        )
        stub.items = make_pseudonymous_payload(
            provider, service.provisioner.layer_keys["IA"].symmetric_key
        )
        client = PProxClient(
            loop=loop, network=network, provider=provider, service=service,
            costs=DEFAULT_COSTS, rng=rng.stream("client"),
        )
    return loop, service, client


def _context_stack(seed):
    ctx = SimContext.fresh(seed)
    ctx.provider = FastCryptoProvider(rng_bytes=ctx.rng.bytes_fn("crypto"))
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    deployment = Deployment.build(ctx=ctx, config=CONFIG, lrs_picker=lambda: stub)
    stub.items = make_pseudonymous_payload(
        ctx.provider,
        deployment.service.provisioner.layer_keys["IA"].symmetric_key,
    )
    return ctx.loop, deployment.service, deployment.client()


def test_context_and_legacy_builds_are_equivalent():
    # Same seed, same config: the context facade must produce the exact
    # run the legacy positional bundle produced (RNG streams are
    # name-keyed, so construction order cannot skew them).
    legacy = _run_gets(*_legacy_stack(99)[::2])
    fresh = _run_gets(*_context_stack(99)[::2])
    assert legacy == fresh


def test_legacy_build_pprox_emits_deprecation_warning():
    rng = RngRegistry(seed=5)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"))
    stub = StubLrs(loop=loop, rng=rng.stream("stub"))
    with pytest.warns(DeprecationWarning):
        build_pprox(loop, network, rng, CONFIG, lrs_picker=lambda: stub)


def test_legacy_client_signature_emits_deprecation_warning():
    loop, service, _ = _context_stack(6)
    with pytest.warns(DeprecationWarning):
        PProxClient(
            loop=loop, network=service.runtime.network,
            provider=SimCryptoProvider(), service=service,
            costs=DEFAULT_COSTS, rng=RngRegistry(seed=1).stream("client"),
        )


def test_context_client_signature_emits_no_warning():
    ctx = SimContext.fresh(11)
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    deployment = Deployment.build(ctx=ctx, config=CONFIG, lrs_picker=lambda: stub)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        PProxClient(ctx, deployment.service)


def test_build_pprox_accepts_context_positionally():
    ctx = SimContext.fresh(12)
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        service = build_pprox(ctx, CONFIG, lrs_picker=lambda: stub)
    assert len(service.ua_instances) == CONFIG.ua_instances


def test_conflicting_positional_and_keyword_args_raise():
    ctx = SimContext.fresh(13)
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    with pytest.raises(TypeError):
        build_pprox(ctx, CONFIG, config=CONFIG, lrs_picker=lambda: stub)


def test_resolved_provider_is_memoized():
    ctx = SimContext.fresh(14)
    assert ctx.provider is None
    provider = ctx.resolved_provider()
    assert ctx.resolved_provider() is provider
    assert ctx.provider is provider


def test_with_provider_returns_copy():
    ctx = SimContext.fresh(15)
    provider = SimCryptoProvider()
    other = ctx.with_provider(provider)
    assert other is not ctx
    assert other.provider is provider
    assert ctx.provider is None
    assert other.loop is ctx.loop


def test_deployment_client_passes_options_through():
    ctx = SimContext.fresh(16)
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    deployment = Deployment.build(ctx=ctx, config=CONFIG, lrs_picker=lambda: stub)
    client = deployment.client(request_timeout=0.7, max_retries=3, hedge_delay=0.2)
    assert client.request_timeout == 0.7
    assert client.max_retries == 3
    assert client.hedge_delay == 0.2
    assert client.provider is ctx.provider


def test_deployment_health_monitor_binds_service():
    ctx = SimContext.fresh(17)
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    deployment = Deployment.build(ctx=ctx, config=CONFIG, lrs_picker=lambda: stub)
    monitor = deployment.health_monitor(interval=0.5)
    assert monitor.service is deployment.service
    assert monitor.interval == 0.5
