"""Unit tests for the metric registry and the virtual-time scraper."""

import math

import pytest

from repro.simnet.clock import EventLoop
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Scraper,
    sanitize_metric_name,
)


def test_counter_monotonic():
    counter = Counter("requests_total")
    counter.inc()
    counter.inc(4)
    assert counter.value() == 5.0
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_callback_overrides_local_value():
    backing = {"count": 0}
    counter = Counter("cb_total", callback=lambda: backing["count"])
    backing["count"] = 17
    assert counter.value() == 17.0


def test_gauge_set_inc_dec():
    gauge = Gauge("pending")
    gauge.set(3)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value() == 2.0


def test_histogram_bucket_boundaries_le_inclusive():
    hist = Histogram("lat", buckets=(0.1, 0.5, 1.0))
    # Exactly on a bound lands in that bound's bucket (le semantics).
    hist.observe(0.1)
    hist.observe(0.10001)
    hist.observe(0.5)
    hist.observe(2.0)  # above every bound -> +Inf only
    cumulative = dict(hist.cumulative_buckets())
    assert cumulative[0.1] == 1
    assert cumulative[0.5] == 3
    assert cumulative[1.0] == 3
    assert cumulative[math.inf] == 4
    assert hist.count == 4
    assert hist.sum == pytest.approx(0.1 + 0.10001 + 0.5 + 2.0)


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(0.1, 0.1))


def test_histogram_exposition_format():
    hist = Histogram("lat_seconds", labels={"role": "ua"}, buckets=(0.5, 1.0))
    hist.observe(0.25)
    hist.observe(0.75)
    lines = hist.exposition_lines()
    assert 'lat_seconds_bucket{role="ua",le="0.5"} 1' in lines
    assert 'lat_seconds_bucket{role="ua",le="1"} 2' in lines
    assert 'lat_seconds_bucket{role="ua",le="+Inf"} 2' in lines
    assert 'lat_seconds_sum{role="ua"} 1' in lines
    assert 'lat_seconds_count{role="ua"} 2' in lines


def test_registry_render_prometheus_help_and_type_once():
    registry = MetricRegistry()
    registry.counter("pprox_req_total", "Total requests.", labels={"role": "ua"}).inc(2)
    registry.counter("pprox_req_total", "Total requests.", labels={"role": "ia"}).inc(3)
    registry.gauge("pprox_pending", "In-flight requests.").set(1)
    text = registry.render_prometheus()
    assert text.count("# HELP pprox_req_total Total requests.") == 1
    assert text.count("# TYPE pprox_req_total counter") == 1
    # Instruments of one family are sorted by labels.
    ia_line = text.index('pprox_req_total{role="ia"} 3')
    ua_line = text.index('pprox_req_total{role="ua"} 2')
    assert ia_line < ua_line
    assert "# TYPE pprox_pending gauge" in text
    assert text.endswith("\n")


def test_registry_get_or_create_is_idempotent_and_rebinds_callbacks():
    registry = MetricRegistry()
    first = registry.gauge("depth", callback=lambda: 1.0)
    second = registry.gauge("depth", callback=lambda: 9.0)
    assert first is second
    assert first.value() == 9.0  # fresh run's callback adopted


def test_registry_kind_mismatch_raises():
    registry = MetricRegistry()
    registry.counter("thing")
    with pytest.raises(ValueError):
        registry.gauge("thing")


def test_metric_name_sanitization():
    assert sanitize_metric_name("node.queue.length") == "node_queue_length"
    assert sanitize_metric_name("9lives") == "_9lives"
    registry = MetricRegistry(namespace="pprox")
    gauge = registry.gauge("node.depth")
    assert gauge.name == "pprox_node_depth"
    assert registry.get("node.depth") is gauge


def test_scraper_samples_on_interval_and_stops_with_the_run():
    loop = EventLoop()
    registry = MetricRegistry()
    gauge = registry.gauge("g")
    scraper = Scraper(loop=loop, registry=registry, interval=1.0)
    scraper.start()
    # Keep the simulation alive for ~5 virtual seconds.
    for t in range(1, 6):
        loop.schedule_at(float(t), lambda: None)
    loop.run()
    assert scraper.samples_taken >= 4
    # The scraper must not keep run() from draining: queue is empty now.
    assert loop.pending == 0
    assert len(gauge.series.points) == scraper.samples_taken


def test_scraper_stop_start_no_double_schedule():
    loop = EventLoop()
    registry = MetricRegistry()
    registry.gauge("g")
    scraper = Scraper(loop=loop, registry=registry, interval=1.0)
    scraper.start()
    scraper.start()  # second start is a no-op
    scraper.stop()
    scraper.start()
    loop.schedule_at(3.5, lambda: None)
    loop.run_until(3.5)
    # One tick per interval despite the stop/start cycle.
    assert scraper.samples_taken == 3
