"""The pluggable wire codec API: round trips, framing robustness,
codec resolution, and the invariants the privacy argument leans on
(fixed header offsets, uniform reject shape, per-context request ids).

Golden byte vectors live in ``test_wire_golden.py``; this file covers
behaviour.  The Hypothesis section fuzzes the binary frame parser with
truncations, corruptions and adversarial lengths — a parser that ever
raises anything but :class:`CodecError` on malformed input would turn
wire garbage into a proxy crash.
"""

from __future__ import annotations

import json

import pytest

from repro.context import SimContext
from repro.crypto.envelope import (
    FIXED_ID_BYTES,
    EnvelopeCodec,
    b64,
    encode_identifier,
    pad_item_list,
    unb64,
)
from repro.rest.codec import (
    BINARY_WIRE_CODEC,
    JSON_WIRE_CODEC,
    BinaryCodec,
    CodecError,
    JsonCodec,
    WireCodec,
    resolve_codec,
)
from repro.rest.messages import Request, Response, Verb

CODECS = [JSON_WIRE_CODEC, BINARY_WIRE_CODEC]
CODEC_IDS = [codec.name for codec in CODECS]


def _materialize(fields):
    """bytes() every memoryview so decoded fields compare to inputs."""
    return {
        name: bytes(value) if isinstance(value, (memoryview, bytearray)) else value
        for name, value in fields.items()
    }


# ---------------------------------------------------------------------------
# Round trips (both codecs)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("codec", CODECS, ids=CODEC_IDS)
class TestRoundTrips:
    def test_request_round_trip(self, codec):
        request = Request(
            verb=Verb.POST,
            fields={
                "user": codec.wire_value(b"\x00" * FIXED_ID_BYTES),
                "item": codec.wire_value(b"\xff" * FIXED_ID_BYTES),
                "payload": {"rating": 5},
            },
            request_id=11,
            client_address="client-z",
        )
        decoded = codec.decode_request(
            codec.encode_request(request),
            verb=Verb.POST,
            request_id=11,
            client_address="client-z",
        )
        assert decoded.verb == Verb.POST
        assert codec.blob_value(decoded.fields["user"]) == b"\x00" * FIXED_ID_BYTES
        assert decoded.fields["payload"] == {"rating": 5}
        assert decoded.request_id == 11
        assert decoded.client_address == "client-z"

    def test_request_round_trip_with_header_fields(self, codec):
        request = Request(
            verb=Verb.GET,
            fields={
                "user": codec.wire_value(b"\x42" * FIXED_ID_BYTES),
                "deadline": "000001.25000",
                "kepoch": "0003",
                "trace": "tw:0000000000042",
            },
            request_id=1,
            client_address="c",
        )
        decoded = codec.decode_request(codec.encode_request(request), verb=Verb.GET)
        assert decoded.fields["deadline"] == "000001.25000"
        assert decoded.fields["kepoch"] == "0003"
        assert decoded.fields["trace"] == "tw:0000000000042"

    def test_request_round_trip_without_header_fields(self, codec):
        request = Request(
            verb=Verb.GET, fields={"user": codec.wire_value(b"abc")},
            request_id=1, client_address="c",
        )
        decoded = codec.decode_request(codec.encode_request(request), verb=Verb.GET)
        assert "deadline" not in decoded.fields
        assert "kepoch" not in decoded.fields
        assert "trace" not in decoded.fields

    def test_response_round_trip(self, codec):
        response = Response(
            status=503,
            fields={"retryable": True, "error": "unavailable", "pad": "x" * 80},
            request_id=4,
        )
        decoded = codec.decode_response(
            codec.encode_response(response), status=503, request_id=4
        )
        assert decoded.status == 503
        assert _materialize(decoded.fields) == response.fields

    def test_blob_representation_inverts(self, codec):
        blob = bytes(range(256))
        assert codec.blob_value(codec.wire_value(blob)) == blob

    def test_envelope_packing_inverts(self, codec):
        fields = {"user": codec.wire_value(b"u" * 8), "item": codec.wire_value(b"i" * 8)}
        key = b"\x07" * 32
        unpacked, unpacked_key = codec.unpack_envelope(
            codec.pack_envelope(fields, key)
        )
        assert unpacked_key == key
        assert {n: codec.blob_value(v) for n, v in unpacked.items()} == {
            "user": b"u" * 8, "item": b"i" * 8,
        }

    def test_response_fields_packing_inverts(self, codec):
        fields = {"blob": codec.wire_value(b"\x99" * 64)}
        unpacked = codec.unpack_response_fields(codec.pack_response_fields(fields))
        assert codec.blob_value(unpacked["blob"]) == b"\x99" * 64

    def test_item_payload_inverts_at_the_padded_size(self, codec):
        blobs = EnvelopeCodec.encode_identifiers(
            pad_item_list([f"movie-{i}" for i in range(7)])
        )
        assert len(blobs) == 20  # MAX_RECOMMENDATIONS padding
        unpacked = codec.unpack_items(codec.pack_items(blobs))
        assert [bytes(b) for b in unpacked] == blobs
        assert EnvelopeCodec.decode_identifiers(unpacked)[:7] == [
            f"movie-{i}" for i in range(7)
        ]

    def test_wire_size_is_a_function_of_the_body(self, codec):
        request = Request(
            verb=Verb.GET, fields={"user": codec.wire_value(b"\x01" * 48)},
            request_id=9, client_address="c",
        )
        body = codec.encode_request(request)
        assert codec.request_size_bytes(request) == codec.request_wire_size(body)
        assert codec.request_wire_size(body) >= len(body)


# ---------------------------------------------------------------------------
# Codec-specific behaviour
# ---------------------------------------------------------------------------


class TestBinarySpecifics:
    def test_frames_are_self_describing(self):
        request = Request(verb=Verb.POST, fields={"user": b"u"},
                          request_id=1, client_address="c")
        frame = BINARY_WIRE_CODEC.encode_request(request)
        assert BINARY_WIRE_CODEC.decode_request(frame).verb == Verb.POST

    def test_bytes_fields_decode_zero_copy(self):
        request = Request(verb=Verb.GET, fields={"tmpkey": b"\x05" * 128},
                          request_id=1, client_address="c")
        decoded = BINARY_WIRE_CODEC.decode_request(
            memoryview(BINARY_WIRE_CODEC.encode_request(request))
        )
        assert isinstance(decoded.fields["tmpkey"], memoryview)
        assert bytes(decoded.fields["tmpkey"]) == b"\x05" * 128

    def test_no_base64_inflation(self):
        blob = b"\xee" * 96
        assert len(BINARY_WIRE_CODEC.wire_value(blob)) == 96
        assert len(JSON_WIRE_CODEC.wire_value(blob)) == 128  # 4/3 inflation

    def test_item_blob_size_enforced(self):
        with pytest.raises(CodecError):
            BINARY_WIRE_CODEC.pack_items([b"short"])
        with pytest.raises(CodecError):
            BINARY_WIRE_CODEC.unpack_items(b"\x00" * (FIXED_ID_BYTES + 1))

    def test_unknown_field_names_ride_inline(self):
        request = Request(verb=Verb.GET, fields={"x-custom": "v"},
                          request_id=1, client_address="c")
        decoded = BINARY_WIRE_CODEC.decode_request(
            BINARY_WIRE_CODEC.encode_request(request)
        )
        assert decoded.fields["x-custom"] == "v"

    def test_header_field_must_be_fixed_width(self):
        request = Request(verb=Verb.GET, fields={"kepoch": "7"},
                          request_id=1, client_address="c")
        with pytest.raises(CodecError):
            BINARY_WIRE_CODEC.encode_request(request)

    def test_batch_envelopes_flag(self):
        assert BINARY_WIRE_CODEC.batch_envelopes is True
        assert BinaryCodec(batch_envelopes=False).batch_envelopes is False
        assert JSON_WIRE_CODEC.batch_envelopes is False  # not self-describing


class TestFrameValidation:
    """Every malformed input must fail as :class:`CodecError`."""

    @staticmethod
    def _frame():
        request = Request(
            verb=Verb.GET,
            fields={"user": b"\x11" * FIXED_ID_BYTES, "deadline": "000000.50000"},
            request_id=1, client_address="c",
        )
        return BINARY_WIRE_CODEC.encode_request(request)

    def test_truncated_prefix(self):
        with pytest.raises(CodecError, match="length prefix"):
            BINARY_WIRE_CODEC.decode_request(b"\x00\x00")

    def test_truncations_at_every_length(self):
        frame = self._frame()
        for cut in range(len(frame)):
            with pytest.raises(CodecError):
                BINARY_WIRE_CODEC.decode_request(frame[:cut])

    def test_overlong_frame(self):
        with pytest.raises(CodecError, match="length mismatch"):
            BINARY_WIRE_CODEC.decode_request(self._frame() + b"\x00")

    def test_trailing_bytes_inside_declared_length(self):
        frame = bytearray(self._frame() + b"Z")
        frame[:4] = (len(frame) - 4).to_bytes(4, "big")  # re-frame the junk
        with pytest.raises(CodecError, match="trailing bytes"):
            BINARY_WIRE_CODEC.decode_request(bytes(frame))

    def test_bad_magic(self):
        frame = bytearray(self._frame())
        frame[4:6] = b"XX"
        with pytest.raises(CodecError, match="magic"):
            BINARY_WIRE_CODEC.decode_request(bytes(frame))

    def test_unsupported_version(self):
        frame = bytearray(self._frame())
        frame[6] = 9
        with pytest.raises(CodecError, match="version"):
            BINARY_WIRE_CODEC.decode_request(bytes(frame))

    def test_kind_cross_decode(self):
        with pytest.raises(CodecError, match="kind"):
            BINARY_WIRE_CODEC.decode_response(self._frame())

    def test_field_value_past_frame_end(self):
        request = Request(verb=Verb.GET, fields={"user": b"abcd"},
                          request_id=1, client_address="c")
        frame = bytearray(BINARY_WIRE_CODEC.encode_request(request))
        # Inflate the declared value length of the only entry.
        entry_length_at = len(frame) - 4 - 4  # 4 value bytes, 4 length bytes
        frame[entry_length_at:entry_length_at + 4] = (2 ** 20).to_bytes(4, "big")
        with pytest.raises(CodecError):
            BINARY_WIRE_CODEC.decode_request(bytes(frame))

    def test_json_garbage(self):
        with pytest.raises((CodecError, json.JSONDecodeError)):
            JSON_WIRE_CODEC.decode_request(b"[1, 2", verb=Verb.GET)
        with pytest.raises(CodecError):
            JSON_WIRE_CODEC.decode_request(b"[1, 2]", verb=Verb.GET)


# ---------------------------------------------------------------------------
# Codec resolution & constants
# ---------------------------------------------------------------------------


class TestResolveCodec:
    def test_none_stays_none(self):
        assert resolve_codec(None) is None  # the byte-identical seed path

    def test_names_resolve_to_singletons(self):
        assert resolve_codec("json") is JSON_WIRE_CODEC
        assert resolve_codec("binary") is BINARY_WIRE_CODEC

    def test_instances_pass_through(self):
        codec = BinaryCodec(batch_envelopes=False)
        assert resolve_codec(codec) is codec

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown codec"):
            resolve_codec("msgpack")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            resolve_codec(42)

    def test_codec_names(self):
        assert JsonCodec.name == "json"
        assert BinaryCodec.name == "binary"
        assert issubclass(JsonCodec, WireCodec)
        assert issubclass(BinaryCodec, WireCodec)


def test_header_constants_match_their_canonical_owners():
    """codec.py mirrors the field names/widths (it cannot import the
    proxy packages at module level); this pins the mirror to the
    canonical definitions."""
    from repro.obs.tracewire import TRACE_FIELD, TRACE_WIDTH
    from repro.overload.deadline import DEADLINE_FIELD, DEADLINE_WIDTH
    from repro.proxy.epochs import EPOCH_FIELD, EPOCH_WIDTH
    from repro.rest import codec as codec_module

    assert codec_module._DEADLINE_FIELD == DEADLINE_FIELD
    assert codec_module._DEADLINE_WIDTH == DEADLINE_WIDTH
    assert codec_module._EPOCH_FIELD == EPOCH_FIELD
    assert codec_module._EPOCH_WIDTH == EPOCH_WIDTH
    assert codec_module._TRACE_FIELD == TRACE_FIELD
    assert codec_module._TRACE_WIDTH == TRACE_WIDTH


def test_uniform_reject_is_one_constant_shape_per_codec():
    """Shedding stays unobservable on every wire: the canonical padded
    reject encodes to one constant byte size per codec regardless of
    which request it answers."""
    from repro.overload.shedding import uniform_reject

    for codec in CODECS:
        sizes = {
            codec.response_size_bytes(uniform_reject(request_id))
            for request_id in (1, 77, 123456)
        }
        assert len(sizes) == 1, codec.name


# ---------------------------------------------------------------------------
# Deprecated helpers & per-context request ids (satellite fixes)
# ---------------------------------------------------------------------------


class TestDeprecatedHelpers:
    def test_b64_warns_and_matches_wire_text(self):
        blob = b"\x01\x02\xfe"
        with pytest.warns(DeprecationWarning):
            legacy = b64(blob)
        assert legacy == EnvelopeCodec.wire_text(blob)

    def test_unb64_warns_and_matches_wire_blob(self):
        with pytest.warns(DeprecationWarning):
            legacy = unb64("AQL+")
        assert legacy == EnvelopeCodec.wire_blob("AQL+") == b"\x01\x02\xfe"

    def test_encode_identifiers_matches_per_item_calls(self):
        items = pad_item_list(["a", "b"])
        assert EnvelopeCodec.encode_identifiers(items) == [
            encode_identifier(item) for item in items
        ]


def test_request_ids_are_per_context_not_process_global():
    """The seed's module-global counter leaked across runs, so same-seed
    artifacts depended on test ordering.  Context-scoped ids restart."""
    first = SimContext.fresh(seed=1)
    ids_a = [first.next_request_id() for _ in range(5)]
    second = SimContext.fresh(seed=1)
    ids_b = [second.next_request_id() for _ in range(5)]
    assert ids_a == ids_b == [1, 2, 3, 4, 5]


# ---------------------------------------------------------------------------
# Property fuzzing (Hypothesis)
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

field_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=24,
).filter(lambda s: s not in ("deadline", "kepoch", "trace"))
field_values = st.one_of(
    st.binary(min_size=0, max_size=256),
    st.text(max_size=128),
    st.booleans(),
    st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
    st.lists(st.text(max_size=8), max_size=4),
)


@settings(max_examples=60, deadline=None)
@given(fields=st.dictionaries(field_names, field_values, max_size=8),
       verb=st.sampled_from([Verb.GET, Verb.POST]))
def test_fuzz_binary_request_round_trip(fields, verb):
    request = Request(verb=verb, fields=fields, request_id=3, client_address="c")
    decoded = BINARY_WIRE_CODEC.decode_request(
        BINARY_WIRE_CODEC.encode_request(request)
    )
    assert decoded.verb == verb
    assert _materialize(decoded.fields) == fields


@settings(max_examples=60, deadline=None)
@given(fields=st.dictionaries(field_names, field_values, max_size=8),
       status=st.integers(min_value=0, max_value=0xFFFF))
def test_fuzz_binary_response_round_trip(fields, status):
    response = Response(status=status, fields=fields, request_id=3)
    decoded = BINARY_WIRE_CODEC.decode_response(
        BINARY_WIRE_CODEC.encode_response(response)
    )
    assert decoded.status == status
    assert _materialize(decoded.fields) == fields


@settings(max_examples=100, deadline=None)
@given(data=st.binary(max_size=512))
def test_fuzz_arbitrary_bytes_never_crash_the_parser(data):
    """Garbage in, CodecError out — never KeyError/IndexError/etc."""
    for decode in (BINARY_WIRE_CODEC.decode_request,
                   BINARY_WIRE_CODEC.decode_response):
        try:
            decode(data)
        except CodecError:
            pass


@settings(max_examples=60, deadline=None)
@given(cut=st.integers(min_value=0, max_value=200), flip=st.integers(min_value=0))
def test_fuzz_truncated_and_corrupted_frames(cut, flip):
    request = Request(
        verb=Verb.GET,
        fields={"user": b"\x23" * FIXED_ID_BYTES, "trace": "tw:0000000000001"},
        request_id=1, client_address="c",
    )
    frame = BINARY_WIRE_CODEC.encode_request(request)
    if cut < len(frame):
        with pytest.raises(CodecError):
            BINARY_WIRE_CODEC.decode_request(frame[:cut])
    corrupted = bytearray(frame)
    corrupted[flip % len(frame)] ^= 0xFF
    try:
        BINARY_WIRE_CODEC.decode_request(bytes(corrupted))
    except CodecError:
        pass  # rejecting is fine; crashing differently is not


@settings(max_examples=30, deadline=None)
@given(count=st.integers(min_value=0, max_value=40))
def test_fuzz_max_size_identifier_payloads(count):
    blobs = [bytes([i % 256]) * FIXED_ID_BYTES for i in range(count)]
    packed = BINARY_WIRE_CODEC.pack_items(blobs)
    assert len(packed) == count * FIXED_ID_BYTES
    assert [bytes(b) for b in BINARY_WIRE_CODEC.unpack_items(packed)] == blobs


@settings(max_examples=40, deadline=None)
@given(frames=st.lists(st.binary(max_size=128), max_size=20),
       cut=st.integers(min_value=0, max_value=64))
def test_fuzz_batch_frame_packing(frames, cut):
    from repro.crypto.envelope import PaddingError

    packed = EnvelopeCodec.pack_frames(frames)
    assert [bytes(f) for f in EnvelopeCodec.unpack_frames(packed)] == frames
    if cut < len(packed):
        try:
            EnvelopeCodec.unpack_frames(packed[:cut])
        except PaddingError:
            pass
