"""Remote attestation and attestation-gated provisioning."""

from __future__ import annotations

import random

import pytest

from repro.crypto.keys import KeyFactory
from repro.sgx.attestation import AttestationError, AttestationService
from repro.sgx.enclave import Enclave, EnclaveMeasurement
from repro.sgx.provisioning import KeyProvisioner, UA_SECRET_K, UA_SECRET_SK


def _enclave(code: str = "genuine") -> Enclave:
    return Enclave(
        name="e", measurement=EnclaveMeasurement.of_code(code), host_node="n"
    )


def test_quote_verifies_for_genuine_enclave():
    service = AttestationService()
    enclave = _enclave()
    nonce = b"n" * 16
    quote = service.quote(enclave, nonce)
    service.verify(quote, EnclaveMeasurement.of_code("genuine"), nonce)


def test_quote_rejects_wrong_measurement():
    service = AttestationService()
    quote = service.quote(_enclave("malicious"), b"n" * 16)
    with pytest.raises(AttestationError, match="measurement mismatch"):
        service.verify(quote, EnclaveMeasurement.of_code("genuine"), b"n" * 16)


def test_quote_rejects_replayed_nonce():
    service = AttestationService()
    quote = service.quote(_enclave(), b"old-nonce-000000")
    with pytest.raises(AttestationError, match="nonce"):
        service.verify(quote, EnclaveMeasurement.of_code("genuine"), b"new-nonce-000000")


def test_quote_rejects_forged_signature():
    service = AttestationService()
    other_service = AttestationService()
    quote = other_service.quote(_enclave(), b"n" * 16)
    with pytest.raises(AttestationError, match="signature"):
        service.verify(quote, EnclaveMeasurement.of_code("genuine"), b"n" * 16)


@pytest.fixture(scope="module")
def provisioner():
    rng = random.Random(5)
    factory = KeyFactory(rsa_bits=1024, rng_int=lambda b: rng.randrange(b))
    return KeyProvisioner(
        attestation=AttestationService(),
        expected_measurements={
            "UA": EnclaveMeasurement.of_code("ua-code"),
            "IA": EnclaveMeasurement.of_code("ia-code"),
        },
        layer_keys={"UA": factory.layer_keys(), "IA": factory.layer_keys()},
    )


def test_provision_installs_layer_secrets(provisioner):
    enclave = _enclave("ua-code")
    provisioner.provision("UA", enclave)
    assert enclave.provisioned
    assert enclave.secret(UA_SECRET_K) == provisioner.layer_keys["UA"].symmetric_key
    assert enclave.secret(UA_SECRET_SK) is provisioner.layer_keys["UA"].private_key


def test_provision_refuses_forged_enclave(provisioner):
    forged = _enclave("evil-code")
    with pytest.raises(AttestationError):
        provisioner.provision("UA", forged)
    assert not forged.provisioned


def test_provision_rejects_unknown_layer(provisioner):
    with pytest.raises(KeyError):
        provisioner.provision("XX", _enclave("ua-code"))


def test_rotate_layer_installs_fresh_keys(provisioner):
    enclave = _enclave("ua-code")
    provisioner.provision("UA", enclave)
    rng = random.Random(6)
    factory = KeyFactory(rsa_bits=1024, rng_int=lambda b: rng.randrange(b))
    new_keys = factory.layer_keys()
    provisioner.rotate_layer("UA", new_keys, [enclave])
    assert enclave.secret(UA_SECRET_K) == new_keys.symmetric_key
