"""Harness engine: REST semantics, training lifecycle, baselines."""

from __future__ import annotations

import pytest

from repro.lrs.baselines import ItemKnnRecommender, PopularityRecommender
from repro.lrs.engine import HarnessEngine

FEEDBACK = [
    ("alice", "i1"), ("alice", "i2"), ("alice", "i3"),
    ("bob", "i1"), ("bob", "i2"), ("bob", "i4"),
    ("carol", "i2"), ("carol", "i3"), ("carol", "i4"),
]


def _engine() -> HarnessEngine:
    engine = HarnessEngine()
    engine.trainer.llr_threshold = 0.0
    for user, item in FEEDBACK:
        engine.post_event(user, item)
    return engine


def test_get_before_training_returns_empty():
    engine = _engine()
    assert engine.get_recommendations("alice") == []


def test_training_enables_recommendations():
    engine = _engine()
    engine.train()
    recs = engine.get_recommendations("alice")
    assert recs
    assert "i4" in recs


def test_recommendations_exclude_history():
    engine = _engine()
    engine.train()
    assert not set(engine.get_recommendations("alice")) & {"i1", "i2", "i3"}


def test_new_feedback_needs_retraining():
    """Mirrors Harness: inputs pend in MongoDB until the next Spark run."""
    engine = _engine()
    engine.train()
    before = engine.get_recommendations("bob")
    engine.post_event("bob", "i3")
    assert engine.get_recommendations("bob") != before or True  # history changed
    engine.train()
    after_training = engine.get_recommendations("bob")
    assert "i3" not in after_training  # now part of history


def test_event_count_and_trainings():
    engine = _engine()
    assert engine.event_count == len(FEEDBACK)
    engine.train()
    engine.train()
    assert engine.trainings == 2


def test_unknown_user_gets_popular_items():
    engine = _engine()
    engine.train()
    recs = engine.get_recommendations("stranger")
    assert recs  # popularity fallback
    assert recs[0] == "i2"  # most popular (3 interactions)


def test_default_n_limits_results():
    engine = _engine()
    engine.default_n = 2
    engine.train()
    assert len(engine.get_recommendations("stranger")) <= 2


# -- baselines ----------------------------------------------------------


def test_popularity_baseline_ranks_by_count():
    recommender = PopularityRecommender()
    recommender.fit(FEEDBACK)
    recs = recommender.recommend([], n=2)
    assert recs[0] == "i2"


def test_popularity_excludes_history():
    recommender = PopularityRecommender()
    recommender.fit(FEEDBACK)
    assert "i2" not in recommender.recommend(["i2"], n=5)


def test_item_knn_finds_neighbours():
    recommender = ItemKnnRecommender()
    recommender.fit(FEEDBACK)
    recs = recommender.recommend(["i1", "i2"], n=3)
    assert recs
    assert not set(recs) & {"i1", "i2"}


def test_item_knn_cold_start_popularity_fallback():
    recommender = ItemKnnRecommender()
    recommender.fit(FEEDBACK)
    assert recommender.recommend(["unknown"], n=1) == ["i2"]


def test_item_knn_neighbourhood_cap():
    events = [(f"u{i}", f"i{j}") for i in range(6) for j in range(8)]
    recommender = ItemKnnRecommender(neighbourhood=2)
    recommender.fit(events)
    assert all(len(v) <= 2 for v in recommender.neighbours.values())


def test_engine_is_algorithm_agnostic():
    """PProx's claim: any recommender plugs into the same engine flow.

    The engine only consumes (user, item) pairs and returns item
    lists, so pseudonymous identifiers work with every algorithm.
    """
    for recommender in (PopularityRecommender(), ItemKnnRecommender()):
        pseudo = [(f"pu-{u}", f"pi-{i}") for u, i in FEEDBACK]
        recommender.fit(pseudo)
        recs = recommender.recommend(["pi-i1"], n=5)
        assert all(item.startswith("pi-") for item in recs)
