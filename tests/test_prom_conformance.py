"""Prometheus text-exposition conformance: the rendered scrape must
parse cleanly, emit exactly one +Inf bucket per histogram series with
``_sum``/``_count`` agreeing, and escape label values correctly."""

import math
import re

import pytest

from repro.telemetry.registry import MetricRegistry

SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_PAIR = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def unescape(value):
    return (
        value.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
    )


def parse_exposition(text):
    """Parse format 0.0.4 text into (samples, helps, types).

    Raises AssertionError on any line that is neither a valid comment
    nor a valid sample — the conformance check itself.
    """
    samples = []
    helps = {}
    types = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            assert name not in types, f"duplicate TYPE for {name}"
            assert kind in ("counter", "gauge", "histogram", "untyped")
            types[name] = kind
            continue
        match = SAMPLE_LINE.match(line)
        assert match, f"unparseable exposition line: {line!r}"
        labels = {}
        raw = match.group("labels")
        if raw:
            consumed = ",".join(m.group(0) for m in LABEL_PAIR.finditer(raw))
            assert consumed == raw, f"unparseable label set: {raw!r}"
            for pair in LABEL_PAIR.finditer(raw):
                labels[pair.group("key")] = unescape(pair.group("value"))
        value = match.group("value")
        parsed = math.inf if value == "+Inf" else float(value)
        samples.append((match.group("name"), labels, parsed))
    return samples, helps, types


@pytest.fixture
def registry():
    reg = MetricRegistry()
    reg.counter("pprox_requests_total", "Requests issued.").inc(7)
    reg.gauge(
        "pprox_proxy_pending",
        "In-flight requests.",
        labels={"instance": 'ua "a"\\b\nnl'},
    ).set(3)
    hist = reg.histogram(
        "pprox_request_latency_seconds",
        "End-to-end latency.",
        buckets=(0.1, 0.5, 1.0, math.inf),  # explicit +Inf must dedupe
    )
    for value in (0.05, 0.2, 0.7, 2.0):
        hist.observe(value)
    return reg


def test_every_line_parses(registry):
    samples, helps, types = parse_exposition(registry.render_prometheus())
    assert samples, "no samples rendered"
    assert types["pprox_requests_total"] == "counter"
    assert types["pprox_proxy_pending"] == "gauge"
    assert types["pprox_request_latency_seconds"] == "histogram"
    assert helps["pprox_requests_total"] == "Requests issued."


def test_type_comment_precedes_its_samples(registry):
    text = registry.render_prometheus()
    lines = text.splitlines()
    for name in ("pprox_requests_total", "pprox_request_latency_seconds"):
        type_index = lines.index(f"# TYPE {name} " + ("counter" if name.endswith("_total") else "histogram"))
        sample_indexes = [
            i for i, line in enumerate(lines)
            if not line.startswith("#") and line.startswith(name)
        ]
        assert sample_indexes and min(sample_indexes) > type_index


def test_histogram_emits_exactly_one_inf_bucket(registry):
    samples, _, _ = parse_exposition(registry.render_prometheus())
    inf_buckets = [
        labels for name, labels, _ in samples
        if name == "pprox_request_latency_seconds_bucket"
        and labels.get("le") == "+Inf"
    ]
    assert len(inf_buckets) == 1


def test_histogram_sum_count_and_cumulative_buckets(registry):
    samples, _, _ = parse_exposition(registry.render_prometheus())
    buckets = [
        (labels["le"], value) for name, labels, value in samples
        if name == "pprox_request_latency_seconds_bucket"
    ]
    counts = [value for _, value in buckets]
    assert counts == sorted(counts), "bucket counts must be cumulative"
    [count] = [
        value for name, _, value in samples
        if name == "pprox_request_latency_seconds_count"
    ]
    [total] = [
        value for name, _, value in samples
        if name == "pprox_request_latency_seconds_sum"
    ]
    inf_count = dict(buckets)["+Inf"]
    assert count == inf_count == 4
    assert total == pytest.approx(0.05 + 0.2 + 0.7 + 2.0)
    # Bucket boundaries are le-inclusive: 0.05 and 0.2 land <= 0.5.
    assert dict(buckets)["0.5"] == 2


def test_label_values_round_trip_through_escaping(registry):
    samples, _, _ = parse_exposition(registry.render_prometheus())
    [labels] = [
        labels for name, labels, _ in samples if name == "pprox_proxy_pending"
    ]
    assert labels["instance"] == 'ua "a"\\b\nnl'


def test_duplicate_inf_bound_is_rejected_or_deduped():
    # An explicit inf bound in the bucket list must never yield two
    # +Inf series (Prometheus parsers reject duplicate series).
    reg = MetricRegistry()
    hist = reg.histogram(
        "pprox_dup_seconds", "Dedupe check.", buckets=(1.0, math.inf, float("inf"))
    )
    hist.observe(0.5)
    text = reg.render_prometheus()
    assert text.count('le="+Inf"') == 1


def test_nan_buckets_and_empty_bucket_lists_are_rejected():
    reg = MetricRegistry()
    with pytest.raises(ValueError):
        reg.histogram("pprox_bad_seconds", "x", buckets=(float("nan"),))
    with pytest.raises(ValueError):
        reg.histogram("pprox_empty_seconds", "x", buckets=(math.inf,))
