"""CCO / LLR collaborative filtering correctness."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lrs.cco import CcoModel, CcoTrainer, llr_score


def test_llr_zero_for_independent_events():
    """A perfectly proportional table carries no information."""
    assert llr_score(10, 10, 10, 10) == pytest.approx(0.0, abs=1e-9)


def test_llr_positive_for_correlated_events():
    assert llr_score(10, 1, 1, 100) > 5.0


def test_llr_symmetry():
    assert llr_score(5, 2, 3, 90) == pytest.approx(llr_score(5, 3, 2, 90))


def test_llr_grows_with_evidence():
    weak = llr_score(2, 1, 1, 20)
    strong = llr_score(20, 10, 10, 200)
    assert strong > weak


def test_llr_never_negative():
    for table in [(1, 0, 0, 0), (0, 1, 1, 0), (3, 3, 3, 3), (1, 2, 3, 4)]:
        assert llr_score(*table) >= 0.0


def test_llr_known_value():
    """Cross-check against the direct entropy formula."""
    k11, k12, k21, k22 = 13, 1000, 1000, 100_000

    def entropy(*ks):
        total = sum(ks)
        return -sum(k * math.log(k / total) for k in ks if k)

    expected = 2.0 * (
        entropy(k11 + k12, k21 + k22) + entropy(k11 + k21, k12 + k22)
        - entropy(k11, k12, k21, k22)
    )
    assert llr_score(k11, k12, k21, k22) == pytest.approx(expected)


@settings(max_examples=40, deadline=None)
@given(st.tuples(*[st.integers(min_value=0, max_value=500)] * 4))
def test_llr_nonnegative_property(table):
    assert llr_score(*table) >= 0.0


def _train(events, **kwargs) -> CcoModel:
    return CcoTrainer(**kwargs).train(events)


OVERLAPPING = [
    ("alice", "i1"), ("alice", "i2"), ("alice", "i3"),
    ("bob", "i1"), ("bob", "i2"), ("bob", "i4"),
    ("carol", "i2"), ("carol", "i3"), ("carol", "i4"),
    ("dave", "i1"), ("dave", "i3"), ("dave", "i5"),
]


def test_recommends_co_occurring_item():
    model = _train(OVERLAPPING, llr_threshold=0.0)
    recs = model.recommend(["i1", "i2", "i3"], n=3)
    assert "i4" in recs or "i5" in recs
    assert not set(recs) & {"i1", "i2", "i3"}


def test_history_exclusion_can_be_disabled():
    model = _train(OVERLAPPING, llr_threshold=0.0)
    recs = model.recommend(["i1", "i2"], n=10, exclude_history=False)
    assert set(recs) & {"i1", "i2"}


def test_cold_start_falls_back_to_popularity():
    model = _train(OVERLAPPING, llr_threshold=0.0)
    recs = model.recommend(["unseen-item"], n=2)
    # i1..i3 are the most popular (3 interactions each).
    assert recs[0] in {"i1", "i2", "i3"}


def test_duplicate_interactions_are_deduplicated():
    events = [("u", "i1")] * 50 + [("v", "i1"), ("v", "i2"), ("u", "i2")]
    model = _train(events, llr_threshold=0.0)
    assert model.popularity["i1"] == 2  # u and v once each


def test_llr_threshold_prunes_weak_pairs():
    loose = _train(OVERLAPPING, llr_threshold=0.0)
    strict = _train(OVERLAPPING, llr_threshold=100.0)
    assert strict.indicator_count() < loose.indicator_count()
    assert strict.indicator_count() == 0


def test_max_indicators_cap():
    events = [(f"u{i}", f"i{j}") for i in range(12) for j in range(10)]
    model = _train(events, llr_threshold=0.0, max_indicators=3)
    assert all(len(v) <= 3 for v in model.indicators.values())


def test_max_history_downsampling():
    events = [("power-user", f"i{j}") for j in range(100)]
    model = _train(events, max_history=10, llr_threshold=0.0)
    assert model.popularity and sum(model.popularity.values()) == 10


def test_recommendation_is_deterministic():
    model = _train(OVERLAPPING, llr_threshold=0.0)
    assert model.recommend(["i1"], n=5) == model.recommend(["i1"], n=5)


def test_n_limits_result_size():
    model = _train(OVERLAPPING, llr_threshold=0.0)
    assert len(model.recommend(["i1", "i2"], n=1)) == 1


def test_empty_model_returns_nothing():
    model = CcoTrainer().train([])
    assert model.recommend(["i1"]) == []


@settings(max_examples=20, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            st.sampled_from(["u1", "u2", "u3", "u4"]),
            st.sampled_from(["a", "b", "c", "d", "e"]),
        ),
        max_size=40,
    )
)
def test_recommendations_never_include_history(events):
    model = CcoTrainer(llr_threshold=0.0).train(events)
    history = ["a", "b"]
    assert not set(model.recommend(history, n=10)) & set(history)
