"""Multi-core node model: FIFO service, queueing, utilization."""

from __future__ import annotations

import pytest

from repro.simnet.clock import EventLoop
from repro.simnet.node import SimNode


def test_single_job_completes_after_service_time():
    loop = EventLoop()
    node = SimNode(name="n", loop=loop, cores=2)
    done = []
    node.submit(0.5, lambda: done.append(loop.now))
    loop.run()
    assert done == [0.5]


def test_parallel_jobs_up_to_core_count():
    loop = EventLoop()
    node = SimNode(name="n", loop=loop, cores=2)
    done = []
    for _ in range(2):
        node.submit(1.0, lambda: done.append(loop.now))
    loop.run()
    assert done == [1.0, 1.0]


def test_third_job_queues_behind_two_cores():
    loop = EventLoop()
    node = SimNode(name="n", loop=loop, cores=2)
    done = []
    for _ in range(3):
        node.submit(1.0, lambda: done.append(loop.now))
    loop.run()
    assert done == [1.0, 1.0, 2.0]


def test_fifo_order():
    loop = EventLoop()
    node = SimNode(name="n", loop=loop, cores=1)
    order = []
    for index in range(4):
        node.submit(0.1, lambda i=index: order.append(i))
    loop.run()
    assert order == [0, 1, 2, 3]


def test_negative_service_time_rejected():
    node = SimNode(name="n", loop=EventLoop(), cores=1)
    with pytest.raises(ValueError, match="negative"):
        node.submit(-1.0, lambda: None)


def test_pending_and_queue_length():
    loop = EventLoop()
    node = SimNode(name="n", loop=loop, cores=1)
    for _ in range(3):
        node.submit(1.0, lambda: None)
    assert node.pending == 3
    assert node.queue_length == 2
    assert node.busy_cores == 1
    loop.run()
    assert node.pending == 0


def test_utilization_accounting():
    loop = EventLoop()
    node = SimNode(name="n", loop=loop, cores=2)
    node.submit(1.0, lambda: None)
    node.submit(1.0, lambda: None)
    loop.run()
    # 2 core-seconds of work in 1 second on 2 cores: fully utilized.
    assert node.utilization() == pytest.approx(1.0)
    assert node.stats.jobs_completed == 2


def test_queue_wait_statistics():
    loop = EventLoop()
    node = SimNode(name="n", loop=loop, cores=1)
    node.submit(1.0, lambda: None)
    node.submit(1.0, lambda: None)  # waits 1 s
    loop.run()
    assert node.stats.mean_queue_wait() == pytest.approx(0.5)
    assert node.stats.max_queue_length == 1


def test_completion_callback_can_submit_more_work():
    loop = EventLoop()
    node = SimNode(name="n", loop=loop, cores=1)
    done = []
    node.submit(1.0, lambda: node.submit(1.0, lambda: done.append(loop.now)))
    loop.run()
    assert done == [2.0]


def test_zero_service_time_job():
    loop = EventLoop()
    node = SimNode(name="n", loop=loop, cores=1)
    done = []
    node.submit(0.0, lambda: done.append(True))
    loop.run()
    assert done == [True]
