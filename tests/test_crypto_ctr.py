"""AES-CTR modes: deterministic and randomized encryption properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ctr import (
    DETERMINISTIC_IV,
    ctr_transform,
    det_decrypt,
    det_encrypt,
    rand_decrypt,
    rand_encrypt,
)

KEY = bytes(range(32))


def test_det_encrypt_is_deterministic():
    assert det_encrypt(KEY, b"user-42") == det_encrypt(KEY, b"user-42")


def test_det_encrypt_distinguishes_inputs():
    assert det_encrypt(KEY, b"user-42") != det_encrypt(KEY, b"user-43")


def test_det_roundtrip():
    assert det_decrypt(KEY, det_encrypt(KEY, b"payload")) == b"payload"


def test_det_encrypt_key_dependence():
    other_key = bytes(range(1, 33))
    assert det_encrypt(KEY, b"x") != det_encrypt(other_key, b"x")


def test_rand_encrypt_is_randomized():
    """Two encryptions of the same input differ (fresh IV each time)."""
    assert rand_encrypt(KEY, b"same-input") != rand_encrypt(KEY, b"same-input")


def test_rand_roundtrip():
    blob = rand_encrypt(KEY, b"recommendations")
    assert rand_decrypt(KEY, blob) == b"recommendations"


def test_rand_encrypt_prepends_iv():
    blob = rand_encrypt(KEY, b"abc")
    assert len(blob) == 16 + 3


def test_rand_decrypt_rejects_short_blob():
    with pytest.raises(ValueError, match="too short"):
        rand_decrypt(KEY, b"short")


def test_rand_encrypt_with_custom_rng():
    fixed_iv = bytes(16)
    blob = rand_encrypt(KEY, b"data", rng=lambda n: fixed_iv[:n])
    assert blob[:16] == fixed_iv
    # With the all-zero IV, rand == det by construction.
    assert blob[16:] == det_encrypt(KEY, b"data")


def test_ctr_rejects_bad_iv():
    with pytest.raises(ValueError, match="IV"):
        ctr_transform(KEY, b"short-iv", b"data")


def test_ctr_counter_increments_across_blocks():
    """Blocks beyond the first use an incremented counter, so a
    two-block message is not two copies of the one-block keystream."""
    data = bytes(32)
    out = ctr_transform(KEY, DETERMINISTIC_IV, data)
    assert out[:16] != out[16:]


def test_ctr_empty_input():
    assert ctr_transform(KEY, DETERMINISTIC_IV, b"") == b""


def test_ctr_counter_wraps_at_128_bits():
    iv = b"\xff" * 16
    out = ctr_transform(KEY, iv, bytes(32))
    # Second block must use counter 0 after wrapping, not raise.
    assert len(out) == 32


@settings(max_examples=25, deadline=None)
@given(data=st.binary(min_size=0, max_size=200))
def test_det_roundtrip_property(data):
    assert det_decrypt(KEY, det_encrypt(KEY, data)) == data


@settings(max_examples=25, deadline=None)
@given(data=st.binary(min_size=0, max_size=200))
def test_rand_roundtrip_property(data):
    assert rand_decrypt(KEY, rand_encrypt(KEY, data)) == data


@settings(max_examples=15, deadline=None)
@given(data=st.binary(min_size=1, max_size=64))
def test_ciphertext_length_equals_plaintext_length(data):
    """CTR is length-preserving — the constant-size-message property
    of §4.3 relies on this."""
    assert len(det_encrypt(KEY, data)) == len(data)
