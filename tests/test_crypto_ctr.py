"""AES-CTR modes: NIST vectors, determinism, cache behaviour."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.crypto.ctr as ctr_module
from repro.crypto.ctr import (
    DETERMINISTIC_IV,
    ctr_transform,
    det_decrypt,
    det_encrypt,
    keyed_pseudonym,
    rand_decrypt,
    rand_encrypt,
)
from repro.crypto.reference import reference_det_encrypt

KEY = bytes(range(32))

# NIST SP 800-38A §F.5: CTR mode known-answer tests.  Same plaintext
# and initial counter block for all three key sizes.
NIST_CTR_COUNTER = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
NIST_CTR_PLAINTEXT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)
NIST_CTR_VECTORS = [
    # (key hex, ciphertext hex) — F.5.1, F.5.3, F.5.5.
    (
        "2b7e151628aed2a6abf7158809cf4f3c",
        "874d6191b620e3261bef6864990db6ce"
        "9806f66b7970fdff8617187bb9fffdff"
        "5ae4df3edbd5d35e5b4f09020db03eab"
        "1e031dda2fbe03d1792170a0f3009cee",
    ),
    (
        "8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b",
        "1abc932417521ca24f2b0459fe7e6e0b"
        "090339ec0aa6faefd5ccc2c6f4ce8e94"
        "1e36b26bd1ebc670d1bd1d665620abf7"
        "4f78a7f6d29809585a97daec58c6b050",
    ),
    (
        "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4",
        "601ec313775789a5b7a7f504bbf3d228"
        "f443e3ca4d62b59aca84e990cacaf5c5"
        "2b0930daa23de94ce87017ba2d84988d"
        "dfc9c58db67aada613c2dd08457941a6",
    ),
]


@pytest.mark.parametrize("key_hex,expected_hex", NIST_CTR_VECTORS)
def test_nist_sp800_38a_ctr_vectors(key_hex, expected_hex):
    key = bytes.fromhex(key_hex)
    assert ctr_transform(key, NIST_CTR_COUNTER, NIST_CTR_PLAINTEXT).hex() == expected_hex


@pytest.mark.parametrize("key_hex,expected_hex", NIST_CTR_VECTORS)
def test_nist_sp800_38a_ctr_decrypt(key_hex, expected_hex):
    key = bytes.fromhex(key_hex)
    assert ctr_transform(key, NIST_CTR_COUNTER, bytes.fromhex(expected_hex)) == NIST_CTR_PLAINTEXT


def test_det_encrypt_is_deterministic():
    assert det_encrypt(KEY, b"user-42") == det_encrypt(KEY, b"user-42")


def test_det_encrypt_distinguishes_inputs():
    assert det_encrypt(KEY, b"user-42") != det_encrypt(KEY, b"user-43")


def test_det_roundtrip():
    assert det_decrypt(KEY, det_encrypt(KEY, b"payload")) == b"payload"


def test_det_encrypt_key_dependence():
    other_key = bytes(range(1, 33))
    assert det_encrypt(KEY, b"x") != det_encrypt(other_key, b"x")


def test_rand_encrypt_is_randomized():
    """Two encryptions of the same input differ (fresh IV each time)."""
    assert rand_encrypt(KEY, b"same-input") != rand_encrypt(KEY, b"same-input")


def test_rand_roundtrip():
    blob = rand_encrypt(KEY, b"recommendations")
    assert rand_decrypt(KEY, blob) == b"recommendations"


def test_rand_encrypt_prepends_iv():
    blob = rand_encrypt(KEY, b"abc")
    assert len(blob) == 16 + 3


def test_rand_decrypt_rejects_short_blob():
    with pytest.raises(ValueError, match="too short"):
        rand_decrypt(KEY, b"short")


def test_rand_encrypt_with_custom_rng():
    fixed_iv = bytes(16)
    blob = rand_encrypt(KEY, b"data", rng=lambda n: fixed_iv[:n])
    assert blob[:16] == fixed_iv
    # With the all-zero IV, rand == det by construction.
    assert blob[16:] == det_encrypt(KEY, b"data")


def test_ctr_rejects_bad_iv():
    with pytest.raises(ValueError, match="IV"):
        ctr_transform(KEY, b"short-iv", b"data")


def test_ctr_counter_increments_across_blocks():
    """Blocks beyond the first use an incremented counter, so a
    two-block message is not two copies of the one-block keystream."""
    data = bytes(32)
    out = ctr_transform(KEY, DETERMINISTIC_IV, data)
    assert out[:16] != out[16:]


def test_ctr_empty_input():
    assert ctr_transform(KEY, DETERMINISTIC_IV, b"") == b""


def test_ctr_counter_wraps_at_128_bits():
    iv = b"\xff" * 16
    out = ctr_transform(KEY, iv, bytes(32))
    # Second block must use counter 0 after wrapping, not raise.
    assert len(out) == 32


@settings(max_examples=25, deadline=None)
@given(data=st.binary(min_size=0, max_size=200))
def test_det_roundtrip_property(data):
    assert det_decrypt(KEY, det_encrypt(KEY, data)) == data


@settings(max_examples=25, deadline=None)
@given(data=st.binary(min_size=0, max_size=200))
def test_rand_roundtrip_property(data):
    assert rand_decrypt(KEY, rand_encrypt(KEY, data)) == data


@settings(max_examples=15, deadline=None)
@given(data=st.binary(min_size=1, max_size=64))
def test_ciphertext_length_equals_plaintext_length(data):
    """CTR is length-preserving — the constant-size-message property
    of §4.3 relies on this."""
    assert len(det_encrypt(KEY, data)) == len(data)


@settings(max_examples=40, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16)
    | st.binary(min_size=24, max_size=24)
    | st.binary(min_size=32, max_size=32),
    data=st.binary(min_size=0, max_size=600),
)
def test_det_encrypt_matches_straight_line_reference(key, data):
    """The optimized path (T-tables + cached keystream + integer XOR)
    must stay byte-identical to the seed's per-byte implementation —
    deterministic pseudonyms are a stability contract, not just perf."""
    assert det_encrypt(key, data) == reference_det_encrypt(key, data)


def test_det_keystream_cache_extends_beyond_prefix():
    """Payloads longer than the cached keystream prefix still decrypt."""
    long_payload = bytes(range(256)) * 10  # 2560 B > 512 B prefix
    blob = det_encrypt(KEY, long_payload)
    assert det_decrypt(KEY, blob) == long_payload
    assert blob == reference_det_encrypt(KEY, long_payload)
    # A short call after the long one must reuse the same stream head.
    assert det_encrypt(KEY, long_payload[:20]) == blob[:20]


def test_cipher_cache_evicts_oldest_not_all(monkeypatch):
    """On overflow the cipher cache drops only the oldest schedule;
    a wholesale clear() would re-expand every hot key."""
    monkeypatch.setattr(ctr_module, "_CIPHER_CACHE", {})
    monkeypatch.setattr(ctr_module, "_CIPHER_CACHE_MAX", 3)
    keys = [bytes([i]) * 32 for i in range(4)]
    for key in keys[:3]:
        ctr_module._cipher_for(key)
    warm = ctr_module._cipher_for(keys[1])  # still cached
    ctr_module._cipher_for(keys[3])  # overflow: evicts keys[0] only
    assert keys[0] not in ctr_module._CIPHER_CACHE
    assert ctr_module._CIPHER_CACHE.keys() == {keys[1], keys[2], keys[3]}
    assert ctr_module._cipher_for(keys[1]) is warm


def test_det_keystream_cache_is_bounded(monkeypatch):
    monkeypatch.setattr(ctr_module, "_DET_KEYSTREAM_CACHE", {})
    monkeypatch.setattr(ctr_module, "_DET_KEYSTREAM_CACHE_MAX", 2)
    keys = [bytes([i]) * 32 for i in range(3)]
    for key in keys:
        det_encrypt(key, b"identifier")
    assert len(ctr_module._DET_KEYSTREAM_CACHE) <= 2
    assert keys[0] not in ctr_module._DET_KEYSTREAM_CACHE
    # Evicted keys still encrypt correctly (cache is transparent).
    assert det_encrypt(keys[0], b"identifier") == reference_det_encrypt(keys[0], b"identifier")


def test_keyed_pseudonym_is_exported():
    assert "keyed_pseudonym" in ctr_module.__all__
    assert keyed_pseudonym(KEY, b"user-1") == keyed_pseudonym(KEY, b"user-1")
    assert len(keyed_pseudonym(KEY, b"user-1", length=12)) == 12
