"""Virtual-time profiler tests: deterministic attribution across both
simnet engines, causal-stack collapse, merge/render helpers, and full
delegation to the wrapped loop."""

import json

from repro.obs.profiler import (
    ProfiledLoop,
    merge_profiles,
    profile_snapshot,
    render_folded,
    write_profile,
)
from repro.simnet.clock import make_event_loop


def drive_workload(loop):
    """A small causal workload: a self-scheduling pump that fans out."""

    done = []

    def work():
        done.append(loop.now)

    def pump(remaining):
        loop.schedule(0.25, work)
        if remaining > 1:
            loop.schedule(0.5, lambda: pump(remaining - 1))

    loop.schedule(0.0, lambda: pump(4))
    loop.run()
    return done


def test_profile_is_identical_across_engines():
    calendar = ProfiledLoop(make_event_loop("calendar"))
    reference = ProfiledLoop(make_event_loop("reference"))
    assert drive_workload(calendar) == drive_workload(reference)
    assert profile_snapshot(calendar) == profile_snapshot(reference)


def test_profile_is_identical_across_same_workload_runs(tmp_path):
    paths = []
    for label in ("a", "b"):
        loop = ProfiledLoop(make_event_loop("calendar"))
        drive_workload(loop)
        paths.append(write_profile(loop, str(tmp_path / label)))
    first = (tmp_path / "a" / "profile.json").read_bytes()
    second = (tmp_path / "b" / "profile.json").read_bytes()
    assert first == second
    assert (tmp_path / "a" / "profile.folded").read_bytes() == (
        tmp_path / "b" / "profile.folded"
    ).read_bytes()
    # The wall-clock meta exists but is never part of the diffable set.
    assert (tmp_path / "a" / "profile_meta.json").exists()
    assert set(paths[0]) == {"profile", "folded", "meta"}


def test_self_scheduling_chains_collapse_to_one_frame():
    loop = ProfiledLoop(make_event_loop("calendar"))
    ticks = []

    def tick():
        ticks.append(loop.now)
        if len(ticks) < 50:
            loop.schedule(0.1, tick)

    loop.schedule(0.1, tick)
    loop.run()
    assert len(ticks) == 50
    tick_keys = [key for key in loop.sites if "tick" in key]
    # One collapsed stack, not 50 nested frames.
    assert len(tick_keys) == 1
    assert loop.sites[tick_keys[0]][0] == 50
    assert tick_keys[0].count(";") == 0


def test_virtual_delay_is_the_edge_cost():
    loop = ProfiledLoop(make_event_loop("calendar"))
    loop.schedule(1.5, lambda: None)
    loop.run()
    [record] = loop.sites.values()
    assert record[0] == 1
    assert record[1] == 1.5  # fire time minus schedule time


def test_max_depth_bounds_runaway_stacks():
    import functools

    loop = ProfiledLoop(make_event_loop("calendar"), max_depth=3)

    # Alternating labels defeat the self-scheduling collapse, so the
    # stack would grow one frame per hop without the depth bound.
    def alpha(n):
        if n > 0:
            loop.schedule(0.1, functools.partial(beta, n))

    def beta(n):
        loop.schedule(0.1, functools.partial(alpha, n - 1))

    loop.schedule(0.0, functools.partial(alpha, 8))
    loop.run()
    deepest = max(key.count(";") + 1 for key in loop.sites)
    assert deepest == 3


def test_merge_profiles_sums_sites():
    snapshots = []
    for _ in range(2):
        loop = ProfiledLoop(make_event_loop("calendar"))
        drive_workload(loop)
        snapshots.append(profile_snapshot(loop))
    merged = merge_profiles(snapshots)
    assert merged["events_processed"] == 2 * snapshots[0]["events_processed"]
    assert merged["final_virtual_time"] == snapshots[0]["final_virtual_time"]
    for key, record in merged["sites"].items():
        assert record["calls"] == 2 * snapshots[0]["sites"][key]["calls"]


def test_render_folded_emits_sorted_collapsed_stacks():
    loop = ProfiledLoop(make_event_loop("calendar"))
    drive_workload(loop)
    snapshot = profile_snapshot(loop)
    folded = render_folded(snapshot)
    assert folded.endswith("\n")
    lines = folded.strip().splitlines()
    assert lines == sorted(lines)
    for line in lines:
        stack, count = line.rsplit(" ", 1)
        assert stack and int(count) > 0
    # Round-trips as valid JSON-compatible data too.
    json.loads(json.dumps(snapshot))


def test_profiled_loop_delegates_the_full_engine_api():
    inner = make_event_loop("calendar")
    loop = ProfiledLoop(inner)
    fired = []
    loop.schedule_at(2.0, lambda: fired.append("schedule_at"))
    loop.post(0.5, lambda: fired.append("post"))
    loop.post_at(0.75, lambda: fired.append("post_at"))
    assert loop.now == inner.now == 0.0
    assert loop.pending == 3
    assert loop.step() is True
    loop.run_until(1.0)
    assert fired == ["post", "post_at"]
    loop.run()
    assert fired == ["post", "post_at", "schedule_at"]
    assert loop.now == 2.0
    assert loop.events_processed == inner.events_processed
    assert isinstance(loop.queue_stats(), dict)
