"""Sharded fleet units: ring, directory, placement, service, supervisor."""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace

import pytest

from repro.cluster.autoscaler import ElasticScaler
from repro.context import SimContext
from repro.fleet import (
    ROUTABLE_STATES,
    SHARD_STATES,
    FleetSupervisor,
    HashRing,
    Shard,
    ShardAutoscaler,
    ShardDirectory,
    build_fleet,
    domain_kill_plan,
    domain_node,
    placement_violations,
    ring_point,
)
from repro.lrs.stub import StubLrs
from repro.proxy import PProxConfig
from repro.simnet.loadbalancer import LoadBalancer, NoUpstream, RoundRobinPolicy


# -- ring ------------------------------------------------------------------


def test_ring_point_is_deterministic_64_bit():
    assert ring_point("n42") == ring_point("n42")
    assert ring_point("n42") != ring_point("n43")
    assert 0 <= ring_point("s0#0") < 2**64


def test_hash_ring_membership_and_errors():
    ring = HashRing(vnodes=8)
    ring.add("s0")
    ring.add("s1")
    assert len(ring) == 2
    assert "s0" in ring and "s1" in ring
    assert ring.members() == ["s0", "s1"]
    with pytest.raises(ValueError, match="already on the ring"):
        ring.add("s0")
    ring.remove("s0")
    assert "s0" not in ring
    with pytest.raises(ValueError, match="not on the ring"):
        ring.remove("s0")


def test_hash_ring_rejects_zero_vnodes():
    with pytest.raises(ValueError, match="vnodes"):
        HashRing(vnodes=0)


def test_empty_ring_raises_typed_no_upstream():
    with pytest.raises(NoUpstream, match="ring is empty"):
        HashRing().route(1)


def test_route_is_stable_and_spreads_across_shards():
    ring = HashRing(vnodes=64)
    for sid in ("s0", "s1", "s2"):
        ring.add(sid)
    owners = {ring.route(nonce) for nonce in range(1, 400)}
    assert owners == {"s0", "s1", "s2"}
    # Same membership, fresh ring: identical placement (blake2b, not
    # the per-process-salted builtin hash).
    twin = HashRing(vnodes=64)
    for sid in ("s0", "s1", "s2"):
        twin.add(sid)
    assert [ring.route(n) for n in range(1, 100)] == [
        twin.route(n) for n in range(1, 100)
    ]


def test_successors_start_at_owner_and_cover_each_shard_once():
    ring = HashRing(vnodes=32)
    for sid in ("s0", "s1", "s2"):
        ring.add(sid)
    for nonce in (1, 7, 99):
        order = list(ring.successors(nonce))
        assert order[0] == ring.route(nonce)
        assert sorted(order) == ["s0", "s1", "s2"]


# -- directory -------------------------------------------------------------


@dataclass
class FakeInstance:
    name: str
    alive: bool = True
    pending: int = 0


def _bare_shard(shard_id: str, domain: str = "", with_backend: bool = True) -> Shard:
    shard = Shard(
        shard_id=shard_id,
        domain=domain or f"fd-{shard_id}",
        ua_balancer=LoadBalancer(name=f"ua[{shard_id}]", policy=RoundRobinPolicy()),
        ia_balancer=LoadBalancer(name=f"ia[{shard_id}]", policy=RoundRobinPolicy()),
    )
    if with_backend:
        shard.ua_balancer.add(FakeInstance(f"ua-{shard_id}-0"))
    shard.set_state("live")
    return shard


def test_shard_states_and_routability():
    assert ROUTABLE_STATES <= set(SHARD_STATES)
    shard = _bare_shard("s0")
    assert shard.routable
    shard.set_state("retired")
    assert not shard.routable
    with pytest.raises(ValueError, match="unknown shard state"):
        shard.set_state("zombie")
    empty = _bare_shard("s1", with_backend=False)
    assert empty.state == "live" and not empty.routable  # no live UA


def test_directory_register_duplicate_rejected():
    directory = ShardDirectory(vnodes=8)
    directory.register(_bare_shard("s0"))
    with pytest.raises(ValueError, match="already registered"):
        directory.register(_bare_shard("s0"))
    with pytest.raises(ValueError, match="unknown shard"):
        directory.activate("s9")


def test_directory_refuses_non_int_routing_keys():
    """The privacy invariant at the type level: only the request nonce
    routes.  A string user id — or a bool, which is an int subclass —
    is refused loudly and recorded for the audit."""
    directory = ShardDirectory(vnodes=8)
    directory.register(_bare_shard("s0"))
    directory.activate("s0")
    for bad in ("alice", True, 3.5, None):
        with pytest.raises(TypeError, match="int request nonce"):
            directory.route(bad)
    assert directory.rejected_keys == ["'alice'", "True", "3.5", "None"]
    assert directory.routed == 0


def test_directory_key_log_is_bounded():
    directory = ShardDirectory(vnodes=8)
    directory.KEY_LOG_LIMIT = 16
    directory.register(_bare_shard("s0"))
    directory.activate("s0")
    for nonce in range(1, 50):
        directory.route(nonce)
    assert len(directory.key_log) == 16
    assert directory.routed == 49


def test_directory_fails_over_to_ring_sibling():
    directory = ShardDirectory(vnodes=32)
    for sid in ("s0", "s1"):
        directory.register(_bare_shard(sid))
        directory.activate(sid)
    owned_by_s0 = next(
        n for n in range(1, 500) if directory.ring.route(n) == "s0"
    )
    assert directory.route(owned_by_s0).shard_id == "s0"
    assert directory.failovers == 0
    directory.shards["s0"].set_state("retired")  # whole domain down
    assert directory.route(owned_by_s0).shard_id == "s1"
    assert directory.failovers == 1


def test_directory_no_routable_shard_raises():
    directory = ShardDirectory(vnodes=8)
    directory.register(_bare_shard("s0", with_backend=False))
    directory.activate("s0")
    with pytest.raises(NoUpstream, match="no routable shard"):
        directory.route(1)


def test_directory_forget_clears_ring_and_table():
    directory = ShardDirectory(vnodes=8)
    directory.register(_bare_shard("s0"))
    directory.activate("s0")
    directory.forget("s0")
    assert "s0" not in directory.ring
    assert directory.shards == {}


# -- built fleet -----------------------------------------------------------


def _fleet(shards=2, config=None, seed=29):
    ctx = SimContext.fresh(seed)
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    fleet = build_fleet(
        ctx,
        config or PProxConfig(shuffle_size=0, ua_instances=2, ia_instances=2),
        lambda: stub,
        shards=shards,
    )
    return ctx, fleet


def test_build_fleet_shape_and_placement():
    ctx, fleet = _fleet(shards=2)
    assert set(fleet.directory.shards) == {"s0", "s1"}
    assert fleet.directory.ring.members() == ["s0", "s1"]
    for shard in fleet.shards.values():
        assert shard.state == "live"
        assert len(shard.ua_instances) == len(shard.ia_instances) == 2
        assert shard.domain == f"fd-{shard.shard_id}"
    # Every instance also joined the inherited global pools (fault
    # supervisor / telemetry instruments keep working unchanged).
    assert len(fleet.ua_instances) == len(fleet.ia_instances) == 4
    assert len(fleet.ua_balancer) == len(fleet.ia_balancer) == 4
    assert fleet.ua_instances[0].name == "pprox-ua-s0-0"
    assert placement_violations(fleet) == []


def test_build_fleet_validates_arguments():
    ctx = SimContext.fresh(3)
    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    with pytest.raises(ValueError, match="at least one shard"):
        build_fleet(ctx, PProxConfig(shuffle_size=0), lambda: stub, shards=0)
    with pytest.raises(ValueError, match="instance per layer"):
        build_fleet(
            ctx, PProxConfig(shuffle_size=0), lambda: stub,
            shards=1, instances_per_shard=0,
        )


def test_entry_for_routes_by_request_nonce():
    ctx, fleet = _fleet(shards=2)
    by_nonce = {}
    for nonce in range(1, 40):
        entry = fleet.entry_for(SimpleNamespace(request_id=nonce))
        shard = fleet.shard_of(entry)
        assert entry in shard.ua_instances
        by_nonce[nonce] = shard.shard_id
    assert set(by_nonce.values()) == {"s0", "s1"}
    # Re-routing the same nonce stays on the same shard.
    for nonce, sid in list(by_nonce.items())[:10]:
        again = fleet.shard_of(fleet.entry_for(SimpleNamespace(request_id=nonce)))
        assert again.shard_id == sid


def test_shard_of_unknown_instance_is_none():
    ctx, fleet = _fleet(shards=1)
    assert fleet.shard_of(FakeInstance("stranger")) is None


def test_add_shard_without_activate_takes_no_traffic():
    ctx, fleet = _fleet(shards=1)
    target = fleet.add_shard(activate=False)
    assert target.state == "provisioning"
    assert target.shard_id not in fleet.directory.ring
    for nonce in range(1, 60):
        assert fleet.directory.route(nonce).shard_id == "s0"
    fleet.directory.activate(target.shard_id)
    target.set_state("live")
    owners = {fleet.directory.route(n).shard_id for n in range(60, 200)}
    assert owners == {"s0", "s1"}


def test_remove_shard_requires_ring_deactivation_first():
    ctx, fleet = _fleet(shards=2)
    shard = fleet.directory.shards["s1"]
    with pytest.raises(ValueError, match="still on the ring"):
        fleet.remove_shard(shard)
    fleet.directory.deactivate("s1")
    fleet.remove_shard(shard)
    assert shard.state == "retired"
    assert len(fleet.ua_instances) == len(fleet.ia_instances) == 2
    assert all(inst not in fleet.ua_balancer.backends for inst in shard.ua_instances)


def test_restart_instance_stays_inside_the_failure_domain():
    ctx, fleet = _fleet(shards=2)
    shard = fleet.directory.shards["s1"]
    instance = shard.ua_instances[0]
    instance.fail()
    fleet.restart_instance(instance)
    assert instance.alive
    assert instance.enclave.host_node.startswith(f"node-{shard.domain}-")
    assert placement_violations(fleet) == []


# -- placement -------------------------------------------------------------


def test_domain_node_format():
    assert domain_node("fd-s0", "UA", 1) == "node-fd-s0-ua-1"


def test_domain_kill_plan_covers_exactly_one_shard():
    ctx, fleet = _fleet(shards=2)
    plan = domain_kill_plan(fleet, "fd-s1", at=1.0, outage=0.5)
    targets = {event.target for event in plan.events}
    shard = fleet.directory.shards["s1"]
    assert targets == {inst.name for inst in shard.instances()}
    assert len(plan.events) == 4  # 2 UA + 2 IA
    assert all(e.kind == "crash" and e.at == 1.0 for e in plan.events)
    with pytest.raises(ValueError, match="no instances placed"):
        domain_kill_plan(fleet, "fd-sX", at=1.0, outage=0.5)


def test_placement_violations_flag_shared_domain_and_stray_node():
    ctx, fleet = _fleet(shards=2)
    fleet.directory.shards["s1"].domain = "fd-s0"
    problems = placement_violations(fleet)
    assert any("share failure domain" in p for p in problems)
    ctx, fleet = _fleet(shards=1)
    fleet.directory.shards["s0"].ua_instances[0].enclave.host_node = "node-elsewhere-0"
    problems = placement_violations(fleet)
    assert any("outside domain" in p for p in problems)


# -- supervisor ------------------------------------------------------------


def test_split_flips_after_barrier_then_completes_after_quiet_period():
    ctx, fleet = _fleet(shards=2)
    supervisor = FleetSupervisor(
        loop=ctx.loop, fleet=fleet, tick_interval=0.05, drain_grace=0.2
    )
    supervisor.start()
    target = supervisor.split("s0")
    source = fleet.directory.shards["s0"]
    assert source.state == "splitting"
    assert target.state == "provisioning"
    assert supervisor.guard("UA") and supervisor.guard("IA")
    ctx.loop.run_until(3.0)
    supervisor.stop()
    assert supervisor.splits_completed == 1
    assert source.state == "live" and target.state == "live"
    assert target.shard_id in fleet.directory.ring
    assert not supervisor.guard("UA")
    op = supervisor.operations[0]
    assert op.phase == "done"
    # The handoff barrier: flip first, then at least a quiet period of
    # drain before the operation counts as complete.
    assert op.completed_at - op.flipped_at >= max(
        fleet.config.shuffle_timeout, supervisor.drain_grace
    )


def test_split_requires_a_live_source():
    ctx, fleet = _fleet(shards=1)
    supervisor = FleetSupervisor(loop=ctx.loop, fleet=fleet)
    supervisor.split("s0")
    with pytest.raises(ValueError, match="not live; cannot split"):
        supervisor.split("s0")
    with pytest.raises(KeyError):
        supervisor.split("s9")


def test_merge_drains_then_retires_the_source():
    ctx, fleet = _fleet(shards=2)
    supervisor = FleetSupervisor(
        loop=ctx.loop, fleet=fleet, tick_interval=0.05, drain_grace=0.2
    )
    supervisor.start()
    supervisor.merge("s1", "s0")
    assert fleet.directory.shards["s1"].state == "merging"
    ctx.loop.run_until(3.0)
    supervisor.stop()
    assert supervisor.merges_completed == 1
    assert fleet.directory.shards["s1"].state == "retired"
    assert "s1" not in fleet.directory.ring
    assert len(fleet.ua_instances) == 2  # only s0's pair left
    for nonce in range(1, 80):
        assert fleet.directory.route(nonce).shard_id == "s0"


def test_merge_validation():
    ctx, fleet = _fleet(shards=2)
    supervisor = FleetSupervisor(loop=ctx.loop, fleet=fleet)
    with pytest.raises(ValueError, match="cannot absorb"):
        supervisor.merge("s0", "s0")
    fleet.directory.shards["s1"].set_state("draining")
    with pytest.raises(ValueError, match="not live; cannot merge"):
        supervisor.merge("s1", "s0")


def test_probe_ejects_dead_instances_and_readmits_recovered_ones():
    ctx, fleet = _fleet(shards=2)
    supervisor = FleetSupervisor(loop=ctx.loop, fleet=fleet, tick_interval=0.05)
    shard = fleet.directory.shards["s0"]
    victim = shard.ua_instances[0]
    supervisor.start()
    victim.alive = False
    ctx.loop.run_until(0.2)
    assert supervisor.ejections >= 1
    assert not shard.ua_balancer.contains(victim)
    assert not fleet.ua_balancer.contains(victim)
    victim.alive = True
    ctx.loop.run_until(0.4)
    supervisor.stop()
    assert supervisor.readmissions >= 1
    assert shard.ua_balancer.contains(victim)
    assert fleet.ua_balancer.contains(victim)


def test_instance_down_pauses_a_split_and_recovery_resumes_it():
    """Pause-never-abort: a dead instance of an involved shard parks
    the operation where it stands; it advances once health returns."""
    ctx, fleet = _fleet(shards=2)
    supervisor = FleetSupervisor(
        loop=ctx.loop, fleet=fleet, tick_interval=0.05, drain_grace=0.2
    )
    supervisor.start()
    target = supervisor.split("s0")
    victim = target.ua_instances[0]
    victim.alive = False
    ctx.loop.run_until(1.5)
    assert supervisor.paused
    assert supervisor.pause_reasons.get("instance_down", 0) >= 1
    assert supervisor.splits_completed == 0
    victim.alive = True
    ctx.loop.run_until(3.5)
    supervisor.stop()
    assert not supervisor.paused
    assert supervisor.splits_completed == 1
    assert target.state == "live"


def test_shard_autoscaler_splits_the_hot_shard_and_defers_while_busy():
    ctx, fleet = _fleet(shards=2)
    # Long drain: the first split is still mid-handoff when the next
    # autoscaler tick finds the second hot shard.
    supervisor = FleetSupervisor(
        loop=ctx.loop, fleet=fleet, tick_interval=0.05, drain_grace=1.5
    )
    scaler = ShardAutoscaler(
        loop=ctx.loop, service=fleet, interval=1.0, high_rps=10.0,
        supervisor=supervisor, max_shards=4,
    )
    supervisor.start()
    scaler.start()

    def pump():
        for shard in fleet.directory.shards.values():
            for instance in shard.ua_instances:
                instance.requests_processed += 100
        ctx.loop.schedule(0.5, pump)

    ctx.loop.schedule(0.25, pump)
    ctx.loop.run_until(2.5)
    scaler.stop()
    supervisor.stop()
    actions = [decision.action for decision in scaler.decisions]
    assert "split" in actions
    assert supervisor.splits_started >= 1
    # The second hot shard had to wait: one operation at a time.
    assert "split-deferred" in actions
    assert scaler.deferred_scale_downs >= 1
