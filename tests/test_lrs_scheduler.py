"""Periodic training scheduler (the recurring Spark job of §7)."""

from __future__ import annotations

import pytest

from repro.lrs.scheduler import TrainingScheduler
from repro.lrs.service import HarnessService
from repro.rest.messages import make_get, make_post
from repro.simnet.clock import EventLoop
from repro.simnet.rng import RngRegistry


@pytest.fixture
def stack():
    loop = EventLoop()
    rng = RngRegistry(seed=111)
    harness = HarnessService(loop=loop, rng=rng.stream("lrs"), frontend_count=3)
    harness.engine.trainer.llr_threshold = 0.0
    return loop, harness


def test_scheduler_trains_periodically(stack):
    loop, harness = stack
    scheduler = TrainingScheduler(loop=loop, harness=harness, interval=10.0)
    scheduler.start()
    loop.run_until(35.0)
    scheduler.stop()
    loop.run()
    assert harness.engine.trainings >= 3
    assert len(scheduler.completions) == harness.engine.trainings


def test_new_feedback_is_picked_up_by_the_next_run(stack):
    loop, harness = stack
    scheduler = TrainingScheduler(loop=loop, harness=harness, interval=10.0)
    scheduler.start()
    for user, item in [("a", "i1"), ("a", "i2"), ("b", "i1"), ("b", "i3")]:
        harness.pick_frontend().handle(make_post(user, item), lambda r: None)
    loop.run_until(15.0)
    responses = []
    harness.pick_frontend().handle(make_get("a"), responses.append)
    loop.run_until(20.0)
    scheduler.stop()
    loop.run()
    assert responses[0].ok
    assert "i3" in responses[0].fields["items"]


def test_job_duration_grows_with_data(stack):
    loop, harness = stack
    scheduler = TrainingScheduler(loop=loop, harness=harness, interval=10.0)
    empty = scheduler.job_duration()
    for index in range(100):
        harness.engine.post_event(f"u{index}", f"i{index}")
    assert scheduler.job_duration() > empty


def test_training_occupies_the_support_pool(stack):
    loop, harness = stack
    scheduler = TrainingScheduler(loop=loop, harness=harness, interval=5.0,
                                  base_seconds=4.0)
    scheduler.start()
    loop.run_until(6.0)
    # The job is running on the support node right now.
    assert scheduler.training_in_progress
    assert harness.support.busy_cores >= 1
    scheduler.stop()
    loop.run()


def test_overlapping_runs_are_skipped(stack):
    """If a job outlasts the interval, the next tick does not stack a
    second concurrent Spark run."""
    loop, harness = stack
    scheduler = TrainingScheduler(loop=loop, harness=harness, interval=2.0,
                                  base_seconds=7.0)
    scheduler.start()
    loop.run_until(10.0)
    scheduler.stop()
    loop.run()
    assert harness.engine.trainings <= 2
