"""Wire-level indistinguishability: constant message sizes (§4.3)."""

from __future__ import annotations

import pytest

from repro.client import PProxClient
from repro.crypto.provider import FastCryptoProvider
from repro.lrs.stub import StubLrs, make_pseudonymous_payload
from repro.privacy.wire import constant_size_violations, flow_size_profile, hop_of
from repro.proxy import PProxConfig, build_pprox
from repro.proxy.costs import DEFAULT_COSTS
from repro.simnet.clock import EventLoop
from repro.simnet.network import FlowRecord, Network
from repro.simnet.rng import RngRegistry


def _run_gets(config: PProxConfig, users):
    rng = RngRegistry(seed=23)
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"))
    stub = StubLrs(loop=loop, rng=rng.stream("stub"))
    provider = FastCryptoProvider(rng_bytes=rng.bytes_fn("crypto"))
    service = build_pprox(loop, network, rng, config, lrs_picker=lambda: stub,
                          provider=provider)
    if config.encryption and config.item_pseudonymization:
        stub.items = make_pseudonymous_payload(
            provider, service.provisioner.layer_keys["IA"].symmetric_key
        )
    client = PProxClient(loop=loop, network=network, provider=provider,
                         service=service, costs=DEFAULT_COSTS, rng=rng.stream("c"))
    for user in users:
        client.get(user)
    loop.run()
    return network.flows


def test_hop_classification():
    record = FlowRecord(time=0, source="client-alice", destination="pprox-ua-0",
                        size_bytes=10, flow_id=1)
    assert hop_of(record) == ("client", "ua")
    record = FlowRecord(time=0, source="pprox-ia-1", destination="harness-fe-0",
                        size_bytes=10, flow_id=2)
    assert hop_of(record) == ("ia", "lrs")


def test_get_requests_have_constant_size_across_users():
    """Identifiers of very different lengths produce identical wire
    sizes on every protected hop."""
    flows = _run_gets(
        PProxConfig(shuffle_size=0),
        users=["u", "a-much-longer-user-identifier-0001", "平均的なユーザー"],
    )
    violations = constant_size_violations(flows)
    assert violations == [], violations


def test_responses_have_constant_size():
    flows = _run_gets(PProxConfig(shuffle_size=0), users=[f"user-{i}" for i in range(5)])
    profile = flow_size_profile(flows)
    assert len(profile[("ua", "client")]) == 1
    assert len(profile[("ia", "ua")]) == 1


def test_hardened_hop_also_constant():
    flows = _run_gets(
        PProxConfig(shuffle_size=0, harden_client_hop=True),
        users=["u", "a-much-longer-user-identifier-0001"],
    )
    assert constant_size_violations(flows) == []


def test_cleartext_mode_leaks_sizes():
    """Without encryption, identifier lengths show on the wire — the
    detector must notice (negative control)."""
    flows = _run_gets(
        PProxConfig(encryption=False, sgx=False, shuffle_size=0),
        users=["u", "a-very-long-user-identifier-that-differs-a-lot"],
    )
    violations = constant_size_violations(flows, hops=[("client", "ua")])
    assert violations


def test_profile_covers_all_hops():
    flows = _run_gets(PProxConfig(shuffle_size=0), users=["alice"])
    profile = flow_size_profile(flows)
    assert ("client", "ua") in profile
    assert ("ua", "ia") in profile
    assert ("ia", "lrs") in profile
