"""RSA-OAEP: keygen, roundtrips, CRT correctness, failure modes."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rsa import OaepError, RsaPublicKey, generate_keypair


@pytest.fixture(scope="module")
def keypair():
    rng = random.Random(7)
    return generate_keypair(1024, lambda bound: rng.randrange(bound))


def test_keygen_is_deterministic_with_seeded_rng():
    first = generate_keypair(1024, random.Random(3).randrange)
    second = generate_keypair(1024, random.Random(3).randrange)
    assert first[0].n == second[0].n


def test_keygen_rejects_tiny_moduli():
    with pytest.raises(ValueError, match="832 bits"):
        generate_keypair(512)


def test_modulus_has_requested_bits(keypair):
    public, private = keypair
    assert public.n.bit_length() == 1024
    assert private.n == public.n


def test_roundtrip(keypair):
    public, private = keypair
    assert private.decrypt(public.encrypt(b"hello")) == b"hello"


def test_encryption_is_randomized(keypair):
    """Two encryptions differ — the paper's reason why a ciphertext of
    u cannot serve as a stable pseudonym (§4.1)."""
    public, _ = keypair
    assert public.encrypt(b"u") != public.encrypt(b"u")


def test_empty_message(keypair):
    public, private = keypair
    assert private.decrypt(public.encrypt(b"")) == b""


def test_max_length_message(keypair):
    public, private = keypair
    message = b"m" * public.max_message_bytes
    assert private.decrypt(public.encrypt(message)) == message


def test_oversized_message_rejected(keypair):
    public, _ = keypair
    with pytest.raises(OaepError, match="too long"):
        public.encrypt(b"m" * (public.max_message_bytes + 1))


def test_decrypt_wrong_length_rejected(keypair):
    _, private = keypair
    with pytest.raises(OaepError):
        private.decrypt(b"abc")


def test_decrypt_corrupted_ciphertext_rejected(keypair):
    public, private = keypair
    blob = bytearray(public.encrypt(b"secret"))
    blob[-1] ^= 0x01
    with pytest.raises(OaepError):
        private.decrypt(bytes(blob))


def test_decrypt_with_wrong_key_rejected(keypair):
    public, _ = keypair
    rng = random.Random(8)
    _, other_private = generate_keypair(1024, lambda bound: rng.randrange(bound))
    with pytest.raises(OaepError):
        other_private.decrypt(public.encrypt(b"secret"))


def test_crt_matches_plain_exponentiation(keypair):
    public, private = keypair
    value = 0x1234567890ABCDEF
    assert private._crt_power(value) == pow(value, private.d, private.n)


def test_public_key_accessor(keypair):
    _, private = keypair
    assert private.public_key == RsaPublicKey(n=private.n, e=private.e)


def test_ciphertext_value_out_of_range_rejected(keypair):
    _, private = keypair
    too_big = (private.n + 1).to_bytes(private.modulus_bytes, "big")
    with pytest.raises(OaepError, match="range"):
        private.decrypt(too_big)


@settings(max_examples=15, deadline=None)
@given(message=st.binary(min_size=0, max_size=62))
def test_roundtrip_property(keypair, message):
    public, private = keypair
    assert private.decrypt(public.encrypt(message)) == message
