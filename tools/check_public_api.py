#!/usr/bin/env python3
"""Public-API lint: every module under ``src/repro`` must declare
``__all__``, and ``__all__`` must be complete and honest.

Checked per module:

* ``__all__`` exists and is a literal list/tuple of strings.
* Every public top-level ``def`` / ``class`` (no leading underscore)
  appears in ``__all__`` — the export surface cannot silently grow.
* Every ``__all__`` entry is actually defined or imported in the
  module — no phantom exports.
* No duplicate entries.

Codec classes (public top-level classes named ``*Codec``) carry extra
structural checks — they are the wire-compatibility surface:

* a class-level ``name`` attribute (a string literal) identifying the
  codec in configuration and artifacts;
* paired transform methods: every ``encode_X`` has a ``decode_X``,
  every ``pack_X`` an ``unpack_X`` (and vice versa), every ``seal_X``
  an ``open_X`` (and vice versa).  A codec that can write a shape it
  cannot read back (or the reverse) is a wire-format bug waiting for
  a version bump.

Exit status 0 when clean; 1 with a per-module report otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, List, Optional, Set

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def extract_all(tree: ast.Module) -> Optional[List[str]]:
    """Return the literal ``__all__`` list, or None if absent."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = node.value
                if not isinstance(value, (ast.List, ast.Tuple)):
                    return None
                names = []
                for element in value.elts:
                    if not isinstance(element, ast.Constant) or not isinstance(
                        element.value, str
                    ):
                        return None
                    names.append(element.value)
                return names
    return None


def public_definitions(tree: ast.Module) -> Set[str]:
    """Top-level public defs/classes (the must-export set)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not node.name.startswith("_"):
                names.add(node.name)
    return names


def bound_names(tree: ast.Module) -> Set[str]:
    """Every top-level name the module defines, assigns, or imports."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING / fallback-import blocks: one level deep.
            for child in ast.walk(node):
                if isinstance(child, (ast.Import, ast.ImportFrom)):
                    for alias in child.names:
                        names.add((alias.asname or alias.name).split(".")[0])
    return names


#: (forward prefix, reverse prefix, also require forward for reverse).
#: ``decode_X`` does not force ``encode_X`` because stamp/decode pairs
#: (e.g. ``stamp_deadline``/``decode_deadline``) are legitimate.
_CODEC_METHOD_PAIRS = (
    ("encode_", "decode_", False),
    ("pack_", "unpack_", True),
    ("seal_", "open_", True),
)


def codec_class_problems(tree: ast.Module) -> List[str]:
    """Structural lint for public ``*Codec`` classes."""
    problems: List[str] = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name.startswith("_") or not node.name.endswith("Codec"):
            continue
        has_name = False
        methods: Set[str] = set()
        for member in node.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.add(member.name)
            elif isinstance(member, ast.Assign):
                for target in member.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "name"
                        and isinstance(member.value, ast.Constant)
                        and isinstance(member.value.value, str)
                    ):
                        has_name = True
        if not has_name:
            problems.append(
                f"codec class {node.name}: missing class-level `name` string"
            )
        for forward, reverse, symmetric in _CODEC_METHOD_PAIRS:
            for method in sorted(methods):
                if method.startswith(forward):
                    partner = reverse + method[len(forward):]
                    if partner not in methods:
                        problems.append(
                            f"codec class {node.name}: {method} has no {partner}"
                        )
                elif symmetric and method.startswith(reverse):
                    partner = forward + method[len(reverse):]
                    if partner not in methods:
                        problems.append(
                            f"codec class {node.name}: {method} has no {partner}"
                        )
    return problems


#: The fleet package's contract surface: drills, CI gates and docs all
#: build against these names, so they must stay re-exported at the top.
_FLEET_REQUIRED_EXPORTS = {
    "HashRing",
    "Shard",
    "ShardDirectory",
    "ShardedPProxService",
    "FleetSupervisor",
    "ShardAutoscaler",
    "build_fleet",
    "run_fleet_drill",
    "domain_kill_plan",
    "placement_violations",
    "ring_point",
}


def fleet_surface_problems() -> Dict[str, List[str]]:
    """Structural lint for the ``repro.fleet`` privacy contract.

    * ``repro/fleet/__init__.py`` re-exports the full contract surface;
    * every ring routing entry point (``route`` / ``successors`` on
      ``HashRing`` and ``ShardDirectory``) takes its key as a parameter
      literally named ``nonce`` — the signature documents, and the
      privacy audit assumes, that shard placement keys on the request
      nonce and never on a user-derived value.
    """
    problems: Dict[str, List[str]] = {}
    init_path = SRC / "fleet" / "__init__.py"
    ring_path = SRC / "fleet" / "ring.py"
    if not init_path.exists() or not ring_path.exists():
        problems["src/repro/fleet"] = ["fleet package missing"]
        return problems
    init_tree = ast.parse(init_path.read_text(encoding="utf-8"))
    exported = extract_all(init_tree) or []
    missing = _FLEET_REQUIRED_EXPORTS - set(exported)
    if missing:
        problems.setdefault(str(init_path.relative_to(SRC.parent.parent)), []).append(
            f"fleet surface not re-exported: {sorted(missing)}"
        )
    ring_tree = ast.parse(ring_path.read_text(encoding="utf-8"))
    for node in ring_tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name not in ("HashRing", "ShardDirectory"):
            continue
        for member in node.body:
            if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if member.name not in ("route", "successors"):
                continue
            args = [arg.arg for arg in member.args.args if arg.arg != "self"]
            if not args or args[0] != "nonce":
                problems.setdefault(
                    str(ring_path.relative_to(SRC.parent.parent)), []
                ).append(
                    f"{node.name}.{member.name}: routing key parameter must be "
                    f"named 'nonce', got {args[:1] or ['<none>']}"
                )
    return problems


def check_module(path: Path) -> List[str]:
    """Return lint problems for one module (empty = clean)."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    exported = extract_all(tree)
    if exported is None:
        return ["missing (or non-literal) __all__"]
    problems: List[str] = []
    duplicates = {name for name in exported if exported.count(name) > 1}
    if duplicates:
        problems.append(f"duplicate __all__ entries: {sorted(duplicates)}")
    missing = public_definitions(tree) - set(exported)
    if missing:
        problems.append(f"public but not in __all__: {sorted(missing)}")
    phantom = set(exported) - bound_names(tree)
    if phantom:
        problems.append(f"in __all__ but never defined: {sorted(phantom)}")
    problems.extend(codec_class_problems(tree))
    return problems


def main() -> int:
    failures: Dict[str, List[str]] = {}
    for path in sorted(SRC.rglob("*.py")):
        problems = check_module(path)
        if problems:
            failures[str(path.relative_to(SRC.parent.parent))] = problems
    for module, problems in fleet_surface_problems().items():
        failures.setdefault(module, []).extend(problems)
    if failures:
        print("public-API lint failed:\n")
        for module, problems in failures.items():
            for problem in problems:
                print(f"  {module}: {problem}")
        print(f"\n{len(failures)} module(s) with problems")
        return 1
    count = sum(1 for _ in SRC.rglob("*.py"))
    print(f"public-API lint OK ({count} modules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
