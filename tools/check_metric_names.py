#!/usr/bin/env python3
"""Metric-name lint: every instrument registered under ``src/repro``
must follow the Prometheus naming conventions the dashboards rely on.

Checked per ``*.counter(...)`` / ``*.gauge(...)`` / ``*.histogram(...)``
call site whose metric name is statically visible:

* the name carries the ``pprox_`` namespace prefix;
* the name ends in a unit suffix (``_total``, ``_seconds``, ``_ratio``,
  ``_bytes``) unless it is a known dimensionless quantity listed in
  ``DIMENSIONLESS`` (counts of things, 0/1 states, set sizes);
* counters specifically end in ``_total``;
* the help string (second positional argument) is a non-empty literal —
  a metric nobody can explain is a metric nobody can use.

f-string names are checked on their literal head/tail (e.g.
``f"pprox_workload_{quantity}_total"``); fully dynamic names are
skipped.  ``src/repro/simnet/monitoring.py`` is exempt: it registers
dotted legacy names into its own private registry, not the
Prometheus-rendered telemetry one.

Exit status 0 when clean; 1 with a per-site report otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Registration methods on a MetricRegistry (or telemetry.registry).
METRIC_METHODS = ("counter", "gauge", "histogram")

#: Accepted unit suffixes (text-exposition conventions).
UNIT_SUFFIXES = ("_total", "_seconds", "_ratio", "_bytes")

#: Dimensionless metrics: counts-in-flight, 0/1 states, set sizes and
#: entry counts, where a unit suffix would be noise.  Exact names only —
#: additions here are API decisions, not lint escapes.
DIMENSIONLESS = frozenset(
    {
        "pprox_proxy_pending",
        "pprox_node_queue_length",
        "pprox_instance_up",
        "pprox_shuffle_occupancy",
        "pprox_shuffle_flush_size",
        "pprox_shuffle_batch_fill",
        "pprox_effective_anonymity_set",
        "pprox_crypto_cache_size",
        "pprox_queue_unbounded",
        "pprox_queue_depth",
        "pprox_breaker_state",
        "pprox_limiter_limit",
        "pprox_rotation_state",
    }
)

#: Files whose registrations do not target the telemetry registry.
EXEMPT = frozenset({"simnet/monitoring.py"})


def literal_parts(node: ast.AST) -> Optional[Tuple[str, str, bool]]:
    """(head, tail, is_exact) of a statically-visible metric name.

    A plain string literal returns ``(name, name, True)``; an f-string
    returns its leading/trailing literal fragments with ``is_exact``
    False; anything else returns None (dynamic, skipped).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, node.value, True
    if isinstance(node, ast.JoinedStr):
        head = ""
        tail = ""
        values = node.values
        if values and isinstance(values[0], ast.Constant):
            head = str(values[0].value)
        if values and isinstance(values[-1], ast.Constant):
            tail = str(values[-1].value)
        return head, tail, False
    return None


def check_call(node: ast.Call, relative: str) -> List[str]:
    """Lint problems for one registration call site (empty = clean)."""
    method = node.func.attr  # type: ignore[union-attr]
    if not node.args:
        return []
    parts = literal_parts(node.args[0])
    if parts is None:
        return []
    head, tail, is_exact = parts
    label = head if is_exact else f"{head}...{tail}"
    where = f"{relative}:{node.lineno}"
    problems: List[str] = []
    if not head.startswith("pprox_"):
        problems.append(f"{where}: {method} {label!r} lacks the pprox_ prefix")
    if method == "counter":
        if not tail.endswith("_total"):
            problems.append(f"{where}: counter {label!r} must end in _total")
    elif is_exact and head not in DIMENSIONLESS and not tail.endswith(UNIT_SUFFIXES):
        problems.append(
            f"{where}: {method} {label!r} needs a unit suffix"
            f" {UNIT_SUFFIXES} (or a DIMENSIONLESS entry)"
        )
    if len(node.args) < 2:
        problems.append(f"{where}: {method} {label!r} has no help string")
    elif not _has_help_text(node.args[1]):
        problems.append(
            f"{where}: {method} {label!r} needs a non-empty literal help string"
        )
    return problems


def _has_help_text(node: ast.AST) -> bool:
    """True when the help argument carries literal, non-blank text.

    Plain string literals must be non-blank; f-string help (e.g. the
    per-quantity workload counters) passes when any literal fragment
    carries text.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str) and bool(node.value.strip())
    if isinstance(node, ast.JoinedStr):
        return any(
            isinstance(value, ast.Constant) and str(value.value).strip()
            for value in node.values
        )
    return False


def check_file(path: Path) -> List[str]:
    relative = str(path.relative_to(SRC))
    if relative in EXEMPT:
        return []
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    problems: List[str] = []
    sites = 0
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in METRIC_METHODS
        ):
            sites += 1
            problems.extend(check_call(node, relative))
    return problems


def main() -> int:
    failures: Dict[str, List[str]] = {}
    checked = 0
    for path in sorted(SRC.rglob("*.py")):
        checked += 1
        problems = check_file(path)
        if problems:
            failures[str(path.relative_to(SRC.parent.parent))] = problems
    if failures:
        print("metric-name lint failed:\n")
        for problems in failures.values():
            for problem in problems:
                print(f"  {problem}")
        total = sum(len(problems) for problems in failures.values())
        print(f"\n{total} problem(s) in {len(failures)} file(s)")
        return 1
    print(f"metric-name lint OK ({checked} modules scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
