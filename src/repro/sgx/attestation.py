"""Remote attestation, modelled after the Intel SGX flow.

The trust assumptions of the paper (§2.2): "we trust Intel for the
certification of genuine SGX-enabled CPUs, and we assume that the code
running inside enclaves is properly attested before being provided
with secrets".  We model the attestation service (the analogue of
Intel IAS/DCAP) as a MAC oracle over (measurement, nonce) pairs whose
key the untrusted RaaS provider does not hold.
"""

from __future__ import annotations

import hmac
import os
from dataclasses import dataclass, field
from typing import Callable

from repro.sgx.enclave import Enclave, EnclaveMeasurement

__all__ = ["AttestationService", "Quote", "AttestationError"]


class AttestationError(RuntimeError):
    """Raised when a quote fails verification."""


@dataclass(frozen=True)
class Quote:
    """An attestation quote: enclave measurement signed with a nonce."""

    enclave_name: str
    measurement: EnclaveMeasurement
    nonce: bytes
    signature: bytes


@dataclass
class AttestationService:
    """Issues and verifies quotes for genuine enclaves.

    A forged enclave (wrong measurement) yields a quote that fails
    verification against the expected measurement, so the client
    application never provisions secrets to it — the property the
    protocol's key-provisioning step depends on.
    """

    rng_bytes: Callable[[int], bytes] = field(default=os.urandom)
    _service_key: bytes = field(default_factory=lambda: os.urandom(32))
    quotes_issued: int = 0

    def quote(self, enclave: Enclave, nonce: bytes) -> Quote:
        """Produce a quote binding the enclave's measurement to *nonce*."""
        self.quotes_issued += 1
        signature = self._sign(enclave.measurement, nonce)
        return Quote(
            enclave_name=enclave.name,
            measurement=enclave.measurement,
            nonce=nonce,
            signature=signature,
        )

    def verify(self, quote: Quote, expected: EnclaveMeasurement, nonce: bytes) -> None:
        """Verify *quote* against the expected measurement and nonce.

        Raises :class:`AttestationError` on any mismatch.
        """
        if quote.nonce != nonce:
            raise AttestationError("attestation nonce mismatch (replayed quote?)")
        if quote.measurement != expected:
            raise AttestationError(
                f"measurement mismatch: enclave runs {quote.measurement.digest[:12]}…,"
                f" expected {expected.digest[:12]}…"
            )
        if not hmac.compare_digest(quote.signature, self._sign(quote.measurement, quote.nonce)):
            raise AttestationError("quote signature invalid (not a genuine enclave)")

    def _sign(self, measurement: EnclaveMeasurement, nonce: bytes) -> bytes:
        return hmac.new(
            self._service_key, measurement.digest.encode() + nonce, "sha256"
        ).digest()
