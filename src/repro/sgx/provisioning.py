"""Secret provisioning by the RaaS client application.

The application owning the catalog (not the RaaS provider!) generates
the layer keys and provisions each enclave after attesting it (§4.1).
New enclaves created by horizontal scaling go through the same flow:
"new enclaves are attested upon their bootstrap before being
provisioned with the corresponding keys" (§5).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.crypto.keys import LayerKeys
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import Enclave, EnclaveMeasurement

__all__ = ["KeyProvisioner", "UA_SECRET_SK", "UA_SECRET_K", "IA_SECRET_SK", "IA_SECRET_K"]

# Sealed-store slot names for the four layer secrets of Table 1.
UA_SECRET_SK = "skUA"
UA_SECRET_K = "kUA"
IA_SECRET_SK = "skIA"
IA_SECRET_K = "kIA"


@dataclass
class KeyProvisioner:
    """The application-side provisioning agent.

    Holds the expected enclave measurements for each proxy layer and
    the generated :class:`LayerKeys`; provisions a given enclave only
    after a fresh-nonce attestation round-trip succeeds.
    """

    attestation: AttestationService
    expected_measurements: Dict[str, EnclaveMeasurement]
    layer_keys: Dict[str, LayerKeys]
    rng_bytes: Callable[[int], bytes] = field(default=os.urandom)
    provisioned_count: int = 0

    def provision(self, layer: str, enclave: Enclave) -> None:
        """Attest *enclave* and install the secrets of *layer* into it.

        *layer* is ``"UA"`` or ``"IA"``.  Raises
        :class:`repro.sgx.attestation.AttestationError` if the enclave
        does not measure as expected — a forged enclave gets nothing.
        """
        expected = self.expected_measurements[layer]
        nonce = self.rng_bytes(16)
        quote = self.attestation.quote(enclave, nonce)
        self.attestation.verify(quote, expected, nonce)
        enclave.attested = True
        keys = self.layer_keys[layer]
        if layer == "UA":
            secrets = {UA_SECRET_SK: keys.private_key, UA_SECRET_K: keys.symmetric_key}
        elif layer == "IA":
            secrets = {IA_SECRET_SK: keys.private_key, IA_SECRET_K: keys.symmetric_key}
        else:
            raise ValueError(f"unknown layer {layer!r}; expected 'UA' or 'IA'")
        enclave.provision(secrets)
        self.provisioned_count += 1

    def rotate_layer(self, layer: str, new_keys: LayerKeys, enclaves: list) -> None:
        """Breach response: install fresh keys into every layer enclave."""
        self.layer_keys[layer] = new_keys
        for enclave in enclaves:
            if layer == "UA":
                secrets = {UA_SECRET_SK: new_keys.private_key, UA_SECRET_K: new_keys.symmetric_key}
            else:
                secrets = {IA_SECRET_SK: new_keys.private_key, IA_SECRET_K: new_keys.symmetric_key}
            enclave.rotate(secrets)
