"""Secret provisioning by the RaaS client application.

The application owning the catalog (not the RaaS provider!) generates
the layer keys and provisions each enclave after attesting it (§4.1).
New enclaves created by horizontal scaling go through the same flow:
"new enclaves are attested upon their bootstrap before being
provisioned with the corresponding keys" (§5).

Epoch support (live re-key)
---------------------------

The offline breach response (:meth:`KeyProvisioner.rotate_layer`)
stops the world: every enclave is wiped and re-provisioned at once.
The *online* rotation drill instead runs the two key generations side
by side for a bounded window:

* each layer has a monotonically increasing **epoch id**; the keys in
  the base sealed slots (``skUA``/``kUA``/``skIA``/``kIA``) are always
  the *active* epoch, so code that never heard of epochs keeps working;
* during a dual-epoch window the previous generation is additionally
  sealed under suffixed slots (``skUA@e3`` …) plus a small
  :class:`EpochWindow` descriptor, letting the layers trial-decrypt
  old-epoch traffic while always re-encrypting forward under the new
  keys;
* a **key generation** counter is bumped on every announce/retire, and
  the generation each enclave last saw is recorded — a restarted or
  partitioned enclave that missed an announcement is detectable (and
  re-provisionable) by comparing generations.

The :class:`EpochWindow` dataclass and the slot helpers are defined
here rather than in :mod:`repro.proxy.epochs` because the proxy
package imports this module at init time; keeping the dependency
one-way avoids a cycle.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.crypto.keys import LayerKeys
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import Enclave, EnclaveMeasurement

__all__ = [
    "KeyProvisioner",
    "EpochWindow",
    "epoch_slot",
    "UA_SECRET_SK",
    "UA_SECRET_K",
    "IA_SECRET_SK",
    "IA_SECRET_K",
    "EPOCH_WINDOW_SLOT",
]

# Sealed-store slot names for the four layer secrets of Table 1.
UA_SECRET_SK = "skUA"
UA_SECRET_K = "kUA"
IA_SECRET_SK = "skIA"
IA_SECRET_K = "kIA"

#: Sealed-store slot holding the :class:`EpochWindow` descriptor while
#: a dual-epoch acceptance window is open (absent otherwise, so legacy
#: deployments never pay an ecall for it).
EPOCH_WINDOW_SLOT = "epochWindow"


def epoch_slot(base: str, epoch_id: int) -> str:
    """Sealed-store slot for a *previous*-epoch secret (``skUA@e3``)."""
    return f"{base}@e{epoch_id}"


@dataclass(frozen=True)
class EpochWindow:
    """Descriptor of one layer's open dual-epoch acceptance window.

    Sealed into every enclave of the rotating layer at announce time;
    removed again at retirement.  ``active_epoch`` is the generation in
    the base slots (all forward encryption), ``previous_epoch`` the one
    still accepted for decryption.
    """

    layer: str
    active_epoch: int
    previous_epoch: int

    def secret_slots(self) -> Tuple[str, str]:
        """(private-key slot, symmetric-key slot) of the previous epoch."""
        sk_base = UA_SECRET_SK if self.layer == "UA" else IA_SECRET_SK
        k_base = UA_SECRET_K if self.layer == "UA" else IA_SECRET_K
        return (
            epoch_slot(sk_base, self.previous_epoch),
            epoch_slot(k_base, self.previous_epoch),
        )


def _base_slots(layer: str) -> Tuple[str, str]:
    if layer == "UA":
        return UA_SECRET_SK, UA_SECRET_K
    if layer == "IA":
        return IA_SECRET_SK, IA_SECRET_K
    raise ValueError(f"unknown layer {layer!r}; expected 'UA' or 'IA'")


@dataclass
class KeyProvisioner:
    """The application-side provisioning agent.

    Holds the expected enclave measurements for each proxy layer and
    the generated :class:`LayerKeys`; provisions a given enclave only
    after a fresh-nonce attestation round-trip succeeds.
    """

    attestation: AttestationService
    expected_measurements: Dict[str, EnclaveMeasurement]
    layer_keys: Dict[str, LayerKeys]
    rng_bytes: Callable[[int], bytes] = field(default=os.urandom)
    provisioned_count: int = 0
    #: Per-layer epoch ids; epoch 0 is the deploy-time generation.
    epoch_ids: Dict[str, int] = field(default_factory=dict)
    #: Previous-generation keys per layer while a window is open:
    #: ``layer -> (previous_epoch_id, keys)``.
    previous_keys: Dict[str, Tuple[int, LayerKeys]] = field(default_factory=dict)
    #: Bumped on every announce/retire/rotate; enclaves provisioned at
    #: an older generation are stale and must be re-provisioned.
    key_generation: int = 0
    #: Generation each enclave last received secrets at, by name.
    enclave_generations: Dict[str, int] = field(default_factory=dict)
    #: Set once the first epoch is announced; gates all epoch ecalls so
    #: legacy deployments are byte-identical to pre-epoch builds.
    epochs_enabled: bool = False

    def active_epoch(self, layer: str) -> int:
        """Current epoch id of *layer* (0 until a rotation happens)."""
        return self.epoch_ids.get(layer, 0)

    def epoch_window(self, layer: str) -> Optional[EpochWindow]:
        """The open dual-epoch window of *layer*, if any."""
        held = self.previous_keys.get(layer)
        if held is None:
            return None
        return EpochWindow(
            layer=layer,
            active_epoch=self.active_epoch(layer),
            previous_epoch=held[0],
        )

    def secrets_for(self, layer: str) -> Dict[str, object]:
        """Full sealed-secret dict for one enclave of *layer*.

        Base slots always carry the active keys; while a window is
        open the previous generation rides along under suffixed slots
        together with the :class:`EpochWindow` descriptor.
        """
        sk_slot, k_slot = _base_slots(layer)
        keys = self.layer_keys[layer]
        secrets: Dict[str, object] = {
            sk_slot: keys.private_key,
            k_slot: keys.symmetric_key,
        }
        if self.epochs_enabled:
            window = self.epoch_window(layer)
            if window is not None:
                prev_sk_slot, prev_k_slot = window.secret_slots()
                _, prev = self.previous_keys[layer]
                secrets[prev_sk_slot] = prev.private_key
                secrets[prev_k_slot] = prev.symmetric_key
                secrets[EPOCH_WINDOW_SLOT] = window
        return secrets

    def provision(self, layer: str, enclave: Enclave) -> None:
        """Attest *enclave* and install the secrets of *layer* into it.

        *layer* is ``"UA"`` or ``"IA"``.  Raises
        :class:`repro.sgx.attestation.AttestationError` if the enclave
        does not measure as expected — a forged enclave gets nothing.
        """
        expected = self.expected_measurements[layer]
        nonce = self.rng_bytes(16)
        quote = self.attestation.quote(enclave, nonce)
        self.attestation.verify(quote, expected, nonce)
        enclave.attested = True
        _base_slots(layer)  # validates the layer name
        enclave.provision(self.secrets_for(layer))
        self.enclave_generations[enclave.name] = self.key_generation
        self.provisioned_count += 1

    def verify_generation(self, enclave: Enclave) -> bool:
        """True iff *enclave* holds the current key generation.

        A crashed-and-restarted or partitioned enclave that missed an
        epoch announcement shows a stale recorded generation here; the
        health monitor refuses to readmit it until re-provisioned.
        """
        return self.enclave_generations.get(enclave.name) == self.key_generation

    def reprovision(self, layer: str, enclave: Enclave) -> None:
        """Idempotent re-announce: refresh one enclave to the current
        generation (fresh attestation round-trip included)."""
        nonce = self.rng_bytes(16)
        quote = self.attestation.quote(enclave, nonce)
        self.attestation.verify(quote, self.expected_measurements[layer], nonce)
        enclave.attested = True
        enclave.rotate(self.secrets_for(layer))
        self.enclave_generations[enclave.name] = self.key_generation

    def announce_epoch(
        self, layer: str, new_keys: LayerKeys, enclaves: Iterable[Enclave]
    ) -> Tuple[int, int]:
        """Open a dual-epoch window: flip *layer* to *new_keys* now.

        The new generation becomes active immediately (base slots, all
        forward pseudonymization); the outgoing generation stays
        decryptable under its suffixed slots until
        :meth:`retire_epoch`.  Returns ``(old_epoch, new_epoch)``.
        """
        if layer in self.previous_keys:
            raise ValueError(
                f"layer {layer!r} already has an open epoch window; retire it first"
            )
        _base_slots(layer)
        old_id = self.active_epoch(layer)
        new_id = old_id + 1
        self.previous_keys[layer] = (old_id, self.layer_keys[layer])
        self.layer_keys[layer] = new_keys
        self.epoch_ids[layer] = new_id
        self.epochs_enabled = True
        self.key_generation += 1
        for enclave in enclaves:
            enclave.rotate(self.secrets_for(layer))
            self.enclave_generations[enclave.name] = self.key_generation
        return old_id, new_id

    def retire_epoch(self, layer: str, enclaves: Iterable[Enclave]) -> int:
        """Close *layer*'s window: drop the previous generation.

        Every enclave is rotated to base-slots-only secrets (the old
        keys are wiped from sealed memory).  Returns the retired id.
        """
        held = self.previous_keys.pop(layer, None)
        if held is None:
            raise ValueError(f"layer {layer!r} has no open epoch window")
        self.key_generation += 1
        for enclave in enclaves:
            enclave.rotate(self.secrets_for(layer))
            self.enclave_generations[enclave.name] = self.key_generation
        return held[0]

    def rotate_layer(self, layer: str, new_keys: LayerKeys, enclaves: list) -> None:
        """Breach response: install fresh keys into every layer enclave.

        Stop-the-world semantics: any open window is closed and the
        outgoing generation becomes undecryptable immediately.
        """
        self.previous_keys.pop(layer, None)
        self.layer_keys[layer] = new_keys
        self.epoch_ids[layer] = self.active_epoch(layer) + 1 if self.epochs_enabled else 0
        self.key_generation += 1
        for enclave in enclaves:
            enclave.rotate(self.secrets_for(layer))
            self.enclave_generations[enclave.name] = self.key_generation
