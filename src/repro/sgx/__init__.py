"""SGX trusted-execution substrate (simulated).

Models the behaviours PProx relies on: sealed enclave memory,
measurement + remote attestation before key provisioning, enclave
transition costs, and the adversary's side-channel capability with
its Varys-style detection countermeasure.
"""

from repro.sgx.attestation import AttestationError, AttestationService, Quote
from repro.sgx.costs import DEFAULT_SGX, NO_SGX, SgxCostModel
from repro.sgx.enclave import Enclave, EnclaveError, EnclaveMeasurement, SealedStore
from repro.sgx.provisioning import (
    IA_SECRET_K,
    IA_SECRET_SK,
    KeyProvisioner,
    UA_SECRET_K,
    UA_SECRET_SK,
)
from repro.sgx.sidechannel import (
    AttackModelError,
    BreachDetector,
    SideChannelAttack,
    SingleEnclaveInvariant,
)

__all__ = [
    "AttestationService",
    "AttestationError",
    "Quote",
    "SgxCostModel",
    "NO_SGX",
    "DEFAULT_SGX",
    "Enclave",
    "EnclaveError",
    "EnclaveMeasurement",
    "SealedStore",
    "KeyProvisioner",
    "UA_SECRET_SK",
    "UA_SECRET_K",
    "IA_SECRET_SK",
    "IA_SECRET_K",
    "SideChannelAttack",
    "BreachDetector",
    "SingleEnclaveInvariant",
    "AttackModelError",
]
