"""SGX execution cost model.

Figure 6 of the paper isolates the latency contribution of running
the proxy's data-processing stage inside SGX enclaves: "the use of SGX
enclaves introduces 2 to 5 ms additional median or maximal latency,
about half as much as adding encryption".  We charge that cost as an
enclave-transition overhead per processed request plus an EPC working
set term, calibrated so that the m2 -> m3 gap in our Figure 6
reproduction lands in the paper's range.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SgxCostModel", "NO_SGX", "DEFAULT_SGX"]


@dataclass(frozen=True)
class SgxCostModel:
    """Per-request time costs of enclave execution.

    All values in seconds; ``enabled=False`` zeroes everything (the m1
    and m2 micro-benchmark configurations run the proxy logic outside
    enclaves).
    """

    enabled: bool = True
    #: ecall/ocall transition + in-enclave slowdown per request leg.
    transition_seconds: float = 0.0007
    #: Extra cost when the in-enclave key-value store working set pages
    #: against the EPC limit (charged per request when the pending-
    #: request table exceeds ``epc_entries``).
    epc_paging_seconds: float = 0.0015
    #: Pending-request entries fitting the EPC before paging starts.
    epc_entries: int = 4096

    def request_overhead(self, pending_entries: int, performance_penalty: float = 1.0) -> float:
        """Enclave overhead for one request leg.

        *pending_entries* is the current size of the enclave's
        in-memory table; *performance_penalty* reflects an in-progress
        side-channel attack degrading this enclave.
        """
        if not self.enabled:
            return 0.0
        cost = self.transition_seconds
        if pending_entries > self.epc_entries:
            cost += self.epc_paging_seconds
        return cost * performance_penalty

    def paging_pressure(self, pending_entries: int) -> float:
        """EPC working-set pressure as an overload signal.

        The ratio of the enclave's pending-request table to the EPC
        capacity: values above 1.0 mean every request is already
        paying :attr:`epc_paging_seconds`, so admission control should
        have tightened *before* this reaches 1.0.  Zero when SGX is
        disabled (nothing pages).
        """
        if not self.enabled or self.epc_entries <= 0:
            return 0.0
        return pending_entries / float(self.epc_entries)


#: Cost model for non-SGX configurations (m1, m2).
NO_SGX = SgxCostModel(enabled=False)

#: Default calibrated cost model.
DEFAULT_SGX = SgxCostModel()
