"""Simulated SGX enclaves.

What the PProx protocol actually relies on from SGX (paper §2.2, §5):

* an isolated execution environment whose *sealed memory* (keys, IVs,
  routing context) is invisible to the untrusted host — unless the
  adversary mounts a side-channel attack;
* *measurement* of the loaded code, so the RaaS client application can
  attest an enclave before provisioning it with layer secrets;
* an entry/exit cost (ecalls) and a limited Enclave Page Cache whose
  overflow is expensive — the systems constraints that shaped the
  server/data-processing split of §5.

This module models exactly those behaviours.  The side-channel attack
and detection machinery lives in :mod:`repro.sgx.sidechannel`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Enclave", "EnclaveMeasurement", "EnclaveError", "SealedStore"]


class EnclaveError(RuntimeError):
    """Raised on illegal enclave interactions (e.g. unprovisioned use)."""


@dataclass(frozen=True)
class EnclaveMeasurement:
    """MRENCLAVE-like digest of the code loaded into an enclave."""

    digest: str

    @classmethod
    def of_code(cls, code_identity: str) -> "EnclaveMeasurement":
        """Measure a code identity string (stands in for the binary)."""
        return cls(digest=hashlib.sha256(code_identity.encode()).hexdigest())


@dataclass
class SealedStore:
    """Enclave-private key/value memory (the EPC-resident state).

    Grants no access to the host: the only readers are the enclave's
    own ecalls and — after a successful side-channel attack — the
    adversary via :meth:`Enclave.leak_secrets`.
    """

    _data: Dict[str, Any] = field(default_factory=dict)

    def put(self, key: str, value: Any) -> None:
        self._data[key] = value

    def get(self, key: str) -> Any:
        if key not in self._data:
            raise EnclaveError(f"sealed store has no entry {key!r}")
        return self._data[key]

    def contains(self, key: str) -> bool:
        return key in self._data

    def snapshot(self) -> Dict[str, Any]:
        """Full copy of the sealed contents (used only by the leak path)."""
        return dict(self._data)

    def wipe(self) -> None:
        """Erase all sealed state (breach response)."""
        self._data.clear()


@dataclass
class Enclave:
    """One SGX enclave instance on a host node.

    Lifecycle: create -> attest (via
    :class:`repro.sgx.attestation.AttestationService`) -> provision
    secrets -> serve ecalls.  A side-channel attack can mark the
    enclave ``compromised``, at which point its sealed secrets are
    readable by the adversary but the enclave keeps functioning (the
    PProx adversary "does not interfere with the functionality of the
    system", §2.3).
    """

    name: str
    measurement: EnclaveMeasurement
    host_node: str
    sealed: SealedStore = field(default_factory=SealedStore)
    provisioned: bool = False
    compromised: bool = False
    attested: bool = False
    ecall_count: int = 0
    #: Exit transitions: data leaving the enclave toward the untrusted
    #: host (outbound sends).  Counted by the proxy layers.
    ocall_count: int = 0
    #: Multiplier applied to enclave service times while an attack runs
    #: (reported attacks make "enclave performance drop significantly").
    performance_penalty: float = 1.0

    def provision(self, secrets: Dict[str, Any]) -> None:
        """Install *secrets* into sealed memory.

        Requires prior attestation: "the enclaves implementing the two
        layers are attested upon their bootstrap before being
        provisioned with these keys" (§4.1).
        """
        if not self.attested:
            raise EnclaveError(
                f"enclave {self.name!r} must be attested before provisioning"
            )
        for key, value in secrets.items():
            self.sealed.put(key, value)
        self.provisioned = True

    def secret(self, key: str) -> Any:
        """Read a sealed secret from inside the enclave (ecall path)."""
        if not self.provisioned:
            raise EnclaveError(f"enclave {self.name!r} is not provisioned")
        self.ecall_count += 1
        return self.sealed.get(key)

    def ocall(self) -> None:
        """Record an exit transition (data handed to the untrusted host)."""
        self.ocall_count += 1

    def leak_secrets(self) -> Dict[str, Any]:
        """Adversary-side read of sealed memory; only after compromise."""
        if not self.compromised:
            raise EnclaveError(
                f"enclave {self.name!r} is not compromised; secrets are sealed"
            )
        return self.sealed.snapshot()

    def mark_compromised(self) -> None:
        """Record a completed side-channel attack against this enclave."""
        self.compromised = True

    def rotate(self, secrets: Dict[str, Any]) -> None:
        """Breach response: wipe and re-provision with fresh secrets."""
        self.sealed.wipe()
        self.compromised = False
        self.performance_penalty = 1.0
        for key, value in secrets.items():
            self.sealed.put(key, value)
        self.provisioned = True
