"""Side-channel attacks on enclaves, and their detection.

The PProx adversary model (§2.3) allows the adversary to "compromise
and break into a single enclave at a time, on any server".  The
justification is quantitative: published SGX side-channel attacks
complete in tens of minutes while degrading the victim enclave's
performance significantly, and detection mechanisms (Cloak, Déjà Vu,
Varys) respond before a *second* enclave can be broken.

This module turns those assumptions into mechanism:

* :class:`SideChannelAttack` — a timed attack against one enclave.
  While it runs the enclave suffers a performance penalty; when the
  configured duration elapses, the enclave is compromised and its
  sealed secrets leak to the attacker.
* :class:`BreachDetector` — a Varys-like monitor sampling enclave
  performance; sustained degradation above a threshold triggers the
  registered response (e.g. key rotation) after a detection lag.
* :class:`SingleEnclaveInvariant` — enforces (and lets tests assert)
  the model's core constraint: the adversary never holds live secrets
  from *both* layers simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.simnet.clock import EventLoop
from repro.sgx.enclave import Enclave

__all__ = [
    "SideChannelAttack",
    "BreachDetector",
    "SingleEnclaveInvariant",
    "AttackModelError",
]

# Reported attack completion times are "in the tens of minutes" (§1);
# default to 30 virtual minutes.
DEFAULT_ATTACK_DURATION = 30 * 60.0

# Attacked enclaves slow down noticeably; Nilsson et al. report
# significant degradation — we default to 3x service times.
DEFAULT_PERFORMANCE_PENALTY = 3.0


class AttackModelError(RuntimeError):
    """Raised when a scenario violates the adversary model."""


@dataclass
class SideChannelAttack:
    """One cache/timing attack campaign against a single enclave."""

    loop: EventLoop
    target: Enclave
    duration: float = DEFAULT_ATTACK_DURATION
    performance_penalty: float = DEFAULT_PERFORMANCE_PENALTY
    on_success: Optional[Callable[[Dict[str, Any]], None]] = None
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    aborted: bool = False

    def launch(self) -> None:
        """Start the attack: degrade the target, schedule completion."""
        if self.started_at is not None:
            raise AttackModelError("attack already launched")
        self.started_at = self.loop.now
        self.target.performance_penalty = self.performance_penalty
        self.loop.schedule(self.duration, self._complete)

    def abort(self) -> None:
        """Stop the attack (e.g. the detector's response fired first)."""
        self.aborted = True
        self.target.performance_penalty = 1.0

    @property
    def running(self) -> bool:
        """True between launch and completion/abort."""
        return self.started_at is not None and self.completed_at is None and not self.aborted

    def _complete(self) -> None:
        if self.aborted:
            return
        self.completed_at = self.loop.now
        self.target.mark_compromised()
        self.target.performance_penalty = 1.0
        if self.on_success is not None:
            self.on_success(self.target.leak_secrets())


@dataclass
class BreachDetector:
    """Performance-anomaly detector in the style of Varys / Déjà Vu.

    Samples each monitored enclave's ``performance_penalty`` every
    ``sampling_interval``; when a penalty above ``threshold`` persists
    for ``confirmation_samples`` consecutive samples, the registered
    ``response`` callback fires (once per enclave per breach).
    """

    loop: EventLoop
    enclaves: List[Enclave]
    response: Callable[[Enclave], None]
    sampling_interval: float = 30.0
    threshold: float = 1.5
    confirmation_samples: int = 4
    detections: List[str] = field(default_factory=list)
    _suspicion: Dict[str, int] = field(default_factory=dict)
    _alerted: Set[str] = field(default_factory=set)
    _running: bool = False

    def start(self) -> None:
        """Begin periodic sampling."""
        if self._running:
            return
        self._running = True
        self.loop.schedule(self.sampling_interval, self._sample)

    def stop(self) -> None:
        """Stop sampling (the next tick becomes a no-op)."""
        self._running = False

    def _sample(self) -> None:
        if not self._running:
            return
        for enclave in self.enclaves:
            if enclave.name in self._alerted:
                continue
            if enclave.performance_penalty > self.threshold or enclave.compromised:
                count = self._suspicion.get(enclave.name, 0) + 1
                self._suspicion[enclave.name] = count
                if count >= self.confirmation_samples:
                    self._alerted.add(enclave.name)
                    self.detections.append(enclave.name)
                    self.response(enclave)
            else:
                self._suspicion[enclave.name] = 0
        self.loop.schedule(self.sampling_interval, self._sample)

    def detection_time(self) -> float:
        """Worst-case time from attack start to response trigger."""
        return self.sampling_interval * self.confirmation_samples


@dataclass
class SingleEnclaveInvariant:
    """Checks the "one enclave at a time" adversary constraint.

    Tracks which layer each compromised enclave belongs to.  The model
    (and hence the security argument of §6.1) requires that the
    adversary never possesses *live* secrets from both the UA and the
    IA layer at once; a key rotation retires leaked secrets.
    """

    #: layer name -> True while the adversary holds live secrets of it
    holdings: Dict[str, bool] = field(default_factory=lambda: {"UA": False, "IA": False})
    violations: int = 0

    def record_leak(self, layer: str) -> None:
        """Adversary obtained the secrets of *layer*."""
        if layer not in self.holdings:
            raise AttackModelError(f"unknown layer {layer!r}")
        other = "IA" if layer == "UA" else "UA"
        if self.holdings[other]:
            # Both layers simultaneously: outside the adversary model.
            self.violations += 1
            raise AttackModelError(
                "adversary model violated: secrets of both layers held live"
            )
        self.holdings[layer] = True

    def record_rotation(self, layer: str) -> None:
        """Key rotation retired the leaked secrets of *layer*."""
        self.holdings[layer] = False

    @property
    def satisfied(self) -> bool:
        """True while at most one layer's live secrets are held."""
        return not (self.holdings["UA"] and self.holdings["IA"])
