"""Application-side HTTP redirection (§6.3's history-attack mitigation).

"If such attacks are a concern, a solution is to trade off latency for
privacy, using an HTTP redirection from the service using RaaS rather
than issuing queries directly from clients, thereby hiding their IP
addresses."

:class:`RedirectFrontend` is that relay: it terminates client
connections at the application's own frontend and re-issues the
(already encrypted) calls toward the UA layer from a single address.
The RaaS-side adversary then sees one source for *all* users — the
per-IP anonymity-set collection that powers the history attack has
nothing to anchor on.  The cost is one extra network hop plus the
relay's service time.

Wiring: wrap the deployed service in :class:`RedirectedService` and
hand that to the :class:`~repro.client.library.PProxClient`; every
call then enters through the relay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.rest.messages import Request, Response
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network
from repro.simnet.node import SimNode

__all__ = ["RedirectFrontend", "RedirectedService"]


@dataclass
class RedirectFrontend:
    """The application's relay between its users and the UA layer."""

    loop: EventLoop
    network: Network
    rng: random.Random
    #: Entry-point selector of the PProx deployment.
    pick_entry: Callable[[], object]
    address: str = "app-frontend"
    #: Relay work per direction (header rewrite, connection handling).
    relay_seconds: float = 0.0003
    node: SimNode = None  # type: ignore[assignment]
    relayed: int = 0

    def __post_init__(self) -> None:
        if self.node is None:
            self.node = SimNode(name=self.address, loop=self.loop, cores=4)

    def receive_request(self, request: Request, reply: Callable[[Response], None]) -> None:
        """Relay an encrypted request toward the UA layer.

        The outbound hop carries the frontend's address as its source,
        so the RaaS-side observer never sees the client's address.
        *reply* is invoked with the response after the return relay
        work; the caller owns the final client-facing hop.
        """

        def forward() -> None:
            entry = self.pick_entry()
            self.relayed += 1
            outbound = Request(
                verb=request.verb,
                fields=request.fields,
                request_id=request.request_id,
                client_address=self.address,
            )

            def reply_from_ua(response: Response) -> None:
                self.node.submit(self.relay_seconds, lambda: reply(response))

            self.network.send(
                self.address, entry.address, outbound, outbound.size_bytes(),
                lambda req: entry.receive_request(
                    req,
                    lambda resp: self.network.send(
                        entry.address, self.address, resp, resp.size_bytes(),
                        reply_from_ua,
                    ),
                ),
            )

        self.node.submit(self.relay_seconds, forward)


@dataclass
class RedirectedService:
    """Entry-point wrapper routing every client call via the relay.

    Exposes the surface :class:`~repro.client.library.PProxClient`
    uses — ``config``, ``client_material``, ``runtime``, ``entry()`` —
    returning the relay (which is UA-instance-shaped: it has an
    ``address`` and ``receive_request``) as the entry point.
    """

    inner: object
    frontend: RedirectFrontend

    @property
    def config(self):
        """The underlying deployment's configuration."""
        return self.inner.config

    @property
    def client_material(self):
        """The underlying deployment's public key material."""
        return self.inner.client_material

    @property
    def runtime(self):
        """The underlying deployment's runtime wiring."""
        return self.inner.runtime

    def entry(self) -> RedirectFrontend:
        """All client traffic enters through the application relay."""
        return self.frontend
