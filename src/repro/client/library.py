"""The thin user-side library (paper §2.1 item ➄, §4.2).

"A thin user-side library is easily embeddable in the application or
web front-end ... and offers the exact same REST API as the LRS.
This library intercepts, encrypts and forwards clients' API calls to
the proxy service."  The paper implements it in JavaScript; this is
the behavioural equivalent driving the simulation: it encrypts
arguments, keeps the per-request temporary key ``k_u``, decrypts
responses and strips padding pseudo-items — all transparently for the
calling application.

:class:`DirectClient` bypasses the proxy and talks straight to the
LRS; it drives the unprotected baseline configurations (b1-b4).
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Set

from repro.crypto.provider import CryptoProvider
from repro.overload.deadline import stamp_deadline
from repro.proxy import protocol
from repro.proxy.config import PProxConfig
from repro.proxy.costs import ProxyCostModel
from repro.proxy.epochs import stamp_epoch
from repro.proxy.layers import RETRYABLE_STATUS
from repro.proxy.service import PProxService, _looks_like_context
from repro.rest.codec import WireCodec, ship
from repro.rest.messages import Request, Response, Verb, make_get, make_post, next_request_id
from repro.simnet.clock import EventLoop
from repro.simnet.loadbalancer import BalancerError
from repro.simnet.network import Network
from repro.telemetry.types import TelemetryLike

__all__ = ["PProxClient", "DirectClient", "CompletedCall", "OUTCOME_CLASSES"]

#: Request-outcome classes counted by ``PProxClient.outcomes`` (and the
#: ``pprox_request_outcome_total`` counter family built over them).
OUTCOME_CLASSES = ("ok", "retried", "hedged", "failed")


@dataclass(frozen=True)
class CompletedCall:
    """Result handed to the application when a call completes."""

    verb: str
    user: str
    ok: bool
    items: List[str]
    started_at: float
    completed_at: float
    request_id: int

    @property
    def latency(self) -> float:
        """Round-trip service latency as the injector measures it."""
        return self.completed_at - self.started_at


@dataclass(init=False)
class PProxClient:
    """User-side library instance bound to a PProx deployment.

    Two construction forms are accepted.  Preferred::

        PProxClient(ctx, service, request_timeout=0.5, ...)

    with *ctx* a :class:`repro.context.SimContext` (the client draws
    its provider, cost model, telemetry hub and a dedicated ``client``
    RNG stream from it).  The legacy bundle ::

        PProxClient(loop, network, provider, service, costs, rng, ...)

    (positionally or by keyword) still works but emits
    :class:`DeprecationWarning`.
    """

    loop: EventLoop
    network: Network
    provider: CryptoProvider
    service: PProxService
    costs: ProxyCostModel
    rng: random.Random
    #: Multi-tenant deployments: this application's public keys (the
    #: shared service has no single client material) and its public
    #: tenant label, stamped on every request.
    material: Optional[protocol.ClientMaterial] = None
    tenant: Optional[str] = None
    #: Abandon an attempt after this many seconds (None: wait forever).
    request_timeout: Optional[float] = None
    #: Re-issue a timed-out call this many times before reporting
    #: failure.  Retried posts are at-least-once: a retry racing a slow
    #: original can insert duplicate feedback, which CCO deduplicates.
    max_retries: int = 0
    #: Optional :class:`repro.telemetry.Telemetry` hub.  The client is
    #: where traces begin (t0 hop) and end (settle).
    telemetry: Optional[TelemetryLike] = None
    #: Exponential-backoff schedule for retries: the n-th retry waits
    #: ``backoff_base * backoff_factor**(n-1) + U(0, backoff_jitter)``
    #: seconds, with the jitter drawn from the client's own seeded RNG
    #: (deterministic for a fixed seed).  ``backoff_base == 0``
    #: reproduces the original immediate-retry behaviour.
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.0
    #: Launch one hedged duplicate of a call (fresh request id, same
    #: payload) if no response arrived within this many seconds; first
    #: answer wins, the loser's trace is abandoned.  ``None`` disables
    #: hedging.  Hedges do not consume the retry budget.
    hedge_delay: Optional[float] = None
    #: End-to-end time budget per call (seconds).  Each attempt —
    #: original, retry or hedge — is stamped with the budget *remaining
    #: at launch* (one shared expiry per call, so a hedge can never
    #: double-spend), letting every hop shed the request once the
    #: client has given up.  No retry is scheduled to land past the
    #: expiry.  ``None`` disables deadline propagation.
    deadline_budget: Optional[float] = None
    #: Cache the service's key material/epoch view for this many
    #: seconds, modelling a client that does not observe a rotation
    #: immediately.  A retryable error invalidates the cache at once
    #: (epoch discovery through the existing re-encode-on-retry path).
    #: ``None`` reads live on every encode — the legacy behaviour.
    epoch_ttl: Optional[float] = None
    calls_started: int = 0
    calls_completed: int = 0
    retries_performed: int = 0
    timeouts: int = 0
    #: Retryable (e.g. 503 stale-key) error responses observed.
    retryable_errors: int = 0
    hedges_launched: int = 0
    #: Epoch changes this client discovered (cache expiry or retry).
    epoch_bumps: int = 0
    #: Settled-call classification: ok / retried / hedged / failed.
    outcomes: Dict[str, int] = field(default_factory=dict)

    _LEGACY_PARAMS = (
        "loop", "network", "provider", "service", "costs", "rng",
        "material", "tenant", "request_timeout", "max_retries", "telemetry",
    )

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        first = args[0] if args else kwargs.get("ctx")
        if first is not None and _looks_like_context(first):
            merged: Dict[str, Any] = dict(zip(("ctx", "service"), args))
            overlap = set(merged) & set(kwargs)
            if overlap:
                raise TypeError(f"PProxClient got multiple values for {sorted(overlap)}")
            merged.update(kwargs)
            ctx = merged.pop("ctx")
            try:
                service = merged.pop("service")
            except KeyError:
                raise TypeError("PProxClient(ctx, ...) requires a service") from None
            provider = merged.pop("provider", None) or ctx.provider
            if provider is None:
                raise ValueError(
                    "SimContext.provider is unset; set it on the context (or "
                    "build through repro.context.Deployment, which resolves one)"
                )
            rng = merged.pop("rng", None) or ctx.rng.stream("client")
            if "codec" not in merged and hasattr(ctx, "resolved_codec"):
                merged["codec"] = ctx.resolved_codec()
            if "id_source" not in merged:
                merged["id_source"] = getattr(ctx, "next_request_id", None)
            self._init_fields(
                loop=ctx.loop,
                network=ctx.network,
                provider=provider,
                service=service,
                costs=merged.pop("costs", None) or ctx.costs,
                rng=rng,
                telemetry=merged.pop("telemetry", ctx.telemetry),
                **merged,
            )
            return
        warnings.warn(
            "PProxClient(loop, network, provider, service, costs, rng, ...) is "
            "deprecated; pass a repro.context.SimContext as the first argument "
            "(or use repro.context.Deployment.client)",
            DeprecationWarning,
            stacklevel=2,
        )
        legacy: Dict[str, Any] = dict(zip(self._LEGACY_PARAMS, args))
        overlap = set(legacy) & set(kwargs)
        if overlap:
            raise TypeError(f"PProxClient got multiple values for {sorted(overlap)}")
        legacy.update(kwargs)
        self._init_fields(**legacy)

    def _init_fields(
        self,
        *,
        loop: EventLoop,
        network: Network,
        provider: CryptoProvider,
        service: PProxService,
        costs: ProxyCostModel,
        rng: random.Random,
        material: Optional[protocol.ClientMaterial] = None,
        tenant: Optional[str] = None,
        request_timeout: Optional[float] = None,
        max_retries: int = 0,
        telemetry: Optional[TelemetryLike] = None,
        backoff_base: float = 0.0,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.0,
        hedge_delay: Optional[float] = None,
        deadline_budget: Optional[float] = None,
        epoch_ttl: Optional[float] = None,
        causal: Optional[Any] = None,
        codec: Optional[WireCodec] = None,
        id_source: Optional[Callable[[], int]] = None,
    ) -> None:
        self.loop = loop
        self.network = network
        self.provider = provider
        self.service = service
        self.costs = costs
        self.rng = rng
        self.material = material
        self.tenant = tenant
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.telemetry = telemetry
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self.hedge_delay = hedge_delay
        self.deadline_budget = deadline_budget
        self.epoch_ttl = epoch_ttl
        #: Opt-in :class:`repro.obs.causal.CausalTracer`: stamps each
        #: attempt with a fixed-width trace id on the client->ua hop
        #: only (the UA severs it at the shuffle boundary).
        self.causal = causal
        #: Wire codec shared with the service (``None``: legacy wire).
        self.codec = codec
        #: Request-id allocator; context-built clients draw from the
        #: per-context counter, legacy ones from the process-wide one.
        self.id_source = id_source
        self.calls_started = 0
        self.calls_completed = 0
        self.retries_performed = 0
        self.timeouts = 0
        self.retryable_errors = 0
        self.hedges_launched = 0
        self.epoch_bumps = 0
        #: (expires_at, material, epoch view) — set only with epoch_ttl.
        self._material_cache: Optional[tuple] = None
        self.outcomes = {outcome: 0 for outcome in OUTCOME_CLASSES}

    def _next_id(self) -> int:
        """Allocate a request id (context counter when available)."""
        if self.id_source is not None:
            return self.id_source()
        return next_request_id()

    @property
    def config(self) -> PProxConfig:
        """The deployment's configuration."""
        return self.service.config

    @property
    def client_material(self) -> protocol.ClientMaterial:
        """The key material this library encrypts against.

        With :attr:`epoch_ttl` set, the material (and the epoch view it
        belongs to) is cached for the TTL — a deliberately stale client
        that exercises the dual-epoch acceptance window mid-rotation.
        """
        if self.material is not None:
            return self.material
        if self.epoch_ttl is None:
            return self.service.client_material
        cache = self._material_cache
        if cache is not None and self.loop.now < cache[0]:
            return cache[1]
        material = self.service.client_material
        epochs = self._service_epochs()
        if cache is not None and cache[2] != epochs:
            self.epoch_bumps += 1
        self._material_cache = (self.loop.now + self.epoch_ttl, material, epochs)
        return material

    def _service_epochs(self) -> Optional[Dict[str, int]]:
        """The service's epoch view (None for pre-epoch deployments and
        for frontends — e.g. redirectors — that do not expose one)."""
        return getattr(self.service, "wire_epochs", None)

    def _stamp_epoch(self, encoded: Request) -> Request:
        """Tag the request with the UA epoch its encryption targets.

        The tag is fixed-width (constant request size preserved) and is
        stripped by the UA before the shuffle buffer.  Requests built
        from cached material carry the *cached* epoch — the honest view
        of a stale client.  Pre-epoch services stamp nothing.
        """
        cache = self._material_cache
        if cache is not None and self.loop.now < cache[0]:
            epochs = cache[2]
        else:
            epochs = self._service_epochs()
        if not epochs:
            return encoded
        return stamp_epoch(encoded, epochs.get("UA"))

    def _note_retry_epoch(self) -> None:
        """Epoch discovery on retry: drop the cached material so the
        re-encode sees the service's current keys, and count a bump
        when the epoch actually moved underneath this client."""
        if self.epoch_ttl is None:
            return
        cache = self._material_cache
        self._material_cache = None
        if cache is not None and cache[2] != self._service_epochs():
            self.epoch_bumps += 1

    def post(
        self,
        user: str,
        item: str,
        payload: Optional[str] = None,
        client_address: Optional[str] = None,
        on_complete: Optional[Callable[[CompletedCall], None]] = None,
    ) -> None:
        """Issue ``post(u, i[, p])`` through the proxy service."""
        address = client_address or f"client-{user}"

        def encode():
            fresh = make_post(
                user, item, payload, client_address=address,
                request_id=self._next_id(),
            )
            encoded, keys = protocol.client_encode_post(
                self.provider, self.client_material, self.config, fresh,
                codec=self.codec,
            )
            if self.tenant is not None:
                encoded = encoded.with_fields(tenant=self.tenant)
            return self._stamp_epoch(encoded), keys

        encoded, keys = encode()
        self._dispatch(encoded, address, user, keys, on_complete, re_encode=encode)

    def get(
        self,
        user: str,
        client_address: Optional[str] = None,
        on_complete: Optional[Callable[[CompletedCall], None]] = None,
    ) -> None:
        """Issue ``get(u)`` through the proxy service."""
        address = client_address or f"client-{user}"

        def encode():
            fresh = make_get(
                user, client_address=address, request_id=self._next_id()
            )
            encoded, keys = protocol.client_encode_get(
                self.provider, self.client_material, self.config, fresh,
                codec=self.codec,
            )
            if self.tenant is not None:
                encoded = encoded.with_fields(tenant=self.tenant)
            return self._stamp_epoch(encoded), keys

        encoded, keys = encode()
        self._dispatch(encoded, address, user, keys, on_complete, re_encode=encode)

    def _dispatch(
        self,
        request: Request,
        address: str,
        user: str,
        keys: protocol.CallKeys,
        on_complete: Optional[Callable[[CompletedCall], None]],
        re_encode: Optional[Callable[[], Any]] = None,
    ) -> None:
        started_at = self.loop.now
        self.calls_started += 1
        telemetry = self.telemetry
        causal = self.causal
        trace_id = causal.start_call(request.verb) if causal is not None else None
        if address not in self.network.roles:
            self.network.register_role(address, "client")
        # One expiry for the whole call: retries and hedges all draw
        # down the same budget, so concurrent attempts cannot spend it
        # twice.
        expiry = (
            started_at + self.deadline_budget
            if self.deadline_budget is not None
            else None
        )
        encrypt_delay = self.costs.client_encrypt_seconds(self.config)
        call_state: Dict[str, Any] = {
            "settled": False,
            "attempt": 0,
            "retries": 0,
            "hedged": False,
            "live_ids": set(),
        }
        live_ids: Set[int] = call_state["live_ids"]

        def settle(ok: bool, items: List[str], request_id: int, hedged: bool = False) -> None:
            if call_state["settled"]:
                return
            call_state["settled"] = True
            self.calls_completed += 1
            if not ok:
                outcome = "failed"
            elif hedged:
                outcome = "hedged"
            elif call_state["retries"] > 0:
                outcome = "retried"
            else:
                outcome = "ok"
            self.outcomes[outcome] += 1
            if causal is not None and trace_id is not None:
                causal.settle_call(trace_id, ok)
            if telemetry is not None:
                telemetry.tracer.end_trace(request_id, ok)
                for loser in sorted(live_ids):
                    if loser != request_id:
                        telemetry.tracer.abandon(loser)
            if on_complete is not None:
                on_complete(
                    CompletedCall(
                        verb=request.verb,
                        user=user,
                        ok=ok,
                        items=items,
                        started_at=started_at,
                        completed_at=self.loop.now,
                        request_id=request_id,
                    )
                )

        def backoff_delay(retry_number: int) -> float:
            if self.backoff_base <= 0:
                return 0.0
            exponent = max(0, retry_number - 1)
            delay = self.backoff_base * (self.backoff_factor ** exponent)
            if self.backoff_jitter > 0:
                delay += self.backoff_jitter * self.rng.random()
            return delay

        def retry_after(previous: Request, previous_keys: protocol.CallKeys) -> None:
            """Re-issue the call under a fresh id, after backoff."""
            delay = backoff_delay(call_state["retries"] + 1)
            if expiry is not None and self.loop.now + delay >= expiry:
                # The retry would launch with a spent budget; every hop
                # would shed it on sight.  Settle instead of scheduling
                # doomed work.
                live_ids.discard(previous.request_id)
                settle(False, [], previous.request_id)
                return
            call_state["attempt"] += 1
            call_state["retries"] += 1
            self.retries_performed += 1
            live_ids.discard(previous.request_id)
            if telemetry is not None:
                telemetry.tracer.abandon(previous.request_id)
            if re_encode is not None:
                # Re-seal under the *current* client material: a retry
                # provoked by a stale-key 503 (mid-rotation) only heals
                # if it is encrypted against the rotated keys.  Any
                # cached epoch view is dropped first — this is where a
                # stale client discovers a rotation.
                self._note_retry_epoch()
                fresh, fresh_keys = re_encode()
                retry = replace(fresh, request_id=self._next_id())
            else:
                # A fresh request id keeps the retry distinct in every
                # routing table it traverses.
                retry = replace(previous, request_id=self._next_id())
                fresh_keys = previous_keys
            if delay > 0:
                self.loop.schedule(delay, lambda: attempt(retry, fresh_keys))
            else:
                attempt(retry, fresh_keys)

        def attempt(
            attempt_request: Request,
            attempt_keys: protocol.CallKeys,
            hedged: bool = False,
        ) -> None:
            if call_state["settled"]:
                return
            if expiry is not None:
                remaining = expiry - self.loop.now
                if remaining <= 0.0:
                    # Budget spent before launch (e.g. the encrypt or
                    # backoff delay consumed the rest).
                    if hedged:
                        return
                    settle(False, [], attempt_request.request_id)
                    return
                # Stamp the budget remaining *now*: a hedge launched
                # late carries less budget than the primary did.
                attempt_request = stamp_deadline(attempt_request, remaining)
            attempt_index = call_state["attempt"]
            live_ids.add(attempt_request.request_id)
            try:
                # Sharded fleets route per attempt on the request nonce
                # (never anything user-derived); a retry's fresh nonce
                # re-rolls its shard, which is what makes failover to a
                # sibling shard automatic when one shard is down.
                entry_for = getattr(self.service, "entry_for", None)
                if entry_for is not None:
                    entry = entry_for(attempt_request)
                else:
                    entry = self.service.entry()
            except BalancerError:
                # Every UA instance is ejected right now.  Treat like a
                # lost message: back off and retry while budget lasts.
                live_ids.discard(attempt_request.request_id)
                if hedged:
                    return
                if call_state["retries"] < self.max_retries:
                    self.retryable_errors += 1
                    retry_after(attempt_request, attempt_keys)
                else:
                    settle(False, [], attempt_request.request_id)
                return

            def deliver_response(response: Response) -> None:
                decrypt_delay = self.costs.client_decrypt_seconds(self.config)
                self.loop.schedule(decrypt_delay, lambda: finish(response))

            def finish(response: Response) -> None:
                if call_state["settled"]:
                    return
                retryable = (
                    response.status == RETRYABLE_STATUS
                    or bool(response.fields.get("retryable"))
                )
                if not response.ok and retryable:
                    self.retryable_errors += 1
                    if not hedged and call_state["retries"] < self.max_retries:
                        retry_after(attempt_request, attempt_keys)
                        return
                    if hedged:
                        # A failed hedge never settles the call; the
                        # primary attempt (or its timeout) decides.
                        live_ids.discard(attempt_request.request_id)
                        if telemetry is not None:
                            telemetry.tracer.abandon(attempt_request.request_id)
                        return
                items: List[str] = []
                if response.ok and request.verb == Verb.GET:
                    try:
                        items = protocol.client_decode_response(
                            self.provider, self.config, response, attempt_keys,
                            codec=self.codec,
                        )
                    except Exception:
                        # Mid-rotation, a blob can be sealed against a
                        # temporary key recovered under the wrong epoch
                        # (providers without authenticated decryption
                        # yield garbage instead of raising upstream).
                        # Treat exactly like a retryable error: the
                        # retry re-encodes under the current epoch.
                        self.retryable_errors += 1
                        if not hedged and call_state["retries"] < self.max_retries:
                            retry_after(attempt_request, attempt_keys)
                            return
                        if hedged:
                            live_ids.discard(attempt_request.request_id)
                            if telemetry is not None:
                                telemetry.tracer.abandon(attempt_request.request_id)
                            return
                        settle(False, [], attempt_request.request_id)
                        return
                settle(response.ok, items, attempt_request.request_id, hedged=hedged)

            def reply_to_client(response: Response) -> None:
                if telemetry is not None:
                    # Same virtual instant as the ua->client wire record.
                    telemetry.tracer.record_hop(response.request_id, "ua", "client")
                ship(self.network, self.codec, entry.address, address, response,
                     deliver_response)

            def on_timeout() -> None:
                if call_state["settled"] or call_state["attempt"] != attempt_index:
                    return
                self.timeouts += 1
                if call_state["retries"] < self.max_retries:
                    retry_after(attempt_request, attempt_keys)
                else:
                    settle(False, [], attempt_request.request_id)

            def launch_hedge() -> None:
                if (
                    call_state["settled"]
                    or call_state["hedged"]
                    or call_state["attempt"] != attempt_index
                ):
                    return
                call_state["hedged"] = True
                self.hedges_launched += 1
                hedge = replace(attempt_request, request_id=self._next_id())
                attempt(hedge, attempt_keys, hedged=True)

            if causal is not None and trace_id is not None:
                # Each wire attempt (retry or hedge) re-carries the
                # call's trace id; the UA front door strips it before
                # the request can enter a shuffle buffer.
                attempt_request = causal.stamp(attempt_request, trace_id)
            if telemetry is not None:
                telemetry.tracer.record_hop(attempt_request.request_id, "client", "ua")
            ship(self.network, self.codec, address, entry.address, attempt_request,
                 lambda req: entry.receive_request(req, reply_to_client))
            if not hedged and self.request_timeout is not None:
                self.loop.schedule(self.request_timeout, on_timeout)
            if not hedged and self.hedge_delay is not None:
                self.loop.schedule(self.hedge_delay, launch_hedge)

        if encrypt_delay > 0:
            self.loop.schedule(encrypt_delay, lambda: attempt(request, keys))
        else:
            attempt(request, keys)


@dataclass
class DirectClient:
    """Baseline client: talks to the LRS with no privacy protection."""

    loop: EventLoop
    network: Network
    lrs_picker: Callable[[], object]
    calls_completed: int = 0

    def post(
        self,
        user: str,
        item: str,
        payload: Optional[str] = None,
        client_address: Optional[str] = None,
        on_complete: Optional[Callable[[CompletedCall], None]] = None,
    ) -> None:
        """Issue ``post`` directly against an LRS frontend."""
        address = client_address or f"client-{user}"
        request = make_post(user, item, payload, client_address=address)
        self._dispatch(request, address, user, on_complete)

    def get(
        self,
        user: str,
        client_address: Optional[str] = None,
        on_complete: Optional[Callable[[CompletedCall], None]] = None,
    ) -> None:
        """Issue ``get`` directly against an LRS frontend."""
        address = client_address or f"client-{user}"
        request = make_get(user, client_address=address)
        self._dispatch(request, address, user, on_complete)

    def _dispatch(
        self,
        request: Request,
        address: str,
        user: str,
        on_complete: Optional[Callable[[CompletedCall], None]],
    ) -> None:
        started_at = self.loop.now
        backend = self.lrs_picker()
        if address not in self.network.roles:
            self.network.register_role(address, "client")
        if backend.address not in self.network.roles:
            self.network.register_role(backend.address, "lrs")

        def finish(response: Response) -> None:
            self.calls_completed += 1
            if on_complete is not None:
                on_complete(
                    CompletedCall(
                        verb=request.verb,
                        user=user,
                        ok=response.ok,
                        items=list(response.fields.get("items", [])),
                        started_at=started_at,
                        completed_at=self.loop.now,
                        request_id=request.request_id,
                    )
                )

        def reply_to_client(response: Response) -> None:
            self.network.send(
                backend.address, address, response, response.size_bytes(), finish
            )

        self.network.send(
            address,
            backend.address,
            request,
            request.size_bytes(),
            lambda req: backend.handle(req, reply_to_client),
        )
