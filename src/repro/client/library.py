"""The thin user-side library (paper §2.1 item ➄, §4.2).

"A thin user-side library is easily embeddable in the application or
web front-end ... and offers the exact same REST API as the LRS.
This library intercepts, encrypts and forwards clients' API calls to
the proxy service."  The paper implements it in JavaScript; this is
the behavioural equivalent driving the simulation: it encrypts
arguments, keeps the per-request temporary key ``k_u``, decrypts
responses and strips padding pseudo-items — all transparently for the
calling application.

:class:`DirectClient` bypasses the proxy and talks straight to the
LRS; it drives the unprotected baseline configurations (b1-b4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

from repro.crypto.provider import CryptoProvider
from repro.proxy import protocol
from repro.proxy.config import PProxConfig
from repro.proxy.costs import ProxyCostModel
from repro.proxy.service import PProxService
from repro.rest.messages import Request, Response, Verb, make_get, make_post, next_request_id
from repro.simnet.clock import EventLoop
from repro.simnet.network import Network

__all__ = ["PProxClient", "DirectClient", "CompletedCall"]


@dataclass(frozen=True)
class CompletedCall:
    """Result handed to the application when a call completes."""

    verb: str
    user: str
    ok: bool
    items: List[str]
    started_at: float
    completed_at: float
    request_id: int

    @property
    def latency(self) -> float:
        """Round-trip service latency as the injector measures it."""
        return self.completed_at - self.started_at


@dataclass
class PProxClient:
    """User-side library instance bound to a PProx deployment."""

    loop: EventLoop
    network: Network
    provider: CryptoProvider
    service: PProxService
    costs: ProxyCostModel
    rng: random.Random
    #: Multi-tenant deployments: this application's public keys (the
    #: shared service has no single client material) and its public
    #: tenant label, stamped on every request.
    material: Optional[protocol.ClientMaterial] = None
    tenant: Optional[str] = None
    #: Abandon an attempt after this many seconds (None: wait forever).
    request_timeout: Optional[float] = None
    #: Re-issue a timed-out call this many times before reporting
    #: failure.  Retried posts are at-least-once: a retry racing a slow
    #: original can insert duplicate feedback, which CCO deduplicates.
    max_retries: int = 0
    #: Optional :class:`repro.telemetry.Telemetry` hub.  The client is
    #: where traces begin (t0 hop) and end (settle).
    telemetry: Optional[object] = None
    calls_started: int = 0
    calls_completed: int = 0
    retries_performed: int = 0
    timeouts: int = 0

    @property
    def config(self) -> PProxConfig:
        """The deployment's configuration."""
        return self.service.config

    @property
    def client_material(self) -> protocol.ClientMaterial:
        """The key material this library encrypts against."""
        return self.material if self.material is not None else self.service.client_material

    def post(
        self,
        user: str,
        item: str,
        payload: Optional[str] = None,
        client_address: Optional[str] = None,
        on_complete: Optional[Callable[[CompletedCall], None]] = None,
    ) -> None:
        """Issue ``post(u, i[, p])`` through the proxy service."""
        address = client_address or f"client-{user}"
        request = make_post(user, item, payload, client_address=address)
        encoded, keys = protocol.client_encode_post(
            self.provider, self.client_material, self.config, request
        )
        if self.tenant is not None:
            encoded = encoded.with_fields(tenant=self.tenant)
        self._dispatch(encoded, address, user, keys, on_complete)

    def get(
        self,
        user: str,
        client_address: Optional[str] = None,
        on_complete: Optional[Callable[[CompletedCall], None]] = None,
    ) -> None:
        """Issue ``get(u)`` through the proxy service."""
        address = client_address or f"client-{user}"
        request = make_get(user, client_address=address)
        encoded, keys = protocol.client_encode_get(
            self.provider, self.client_material, self.config, request
        )
        if self.tenant is not None:
            encoded = encoded.with_fields(tenant=self.tenant)
        self._dispatch(encoded, address, user, keys, on_complete)

    def _dispatch(
        self,
        request: Request,
        address: str,
        user: str,
        keys: protocol.CallKeys,
        on_complete: Optional[Callable[[CompletedCall], None]],
    ) -> None:
        started_at = self.loop.now
        self.calls_started += 1
        telemetry = self.telemetry
        if address not in self.network.roles:
            self.network.register_role(address, "client")
        encrypt_delay = self.costs.client_encrypt_seconds(self.config)
        call_state = {"settled": False, "attempt": 0}

        def settle(ok: bool, items: List[str], request_id: int) -> None:
            if call_state["settled"]:
                return
            call_state["settled"] = True
            self.calls_completed += 1
            if telemetry is not None:
                telemetry.tracer.end_trace(request_id, ok)
            if on_complete is not None:
                on_complete(
                    CompletedCall(
                        verb=request.verb,
                        user=user,
                        ok=ok,
                        items=items,
                        started_at=started_at,
                        completed_at=self.loop.now,
                        request_id=request_id,
                    )
                )

        def attempt(attempt_request: Request) -> None:
            attempt_index = call_state["attempt"]
            entry = self.service.entry()

            def deliver_response(response: Response) -> None:
                decrypt_delay = self.costs.client_decrypt_seconds(self.config)
                self.loop.schedule(decrypt_delay, lambda: finish(response))

            def finish(response: Response) -> None:
                items: List[str] = []
                if response.ok and request.verb == Verb.GET:
                    items = protocol.client_decode_response(
                        self.provider, self.config, response, keys
                    )
                settle(response.ok, items, attempt_request.request_id)

            def reply_to_client(response: Response) -> None:
                if telemetry is not None:
                    # Same virtual instant as the ua->client wire record.
                    telemetry.tracer.record_hop(response.request_id, "ua", "client")
                self.network.send(
                    entry.address, address, response, response.size_bytes(),
                    deliver_response,
                )

            def on_timeout() -> None:
                if call_state["settled"] or call_state["attempt"] != attempt_index:
                    return
                self.timeouts += 1
                if call_state["attempt"] < self.max_retries:
                    call_state["attempt"] += 1
                    self.retries_performed += 1
                    if telemetry is not None:
                        telemetry.tracer.abandon(attempt_request.request_id)
                    # A fresh request id keeps the retry distinct in
                    # every routing table it traverses.
                    retry = replace(attempt_request, request_id=next_request_id())
                    attempt(retry)
                else:
                    settle(False, [], attempt_request.request_id)

            if telemetry is not None:
                telemetry.tracer.record_hop(attempt_request.request_id, "client", "ua")
            self.network.send(
                address,
                entry.address,
                attempt_request,
                attempt_request.size_bytes(),
                lambda req: entry.receive_request(req, reply_to_client),
            )
            if self.request_timeout is not None:
                self.loop.schedule(self.request_timeout, on_timeout)

        if encrypt_delay > 0:
            self.loop.schedule(encrypt_delay, lambda: attempt(request))
        else:
            attempt(request)


@dataclass
class DirectClient:
    """Baseline client: talks to the LRS with no privacy protection."""

    loop: EventLoop
    network: Network
    lrs_picker: Callable[[], object]
    calls_completed: int = 0

    def post(
        self,
        user: str,
        item: str,
        payload: Optional[str] = None,
        client_address: Optional[str] = None,
        on_complete: Optional[Callable[[CompletedCall], None]] = None,
    ) -> None:
        """Issue ``post`` directly against an LRS frontend."""
        address = client_address or f"client-{user}"
        request = make_post(user, item, payload, client_address=address)
        self._dispatch(request, address, user, on_complete)

    def get(
        self,
        user: str,
        client_address: Optional[str] = None,
        on_complete: Optional[Callable[[CompletedCall], None]] = None,
    ) -> None:
        """Issue ``get`` directly against an LRS frontend."""
        address = client_address or f"client-{user}"
        request = make_get(user, client_address=address)
        self._dispatch(request, address, user, on_complete)

    def _dispatch(
        self,
        request: Request,
        address: str,
        user: str,
        on_complete: Optional[Callable[[CompletedCall], None]],
    ) -> None:
        started_at = self.loop.now
        backend = self.lrs_picker()
        if address not in self.network.roles:
            self.network.register_role(address, "client")
        if backend.address not in self.network.roles:
            self.network.register_role(backend.address, "lrs")

        def finish(response: Response) -> None:
            self.calls_completed += 1
            if on_complete is not None:
                on_complete(
                    CompletedCall(
                        verb=request.verb,
                        user=user,
                        ok=response.ok,
                        items=list(response.fields.get("items", [])),
                        started_at=started_at,
                        completed_at=self.loop.now,
                        request_id=request.request_id,
                    )
                )

        def reply_to_client(response: Response) -> None:
            self.network.send(
                backend.address, address, response, response.size_bytes(), finish
            )

        self.network.send(
            address,
            backend.address,
            request,
            request.size_bytes(),
            lambda req: backend.handle(req, reply_to_client),
        )
