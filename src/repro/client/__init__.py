"""User-side library (the paper's JavaScript shim, in Python)."""

from repro.client.library import CompletedCall, DirectClient, PProxClient
from repro.client.redirect import RedirectedService, RedirectFrontend

__all__ = [
    "PProxClient",
    "DirectClient",
    "CompletedCall",
    "RedirectFrontend",
    "RedirectedService",
]
