"""REST message model, wire codecs and routing primitives shared by client, proxy and LRS."""

from repro.rest.codec import (
    BinaryCodec,
    CodecError,
    JsonCodec,
    WireCodec,
    WireFrame,
    resolve_codec,
)
from repro.rest.messages import Request, Response, Verb, make_get, make_post, next_request_id
from repro.rest.routing import RoutingError, RoutingTable

__all__ = [
    "Request",
    "Response",
    "Verb",
    "make_get",
    "make_post",
    "next_request_id",
    "WireCodec",
    "JsonCodec",
    "BinaryCodec",
    "WireFrame",
    "CodecError",
    "resolve_codec",
    "RoutingTable",
    "RoutingError",
]
