"""REST message model and routing primitives shared by client, proxy and LRS."""

from repro.rest.messages import Request, Response, Verb, make_get, make_post, next_request_id
from repro.rest.routing import RoutingError, RoutingTable

__all__ = [
    "Request",
    "Response",
    "Verb",
    "make_get",
    "make_post",
    "next_request_id",
    "RoutingTable",
    "RoutingError",
]
