"""The routing table T of the proxy server (paper §5).

Each proxy layer "maintains a table T storing the association between
an inbound socket I (from the user-side library or from another proxy)
and an outbound socket O (to another proxy or to the LRS)".  Responses
from the LRS are forwarded backward using the same path as the
incoming request.

We key entries by the outbound request id (the analogue of the
outbound file descriptor the real implementation looks up when
``epoll()`` raises an event), and store whatever per-request context
the layer needs to route and post-process the response.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generic, Optional, TypeVar

__all__ = ["RoutingTable", "RoutingError"]

ContextT = TypeVar("ContextT")


class RoutingError(KeyError):
    """Raised on lookups of unknown or already-consumed routes."""


@dataclass
class RoutingTable(Generic[ContextT]):
    """Pending-request table mapping outbound ids to inbound context."""

    name: str = "T"
    _entries: Dict[int, ContextT] = field(default_factory=dict)
    max_size: int = 0
    total_registered: int = 0

    def register(self, outbound_id: int, context: ContextT) -> None:
        """Record that *outbound_id*'s response must return to *context*."""
        if outbound_id in self._entries:
            raise RoutingError(f"duplicate outbound id {outbound_id} in table {self.name!r}")
        self._entries[outbound_id] = context
        self.total_registered += 1
        self.max_size = max(self.max_size, len(self._entries))

    def consume(self, outbound_id: int) -> ContextT:
        """Pop and return the context for *outbound_id*."""
        try:
            return self._entries.pop(outbound_id)
        except KeyError:
            raise RoutingError(
                f"no pending route for outbound id {outbound_id} in table {self.name!r}"
            ) from None

    def peek(self, outbound_id: int) -> Optional[ContextT]:
        """Return the context without consuming it (None if absent)."""
        return self._entries.get(outbound_id)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, outbound_id: int) -> bool:
        return outbound_id in self._entries
