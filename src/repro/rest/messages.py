"""REST message model for the LRS API and its proxied forms.

The LRS exposes exactly two calls (paper §2.1):

* ``post(u, i[, p])`` — insert feedback from user *u* about item *i*
  with optional payload *p*;
* ``get(u)`` — return a collection of recommended items for *u*.

The user-side library and the two proxy layers rewrite the *fields* of
these calls (never the method) as they travel; the adversary observing
the wire sees only JSON with base64 blobs of constant size.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

__all__ = ["Request", "Response", "Verb", "make_get", "make_post", "next_request_id"]

_REQUEST_IDS = itertools.count(1)


def next_request_id() -> int:
    """Allocate a request id from the process-wide legacy counter.

    The counter leaks across runs in one process, so same-seed
    artifacts depended on test ordering; context-built clients now
    allocate from :meth:`repro.context.SimContext.next_request_id`
    (a per-context counter) instead.  This function remains for the
    legacy loose-argument construction path, where ids only need to
    be unique, not reproducible.
    """
    return next(_REQUEST_IDS)


class Verb:
    """The two verbs of the LRS REST API."""

    POST = "POST"
    GET = "GET"


@dataclass(frozen=True)
class Request:
    """An in-flight API request.

    ``request_id`` and ``client_address`` exist for the simulator and
    the adversary-model bookkeeping; they are *not* serialized into
    the JSON body (the adversary sees source addresses from the flow
    records, and never sees request ids at all).
    """

    verb: str
    fields: Dict[str, Any]
    request_id: int
    client_address: str

    def with_fields(self, **updates: Any) -> "Request":
        """Copy of this request with *updates* applied to its fields."""
        new_fields = dict(self.fields)
        for key, value in updates.items():
            if value is None:
                new_fields.pop(key, None)
            else:
                new_fields[key] = value
        return replace(self, fields=new_fields)

    def body_json(self) -> str:
        """Serialize the JSON body as it would appear on the wire."""
        return json.dumps(self.fields, sort_keys=True, separators=(",", ":"))

    def size_bytes(self) -> int:
        """Wire size: request line + JSON body."""
        return 32 + len(self.body_json().encode("utf-8"))


@dataclass(frozen=True)
class Response:
    """An API response travelling the reverse path of its request."""

    status: int
    fields: Dict[str, Any] = field(default_factory=dict)
    request_id: int = 0

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300

    def with_fields(self, **updates: Any) -> "Response":
        """Copy of this response with *updates* applied to its fields."""
        new_fields = dict(self.fields)
        for key, value in updates.items():
            if value is None:
                new_fields.pop(key, None)
            else:
                new_fields[key] = value
        return replace(self, fields=new_fields)

    def body_json(self) -> str:
        """Serialize the JSON body as it would appear on the wire."""
        return json.dumps(self.fields, sort_keys=True, separators=(",", ":"))

    def size_bytes(self) -> int:
        """Wire size: status line + JSON body."""
        return 20 + len(self.body_json().encode("utf-8"))


def make_post(user_field: Any, item_field: Any, payload: Optional[Any] = None,
              client_address: str = "client", request_id: Optional[int] = None) -> Request:
    """Build a post(u, i[, p]) request."""
    fields: Dict[str, Any] = {"user": user_field, "item": item_field}
    if payload is not None:
        fields["payload"] = payload
    return Request(
        verb=Verb.POST,
        fields=fields,
        request_id=request_id if request_id is not None else next_request_id(),
        client_address=client_address,
    )


def make_get(user_field: Any, client_address: str = "client",
             request_id: Optional[int] = None, **extra: Any) -> Request:
    """Build a get(u) request (extra fields carry the encrypted k_u)."""
    fields: Dict[str, Any] = {"user": user_field}
    fields.update(extra)
    return Request(
        verb=Verb.GET,
        fields=fields,
        request_id=request_id if request_id is not None else next_request_id(),
        client_address=client_address,
    )
