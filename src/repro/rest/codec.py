"""Pluggable wire codecs: pinned JSON/base64 and zero-copy binary framing.

The seed wire format is the paper's §5 "base64 format" taken
literally: every message body is ``json.dumps`` over a dict whose
binary values are base64 text.  At the 100k-RPS scale opened by the
calendar-queue engine, serialization and base64 inflation dominate
the proxy hot path, so the format becomes a first-class, swappable
API instead of an implicit assumption smeared across layers:

* :class:`JsonCodec` — pinned byte-identical to the seed format, the
  same way ``crypto.reference`` anchors the AES rewrite.  Golden
  vector tests in ``tests/test_wire_golden.py`` hold it to exact byte
  literals captured from the seed.
* :class:`BinaryCodec` — length-prefixed frames with a fixed-offset
  header and tagged fields, decoded by zero-copy ``memoryview``
  slicing: no intermediate dict on the parse path, no base64
  inflation (ciphertext travels raw).

Frame layout (offsets relative to the frame, after the 4-byte
big-endian length prefix)::

    request                             response
    ------- ---------------------       ------- -----------------
    0   2   magic "PW"                  0   2   magic "PW"
    2   1   version (1)                 2   1   version (1)
    3   1   kind (1=request)            3   1   kind (2=response)
    4   1   verb (1=POST 2=GET)         4   2   status (BE)
    5   1   flags (1=deadline,          6   1   field count
            2=epoch, 4=trace)           7  ...  field entries
    6   12  deadline (ASCII)
    18  4   key epoch (ASCII)
    22  16  trace id (ASCII)
    38  1   field count
    39  ...  field entries

The deadline/epoch/trace regions are the *severing offsets*: the UA
front door strips the epoch tag and the trace id before the shuffle
boundary by zeroing exactly ``frame[18:22]`` / ``frame[22:38]`` (via
:meth:`WireCodec.strip_epoch` / :meth:`WireCodec.strip_trace`), so
the privacy argument about what crosses the shuffler is a statement
about fixed byte ranges.  A field entry is ``tag(1) [namelen(1)
name]  type(1) length(4 BE) value`` — well-known field names get a
one-byte tag, unknown names ride inline.

``resolve_codec(None)`` is the legacy path: messages travel the
simulated network as Python objects exactly as in the seed, which is
what keeps the default byte-identical.  With a codec armed,
:func:`ship` encodes at the sender, puts a :class:`WireFrame` on the
wire (so wiretap auditors observe real encoded bytes), and decodes at
delivery.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.crypto.envelope import FIXED_ID_BYTES, EnvelopeCodec
from repro.rest.messages import Request, Response, Verb

__all__ = [
    "CodecError",
    "WireCodec",
    "JsonCodec",
    "BinaryCodec",
    "WireFrame",
    "BatchEnvelope",
    "JSON_WIRE_CODEC",
    "BINARY_WIRE_CODEC",
    "resolve_codec",
    "ship",
]


class CodecError(ValueError):
    """Raised when a wire frame cannot be encoded or decoded."""


# The three fixed-width top-level fields.  Mirrored here (canonical
# owners: overload.deadline, proxy.epochs, obs.tracewire) because the
# codec must not import the proxy package at module level — layers.py
# imports this module.  tests/test_wire_codec.py cross-checks them.
_DEADLINE_FIELD = "deadline"
_DEADLINE_WIDTH = 12
_EPOCH_FIELD = "kepoch"
_EPOCH_WIDTH = 4
_TRACE_FIELD = "trace"
_TRACE_WIDTH = 16
_HEADER_FIELD_NAMES = (_DEADLINE_FIELD, _EPOCH_FIELD, _TRACE_FIELD)

_MAGIC = b"PW"
_MAGIC0, _MAGIC1 = _MAGIC
_VERSION = 1
_KIND_REQUEST = 1
_KIND_RESPONSE = 2

_VERB_CODES = {Verb.POST: 1, Verb.GET: 2}
_VERB_NAMES = {code: verb for verb, code in _VERB_CODES.items()}

_FLAG_DEADLINE = 1
_FLAG_EPOCH = 2
_FLAG_TRACE = 4

# Well-known field tags; tag 0 means "name carried inline".
_FIELD_TAGS = {
    "user": 1,
    "item": 2,
    "tmpkey": 3,
    "sealed": 4,
    "payload": 5,
    "tenant": 6,
    "blob": 7,
    "sealed_resp": 8,
    "items": 9,
    "retryable": 10,
    "error": 11,
    "pad": 12,
}
_TAG_FIELDS = {tag: name for name, tag in _FIELD_TAGS.items()}

_TYPE_BYTES = 1
_TYPE_STR = 2
_TYPE_JSON = 3

# Hot-path lookup tables: one-byte singletons, a dense tag->name table
# (O(1) without a dict probe), precomputed (tag, type) entry heads and
# the fixed frame prefixes.  The encoder assembles a frame with a
# single ``b"".join`` over these.
_ONE_BYTE = [bytes((value,)) for value in range(256)]
_TAG_NAME_TABLE: List[Optional[str]] = [None] * 256
for _name, _tag in _FIELD_TAGS.items():
    _TAG_NAME_TABLE[_tag] = _name
_ENTRY_HEADS = {
    (tag, code): bytes((tag, code))
    for tag in _FIELD_TAGS.values()
    for code in (_TYPE_BYTES, _TYPE_STR, _TYPE_JSON)
}
_REQ_PREFIX = _MAGIC + bytes((_VERSION, _KIND_REQUEST))
_RESP_PREFIX = _MAGIC + bytes((_VERSION, _KIND_RESPONSE))
_VERB_FLAG_BYTES = {
    (verb_code, flags): bytes((verb_code, flags))
    for verb_code in _VERB_NAMES
    for flags in range(8)
}
_ZERO_DEADLINE = bytes(_DEADLINE_WIDTH)
_ZERO_EPOCH = bytes(_EPOCH_WIDTH)
_ZERO_TRACE = bytes(_TRACE_WIDTH)

# Request-frame header offsets (after the length prefix).
_REQ_VERB_OFFSET = 4
_REQ_FLAGS_OFFSET = 5
_REQ_DEADLINE_OFFSET = 6
_REQ_EPOCH_OFFSET = _REQ_DEADLINE_OFFSET + _DEADLINE_WIDTH  # 18
_REQ_TRACE_OFFSET = _REQ_EPOCH_OFFSET + _EPOCH_WIDTH  # 22
_REQ_COUNT_OFFSET = _REQ_TRACE_OFFSET + _TRACE_WIDTH  # 38
_REQ_HEADER_SIZE = _REQ_COUNT_OFFSET + 1  # 39

_RESP_STATUS_OFFSET = 4
_RESP_COUNT_OFFSET = 6
_RESP_HEADER_SIZE = 7


def _as_text(data: Any) -> str:
    """UTF-8 decode a bytes-like (memoryview included)."""
    if isinstance(data, str):
        return data
    return bytes(data).decode("utf-8")


class WireCodec:
    """Serialization strategy for every protected-hop message.

    One codec instance covers four concerns that were previously
    hard-wired to JSON+base64 across rest/crypto/proxy/client:

    * message framing (:meth:`encode_request` / :meth:`decode_request`
      and the response pair) and the wire sizes the latency model
      charges for;
    * the representation of binary blobs inside message fields
      (:meth:`wire_value` / :meth:`blob_value`);
    * the plaintext packings that get encrypted — hardened-hop
      envelopes, sealed response fields, padded item lists;
    * stamping and stripping of the fixed-width deadline/epoch/trace
      fields (delegated to their canonical owners).
    """

    name = "abstract"
    #: When true the UA seals one envelope per shuffle-batch flush
    #: instead of forwarding per-request (requires self-describing
    #: frames, i.e. the verb is carried in-band).
    batch_envelopes = False

    # -- blob representation ------------------------------------------

    def wire_value(self, blob: bytes) -> Any:
        """Field representation of a binary blob (ciphertext etc.)."""
        raise NotImplementedError

    def blob_value(self, value: Any) -> bytes:
        """Invert :meth:`wire_value`; the one copy at the crypto boundary."""
        raise NotImplementedError

    # -- encrypted-payload packings -----------------------------------

    def pack_envelope(self, fields: Dict[str, Any], response_key: bytes) -> bytes:
        """Plaintext of a hardened client->UA envelope."""
        raise NotImplementedError

    def unpack_envelope(self, data: Any) -> Tuple[Dict[str, Any], bytes]:
        """Invert :meth:`pack_envelope`."""
        raise NotImplementedError

    def pack_response_fields(self, fields: Dict[str, Any]) -> bytes:
        """Plaintext of a sealed (hardened) response body."""
        raise NotImplementedError

    def unpack_response_fields(self, data: Any) -> Dict[str, Any]:
        """Invert :meth:`pack_response_fields`."""
        raise NotImplementedError

    def pack_items(self, blobs: Sequence[Any]) -> bytes:
        """Plaintext of a padded recommendation list."""
        raise NotImplementedError

    def unpack_items(self, data: Any) -> List[Any]:
        """Invert :meth:`pack_items`."""
        raise NotImplementedError

    # -- message framing ----------------------------------------------

    def encode_request(self, request: Request) -> bytes:
        """Serialize *request* to its wire bytes."""
        raise NotImplementedError

    def decode_request(self, data: Any, *, verb: Optional[str] = None,
                       request_id: int = 0, client_address: str = "") -> Request:
        """Parse wire bytes back into a :class:`Request`.

        *verb*, *request_id* and *client_address* are the simulator's
        out-of-band metadata (the seed never serializes them); a
        self-describing codec may ignore *verb*.
        """
        raise NotImplementedError

    def encode_response(self, response: Response) -> bytes:
        """Serialize *response* to its wire bytes."""
        raise NotImplementedError

    def decode_response(self, data: Any, *, status: int = 200,
                        request_id: int = 0) -> Response:
        """Parse wire bytes back into a :class:`Response`."""
        raise NotImplementedError

    def request_wire_size(self, body: bytes) -> int:
        """Transport size of an encoded request body."""
        raise NotImplementedError

    def response_wire_size(self, body: bytes) -> int:
        """Transport size of an encoded response body."""
        raise NotImplementedError

    def request_size_bytes(self, request: Request) -> int:
        """Wire size of *request* under this codec."""
        return self.request_wire_size(self.encode_request(request))

    def response_size_bytes(self, response: Response) -> int:
        """Wire size of *response* under this codec."""
        return self.response_wire_size(self.encode_response(response))

    # -- fixed-width field stamping/stripping --------------------------
    #
    # Thin delegations to the canonical owners (lazy imports: those
    # modules live in packages that import this one).  They exist so a
    # codec user never has to know which module owns which field.

    def stamp_deadline(self, request: Request, remaining: float) -> Request:
        """Stamp the fixed-width deadline budget field."""
        from repro.overload.deadline import stamp_deadline

        return stamp_deadline(request, remaining)

    def decode_deadline(self, message: Any) -> Optional[float]:
        """Read the deadline budget, if stamped."""
        from repro.overload.deadline import decode_deadline

        return decode_deadline(message)

    def stamp_epoch(self, request: Request, epoch: int) -> Request:
        """Stamp the fixed-width key-epoch tag."""
        from repro.proxy.epochs import stamp_epoch

        return stamp_epoch(request, epoch)

    def strip_epoch(self, request: Request) -> Tuple[Request, Optional[int]]:
        """Remove the epoch tag pre-shuffle; returns (clean, epoch)."""
        from repro.proxy.epochs import decode_epoch, strip_epoch

        epoch = decode_epoch(request)
        return strip_epoch(request), epoch

    def stamp_trace(self, request: Request, trace_id: str) -> Request:
        """Stamp the fixed-width trace id."""
        from repro.obs.tracewire import stamp_trace

        return stamp_trace(request, trace_id)

    def strip_trace(self, request: Request) -> Tuple[Request, Optional[str]]:
        """Sever the trace id pre-shuffle; returns (clean, trace_id)."""
        from repro.obs.tracewire import strip_trace

        return strip_trace(request)


class JsonCodec(WireCodec):
    """The seed wire format, pinned byte-for-byte.

    Every method reproduces the exact ``json.dumps`` call shape of the
    code it replaced — bodies are compact and sorted, sealed payloads
    keep the seed's default separators and insertion order — so an
    armed ``JsonCodec`` produces byte-identical traffic to the legacy
    ``codec=None`` path (asserted end-to-end in the tests).
    """

    name = "json"

    def wire_value(self, blob: bytes) -> str:
        return EnvelopeCodec.wire_text(blob)

    def blob_value(self, value: Any) -> bytes:
        return EnvelopeCodec.wire_blob(value)

    def pack_envelope(self, fields: Dict[str, Any], response_key: bytes) -> bytes:
        payload = {"fields": fields, "resp_key": EnvelopeCodec.wire_text(response_key)}
        return json.dumps(payload).encode("utf-8")

    def unpack_envelope(self, data: Any) -> Tuple[Dict[str, Any], bytes]:
        payload = json.loads(_as_text(data))
        if not isinstance(payload, dict) or "fields" not in payload:
            raise CodecError("sealed envelope payload is not an envelope dict")
        return payload["fields"], EnvelopeCodec.wire_blob(payload["resp_key"])

    def pack_response_fields(self, fields: Dict[str, Any]) -> bytes:
        return json.dumps(fields, sort_keys=True).encode("utf-8")

    def unpack_response_fields(self, data: Any) -> Dict[str, Any]:
        fields = json.loads(_as_text(data))
        if not isinstance(fields, dict):
            raise CodecError("sealed response payload is not a field dict")
        return fields

    def pack_items(self, blobs: Sequence[Any]) -> bytes:
        wire_items = [EnvelopeCodec.wire_text(bytes(blob)) for blob in blobs]
        return json.dumps(wire_items).encode("utf-8")

    def unpack_items(self, data: Any) -> List[bytes]:
        entries = json.loads(_as_text(data))
        if not isinstance(entries, list):
            raise CodecError("item payload is not a list")
        return [EnvelopeCodec.wire_blob(entry) for entry in entries]

    def encode_request(self, request: Request) -> bytes:
        return request.body_json().encode("utf-8")

    def decode_request(self, data: Any, *, verb: Optional[str] = None,
                       request_id: int = 0, client_address: str = "") -> Request:
        fields = json.loads(_as_text(data))
        if not isinstance(fields, dict):
            raise CodecError("request body is not a JSON object")
        if verb is None:
            raise CodecError("JSON frames are not self-describing: verb required")
        return Request(verb=verb, fields=fields, request_id=request_id,
                       client_address=client_address)

    def encode_response(self, response: Response) -> bytes:
        return response.body_json().encode("utf-8")

    def decode_response(self, data: Any, *, status: int = 200,
                        request_id: int = 0) -> Response:
        fields = json.loads(_as_text(data))
        if not isinstance(fields, dict):
            raise CodecError("response body is not a JSON object")
        return Response(status=status, fields=fields, request_id=request_id)

    def request_wire_size(self, body: bytes) -> int:
        return 32 + len(body)

    def response_wire_size(self, body: bytes) -> int:
        return 20 + len(body)


def _encode_entry(name: str, value: Any) -> bytes:
    """One binary field entry: tag [name] type length value."""
    kind = type(value)
    if kind is bytes:
        type_code, payload = _TYPE_BYTES, value
    elif kind is str:
        type_code, payload = _TYPE_STR, value.encode("utf-8")
    elif kind is bytearray or kind is memoryview:
        type_code, payload = _TYPE_BYTES, bytes(value)
    else:
        type_code = _TYPE_JSON
        payload = json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")
    tag = _FIELD_TAGS.get(name)
    if tag is not None:
        return (_ENTRY_HEADS[tag, type_code]
                + len(payload).to_bytes(4, "big") + payload)
    raw_name = name.encode("utf-8")
    if len(raw_name) > 255:
        raise CodecError(f"field name too long: {name!r}")
    return (b"\x00" + _ONE_BYTE[len(raw_name)] + raw_name
            + _ONE_BYTE[type_code]
            + len(payload).to_bytes(4, "big") + payload)


def _encode_entries(fields: Dict[str, Any],
                    skip: Sequence[str] = ()) -> Tuple[bytes, int]:
    """Encode *fields* (minus *skip*) into entries; returns (bytes, count)."""
    if skip:
        parts = [_encode_entry(name, value)
                 for name, value in fields.items() if name not in skip]
    else:
        parts = [_encode_entry(name, value) for name, value in fields.items()]
    if len(parts) > 255:
        raise CodecError("more than 255 fields in one frame")
    return b"".join(parts), len(parts)


def _decode_entries(view: memoryview, offset: int,
                    count: int) -> Tuple[Dict[str, Any], int]:
    """Decode *count* field entries; bytes values stay memoryviews.

    Malformed text or JSON in a value must surface as
    :class:`CodecError` like every other framing fault — wire garbage
    is a protocol error, not a crash (the try/except is free on the
    success path).
    """
    try:
        return _decode_entries_unchecked(view, offset, count)
    except CodecError:
        raise
    except (UnicodeDecodeError, ValueError) as exc:
        raise CodecError(f"malformed field payload: {exc}") from exc


def _decode_entries_unchecked(view: memoryview, offset: int,
                              count: int) -> Tuple[Dict[str, Any], int]:
    fields: Dict[str, Any] = {}
    size = len(view)
    names = _TAG_NAME_TABLE
    for _ in range(count):
        if offset >= size:
            raise CodecError("truncated field entry")
        tag = view[offset]
        offset += 1
        if tag:
            name = names[tag]
            if name is None:
                raise CodecError(f"unknown field tag {tag}")
        else:
            if offset >= size:
                raise CodecError("truncated field name length")
            name_length = view[offset]
            offset += 1
            if offset + name_length > size:
                raise CodecError("truncated field name")
            name = str(view[offset:offset + name_length], "utf-8")
            offset += name_length
        head_end = offset + 5
        if head_end > size:
            raise CodecError("truncated field header")
        type_code = view[offset]
        length = int.from_bytes(view[offset + 1:head_end], "big")
        offset = head_end
        end = offset + length
        if end > size:
            raise CodecError("field value runs past the frame")
        raw = view[offset:end]
        if type_code == _TYPE_BYTES:
            value: Any = raw  # zero-copy slice; bytes() only at the crypto boundary
        elif type_code == _TYPE_STR:
            value = str(raw, "utf-8")
        elif type_code == _TYPE_JSON:
            value = json.loads(str(raw, "utf-8"))
        else:
            raise CodecError(f"unknown field type {type_code}")
        fields[name] = value
        offset = end
    return fields, offset


def _fixed_ascii(value: Optional[str], width: int, what: str) -> bytes:
    """A fixed-width ASCII header region; zeros when the field is absent."""
    if value is None:
        return bytes(width)
    if not isinstance(value, str) or len(value) != width:
        raise CodecError(f"{what} field is not {width} ASCII chars: {value!r}")
    return value.encode("ascii")


def _check_frame(data: Any, kind: int) -> memoryview:
    """Validate the length prefix + common header; return the frame view."""
    if type(data) is memoryview:
        view = data
    elif isinstance(data, bytearray):
        view = memoryview(bytes(data))
    else:
        view = memoryview(data)
    total = len(view)
    if total < 8:
        if total < 4:
            raise CodecError("frame shorter than its length prefix")
        raise CodecError("bad frame magic")
    if int.from_bytes(view[:4], "big") != total - 4:
        raise CodecError(
            f"frame length mismatch: prefix says "
            f"{int.from_bytes(view[:4], 'big')}, got {total - 4}"
        )
    if view[4] != _MAGIC0 or view[5] != _MAGIC1:
        raise CodecError("bad frame magic")
    if view[6] != _VERSION:
        raise CodecError(f"unsupported frame version {view[6]}")
    if view[7] != kind:
        raise CodecError(f"unexpected frame kind {view[7]}")
    return view[4:]


class BinaryCodec(WireCodec):
    """Length-prefixed binary frames, decoded by memoryview slicing.

    Ciphertext fields travel as raw bytes (4/3 smaller than base64),
    the fixed-width deadline/epoch/trace fields live at fixed header
    offsets, and decoding slices the frame without building an
    intermediate dict-of-text: bytes-typed values come back as
    ``memoryview`` windows into the received buffer and are only
    materialized by :meth:`blob_value` at the crypto boundary.
    """

    name = "binary"

    def __init__(self, batch_envelopes: bool = True) -> None:
        # Binary frames are self-describing (verb in-band), so they
        # can ride inside one sealed envelope per shuffle flush.
        self.batch_envelopes = batch_envelopes

    def wire_value(self, blob: bytes) -> bytes:
        return bytes(blob)

    def blob_value(self, value: Any) -> bytes:
        return EnvelopeCodec.wire_blob(value)

    def pack_envelope(self, fields: Dict[str, Any], response_key: bytes) -> bytes:
        entries, count = _encode_entries(fields)
        key = bytes(response_key)
        if len(key) > 255:
            raise CodecError("response key too long")
        return b"EV" + bytes([len(key)]) + key + bytes([count]) + entries

    def unpack_envelope(self, data: Any) -> Tuple[Dict[str, Any], bytes]:
        view = data if isinstance(data, memoryview) else memoryview(data)
        if len(view) < 4 or bytes(view[:2]) != b"EV":
            raise CodecError("not a binary envelope payload")
        key_length = view[2]
        key = bytes(view[3:3 + key_length])
        if len(key) != key_length:
            raise CodecError("truncated envelope response key")
        count = view[3 + key_length]
        fields, end = _decode_entries(view, 4 + key_length, count)
        if end != len(view):
            raise CodecError("trailing bytes after envelope fields")
        return fields, key

    def pack_response_fields(self, fields: Dict[str, Any]) -> bytes:
        entries, count = _encode_entries(fields)
        return b"RF" + bytes([count]) + entries

    def unpack_response_fields(self, data: Any) -> Dict[str, Any]:
        view = data if isinstance(data, memoryview) else memoryview(data)
        if len(view) < 3 or bytes(view[:2]) != b"RF":
            raise CodecError("not a binary response payload")
        fields, end = _decode_entries(view, 3, view[2])
        if end != len(view):
            raise CodecError("trailing bytes after response fields")
        return fields

    def pack_items(self, blobs: Sequence[Any]) -> bytes:
        parts = [blob if type(blob) is bytes else bytes(blob) for blob in blobs]
        for raw in parts:
            if len(raw) != FIXED_ID_BYTES:
                raise CodecError(
                    f"item blob must be {FIXED_ID_BYTES} bytes, got {len(raw)}"
                )
        return b"".join(parts)

    def unpack_items(self, data: Any) -> List[memoryview]:
        view = data if type(data) is memoryview else memoryview(data)
        size = len(view)
        width = FIXED_ID_BYTES
        if size % width:
            raise CodecError("item payload is not a whole number of identifiers")
        return [view[i:i + width] for i in range(0, size, width)]

    def encode_request(self, request: Request) -> bytes:
        fields = request.fields
        deadline = fields.get(_DEADLINE_FIELD)
        epoch = fields.get(_EPOCH_FIELD)
        trace = fields.get(_TRACE_FIELD)
        verb_code = _VERB_CODES.get(request.verb)
        if verb_code is None:
            raise CodecError(f"unknown verb {request.verb!r}")
        if deadline is None and epoch is None and trace is None:
            entries, count = _encode_entries(fields)
            flags = 0
            deadline_region = _ZERO_DEADLINE
            epoch_region = _ZERO_EPOCH
            trace_region = _ZERO_TRACE
        else:
            entries, count = _encode_entries(fields, skip=_HEADER_FIELD_NAMES)
            flags = 0
            if deadline is None:
                deadline_region = _ZERO_DEADLINE
            else:
                flags = _FLAG_DEADLINE
                deadline_region = _fixed_ascii(deadline, _DEADLINE_WIDTH, "deadline")
            if epoch is None:
                epoch_region = _ZERO_EPOCH
            else:
                flags |= _FLAG_EPOCH
                epoch_region = _fixed_ascii(epoch, _EPOCH_WIDTH, "epoch")
            if trace is None:
                trace_region = _ZERO_TRACE
            else:
                flags |= _FLAG_TRACE
                trace_region = _fixed_ascii(trace, _TRACE_WIDTH, "trace")
        return b"".join((
            (_REQ_HEADER_SIZE + len(entries)).to_bytes(4, "big"),
            _REQ_PREFIX,
            _VERB_FLAG_BYTES[verb_code, flags],
            deadline_region,
            epoch_region,
            trace_region,
            _ONE_BYTE[count],
            entries,
        ))

    def decode_request(self, data: Any, *, verb: Optional[str] = None,
                       request_id: int = 0, client_address: str = "") -> Request:
        frame = _check_frame(data, _KIND_REQUEST)
        if len(frame) < _REQ_HEADER_SIZE:
            raise CodecError("request frame shorter than its header")
        wire_verb = _VERB_NAMES.get(frame[_REQ_VERB_OFFSET])
        if wire_verb is None:
            raise CodecError(f"unknown verb code {frame[_REQ_VERB_OFFSET]}")
        flags = frame[_REQ_FLAGS_OFFSET]
        fields, end = _decode_entries(frame, _REQ_HEADER_SIZE,
                                      frame[_REQ_COUNT_OFFSET])
        if end != len(frame):
            raise CodecError("trailing bytes after request fields")
        if flags:
            try:
                if flags & _FLAG_DEADLINE:
                    fields[_DEADLINE_FIELD] = str(
                        frame[_REQ_DEADLINE_OFFSET:_REQ_EPOCH_OFFSET], "ascii")
                if flags & _FLAG_EPOCH:
                    fields[_EPOCH_FIELD] = str(
                        frame[_REQ_EPOCH_OFFSET:_REQ_TRACE_OFFSET], "ascii")
                if flags & _FLAG_TRACE:
                    fields[_TRACE_FIELD] = str(
                        frame[_REQ_TRACE_OFFSET:_REQ_COUNT_OFFSET], "ascii")
            except UnicodeDecodeError as exc:
                raise CodecError(f"non-ASCII bytes in fixed header field: {exc}") from exc
        return Request(verb=wire_verb, fields=fields, request_id=request_id,
                       client_address=client_address)

    def encode_response(self, response: Response) -> bytes:
        entries, count = _encode_entries(response.fields)
        status = response.status
        if not 0 <= status <= 0xFFFF:
            raise CodecError(f"status out of range: {status}")
        return b"".join((
            (_RESP_HEADER_SIZE + len(entries)).to_bytes(4, "big"),
            _RESP_PREFIX,
            status.to_bytes(2, "big"),
            _ONE_BYTE[count],
            entries,
        ))

    def decode_response(self, data: Any, *, status: int = 200,
                        request_id: int = 0) -> Response:
        frame = _check_frame(data, _KIND_RESPONSE)
        if len(frame) < _RESP_HEADER_SIZE:
            raise CodecError("response frame shorter than its header")
        wire_status = int.from_bytes(
            frame[_RESP_STATUS_OFFSET:_RESP_STATUS_OFFSET + 2], "big")
        fields, end = _decode_entries(frame, _RESP_HEADER_SIZE,
                                      frame[_RESP_COUNT_OFFSET])
        if end != len(frame):
            raise CodecError("trailing bytes after response fields")
        return Response(status=wire_status, fields=fields, request_id=request_id)

    def request_wire_size(self, body: bytes) -> int:
        return len(body)

    def response_wire_size(self, body: bytes) -> int:
        return len(body)


#: Module singletons — resolve_codec returns these for the string names.
JSON_WIRE_CODEC = JsonCodec()
BINARY_WIRE_CODEC = BinaryCodec()


def resolve_codec(codec: Union[None, str, WireCodec]) -> Optional[WireCodec]:
    """Normalize a codec argument: None (legacy), a name, or an instance.

    ``None`` stays ``None`` — that is the seed code path where
    messages cross the simulated network as Python objects, kept
    byte-identical the way ``overload=None`` keeps PR 5's default
    inert.
    """
    if codec is None:
        return None
    if isinstance(codec, str):
        if codec == "json":
            return JSON_WIRE_CODEC
        if codec == "binary":
            return BINARY_WIRE_CODEC
        raise ValueError(f"unknown codec name {codec!r} (expected 'json' or 'binary')")
    if isinstance(codec, WireCodec):
        return codec
    raise TypeError(f"codec must be None, a name, or a WireCodec, got {type(codec)!r}")


class WireFrame:
    """One encoded message in flight on a protected hop.

    Wiretap auditors observe this object, so it mirrors the message
    surface they duck-type against (``fields``, ``status``, ``ok``) by
    decoding lazily — the adversary reads bodies, and what it reads is
    what was actually framed.  ``request_id`` stays out-of-band
    simulator bookkeeping exactly as on :class:`Request`.
    """

    __slots__ = ("codec", "data", "kind", "verb", "status",
                 "request_id", "client_address", "_decoded")

    def __init__(self, codec: WireCodec, data: bytes, kind: str,
                 verb: Optional[str], status: Optional[int],
                 request_id: int, client_address: str) -> None:
        self.codec = codec
        self.data = data
        self.kind = kind
        self.verb = verb
        self.status = status
        self.request_id = request_id
        self.client_address = client_address
        self._decoded: Any = None

    @classmethod
    def for_message(cls, codec: WireCodec,
                    message: Union[Request, Response]) -> "WireFrame":
        """Encode *message* under *codec*."""
        if isinstance(message, Request):
            return cls(codec, codec.encode_request(message), "request",
                       message.verb, None, message.request_id,
                       message.client_address)
        return cls(codec, codec.encode_response(message), "response",
                   None, message.status, message.request_id, "")

    def decode(self) -> Union[Request, Response]:
        """Parse the frame back into a message (memoized)."""
        if self._decoded is None:
            if self.kind == "request":
                self._decoded = self.codec.decode_request(
                    self.data, verb=self.verb, request_id=self.request_id,
                    client_address=self.client_address)
            else:
                self._decoded = self.codec.decode_response(
                    self.data, status=self.status or 0,
                    request_id=self.request_id)
        return self._decoded

    @property
    def fields(self) -> Dict[str, Any]:
        """The decoded field dict (what a body-reading adversary sees)."""
        return self.decode().fields

    @property
    def ok(self) -> bool:
        """Response success flag; requests are trivially ok."""
        if self.status is None:
            return True
        return 200 <= self.status < 300

    def size_bytes(self) -> int:
        """Transport size under this frame's codec."""
        if self.kind == "request":
            return self.codec.request_wire_size(self.data)
        return self.codec.response_wire_size(self.data)


class BatchEnvelope:
    """One sealed shuffle batch on the UA->IA hop (batch-envelope mode).

    The adversary sees a single hybrid ciphertext for ``count``
    requests; request ids and verbs ride out-of-band exactly like
    ``Request.request_id`` (the wire carries only the blob).  It has
    neither ``fields`` nor ``status``, so wiretap auditors — which
    duck-type on those — correctly treat it as opaque ciphertext.
    """

    __slots__ = ("blob", "request_ids", "verbs", "source")

    def __init__(self, blob: bytes, request_ids: Sequence[int],
                 verbs: Sequence[str], source: str) -> None:
        self.blob = blob
        self.request_ids = tuple(request_ids)
        self.verbs = tuple(verbs)
        self.source = source

    @property
    def count(self) -> int:
        """Number of sealed requests."""
        return len(self.request_ids)

    def size_bytes(self) -> int:
        """Transport size: framing word + the sealed blob."""
        return 8 + len(self.blob)


def ship(network: Any, codec: Optional[WireCodec], source: str,
         destination: str, message: Union[Request, Response],
         on_deliver: Callable[[Any], None]) -> None:
    """Send *message* over a protected hop, encoding if a codec is armed.

    ``codec=None`` is byte-for-byte the seed path: the Python object
    itself crosses the simulated network, sized by the message's own
    ``size_bytes()``.  With a codec, the sender encodes, the wire
    carries a :class:`WireFrame` (observed as such by wiretaps), and
    the receiver-side callback gets the decoded message.
    """
    if codec is None:
        network.send(source, destination, message, message.size_bytes(), on_deliver)
        return
    frame = WireFrame.for_message(codec, message)
    network.send(source, destination, frame, frame.size_bytes(),
                 lambda delivered: on_deliver(delivered.decode()))
