"""Observability layer: causal tracing, profiling, and SLO verdicts.

Three pillars, built so that watching the system never weakens it:

* :mod:`repro.obs.tracewire` / :mod:`repro.obs.causal` — a fixed-width
  ``trace`` wire field carried client->UA and *deliberately severed* at
  the shuffle boundary.  Post-shuffle work is attributed to batch-level
  spans linked to client spans only through aggregate fan-in counts;
  a trace id that crossed the shuffler would be a linkage channel.
* :mod:`repro.obs.profiler` — a deterministic virtual-time profiler
  that wraps either simnet engine and attributes events to causal
  scheduling stacks, emitting a mergeable profile artifact plus a
  collapsed-stack flamegraph, byte-identical across same-seed runs.
* :mod:`repro.obs.slo` — declarative service-level objectives evaluated
  as multi-window burn rates over sampled sources, emitting operator
  alert events and a machine-readable ``slo.json`` verdict.
"""

from __future__ import annotations

from repro.obs.causal import CausalTracer, instrument_causal
from repro.obs.profiler import ProfiledLoop, merge_profiles, write_profile
from repro.obs.smoke import (
    ObsScenarioResult,
    diff_artifact_dirs,
    obs_slo_objectives,
    run_obs_scenario,
    write_obs_artifacts,
)
from repro.obs.slo import (
    Measurement,
    Objective,
    SloEngine,
    SloReport,
    evaluate_static,
    histogram_quantile,
    write_slo,
)
from repro.obs.tracewire import (
    TRACE_FIELD,
    TRACE_PREFIX,
    TRACE_WIDTH,
    decode_trace,
    encode_trace_id,
    looks_like_trace_id,
    stamp_trace,
    strip_trace,
)

__all__ = [
    "CausalTracer",
    "instrument_causal",
    "ObsScenarioResult",
    "run_obs_scenario",
    "obs_slo_objectives",
    "write_obs_artifacts",
    "diff_artifact_dirs",
    "ProfiledLoop",
    "merge_profiles",
    "write_profile",
    "Measurement",
    "Objective",
    "SloEngine",
    "SloReport",
    "evaluate_static",
    "histogram_quantile",
    "write_slo",
    "TRACE_FIELD",
    "TRACE_PREFIX",
    "TRACE_WIDTH",
    "decode_trace",
    "encode_trace_id",
    "looks_like_trace_id",
    "stamp_trace",
    "strip_trace",
]
