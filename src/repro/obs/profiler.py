"""Deterministic virtual-time profiler over either simnet engine.

:class:`ProfiledLoop` is a delegating wrapper (both engines use
``__slots__``, so monkey-patching is off the table) that intercepts the
four scheduling entry points and wraps every callback.  Attribution is
by **causal scheduling stack**: when callback A, while executing,
schedules callback B, B's frame stack is A's stack plus B — the chain
of virtual-time causation, which is what a flamegraph of a discrete
event simulator should show (the runtime call stack is always flat:
callbacks fire from the loop's top level).

Two costs are recorded per stack:

* ``calls`` and ``virtual_delay_seconds`` (fire time minus schedule
  time — callbacks are instantaneous in virtual time, so the delay *is*
  the virtual cost of the edge).  Both are functions of the seeded
  event sequence alone: byte-identical across same-seed runs and
  across engines.  They live in ``profile.json`` / ``profile.folded``.
* wall-clock seconds per stack, which depend on the host and are
  written to a separate ``profile_meta.json`` that must never be
  diffed (the ``scale_meta.json`` convention).

Self-scheduling chains (an arrival callback scheduling the next
arrival) would otherwise grow one frame per event; a callback whose
label equals its parent frame reuses the parent stack, keeping such
chains at depth one.  ``max_depth`` bounds everything else.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ProfiledLoop",
    "profile_snapshot",
    "merge_profiles",
    "render_folded",
    "write_profile",
]


def _callback_label(callback: Callable[[], None]) -> str:
    """``module:qualname`` frame label for a scheduled callback."""
    target = getattr(callback, "func", callback)  # functools.partial
    target = getattr(target, "__func__", target)  # bound method
    module = getattr(target, "__module__", "") or ""
    qual = (
        getattr(target, "__qualname__", None)
        or getattr(target, "__name__", None)
        or type(target).__name__
    )
    qual = qual.replace(".<locals>", "")
    if module.startswith("repro."):
        module = module[len("repro."):]
    return f"{module}:{qual}" if module else qual


class ProfiledLoop:
    """Event loop wrapper attributing every callback to a causal stack.

    Exposes the full engine API (``schedule``/``schedule_at``/``post``/
    ``post_at``/``step``/``run``/``run_until``/``now``/``pending``/
    ``events_processed``/``queue_stats``); anything else is delegated
    to the wrapped loop, so a :class:`ProfiledLoop` drops into any site
    that accepts an :class:`repro.simnet.clock.EventLoop`.
    """

    def __init__(self, inner: Any, max_depth: int = 24) -> None:
        self._inner = inner
        self.max_depth = max_depth
        #: stack key -> [calls, virtual_delay_seconds] (deterministic).
        self.sites: Dict[str, List[float]] = {}
        #: stack key -> wall seconds (host-dependent; meta only).
        self.wall: Dict[str, float] = {}
        self._current: Tuple[str, ...] = ()

    # -- scheduling entry points ----------------------------------------

    def _extend(self, label: str) -> Tuple[str, ...]:
        current = self._current
        if current and current[-1] == label:
            return current  # collapse self-scheduling chains
        if len(current) >= self.max_depth:
            return current
        return current + (label,)

    def _wrap(self, callback: Callable[[], None], scheduled_at: float) -> Callable[[], None]:
        stack = self._extend(_callback_label(callback))
        key = ";".join(stack)

        def profiled() -> None:
            record = self.sites.get(key)
            if record is None:
                record = [0, 0.0]
                self.sites[key] = record
            record[0] += 1
            record[1] += self._inner.now - scheduled_at
            previous = self._current
            self._current = stack
            start = time.perf_counter()
            try:
                callback()
            finally:
                self._current = previous
                self.wall[key] = self.wall.get(key, 0.0) + time.perf_counter() - start

        return profiled

    def schedule(self, delay: float, callback: Callable[[], None]):
        return self._inner.schedule(delay, self._wrap(callback, self._inner.now))

    def schedule_at(self, when: float, callback: Callable[[], None]):
        return self._inner.schedule_at(when, self._wrap(callback, self._inner.now))

    def post(self, delay: float, callback: Callable[[], None]) -> None:
        self._inner.post(delay, self._wrap(callback, self._inner.now))

    def post_at(self, when: float, callback: Callable[[], None]) -> None:
        self._inner.post_at(when, self._wrap(callback, self._inner.now))

    # -- execution / introspection --------------------------------------

    @property
    def now(self) -> float:
        return self._inner.now

    @property
    def pending(self) -> int:
        return self._inner.pending

    @property
    def events_processed(self) -> int:
        return self._inner.events_processed

    def queue_stats(self) -> Dict[str, object]:
        return self._inner.queue_stats()

    def step(self) -> bool:
        return self._inner.step()

    def run_until(self, when: float) -> None:
        self._inner.run_until(when)

    def run(self, max_events: Optional[int] = None) -> None:
        self._inner.run(max_events=max_events)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


def profile_snapshot(loop: ProfiledLoop) -> Dict[str, Any]:
    """The deterministic profile artifact as a plain dict."""
    return {
        "events_processed": loop.events_processed,
        "final_virtual_time": loop.now,
        "sites": {
            key: {"calls": record[0], "virtual_delay_seconds": record[1]}
            for key, record in sorted(loop.sites.items())
        },
    }


def merge_profiles(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge profile artifacts by summation (sharded/multi-run rollup)."""
    merged: Dict[str, Any] = {"events_processed": 0, "final_virtual_time": 0.0, "sites": {}}
    sites: Dict[str, Dict[str, float]] = {}
    for snapshot in snapshots:
        merged["events_processed"] += snapshot.get("events_processed", 0)
        merged["final_virtual_time"] = max(
            merged["final_virtual_time"], snapshot.get("final_virtual_time", 0.0)
        )
        for key, record in snapshot.get("sites", {}).items():
            slot = sites.setdefault(key, {"calls": 0, "virtual_delay_seconds": 0.0})
            slot["calls"] += record["calls"]
            slot["virtual_delay_seconds"] += record["virtual_delay_seconds"]
    merged["sites"] = {key: sites[key] for key in sorted(sites)}
    return merged


def render_folded(snapshot: Dict[str, Any]) -> str:
    """Collapsed-stack flamegraph lines (``frame;frame count``)."""
    lines = [
        f"{key} {record['calls']}"
        for key, record in sorted(snapshot["sites"].items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_profile(loop: ProfiledLoop, out_dir: str, basename: str = "profile") -> Dict[str, str]:
    """Write ``profile.json`` + ``profile.folded`` (diffable) and
    ``profile_meta.json`` (wall clock; never diffed).  Returns paths."""
    os.makedirs(out_dir, exist_ok=True)
    snapshot = profile_snapshot(loop)
    json_path = os.path.join(out_dir, f"{basename}.json")
    folded_path = os.path.join(out_dir, f"{basename}.folded")
    meta_path = os.path.join(out_dir, f"{basename}_meta.json")
    with open(json_path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(folded_path, "w") as fh:
        fh.write(render_folded(snapshot))
    with open(meta_path, "w") as fh:
        json.dump(
            {"wall_seconds_by_site": dict(sorted(loop.wall.items()))},
            fh,
            indent=2,
            sort_keys=True,
        )
        fh.write("\n")
    return {"profile": json_path, "folded": folded_path, "meta": meta_path}
