"""Fixed-width causal-trace wire field, severed at the shuffle boundary.

The trace id travels exactly one hop — client -> UA — as a top-level
(never sealed) field, mirroring the deadline budget
(:mod:`repro.overload.deadline`) and the key-epoch tag
(:mod:`repro.proxy.epochs`).  The UA strips it at the front door,
*before* admission control and shuffling, and it is never re-stamped:
a trace id that survived the shuffler would let the §2.3 adversary
link a specific client request to a specific post-shuffle batch entry,
collapsing the 1/(S*I) anonymity set to 1.  Severing is the design,
not a limitation; post-shuffle attribution happens at batch
granularity (:class:`repro.obs.causal.CausalTracer`).

Wire format: every id is exactly :data:`TRACE_WIDTH` characters —
``tw:`` followed by 13 lower-case hex digits of a tracer-local serial.
The value is identity-free and constant width, so the §4.3
constant-size property is preserved on the one hop that carries it.
The distinctive ``tw:`` prefix is what the redaction boundary and the
wire auditor key on (:func:`repro.privacy.wire.trace_field_exposures`).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Union

from repro.rest.messages import Request

__all__ = [
    "TRACE_FIELD",
    "TRACE_PREFIX",
    "TRACE_WIDTH",
    "encode_trace_id",
    "looks_like_trace_id",
    "decode_trace",
    "stamp_trace",
    "strip_trace",
]

#: Field name the trace id travels under (top level, never sealed).
TRACE_FIELD = "trace"

#: Marker prefix of every trace id; redaction/audit detection keys on it.
TRACE_PREFIX = "tw:"

#: Every encoded trace id is exactly this many characters.
TRACE_WIDTH = 16

_SERIAL_DIGITS = TRACE_WIDTH - len(TRACE_PREFIX)
_SERIAL_SPACE = 16 ** _SERIAL_DIGITS


def encode_trace_id(serial: int) -> str:
    """Fixed-width encoding of a tracer-local serial number."""
    if serial < 0:
        raise ValueError(f"trace serial must be non-negative, got {serial}")
    return TRACE_PREFIX + format(serial % _SERIAL_SPACE, f"0{_SERIAL_DIGITS}x")


def looks_like_trace_id(value: Any) -> bool:
    """True when *value* is a well-formed encoded trace id."""
    return (
        isinstance(value, str)
        and len(value) == TRACE_WIDTH
        and value.startswith(TRACE_PREFIX)
        and all(c in "0123456789abcdef" for c in value[len(TRACE_PREFIX):])
    )


def decode_trace(message: Union[Request, dict]) -> Optional[str]:
    """Trace id carried by *message*, or None when absent/malformed."""
    fields = message if isinstance(message, dict) else message.fields
    encoded = fields.get(TRACE_FIELD)
    if encoded is None or not looks_like_trace_id(encoded):
        return None
    return encoded


def stamp_trace(request: Request, trace_id: str) -> Request:
    """Copy of *request* carrying *trace_id* on the wire."""
    if not looks_like_trace_id(trace_id):
        raise ValueError(f"malformed trace id: {trace_id!r}")
    return request.with_fields(**{TRACE_FIELD: trace_id})


def strip_trace(request: Request) -> Tuple[Request, Optional[str]]:
    """Remove the trace field; returns ``(clean_request, trace_id)``.

    Called by the UA front door on every arriving request, whether or
    not the client opted into tracing — nothing downstream of the UA
    may ever see the field.
    """
    trace_id = decode_trace(request)
    if TRACE_FIELD not in request.fields:
        return request, None
    return request.with_fields(**{TRACE_FIELD: None}), trace_id
