"""Causal tracer with a privacy-safe severing point at the shuffler.

Client calls get *client spans* (``cspan`` events) keyed by the wire
trace id; the UA absorbs the id at its front door and the shuffler's
flushes get *batch spans* (``bspan`` events) carrying only aggregates:
batch sequence number, instance, release size, and the **fan-in
count** — how many traced requests were absorbed at that instance
since its previous flush.  The two span populations are linked by
those counts alone; no trace id ever appears in a post-shuffle span,
event, or message (audited by
:func:`repro.privacy.wire.trace_field_exposures` and the redaction
boundary's ``trace-id`` kind).

Trace ids come from a tracer-local monotonic counter, *not* an RNG:
stamping must never perturb the seeded random streams (client backoff
jitter draws would shift and same-seed runs would diverge), and the
counter restarts with the tracer, so two same-seed passes emit
byte-identical ``cspan``/``bspan`` streams.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.obs.tracewire import encode_trace_id, stamp_trace
from repro.rest.messages import Request

__all__ = ["CausalTracer", "instrument_causal"]


class CausalTracer:
    """Allocates trace ids, records client spans, severs at the UA.

    ``clock`` is the virtual-time source; ``event_log`` (optional) is
    a :class:`repro.telemetry.events.EventLog` receiving ``cspan`` /
    ``bspan`` records.  All counters are public for audits.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        event_log: Optional[Any] = None,
    ) -> None:
        self.clock = clock
        self.event_log = event_log
        self._serial = 0
        self._batch_seq = 0
        self._open_calls: Dict[str, Dict[str, Any]] = {}
        #: Traced requests absorbed per UA instance since its last flush.
        self._absorbed: Dict[str, int] = {}
        self.calls_started = 0
        self.calls_settled = 0
        self.attempts_stamped = 0
        self.traces_severed = 0
        self.batch_spans = 0
        self.fan_in_total = 0

    def bind(self, clock: Callable[[], float], event_log: Optional[Any] = None) -> None:
        """Re-point the tracer at a fresh run's clock (and log)."""
        self.clock = clock
        if event_log is not None:
            self.event_log = event_log

    # -- client side -----------------------------------------------------

    def start_call(self, verb: str) -> str:
        """Open a client span; returns the trace id to stamp attempts with."""
        self._serial += 1
        trace_id = encode_trace_id(self._serial)
        self.calls_started += 1
        self._open_calls[trace_id] = {
            "verb": verb,
            "started": self.clock(),
            "attempts": 0,
        }
        return trace_id

    def stamp(self, request: Request, trace_id: str) -> Request:
        """Stamp one attempt of an open call onto the wire."""
        call = self._open_calls.get(trace_id)
        if call is not None:
            call["attempts"] += 1
        self.attempts_stamped += 1
        return stamp_trace(request, trace_id)

    def settle_call(self, trace_id: str, ok: bool) -> None:
        """Close a client span and emit its ``cspan`` record."""
        call = self._open_calls.pop(trace_id, None)
        if call is None:
            return
        self.calls_settled += 1
        if self.event_log is None:
            return
        ended = self.clock()
        self.event_log.emit(
            "cspan",
            "client",
            {
                "trace": trace_id,
                "verb": call["verb"],
                "started": call["started"],
                "ended": ended,
                "duration": ended - call["started"],
                "attempts": call["attempts"],
                "ok": bool(ok),
            },
        )

    # -- shuffle boundary ------------------------------------------------

    def absorb(self, instance: str) -> None:
        """A traced request reached *instance*'s front door; id is gone.

        Called by the UA right after :func:`strip_trace`.  From here on
        the request is anonymous to the tracer — only the per-instance
        fan-in count survives into the next batch span.
        """
        self.traces_severed += 1
        self._absorbed[instance] = self._absorbed.get(instance, 0) + 1

    def batch_flush(self, instance: str, size: int, timer_fired: bool) -> None:
        """A shuffle batch was released; emit its aggregate-only span."""
        self._batch_seq += 1
        fan_in = self._absorbed.pop(instance, 0)
        self.fan_in_total += fan_in
        self.batch_spans += 1
        if self.event_log is None:
            return
        self.event_log.emit(
            "bspan",
            "ua",
            {
                "batch": self._batch_seq,
                "instance": instance,
                "size": size,
                "timer_fired": bool(timer_fired),
                "fan_in": fan_in,
                "released_at": self.clock(),
            },
        )

    # -- audits ----------------------------------------------------------

    def link_report(self) -> Dict[str, int]:
        """Aggregate linkage surface: everything an auditor may see."""
        return {
            "calls_started": self.calls_started,
            "calls_settled": self.calls_settled,
            "attempts_stamped": self.attempts_stamped,
            "traces_severed": self.traces_severed,
            "batch_spans": self.batch_spans,
            "fan_in_total": self.fan_in_total,
        }

    def severed_cleanly(self) -> bool:
        """True when every stamped attempt was absorbed at a UA.

        Holds on fault-free runs; with partitions/drops some stamped
        attempts never arrive, so ``severed <= stamped`` is the only
        invariant there.
        """
        return self.traces_severed == self.attempts_stamped

    def attach_metrics(self, registry: Any) -> None:
        """Expose tracer counters on a telemetry MetricRegistry."""
        registry.counter(
            "pprox_trace_attempts_stamped_total",
            "Client attempts stamped with a causal trace id.",
            callback=lambda: self.attempts_stamped,
        )
        registry.counter(
            "pprox_traces_severed_total",
            "Trace ids absorbed (and destroyed) at a UA front door.",
            callback=lambda: self.traces_severed,
        )
        registry.counter(
            "pprox_trace_batch_spans_total",
            "Aggregate-only batch spans emitted at shuffle flushes.",
            callback=lambda: self.batch_spans,
        )


def instrument_causal(causal: CausalTracer, service: Any) -> None:
    """Chain batch-span emission onto every UA shuffle buffer.

    Follows the experiments' ``on_flush`` chaining idiom: whatever hook
    :func:`repro.telemetry.instruments.instrument_service` (or an
    experiment) already installed keeps running first.
    """
    for instance in service.ua_instances:
        buffer = instance.request_buffer
        if buffer is None:
            continue
        previous_hook = buffer.on_flush
        name = instance.name

        def hook(size: int, timer_fired: bool, *, _prev=previous_hook, _name=name) -> None:
            if _prev is not None:
                _prev(size, timer_fired)
            causal.batch_flush(_name, size, timer_fired)

        buffer.on_flush = hook
