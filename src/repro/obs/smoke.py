"""The obs-smoke scenario: every observability layer on one micro run.

A short fault-free deployment (2 UA + 2 IA, S=4) runs with the full
observability stack armed at once:

* a :class:`~repro.obs.profiler.ProfiledLoop` wraps the event loop, so
  the run yields a deterministic virtual-time profile + flamegraph;
* a :class:`~repro.obs.causal.CausalTracer` stamps every client
  attempt with a fixed-width ``trace`` field that the UA front door
  severs at the shuffle boundary (client spans and aggregate-only
  batch spans land in the event log);
* a wiretapping :class:`~repro.privacy.adversary.Adversary` records
  every hop, and :func:`~repro.privacy.wire.trace_field_exposures`
  proves no trace id survived past the client->UA hop;
* an :class:`~repro.obs.slo.SloEngine` samples goodput, the anonymity
  floor and p99 latency on the virtual clock and renders ``slo.json``.

Everything the run emits into ``profile.json`` / ``profile.folded`` /
``trace.jsonl`` / ``slo.json`` is a function of the seed alone (trace
ids and event ``seq`` numbers restart with the run), so two same-seed
passes — even in one process — produce byte-identical artifacts;
:func:`diff_artifact_dirs` is the check CI and ``python -m repro
obs-smoke`` both use.  Host-dependent numbers (wall seconds per stack)
go to ``profile_meta.json``, which is never diffed.
"""

from __future__ import annotations

import filecmp
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.causal import CausalTracer, instrument_causal
from repro.obs.profiler import ProfiledLoop, write_profile
from repro.obs.slo import Objective, SloEngine, histogram_quantile, write_slo

__all__ = [
    "ObsScenarioResult",
    "run_obs_scenario",
    "obs_slo_objectives",
    "write_obs_artifacts",
    "diff_artifact_dirs",
    "DETERMINISTIC_ARTIFACTS",
]

#: Artifact basenames that must be byte-identical across same-seed
#: passes (``profile_meta.json`` is deliberately absent: wall clock).
DETERMINISTIC_ARTIFACTS = (
    "profile.json",
    "profile.folded",
    "trace.jsonl",
    "slo.json",
)

#: Event kinds that belong to the causal/SLO plane and land in
#: ``trace.jsonl`` (the rest of the event log stays in the telemetry
#: artifact, whose request ids are process-global and not two-pass
#: diffable in one process).
TRACE_EVENT_KINDS = ("cspan", "bspan", "slo")


def obs_slo_objectives(
    required_anonymity: float,
    goodput_floor: float = 0.98,
    p99_ceiling: float = 1.0,
) -> List[Objective]:
    """The micro run's objectives: fault-free, so targets are strict.

    The anonymity floor here is hard and windowed: while load is
    offered every released batch must be full (timer flushes only
    happen at the drain tail, after the source stops reporting).
    """
    return [
        Objective(
            name="goodput",
            kind="ratio",
            target=goodput_floor,
            good="completed",
            total="issued",
            description="Fraction of issued calls that completed OK.",
        ),
        Objective(
            name="anonymity_floor",
            kind="floor",
            target=required_anonymity,
            value="anonymity_floor",
            description="min shuffle flush x IA instances during the load window.",
        ),
        Objective(
            name="p99_latency_seconds",
            kind="ceiling",
            target=p99_ceiling,
            value="p99_latency_seconds",
            description="p99 of client-observed end-to-end latency.",
        ),
    ]


@dataclass
class ObsScenarioResult:
    """Outcome of one obs-smoke micro run (self-check surface)."""

    seed: int
    issued: int = 0
    completed: int = 0
    failed: int = 0
    #: Tracer aggregates (see :meth:`CausalTracer.link_report`).
    link: Dict[str, int] = field(default_factory=dict)
    severed_cleanly: bool = False
    #: Wire-level findings: trace ids visible beyond client->ua.
    trace_exposures: List[str] = field(default_factory=list)
    #: Event-level findings from the role-aware redaction boundary.
    audit_violations: int = 0
    slo_report: Optional[Any] = None
    #: Live handles for artifact writing (not part of the summary).
    loop: Optional[Any] = None
    telemetry: Optional[Any] = None

    def problems(self) -> List[str]:
        found: List[str] = []
        if self.failed:
            found.append(f"{self.failed} client call(s) failed on a fault-free run")
        if not self.severed_cleanly:
            found.append(
                f"severing mismatch: {self.link.get('attempts_stamped', 0)} attempts"
                f" stamped but {self.link.get('traces_severed', 0)} severed"
            )
        if not self.link.get("batch_spans"):
            found.append("no batch span was ever emitted at a shuffle flush")
        if self.trace_exposures:
            found.append(
                f"trace id visible beyond client->ua: {self.trace_exposures[0]}"
            )
        if self.audit_violations:
            found.append(f"redaction audit found {self.audit_violations} leak(s)")
        if self.slo_report is not None and not self.slo_report.ok:
            found.extend(self.slo_report.problems())
        return found

    @property
    def ok(self) -> bool:
        return not self.problems()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "issued": self.issued,
            "completed": self.completed,
            "failed": self.failed,
            "link": dict(self.link),
            "severed_cleanly": self.severed_cleanly,
            "trace_exposure_count": len(self.trace_exposures),
            "audit_violations": self.audit_violations,
            "slo_ok": None if self.slo_report is None else self.slo_report.ok,
        }


def run_obs_scenario(
    seed: int = 7,
    rps: float = 80.0,
    duration: float = 4.0,
    *,
    grace: float = 2.0,
    telemetry: Optional[Any] = None,
) -> ObsScenarioResult:
    """Run the micro deployment with the full observability stack armed."""
    # Imports are local so ``repro.obs`` stays importable on its own
    # (the package is also used by tools that never build a service).
    from repro.context import Deployment, SimContext
    from repro.lrs.stub import StubLrs, make_pseudonymous_payload
    from repro.privacy.adversary import Adversary
    from repro.privacy.wire import trace_field_exposures
    from repro.proxy.config import PProxConfig
    from repro.simnet.clock import EventLoop
    from repro.simnet.metrics import LatencyRecorder
    from repro.telemetry import Telemetry, instrument_stack
    from repro.workload.injector import Injector

    hub = telemetry if telemetry is not None else Telemetry(scrape_interval=1.0)
    loop = ProfiledLoop(EventLoop())
    ctx = SimContext.fresh(seed, record_flows=True, telemetry=hub, loop=loop)
    hub.bind(ctx.loop, run_label=f"obs/seed{seed}")

    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    config = PProxConfig(
        ua_instances=2,
        ia_instances=2,
        shuffle_size=4,
        shuffle_timeout=0.25,
        balancing="round-robin",
    )
    deployment = Deployment.build(ctx=ctx, config=config, lrs_picker=lambda: stub)
    service = deployment.service
    if config.encryption and config.item_pseudonymization:
        stub.items = make_pseudonymous_payload(
            ctx.resolved_provider(), service.provisioner.layer_keys["IA"].symmetric_key
        )

    adversary = Adversary()
    adversary.attach(ctx.network)

    tracer = CausalTracer(clock=lambda: ctx.loop.now, event_log=hub.event_log)
    tracer.attach_metrics(hub.registry)
    service.runtime.causal = tracer

    client = deployment.client(
        request_timeout=0.5,
        max_retries=2,
        backoff_base=0.05,
        backoff_jitter=0.02,
        causal=tracer,
    )

    injector = Injector(
        loop=ctx.loop, rng=ctx.rng.stream("injector"),
        recorder=LatencyRecorder("obs"),
    )
    instrument_stack(
        hub,
        service=service,
        provider=ctx.resolved_provider(),
        lrs=stub,
        injector=injector,
        network=ctx.network,
        client=client,
    )
    # After instrument_stack: batch spans chain behind the telemetry
    # flush hook, exactly like the experiments' window samplers.
    instrument_causal(tracer, service)

    users = [f"user-{index}" for index in range(60)]
    user_rng = ctx.rng.stream("users")

    def issue(on_complete) -> None:
        client.get(user_rng.choice(users), on_complete=on_complete)

    start, end = injector.inject(rps, duration, issue)

    slo = SloEngine(telemetry=hub)
    ia_count = len(service.ia_instances)
    flushes: List[Any] = []
    for instance in service.ua_instances:
        buffer = instance.request_buffer
        if buffer is None:
            continue
        previous_hook = buffer.on_flush

        def flush_hook(size: int, timer_fired: bool, *, _prev=previous_hook) -> None:
            if _prev is not None:
                _prev(size, timer_fired)
            flushes.append((ctx.loop.now, size))

        buffer.on_flush = flush_hook
    latency_hist = hub.registry.histogram(
        "pprox_request_latency_seconds",
        "End-to-end client-observed request latency.",
    )

    def anonymity_floor_source() -> Optional[float]:
        during = [size for when, size in flushes if start <= when <= end]
        if not during:
            return None
        return float(min(during) * ia_count)

    slo.track("issued", lambda: injector.report.issued)
    slo.track("completed", lambda: injector.report.completed)
    slo.track("anonymity_floor", anonymity_floor_source)
    slo.track("p99_latency_seconds", lambda: histogram_quantile(latency_hist, 0.99))
    # Bounded at the drain horizon: the telemetry scraper also re-arms
    # while work is pending, and two unbounded tickers would keep each
    # other alive forever.
    slo.attach(ctx.loop, until=end + grace)

    ctx.loop.run_until(end + grace)
    ctx.loop.run()

    required = float(config.shuffle_size * ia_count)
    report = slo.evaluate(obs_slo_objectives(required), experiment="obs")
    result = ObsScenarioResult(
        seed=seed,
        issued=injector.report.issued,
        completed=injector.report.completed,
        failed=injector.report.failed,
        link=tracer.link_report(),
        severed_cleanly=tracer.severed_cleanly(),
        trace_exposures=trace_field_exposures(adversary.observations),
        audit_violations=len(hub.audit()),
        slo_report=report,
        loop=loop,
        telemetry=hub,
    )
    hub.finalize_run(extra={"scenario": "obs", **result.to_dict()})
    return result


def write_obs_artifacts(result: ObsScenarioResult, out_dir: str) -> Dict[str, str]:
    """Write the run's artifact set; returns basename -> path.

    ``trace.jsonl`` holds only the causal/SLO plane (``cspan`` /
    ``bspan`` / ``slo`` events) — its ids are run-local, so it is
    two-pass diffable even inside one process.
    """
    os.makedirs(out_dir, exist_ok=True)
    paths = write_profile(result.loop, out_dir)
    trace_path = os.path.join(out_dir, "trace.jsonl")
    with open(trace_path, "w") as fh:
        for event in result.telemetry.event_log.events:
            if event.kind in TRACE_EVENT_KINDS:
                fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
    out = {
        "profile.json": paths["profile"],
        "profile.folded": paths["folded"],
        "profile_meta.json": paths["meta"],
        "trace.jsonl": trace_path,
    }
    if result.slo_report is not None:
        out["slo.json"] = write_slo(result.slo_report, out_dir)
    return out


def diff_artifact_dirs(
    dir_a: str,
    dir_b: str,
    names: Sequence[str] = DETERMINISTIC_ARTIFACTS,
) -> List[str]:
    """Byte-compare the deterministic artifacts; returns findings."""
    findings: List[str] = []
    for name in names:
        path_a = os.path.join(dir_a, name)
        path_b = os.path.join(dir_b, name)
        if not os.path.exists(path_a) or not os.path.exists(path_b):
            findings.append(f"{name}: missing from one of the passes")
            continue
        if not filecmp.cmp(path_a, path_b, shallow=False):
            findings.append(f"{name}: differs between same-seed passes")
    return findings
