"""Declarative SLOs evaluated as multi-window burn rates.

An :class:`Objective` names a measurable promise — goodput ratio, p99
latency ceiling, anonymity floor S*I, shed-rate ceiling, rotation
pause budget — and the :class:`SloEngine` samples its sources on a
virtual-time tick, evaluates every objective over a *long* window (the
whole run) and a *short* trailing window, and renders a machine-
readable verdict (``slo.json``) that experiments and CI gate on.

Burn-rate semantics follow the SRE multi-window multi-burn-rate rule:

* ``ratio`` objectives (good/total counters, e.g. goodput): the burn
  rate is ``bad_fraction / error_budget`` where the budget is
  ``1 - target``.  Burn 1.0 spends the budget exactly; an alert fires
  only when the short window burns at ``alert_burn`` *and* the long
  window is itself burning (>= 1.0) — a spike that the long window has
  already absorbed stays quiet.
* ``floor`` objectives (sampled value must stay >= target, e.g. the
  anonymity floor): the budget is zero, so the burn rate is simply the
  fraction of samples in breach; any breach in both windows alerts.
* ``ceiling`` objectives (sampled value must end <= target, e.g. p99
  latency, accumulated rotation pause seconds): evaluated on the final
  sample; breach fractions play the burn-rate role.

Alerts are emitted as ``slo`` events with role ``operator`` (the
redaction boundary applies to them like any other event).  Runs with
no live engine — the scale sweep's perf-sensitive hot path — evaluate
the same objectives statically with :func:`evaluate_static`; burn
fields are null there.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Objective",
    "Measurement",
    "SloReport",
    "SloEngine",
    "evaluate_static",
    "histogram_quantile",
    "write_slo",
]


@dataclass(frozen=True)
class Objective:
    """One declarative service-level objective.

    ``kind`` selects the evaluation rule: ``ratio`` (needs ``good`` and
    ``total`` counter sources), ``floor`` or ``ceiling`` (need a
    ``value`` source).  ``target`` is the promise; ``alert_burn`` is
    the short-window burn multiple that pages.
    """

    name: str
    kind: str  # "ratio" | "floor" | "ceiling"
    target: float
    description: str = ""
    good: str = ""
    total: str = ""
    value: str = ""
    alert_burn: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in ("ratio", "floor", "ceiling"):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if self.kind == "ratio" and (not self.good or not self.total):
            raise ValueError(f"ratio objective {self.name!r} needs good= and total=")
        if self.kind in ("floor", "ceiling") and not self.value:
            raise ValueError(f"{self.kind} objective {self.name!r} needs value=")


@dataclass
class Measurement:
    """One objective's verdict over the evaluated windows."""

    name: str
    kind: str
    target: float
    value: Optional[float]
    ok: bool
    burn_long: Optional[float] = None
    burn_short: Optional[float] = None
    alert: bool = False
    description: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "value": self.value,
            "ok": self.ok,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
            "alert": self.alert,
            "description": self.description,
        }


@dataclass
class SloReport:
    """The full verdict for one experiment run."""

    experiment: str
    generated_at: float
    long_window_seconds: float
    short_window_seconds: float
    measurements: List[Measurement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(m.ok for m in self.measurements)

    @property
    def alerts(self) -> int:
        return sum(1 for m in self.measurements if m.alert)

    def objective(self, name: str) -> Measurement:
        for measurement in self.measurements:
            if measurement.name == name:
                return measurement
        raise KeyError(f"no objective named {name!r} in this report")

    def problems(self) -> List[str]:
        out: List[str] = []
        for m in self.measurements:
            if not m.ok:
                out.append(
                    f"slo {m.name}: value {m.value!r} violates {m.kind} target {m.target}"
                )
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "generated_at": self.generated_at,
            "long_window_seconds": self.long_window_seconds,
            "short_window_seconds": self.short_window_seconds,
            "ok": self.ok,
            "alerts": self.alerts,
            "objectives": [m.to_dict() for m in self.measurements],
        }


def write_slo(report: SloReport, out_dir: str, basename: str = "slo") -> str:
    """Write the deterministic ``slo.json`` verdict; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{basename}.json")
    with open(path, "w") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def histogram_quantile(histogram: Any, quantile: float) -> Optional[float]:
    """Linear-interpolated quantile from a telemetry Histogram.

    Works on anything exposing ``cumulative_buckets() ->
    [(bound, cumulative_count), ...]`` ending in the implicit
    ``(inf, total)`` bucket.  Observations in the overflow bucket
    report the largest finite bound (the histogram cannot see higher).
    """
    pairs = histogram.cumulative_buckets()
    if not pairs:
        return None
    total = pairs[-1][1]
    if total <= 0:
        return None
    rank = quantile * total
    previous_bound = 0.0
    previous_cum = 0
    for bound, cumulative in pairs:
        if cumulative >= rank:
            if math.isinf(bound) or cumulative == previous_cum:
                return previous_bound if math.isinf(bound) else bound
            fraction = (rank - previous_cum) / (cumulative - previous_cum)
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound, previous_cum = bound, cumulative
    return previous_bound


class SloEngine:
    """Samples named sources on a virtual-time tick; evaluates objectives.

    Sources are zero-argument callables returning a float (or None to
    skip the sample).  ``attach`` hooks the tick into an event loop the
    same way the telemetry Scraper does: the tick re-arms only while
    events are pending, so it never keeps a finished run alive.
    """

    def __init__(
        self,
        interval: float = 0.25,
        short_window: float = 2.0,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.interval = interval
        self.short_window = short_window
        self.telemetry = telemetry
        self._sources: Dict[str, Callable[[], Optional[float]]] = {}
        #: (virtual time, {source: value}) rows, in sample order.
        self.samples: List[Tuple[float, Dict[str, float]]] = []
        self._loop: Optional[Any] = None
        self._until: Optional[float] = None

    def track(self, key: str, source: Callable[[], Optional[float]]) -> None:
        """Register a sampled source under *key*."""
        self._sources[key] = source

    def attach(self, loop: Any, until: Optional[float] = None) -> None:
        """Start sampling on *loop*'s virtual clock.

        Pass *until* (the run's drain horizon) whenever another
        self-re-arming sampler shares the loop — e.g. the telemetry
        Scraper: two tickers that each re-arm while the loop has
        pending work would keep each other alive and ``loop.run()``
        would never drain.  A bounded engine stops re-arming past
        *until*; :meth:`evaluate` still takes its final sample.
        """
        self._loop = loop
        self._until = until
        self.sample_now()
        self._arm()

    def _arm(self) -> None:
        if self._loop is None or self._loop.pending <= 0:
            return
        if self._until is not None and self._loop.now >= self._until:
            return
        self._loop.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        self.sample_now()
        self._arm()

    def sample_now(self, now: Optional[float] = None) -> None:
        """Take one sample row at *now* (defaults to the loop clock)."""
        if now is None:
            now = self._loop.now if self._loop is not None else 0.0
        row: Dict[str, float] = {}
        for key, source in self._sources.items():
            value = source()
            if value is not None:
                row[key] = float(value)
        self.samples.append((now, row))

    # -- evaluation ------------------------------------------------------

    def _series(self, key: str) -> List[Tuple[float, float]]:
        return [(when, row[key]) for when, row in self.samples if key in row]

    @staticmethod
    def _window_delta(series: Sequence[Tuple[float, float]], start: float) -> float:
        """Counter increase across ``[start, end]`` of *series*."""
        if not series:
            return 0.0
        baseline = series[0][1]
        for when, value in series:
            if when > start:
                break
            baseline = value
        return series[-1][1] - baseline

    def _ratio_measurement(self, objective: Objective, short_start: float) -> Measurement:
        good = self._series(objective.good)
        total = self._series(objective.total)
        budget = max(1e-9, 1.0 - objective.target)

        def window_ratio(start: float) -> Optional[float]:
            total_delta = self._window_delta(total, start)
            if total_delta <= 0:
                return None
            return self._window_delta(good, start) / total_delta

        long_ratio = window_ratio(float("-inf"))
        short_ratio = window_ratio(short_start)
        value = long_ratio if long_ratio is not None else 1.0
        burn_long = (1.0 - value) / budget
        burn_short = None if short_ratio is None else (1.0 - short_ratio) / budget
        alert = (
            burn_short is not None
            and burn_short >= objective.alert_burn
            and burn_long >= 1.0
        )
        return Measurement(
            name=objective.name,
            kind=objective.kind,
            target=objective.target,
            value=value,
            ok=value >= objective.target,
            burn_long=burn_long,
            burn_short=burn_short,
            alert=alert,
            description=objective.description,
        )

    def _level_measurement(self, objective: Objective, short_start: float) -> Measurement:
        series = self._series(objective.value)
        if not series:
            return Measurement(
                name=objective.name,
                kind=objective.kind,
                target=objective.target,
                value=None,
                ok=False,
                description=objective.description + " (no samples)",
            )
        values = [value for _, value in series]
        short_values = [value for when, value in series if when >= short_start]
        if objective.kind == "floor":
            value = min(values)
            ok = value >= objective.target
            breached = lambda v: v < objective.target  # noqa: E731
        else:  # ceiling: judged on where the run ended up
            value = values[-1]
            ok = value <= objective.target
            breached = lambda v: v > objective.target  # noqa: E731
        burn_long = sum(1 for v in values if breached(v)) / len(values)
        burn_short = (
            sum(1 for v in short_values if breached(v)) / len(short_values)
            if short_values
            else None
        )
        alert = burn_long > 0.0 and bool(burn_short)
        return Measurement(
            name=objective.name,
            kind=objective.kind,
            target=objective.target,
            value=value,
            ok=ok,
            burn_long=burn_long,
            burn_short=burn_short,
            alert=alert,
            description=objective.description,
        )

    def evaluate(self, objectives: Sequence[Objective], experiment: str) -> SloReport:
        """Final sample + verdict; emits operator alert/verdict events."""
        now = self._loop.now if self._loop is not None else (
            self.samples[-1][0] if self.samples else 0.0
        )
        self.sample_now(now)
        first = self.samples[0][0] if self.samples else now
        short_start = max(first, now - self.short_window)
        report = SloReport(
            experiment=experiment,
            generated_at=now,
            long_window_seconds=now - first,
            short_window_seconds=self.short_window,
        )
        for objective in objectives:
            if objective.kind == "ratio":
                measurement = self._ratio_measurement(objective, short_start)
            else:
                measurement = self._level_measurement(objective, short_start)
            report.measurements.append(measurement)
            self._emit_alert(experiment, measurement)
        self._emit_verdict(report)
        return report

    def _emit_alert(self, experiment: str, measurement: Measurement) -> None:
        if self.telemetry is None or not measurement.alert:
            return
        self.telemetry.event_log.emit(
            "slo",
            "operator",
            {
                "event": "slo_alert",
                "experiment": experiment,
                "objective": measurement.name,
                "kind": measurement.kind,
                "target": measurement.target,
                "observed": measurement.value,
                "burn_long": measurement.burn_long,
                "burn_short": measurement.burn_short,
            },
        )

    def _emit_verdict(self, report: SloReport) -> None:
        if self.telemetry is None:
            return
        self.telemetry.event_log.emit(
            "slo",
            "operator",
            {
                "event": "slo_verdict",
                "experiment": report.experiment,
                "ok": report.ok,
                "alerts": report.alerts,
                "objectives": len(report.measurements),
            },
        )


def evaluate_static(
    objectives: Sequence[Objective],
    values: Dict[str, float],
    experiment: str,
    generated_at: float = 0.0,
) -> SloReport:
    """Evaluate objectives against point-in-time values (no live engine).

    Used where attaching a sampler would perturb a perf-sensitive hot
    path (the scale sweep): ratio objectives read ``good``/``total``
    totals from *values*, level objectives read ``value``; burn fields
    stay null.
    """
    report = SloReport(
        experiment=experiment,
        generated_at=generated_at,
        long_window_seconds=0.0,
        short_window_seconds=0.0,
    )
    for objective in objectives:
        if objective.kind == "ratio":
            total = values.get(objective.total, 0.0)
            good = values.get(objective.good, 0.0)
            value = (good / total) if total > 0 else 1.0
            ok = value >= objective.target
        else:
            raw = values.get(objective.value)
            value = None if raw is None else float(raw)
            if value is None:
                ok = False
            elif objective.kind == "floor":
                ok = value >= objective.target
            else:
                ok = value <= objective.target
        report.measurements.append(
            Measurement(
                name=objective.name,
                kind=objective.kind,
                target=objective.target,
                value=value,
                ok=ok,
                description=objective.description,
            )
        )
    return report
