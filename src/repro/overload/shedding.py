"""Privacy-preserving load shedding: the uniform padded reject.

Shedding decisions must themselves be privacy-safe (§4.3 extended):
a rejection observable by one proxy layer — or by the adversary on
the client<->UA or UA<->IA wire — must not reveal *why* the request
died, because cause strings correlate with system state the other
layer is not supposed to learn (a UA observing "deadline expired at
IA" learns the IA's queueing state for a request whose user it
knows).  Every reject emitted by the proxy layers is therefore the
*same* constant-size message: fixed status, fixed error token, fixed
padding, no cause, no identifiers.  The cause is recorded only in the
shedding instance's local counters (``pprox_shed_total{stage,reason}``)
behind the role-aware redaction boundary.
"""

from __future__ import annotations

from repro.rest.messages import Response

__all__ = [
    "SHED_STATUS",
    "REJECT_CODE",
    "REJECT_BODY_BYTES",
    "uniform_reject",
    "is_uniform_reject",
    "reject_size_bytes",
    "STAGE_ADMISSION",
    "STAGE_QUEUE",
    "STAGE_DEADLINE",
    "STAGE_UPSTREAM",
    "STAGE_TRANSFORM",
    "STAGE_LRS_GUARD",
    "SHED_STAGES",
]

#: Rejects reuse the retryable status so every existing client treats
#: a shed exactly like a transform error or a timeout: back off, retry.
SHED_STATUS = 503

#: The only error token that ever crosses a protected hop.
REJECT_CODE = "unavailable"

#: Serialized body size every reject is padded to.
REJECT_BODY_BYTES = 128

#: Shed-stage labels for ``pprox_shed_total{stage,reason}``.
STAGE_ADMISSION = "admission"
STAGE_QUEUE = "queue"
STAGE_DEADLINE = "deadline"
STAGE_UPSTREAM = "upstream"
STAGE_TRANSFORM = "transform"
STAGE_LRS_GUARD = "lrs_guard"
SHED_STAGES = (
    STAGE_ADMISSION,
    STAGE_QUEUE,
    STAGE_DEADLINE,
    STAGE_UPSTREAM,
    STAGE_TRANSFORM,
    STAGE_LRS_GUARD,
)


def _padded_fields() -> dict:
    """The canonical reject body, padded to :data:`REJECT_BODY_BYTES`."""
    base = {"retryable": True, "error": REJECT_CODE, "pad": ""}
    unpadded = Response(status=SHED_STATUS, fields=base).body_json()
    pad_length = max(0, REJECT_BODY_BYTES - len(unpadded.encode("utf-8")))
    return {"retryable": True, "error": REJECT_CODE, "pad": "x" * pad_length}


_REJECT_FIELDS = _padded_fields()


def uniform_reject(request_id: int) -> Response:
    """The one reject message: identical bytes for every cause."""
    return Response(
        status=SHED_STATUS, fields=dict(_REJECT_FIELDS), request_id=request_id
    )


def is_uniform_reject(response: Response) -> bool:
    """True when *response* is byte-for-byte the canonical reject."""
    return response.status == SHED_STATUS and response.fields == _REJECT_FIELDS


def reject_size_bytes() -> int:
    """Wire size of the canonical reject (for the uniformity audit)."""
    return uniform_reject(0).size_bytes()
