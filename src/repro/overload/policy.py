"""The overload-protection policy bundle.

One frozen configuration object carries every knob of the overload
subsystem; :func:`repro.proxy.service.build_service` threads it into
the :class:`~repro.proxy.layers.ProxyRuntime` and each proxy instance
builds its own bounded ingress queue, admission controller and pump
window from it.  ``None`` (the default everywhere) means *no overload
protection*: the data plane behaves byte-for-byte as before this
subsystem existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.overload.admission import AdmissionController
from repro.overload.breaker import AimdLimiter, CircuitBreaker
from repro.simnet.queueing import ConcurrentQueue, ShedPolicy, make_shed_policy

__all__ = ["OverloadPolicy"]


@dataclass(frozen=True)
class OverloadPolicy:
    """Knobs of the overload-protection subsystem (all layers)."""

    #: Bound of each proxy instance's ingress queue.
    ingress_capacity: int = 64
    #: Shed policy name: ``tail-drop``, ``front-drop`` or ``codel``.
    shed_policy: str = "tail-drop"
    #: CoDel target sojourn / control interval (codel policy only).
    codel_target: float = 0.05
    codel_interval: float = 0.1
    #: Jobs an instance keeps in flight at its node before the ingress
    #: pump pauses (raised to cover the shuffle batch, so bounding
    #: concurrency can never starve a batch below ``S``).
    max_inflight: int = 16
    #: Admission thresholds at the UA front door.
    admission_max_sojourn: float = 0.25
    admission_max_pressure: float = 1.0
    #: Shed requests whose deadline budget is spent (pre-enclave).
    enforce_deadlines: bool = True
    #: IA->LRS guard: breaker and AIMD limiter parameters.
    breaker_failure_threshold: int = 5
    breaker_reset_timeout: float = 1.0
    breaker_half_open_probes: int = 1
    limiter_initial: float = 8.0
    limiter_max: float = 64.0

    def make_ingress_queue(
        self, name: str, clock: Callable[[], float]
    ) -> ConcurrentQueue:
        """A bounded ingress queue configured for one proxy instance."""
        return ConcurrentQueue(
            name=name,
            capacity=self.ingress_capacity,
            shed_policy=self.make_shed_policy(),
            clock=clock,
        )

    def make_shed_policy(self) -> ShedPolicy:
        """A fresh shed-policy instance (CoDel keeps per-queue state)."""
        if self.shed_policy == "codel":
            return make_shed_policy(
                "codel", target=self.codel_target, interval=self.codel_interval
            )
        return make_shed_policy(self.shed_policy)

    def make_admission(self) -> AdmissionController:
        """A fresh admission controller for one front-door instance."""
        return AdmissionController(
            max_sojourn=self.admission_max_sojourn,
            max_pressure=self.admission_max_pressure,
        )

    def make_breaker(self, clock: Callable[[], float]) -> CircuitBreaker:
        """A circuit breaker for the IA->LRS edge."""
        return CircuitBreaker(
            clock=clock,
            failure_threshold=self.breaker_failure_threshold,
            reset_timeout=self.breaker_reset_timeout,
            half_open_probes=self.breaker_half_open_probes,
        )

    def make_limiter(self) -> AimdLimiter:
        """An AIMD concurrency limiter for the IA->LRS edge."""
        return AimdLimiter(initial=self.limiter_initial, max_limit=self.limiter_max)
