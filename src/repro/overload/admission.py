"""Admission control at the proxy front door.

:class:`OverloadSignal` is the shared vocabulary of overload: ingress
queue depth, head-of-line sojourn time, in-flight enclave work and EPC
paging pressure (from :meth:`repro.sgx.costs.SgxCostModel.
paging_pressure` — a proxy whose pending-request table pages against
the EPC serves *everything* slower, so admission must tighten before
that cliff).  The UA front door consults an
:class:`AdmissionController` before a request touches the shuffle
buffer or the enclave; the autoscaler and the health monitor consume
the same signal for scale-up and operator-event decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["OverloadSignal", "AdmissionController"]


@dataclass(frozen=True)
class OverloadSignal:
    """Point-in-time overload indicators for one proxy instance."""

    #: Entries waiting in the ingress queue.
    queue_depth: int = 0
    #: Queueing delay of the oldest waiting entry (seconds).
    queue_sojourn: float = 0.0
    #: Jobs submitted to the host node and not yet completed.
    inflight: int = 0
    #: EPC working-set pressure (>1.0 means the enclave is paging).
    epc_pressure: float = 0.0
    #: Breaker state of the downstream guard (0 closed / 1 open / 2
    #: half-open), when one is wired.
    breaker_state: int = 0


@dataclass
class AdmissionController:
    """Reject-before-queue policy driven by :class:`OverloadSignal`.

    Depth overflow is normally left to the bounded ingress queue (its
    shed policy decides *which* entry dies); the controller guards the
    slower-moving signals — standing sojourn time and EPC pressure —
    that indicate the queue bound alone is not protecting latency.
    """

    max_sojourn: float = 0.25
    max_pressure: float = 1.0
    max_depth: Optional[int] = None
    admitted: int = 0
    rejected: int = 0
    rejected_by_reason: Dict[str, int] = field(default_factory=dict)

    def admit(self, signal: OverloadSignal) -> Optional[str]:
        """None to admit, else the shed-reason label."""
        reason = None
        if self.max_depth is not None and signal.queue_depth >= self.max_depth:
            reason = "queue_depth"
        elif signal.queue_sojourn > self.max_sojourn:
            reason = "sojourn"
        elif signal.epc_pressure > self.max_pressure:
            reason = "epc_pressure"
        if reason is None:
            self.admitted += 1
            return None
        self.rejected += 1
        self.rejected_by_reason[reason] = self.rejected_by_reason.get(reason, 0) + 1
        return reason
