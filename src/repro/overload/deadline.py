"""Per-request deadline budgets, hop by hop (client -> UA -> IA -> LRS).

The client stamps each attempt with its *remaining* budget; every hop
charges the time the request spent under its roof (queueing + service)
before re-stamping the forwarded message.  A hop that reads a spent
budget sheds the request *before* paying enclave entry-cost for it —
the client has already timed out, so the work would be pure waste heat.

Wire format: the budget travels as a fixed-width 12-character decimal
field (``000001.234567``) *outside* the sealed envelope.  It must be
outside: the UA has to read it before the enclave transition it exists
to avoid, and in hardened-hop mode the sealed inner fields are opened
only inside the enclave.  The value is identity-free and constant
width, so the §4.3 constant-size property is preserved — every request
from a deadline-enabled client carries exactly 12 budget characters.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.rest.messages import Request

__all__ = [
    "DEADLINE_FIELD",
    "DEADLINE_WIDTH",
    "MAX_DEADLINE",
    "encode_deadline",
    "decode_deadline",
    "stamp_deadline",
    "charge",
]

#: Field name the budget travels under (top level, never sealed).
DEADLINE_FIELD = "deadline"

#: Every encoded budget is exactly this many characters.
DEADLINE_WIDTH = 12

#: Largest encodable budget (seconds); larger values are clamped.
MAX_DEADLINE = 99999.999999


def encode_deadline(remaining: float) -> str:
    """Fixed-width encoding of a remaining budget in seconds."""
    clamped = min(max(remaining, 0.0), MAX_DEADLINE)
    return format(clamped, f"0{DEADLINE_WIDTH}.6f")


def decode_deadline(message: Union[Request, dict]) -> Optional[float]:
    """Remaining budget carried by *message*, or None when absent."""
    fields = message if isinstance(message, dict) else message.fields
    encoded = fields.get(DEADLINE_FIELD)
    if encoded is None:
        return None
    try:
        return float(encoded)
    except (TypeError, ValueError):
        return None


def stamp_deadline(request: Request, remaining: Optional[float]) -> Request:
    """Copy of *request* carrying *remaining* (or unchanged for None)."""
    if remaining is None:
        return request
    return request.with_fields(**{DEADLINE_FIELD: encode_deadline(remaining)})


def charge(remaining: Optional[float], elapsed: float) -> Optional[float]:
    """Decrement a budget by *elapsed* seconds spent at this hop."""
    if remaining is None:
        return None
    return remaining - max(0.0, elapsed)
