"""Overload protection: bounded queues, admission control, deadlines.

PProx's headline claim is SLA-grade latency under heavy load; this
package is the graceful-degradation machinery that keeps the claim
honest past saturation.  Four cooperating mechanisms:

* bounded ingress queues with pluggable shed policies
  (:mod:`repro.simnet.queueing`);
* per-request deadline budgets decremented at each hop, with expired
  requests shed before enclave entry-cost is paid
  (:mod:`repro.overload.deadline`);
* a circuit breaker + AIMD concurrency limiter guarding the IA->LRS
  edge (:mod:`repro.overload.breaker`, :mod:`repro.overload.guard`);
* admission control at the proxy front door driven by
  :class:`~repro.overload.admission.OverloadSignal`
  (:mod:`repro.overload.admission`).

The privacy invariant threading through all of it: sheds happen
*pre-shuffle only* (a batch is never flushed below ``S`` and nothing
is selectively dropped post-shuffle, so the ``1/(S*I)`` anonymity
bound holds through an overload episode) and every reject is the
uniform padded message of :mod:`repro.overload.shedding`, so shedding
is unobservable to the other layer and to the wire adversary.
"""

from repro.overload.admission import AdmissionController, OverloadSignal
from repro.overload.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BREAKER_STATES,
    AimdLimiter,
    CircuitBreaker,
)
from repro.overload.deadline import (
    DEADLINE_FIELD,
    DEADLINE_WIDTH,
    MAX_DEADLINE,
    charge,
    decode_deadline,
    encode_deadline,
    stamp_deadline,
)
from repro.overload.guard import GuardedLrs
from repro.overload.policy import OverloadPolicy
from repro.overload.shedding import (
    REJECT_BODY_BYTES,
    REJECT_CODE,
    SHED_STAGES,
    SHED_STATUS,
    STAGE_ADMISSION,
    STAGE_DEADLINE,
    STAGE_LRS_GUARD,
    STAGE_QUEUE,
    STAGE_TRANSFORM,
    STAGE_UPSTREAM,
    is_uniform_reject,
    reject_size_bytes,
    uniform_reject,
)

__all__ = [
    "OverloadPolicy",
    "OverloadSignal",
    "AdmissionController",
    "CircuitBreaker",
    "AimdLimiter",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "BREAKER_STATES",
    "GuardedLrs",
    "DEADLINE_FIELD",
    "DEADLINE_WIDTH",
    "MAX_DEADLINE",
    "encode_deadline",
    "decode_deadline",
    "stamp_deadline",
    "charge",
    "SHED_STATUS",
    "REJECT_CODE",
    "REJECT_BODY_BYTES",
    "uniform_reject",
    "is_uniform_reject",
    "reject_size_bytes",
    "SHED_STAGES",
    "STAGE_ADMISSION",
    "STAGE_QUEUE",
    "STAGE_DEADLINE",
    "STAGE_UPSTREAM",
    "STAGE_TRANSFORM",
    "STAGE_LRS_GUARD",
]
