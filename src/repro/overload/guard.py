"""The guarded LRS edge: breaker + limiter + deadline, composable.

:class:`GuardedLrs` wraps any LRS handle the same way PR 3's
:class:`~repro.faults.brownout.BrownoutLrs` does (unknown attributes
delegate to the wrapped service), so the two compose::

    GuardedLrs(inner=BrownoutLrs(inner=StubLrs(...), ...), ...)

With that stack, brownout 503s are *observed* by the guard: the
failure streak trips the breaker, the AIMD limiter halves its window,
and while the breaker is open the IA's requests are rejected locally —
no wire trip, no LRS load — until a half-open probe succeeds.

Every rejection is the canonical uniform reject of
:mod:`repro.overload.shedding`: travelling back through the IA it is
indistinguishable from any other error, so the UA (and the wire
adversary) cannot learn the LRS's health from reject shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.overload.breaker import AimdLimiter, CircuitBreaker
from repro.overload.deadline import decode_deadline
from repro.overload.shedding import STAGE_LRS_GUARD, uniform_reject
from repro.rest.messages import Request, Response

__all__ = ["GuardedLrs"]


@dataclass
class GuardedLrs:
    """Breaker/limiter/deadline guard in front of an LRS handle."""

    inner: Any
    breaker: CircuitBreaker
    limiter: AimdLimiter
    #: Optional telemetry hub for sparse shed events (role ``lrs``).
    telemetry: Optional[Any] = None
    #: Requests rejected while the breaker was open.
    breaker_rejections: int = 0
    #: Requests rejected by the concurrency limiter.
    limiter_rejections: int = 0
    #: Requests shed because their deadline budget was already spent.
    expired_rejections: int = 0
    #: Requests passed through to the wrapped service.
    passed: int = 0
    #: Retryable failures observed on passed requests.
    failures_observed: int = 0
    _announced: Dict[str, bool] = field(default_factory=dict)

    def handle(self, request: Request, reply: Callable[[Response], None]) -> None:
        """Guard one request on its way to the wrapped LRS."""
        remaining = decode_deadline(request)
        if remaining is not None and remaining <= 0.0:
            self.expired_rejections += 1
            self._shed_event("expired")
            reply(uniform_reject(request.request_id))
            return
        if not self.breaker.allow():
            self.breaker_rejections += 1
            self._shed_event("breaker_open")
            reply(uniform_reject(request.request_id))
            return
        if not self.limiter.try_acquire():
            self.limiter_rejections += 1
            self._shed_event("concurrency_limit")
            reply(uniform_reject(request.request_id))
            return
        self.passed += 1

        def observed_reply(response: Response) -> None:
            retryable_failure = not response.ok and (
                response.status == 503 or bool(response.fields.get("retryable"))
            )
            self.limiter.release(not retryable_failure)
            if retryable_failure:
                self.failures_observed += 1
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
            reply(response)

        self.inner.handle(request, observed_reply)

    def _shed_event(self, reason: str) -> None:
        """Emit one structured shed event per reason (sparse; counters
        carry the volume).  Payload is identity-free by construction."""
        if self.telemetry is None or self._announced.get(reason):
            return
        self._announced[reason] = True
        self.telemetry.event_log.emit(
            "shed",
            "lrs",
            {"event": "request_shed", "stage": STAGE_LRS_GUARD, "reason": reason},
        )

    def __getattr__(self, name: str) -> Any:
        if name == "inner":  # guard against recursion before init
            raise AttributeError(name)
        return getattr(self.inner, name)
