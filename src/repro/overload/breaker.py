"""Circuit breaker + AIMD concurrency limiter for the IA -> LRS edge.

The IA layer is the last hop before the backing recommender; when the
LRS browns out (PR 3's :class:`~repro.faults.brownout.BrownoutLrs`
answers retryable 503s), continuing to pump requests into it wastes
enclave transitions on work that will fail anyway and amplifies the
brownout with retry traffic.  The breaker converts a failure streak
into fast local rejects and probes recovery half-open; the AIMD
limiter bounds concurrent in-flight work against the LRS the same way
TCP bounds a congestion window — additive increase on success,
multiplicative decrease on retryable failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "CircuitBreaker",
    "AimdLimiter",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "BREAKER_STATES",
]

#: Breaker states, numeric for the ``pprox_breaker_state`` gauge.
BREAKER_CLOSED = 0
BREAKER_OPEN = 1
BREAKER_HALF_OPEN = 2
BREAKER_STATES = ("closed", "open", "half_open")


@dataclass
class CircuitBreaker:
    """Trip after a failure streak; probe recovery half-open.

    Closed: everything passes, a streak of ``failure_threshold``
    retryable failures trips the breaker.  Open: everything is
    rejected for ``reset_timeout`` seconds.  Half-open: up to
    ``half_open_probes`` requests pass as recovery probes — one
    success re-closes the breaker, one failure re-opens it.
    """

    clock: Callable[[], float] = lambda: 0.0
    failure_threshold: int = 5
    reset_timeout: float = 1.0
    half_open_probes: int = 1
    state: int = BREAKER_CLOSED
    failures: int = 0
    trips: int = 0
    opened_at: float = 0.0
    _probes: int = field(default=0, init=False)

    @property
    def state_name(self) -> str:
        """Human-readable state label."""
        return BREAKER_STATES[self.state]

    def allow(self) -> bool:
        """May the next request pass this breaker right now?"""
        if (
            self.state == BREAKER_OPEN
            and self.clock() - self.opened_at >= self.reset_timeout
        ):
            self.state = BREAKER_HALF_OPEN
            self._probes = 0
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_HALF_OPEN and self._probes < self.half_open_probes:
            self._probes += 1
            return True
        return False

    def record_success(self) -> None:
        """A passed request completed OK."""
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED
        self.failures = 0

    def record_failure(self) -> None:
        """A passed request failed retryably."""
        self.failures += 1
        if self.state == BREAKER_HALF_OPEN or (
            self.state == BREAKER_CLOSED and self.failures >= self.failure_threshold
        ):
            self.state = BREAKER_OPEN
            self.opened_at = self.clock()
            self.trips += 1
            self.failures = 0


@dataclass
class AimdLimiter:
    """Adaptive concurrency limit (additive increase, multiplicative
    decrease), seeded at ``initial`` and clamped to
    ``[min_limit, max_limit]``.

    The increase is ``increase / limit`` per success — one full unit
    per "window" of successes, mirroring TCP congestion avoidance —
    so the limit converges instead of oscillating wildly.
    """

    initial: float = 8.0
    min_limit: float = 1.0
    max_limit: float = 64.0
    increase: float = 1.0
    backoff: float = 0.5
    limit: float = field(default=0.0, init=False)
    in_flight: int = 0
    acquired_total: int = 0
    rejected_total: int = 0
    backoffs: int = 0

    def __post_init__(self) -> None:
        self.limit = min(max(self.initial, self.min_limit), self.max_limit)

    def try_acquire(self) -> bool:
        """Claim an in-flight slot; False when the limit is reached."""
        if self.in_flight >= int(self.limit):
            self.rejected_total += 1
            return False
        self.in_flight += 1
        self.acquired_total += 1
        return True

    def release(self, ok: bool) -> None:
        """Return a slot, adapting the limit to the outcome."""
        self.in_flight = max(0, self.in_flight - 1)
        if ok:
            self.limit = min(
                self.max_limit, self.limit + self.increase / max(self.limit, 1.0)
            )
        else:
            self.limit = max(self.min_limit, self.limit * self.backoff)
            self.backoffs += 1
