"""Empirical validation of the shuffling bound (paper §6.2).

The analysis: with a shuffle buffer of size ``S`` and ``I`` instances
in the downstream layer, the probability that the adversary correctly
matches an inbound request to the corresponding outbound request is
``1 / (S * I)`` — "packets are encrypted and of the same size and,
therefore, all outbound packets ... are equally likely to correspond
to R".

:class:`ShuffleLinkageExperiment` reproduces the abstraction with the
*actual* :class:`repro.proxy.shuffler.ShuffleBuffer` and load-balancer
components: a stream of indistinguishable requests flows through a
shuffling stage that spreads over ``I`` downstream instances, the
adversary guesses the outbound message for a random target using its
best strategy (uniform over the indistinguishability set), and the
empirical success rate is compared with theory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.proxy.shuffler import ShuffleBuffer
from repro.simnet.clock import EventLoop

__all__ = ["ShuffleLinkageExperiment", "LinkageOutcome"]


@dataclass(frozen=True)
class LinkageOutcome:
    """Result of a linkage experiment."""

    shuffle_size: int
    instances: int
    trials: int
    successes: int

    @property
    def empirical_probability(self) -> float:
        """Measured linkage success rate."""
        return self.successes / self.trials if self.trials else 0.0

    @property
    def theoretical_probability(self) -> float:
        """The paper's bound 1 / (S * I)."""
        return 1.0 / (self.shuffle_size * self.instances)


@dataclass
class ShuffleLinkageExperiment:
    """Monte-Carlo measurement of the adversary's linkage success."""

    shuffle_size: int
    instances: int
    seed: int = 42
    timeout: float = 10.0

    def run(self, trials: int = 2000) -> LinkageOutcome:
        """Run *trials* full-batch episodes and count correct guesses.

        Each episode: ``S * I`` indistinguishable requests arrive (one
        full batch per downstream instance, the steady-state regime of
        §6.2); the shuffling stage releases them in random order and
        the balancer spreads them over instances.  The adversary picks
        a random target among the inbound requests and guesses which
        outbound message is the target's, knowing everything except
        the shuffle permutation: the guess is uniform over the
        ``S * I`` outbound candidates.
        """
        rng = random.Random(self.seed)
        successes = 0
        for _ in range(trials):
            successes += 1 if self._episode(rng) else 0
        return LinkageOutcome(
            shuffle_size=self.shuffle_size,
            instances=self.instances,
            trials=trials,
            successes=successes,
        )

    def _episode(self, rng: random.Random) -> bool:
        loop = EventLoop()
        released: List[Tuple[int, int]] = []  # (request tag, position)
        destinations: Dict[int, int] = {}
        counter = {"position": 0}

        def release(tag: int) -> None:
            position = counter["position"]
            counter["position"] += 1
            # kube-proxy random balancing over downstream instances.
            destinations[tag] = rng.randrange(self.instances)
            released.append((tag, position))

        # One shuffling buffer per upstream instance; the adversary's
        # view aggregates all outbound messages of the batch window.
        buffers = [
            ShuffleBuffer(
                loop=loop,
                rng=rng,
                size=self.shuffle_size,
                timeout=self.timeout,
                release=release,
                name=f"ua-{index}",
            )
            for index in range(self.instances)
        ]
        total = self.shuffle_size * self.instances
        for tag in range(total):
            buffers[tag % self.instances].add(tag)
        loop.run()

        target = rng.randrange(total)
        # Adversary strategy: all outbound messages in the window are
        # equally likely; guess one uniformly.
        guess_tag, _ = released[rng.randrange(len(released))]
        return guess_tag == target
