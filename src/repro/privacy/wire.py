"""Wire-level indistinguishability checks (paper §4.3).

"We first ensure that the adversary cannot distinguish between
encrypted messages ... The size of all encrypted messages is
constant, by using fixed-size user and item identifiers, and padding
when necessary."  These helpers classify observed flows by hop and
verify the constant-size property, giving the test-suite (and
operators) a concrete leak detector.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.simnet.network import FlowRecord

__all__ = ["hop_of", "flow_size_profile", "constant_size_violations"]


def hop_of(record: FlowRecord) -> Tuple[str, str]:
    """Classify a flow's endpoints into role classes.

    Addresses follow the deployment naming scheme: ``client-*``,
    ``pprox-ua-*``, ``pprox-ia-*``, ``harness-fe-*`` / ``lrs-stub``.
    """

    def role(address: str) -> str:
        if address.startswith("client"):
            return "client"
        if address.startswith("pprox-ua"):
            return "ua"
        if address.startswith("pprox-ia"):
            return "ia"
        return "lrs"

    return role(record.source), role(record.destination)


def flow_size_profile(records: Sequence[FlowRecord]) -> Dict[Tuple[str, str], Set[int]]:
    """Distinct message sizes observed per hop class."""
    profile: Dict[Tuple[str, str], Set[int]] = defaultdict(set)
    for record in records:
        profile[hop_of(record)].add(record.size_bytes)
    return dict(profile)


def constant_size_violations(
    records: Sequence[FlowRecord],
    hops: Sequence[Tuple[str, str]] = (("client", "ua"), ("ua", "ia"), ("ia", "ua"), ("ua", "client")),
    tolerance: int = 0,
) -> List[str]:
    """Hops whose message sizes vary more than *tolerance* bytes.

    The protected hops are those between the client and the IA layer:
    sizes there must not depend on identifiers or list contents.
    (IA<->LRS flows are pseudonymous by construction, so their sizes
    need not be padded.)
    """
    profile = flow_size_profile(records)
    violations = []
    for hop in hops:
        sizes = profile.get(hop, set())
        if len(sizes) > 1 and max(sizes) - min(sizes) > tolerance:
            violations.append(f"{hop[0]}->{hop[1]}: sizes {sorted(sizes)}")
    return violations
