"""Wire-level indistinguishability checks (paper §4.3).

"We first ensure that the adversary cannot distinguish between
encrypted messages ... The size of all encrypted messages is
constant, by using fixed-size user and item identifiers, and padding
when necessary."  These helpers classify observed flows by hop and
verify the constant-size property, giving the test-suite (and
operators) a concrete leak detector.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Set, Tuple

from repro.simnet.network import FlowRecord

__all__ = [
    "hop_of",
    "flow_size_profile",
    "constant_size_violations",
    "epoch_tag_exposures",
    "trace_field_exposures",
    "shard_tag_exposures",
    "shard_routing_violations",
    "RejectAuditor",
]

#: Field names that would name a shard on the wire.  No hop may carry
#: any of them: shard membership is positional (which instance a
#: message reaches), never tagged.
SHARD_FIELD_NAMES = ("shard", "shard_id", "ring", "ring_point", "fleet")


def hop_of(record: FlowRecord) -> Tuple[str, str]:
    """Classify a flow's endpoints into role classes.

    Addresses follow the deployment naming scheme: ``client-*``,
    ``pprox-ua-*``, ``pprox-ia-*``, ``harness-fe-*`` / ``lrs-stub``.
    """

    def role(address: str) -> str:
        if address.startswith("client"):
            return "client"
        if address.startswith("pprox-ua"):
            return "ua"
        if address.startswith("pprox-ia"):
            return "ia"
        return "lrs"

    return role(record.source), role(record.destination)


def flow_size_profile(records: Sequence[FlowRecord]) -> Dict[Tuple[str, str], Set[int]]:
    """Distinct message sizes observed per hop class."""
    profile: Dict[Tuple[str, str], Set[int]] = defaultdict(set)
    for record in records:
        profile[hop_of(record)].add(record.size_bytes)
    return dict(profile)


def constant_size_violations(
    records: Sequence[FlowRecord],
    hops: Sequence[Tuple[str, str]] = (("client", "ua"), ("ua", "ia"), ("ia", "ua"), ("ua", "client")),
    tolerance: int = 0,
) -> List[str]:
    """Hops whose message sizes vary more than *tolerance* bytes.

    The protected hops are those between the client and the IA layer:
    sizes there must not depend on identifiers or list contents.
    (IA<->LRS flows are pseudonymous by construction, so their sizes
    need not be padded.)
    """
    profile = flow_size_profile(records)
    violations = []
    for hop in hops:
        sizes = profile.get(hop, set())
        if len(sizes) > 1 and max(sizes) - min(sizes) > tolerance:
            violations.append(f"{hop[0]}->{hop[1]}: sizes {sorted(sizes)}")
    return violations


def epoch_tag_exposures(
    observations: Sequence[Any],
    allowed_hops: Sequence[Tuple[str, str]] = (("client", "ua"),),
) -> List[str]:
    """Epoch tags observed on hops where they must never appear.

    During a live rotation the fixed-width epoch tag rides only the
    client->UA hop; the UA strips it *before* the request can enter a
    shuffle buffer, so ua->ia / ia->lrs / return traffic must be
    tag-free — otherwise the adversary could partition a shuffle batch
    by epoch and thin the anonymity set below ``S*I``.

    *observations* are wiretap captures with ``source``/``destination``
    and a ``fields`` dict (e.g. :class:`repro.privacy.adversary.
    ObservedMessage`); anything without fields is skipped.  Returns
    human-readable findings, empty when clean.
    """
    from repro.proxy.epochs import EPOCH_FIELD

    allowed = {tuple(hop) for hop in allowed_hops}
    violations: List[str] = []
    for obs in observations:
        fields = getattr(obs, "fields", None)
        if not fields or EPOCH_FIELD not in fields:
            continue
        hop = hop_of(obs)
        if hop in allowed:
            continue
        violations.append(
            f"{hop[0]}->{hop[1]}: epoch tag {fields[EPOCH_FIELD]!r} "
            f"visible at t={getattr(obs, 'time', '?')}"
        )
    return violations


def trace_field_exposures(
    observations: Sequence[Any],
    allowed_hops: Sequence[Tuple[str, str]] = (("client", "ua"),),
) -> List[str]:
    """Causal-trace ids observed on hops where they must never appear.

    The ``trace`` wire field (:mod:`repro.obs.tracewire`) rides only
    the client->UA hop; the UA front door strips it *before* admission
    and shuffling, so any trace id visible past the UA would let the
    adversary follow one request through the shuffler and collapse its
    anonymity set to 1.  Both the field name and the distinctive
    ``tw:`` value prefix are checked — a component that copied the id
    into a different field would still be caught.

    *observations* are wiretap captures with ``source``/``destination``
    and a ``fields`` dict; anything without fields is skipped.  Returns
    human-readable findings, empty when clean.
    """
    from repro.obs.tracewire import TRACE_FIELD, looks_like_trace_id

    allowed = {tuple(hop) for hop in allowed_hops}
    violations: List[str] = []
    for obs in observations:
        fields = getattr(obs, "fields", None)
        if not fields:
            continue
        leaks = [
            key
            for key, value in fields.items()
            if key == TRACE_FIELD or looks_like_trace_id(value)
        ]
        if not leaks:
            continue
        hop = hop_of(obs)
        if hop in allowed:
            continue
        violations.append(
            f"{hop[0]}->{hop[1]}: trace id under {sorted(leaks)} "
            f"visible at t={getattr(obs, 'time', '?')}"
        )
    return violations


def shard_tag_exposures(observations: Sequence[Any]) -> List[str]:
    """Shard-identity fields observed on any wire hop.

    The fleet's consistent-hash directory is control-plane state: a
    request reaches its shard because the client's balancer pick sent
    it there, not because any message says so.  A shard tag on any hop
    would hand the adversary a stable partition of the anonymity set
    (all requests of one shard), so — unlike the epoch tag — there is
    no allowed hop at all.
    """
    violations: List[str] = []
    for obs in observations:
        fields = getattr(obs, "fields", None)
        if not fields:
            continue
        leaks = [key for key in fields if key in SHARD_FIELD_NAMES]
        if not leaks:
            continue
        hop = hop_of(obs)
        violations.append(
            f"{hop[0]}->{hop[1]}: shard identity under {sorted(leaks)} "
            f"visible at t={getattr(obs, 'time', '?')}"
        )
    return violations


def shard_routing_violations(
    directory: Any, observations: Sequence[Any] = ()
) -> List[str]:
    """Audit a :class:`repro.fleet.ring.ShardDirectory`'s key hygiene.

    Three checks, all of which must come back empty:

    * the directory never accepted a non-int routing key (its key must
      be the per-attempt request nonce, so a user id, address or any
      other string can never steer shard placement);
    * every logged routing key is a positive int — the context's
      request-id counter starts at 1, so zero/negative keys would mean
      someone minted keys outside the nonce path;
    * no wire hop carries a shard-identity field
      (:func:`shard_tag_exposures`).
    """
    violations: List[str] = []
    for rejected in getattr(directory, "rejected_keys", ()):
        violations.append(f"directory refused non-nonce routing key {rejected}")
    for key in getattr(directory, "key_log", ()):
        if type(key) is not int or key <= 0:
            violations.append(f"routing key {key!r} is not a positive int nonce")
    violations.extend(shard_tag_exposures(observations))
    return violations


@dataclass
class RejectAuditor:
    """Payload-level uniformity audit of error replies on protected hops.

    The overload subsystem promises that *every* reject crossing a
    protected hop (ia->ua and ua->client) is the single canonical
    padded message — a shed must be indistinguishable from a brownout,
    a breaker trip or a transform failure.  :class:`FlowRecord` keeps
    sizes only, so this auditor rides the network's wiretap channel
    (``network.add_wiretap(auditor.observe)``) to inspect the payloads
    themselves while they are in flight.

    Hardened-hop deployments seal the ua->client body; there only the
    size can be checked (a sealed blob is opaque by design), which is
    why the per-hop size set is tracked independently of the field
    check.
    """

    #: Hops on which reject uniformity is enforced.
    hops: Tuple[Tuple[str, str], ...] = (("ia", "ua"), ("ua", "client"))
    #: Distinct reject wire-sizes seen per audited hop.
    reject_sizes: Dict[Tuple[str, str], Set[int]] = field(default_factory=dict)
    #: Non-canonical plaintext reject bodies seen per audited hop.
    offending_fields: Dict[Tuple[str, str], List[str]] = field(default_factory=dict)
    rejects_observed: int = 0

    def observe(self, record: FlowRecord, payload: Any) -> None:
        """Wiretap hook: inspect one in-flight message."""
        status = getattr(payload, "status", None)
        ok = getattr(payload, "ok", True)
        if status is None or ok:
            return
        hop = hop_of(record)
        if hop not in self.hops:
            return
        from repro.overload.shedding import is_uniform_reject

        self.rejects_observed += 1
        self.reject_sizes.setdefault(hop, set()).add(record.size_bytes)
        fields = getattr(payload, "fields", {})
        sealed = "sealed_resp" in fields
        if not sealed and not is_uniform_reject(payload):
            self.offending_fields.setdefault(hop, []).append(
                f"status={status} fields={sorted(fields)}"
            )

    def violations(self) -> List[str]:
        """Human-readable audit findings (empty means clean)."""
        found: List[str] = []
        for hop, sizes in sorted(self.reject_sizes.items()):
            if len(sizes) > 1:
                found.append(
                    f"{hop[0]}->{hop[1]}: rejects with distinct sizes {sorted(sizes)}"
                )
        for hop, offenders in sorted(self.offending_fields.items()):
            sample = offenders[0]
            found.append(
                f"{hop[0]}->{hop[1]}: {len(offenders)} non-canonical reject "
                f"bodies (e.g. {sample})"
            )
        return found
