"""History-based attack on shuffling (paper §6.3, "Limitations").

"An adversary targeting a specific IP address could collect over time
a series of associated sets of S queries to the LRS.  If the
corresponding user repeatedly receives the same recommendations ...
the adversary could identify recurrent pseudonymized item identifiers
and associate them with that IP address."

:class:`HistoryAttack` implements that intersection attack: each
round, the adversary observes the anonymity set of ``S`` response
item-sets that *might* belong to the target IP, and intersects the
candidate universe across rounds.  With a stable target profile, the
candidate set converges on the target's pseudonymized items; the
paper's proposed mitigation (hiding the client IP behind an HTTP
redirection) removes the per-round anonymity sets and defeats the
attack — both behaviours are covered by the test-suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set

__all__ = ["HistoryAttack", "HistoryAttackResult"]


@dataclass(frozen=True)
class HistoryAttackResult:
    """Outcome of an intersection campaign."""

    rounds: int
    candidates: FrozenSet[str]
    target_items: FrozenSet[str]

    @property
    def converged(self) -> bool:
        """True when the candidate set collapsed onto the target's items."""
        return bool(self.candidates) and self.candidates == self.target_items

    @property
    def precision(self) -> float:
        """|candidates ∩ target| / |candidates|."""
        if not self.candidates:
            return 0.0
        return len(self.candidates & self.target_items) / len(self.candidates)


@dataclass
class HistoryAttack:
    """Intersection attack against a target IP's recurring responses."""

    shuffle_size: int
    seed: int = 7
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def run(
        self,
        target_responses: Sequence[Set[str]],
        decoy_response_pool: Sequence[Set[str]],
    ) -> HistoryAttackResult:
        """Run one campaign.

        *target_responses* are the (pseudonymized) item sets returned
        to the target across rounds; each round the adversary sees the
        target's set mixed indistinguishably with ``S - 1`` decoy sets
        drawn from *decoy_response_pool*.  It intersects the union of
        each round's candidates across rounds.
        """
        if not target_responses:
            raise ValueError("need at least one round of responses")
        candidates: Optional[Set[str]] = None
        for target_set in target_responses:
            round_sets: List[Set[str]] = [set(target_set)]
            for _ in range(self.shuffle_size - 1):
                round_sets.append(set(self._rng.choice(decoy_response_pool)))
            self._rng.shuffle(round_sets)
            round_universe: Set[str] = set().union(*round_sets)
            candidates = round_universe if candidates is None else candidates & round_universe
        target_items: Set[str] = set().union(*[set(r) for r in target_responses])
        return HistoryAttackResult(
            rounds=len(target_responses),
            candidates=frozenset(candidates or set()),
            target_items=frozenset(target_items),
        )
