"""Adversary model and privacy analysis machinery (paper §6)."""

from repro.privacy.adversary import Adversary, ObservedMessage
from repro.privacy.history import HistoryAttack, HistoryAttackResult
from repro.privacy.linkage import LinkageOutcome, ShuffleLinkageExperiment
from repro.privacy.unlinkability import KnowledgeEngine, Link, fifo_correlation
from repro.privacy.wire import (
    RejectAuditor,
    constant_size_violations,
    flow_size_profile,
    hop_of,
    trace_field_exposures,
)

__all__ = [
    "Adversary",
    "ObservedMessage",
    "KnowledgeEngine",
    "Link",
    "fifo_correlation",
    "ShuffleLinkageExperiment",
    "LinkageOutcome",
    "HistoryAttack",
    "HistoryAttackResult",
    "constant_size_violations",
    "RejectAuditor",
    "flow_size_profile",
    "hop_of",
    "trace_field_exposures",
]
