"""The PProx adversary (paper §2.3, Figure 2 ➊-➍).

The adversary observes everything inside the RaaS cloud: all network
flows (metadata *and* bodies — it bypasses TLS), the full content of
the LRS database, and — after a successful side-channel campaign —
the sealed secrets of the enclaves of *one* proxy layer.  It does not
interfere with the system's functionality.

:class:`Adversary` collects those observations from a live
simulation; the inference machinery that turns observations + stolen
secrets into (user, item) links lives in
:mod:`repro.privacy.unlinkability`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.crypto.keys import LayerKeys
from repro.lrs.store import EventStore, FeedbackEvent
from repro.rest.codec import BatchEnvelope, WireFrame
from repro.rest.messages import Request, Response
from repro.sgx.enclave import Enclave
from repro.sgx.provisioning import IA_SECRET_K, IA_SECRET_SK, UA_SECRET_K, UA_SECRET_SK
from repro.sgx.sidechannel import SingleEnclaveInvariant
from repro.simnet.network import FlowRecord, Network

__all__ = ["ObservedMessage", "Adversary"]


@dataclass(frozen=True)
class ObservedMessage:
    """One wire observation: flow metadata plus the (encrypted) body.

    Deliberately excludes the simulator's ``request_id`` — that is
    harness bookkeeping the adversary must never exploit.  Joining
    observations across hops is only possible through field-value
    equality or timing, exactly as in the paper's model.
    """

    time: float
    source: str
    destination: str
    size_bytes: int
    kind: str  # "request" | "response"
    verb: Optional[str]
    fields: Dict[str, Any]
    status: Optional[int] = None


@dataclass
class Adversary:
    """Collects the full observation surface of the paper's adversary."""

    name: str = "adversary"
    observations: List[ObservedMessage] = field(default_factory=list)
    flow_records: List[FlowRecord] = field(default_factory=list)
    #: Stolen key material per layer ("UA" / "IA"); at most one layer
    #: may be live at a time (enforced via the invariant tracker).
    stolen: Dict[str, LayerKeys] = field(default_factory=dict)
    invariant: SingleEnclaveInvariant = field(default_factory=SingleEnclaveInvariant)
    lrs_store: Optional[EventStore] = None

    # -- observation capture -------------------------------------------

    def attach(self, network: Network) -> None:
        """Start observing all traffic on *network*."""
        network.add_observer(self.flow_records.append)
        network.add_wiretap(self._capture)

    def observe_lrs(self, store: EventStore) -> None:
        """Gain read access to the LRS database (Figure 2 ➋)."""
        self.lrs_store = store

    def _capture(self, record: FlowRecord, payload: Any) -> None:
        if isinstance(payload, WireFrame):
            # The adversary reads bodies (it bypasses TLS); a public
            # wire format is no obstacle, so decode the frame and mine
            # its fields like any JSON body.
            payload = payload.decode()
        if isinstance(payload, BatchEnvelope):
            # A sealed shuffle batch: one hybrid ciphertext.  The
            # simulator-side request ids/verbs riding on the object are
            # bookkeeping the adversary never sees.
            self.observations.append(
                ObservedMessage(
                    time=record.time,
                    source=record.source,
                    destination=record.destination,
                    size_bytes=record.size_bytes,
                    kind="request",
                    verb=None,
                    fields={"sealed_batch": payload.blob},
                )
            )
            return
        if isinstance(payload, Request):
            self.observations.append(
                ObservedMessage(
                    time=record.time,
                    source=record.source,
                    destination=record.destination,
                    size_bytes=record.size_bytes,
                    kind="request",
                    verb=payload.verb,
                    fields=dict(payload.fields),
                )
            )
        elif isinstance(payload, Response):
            self.observations.append(
                ObservedMessage(
                    time=record.time,
                    source=record.source,
                    destination=record.destination,
                    size_bytes=record.size_bytes,
                    kind="response",
                    verb=None,
                    fields=dict(payload.fields),
                    status=payload.status,
                )
            )

    # -- enclave compromise --------------------------------------------

    def harvest_enclave(self, layer: str, enclave: Enclave) -> None:
        """Record the secrets leaked by a compromised *layer* enclave.

        Raises :class:`repro.sgx.sidechannel.AttackModelError` if the
        adversary would end up holding live secrets of both layers —
        that is outside the paper's adversary model.
        """
        secrets = enclave.leak_secrets()
        self.invariant.record_leak(layer)
        if layer == "UA":
            self.stolen["UA"] = LayerKeys(
                private_key=secrets[UA_SECRET_SK],
                symmetric_key=secrets[UA_SECRET_K],
            )
        elif layer == "IA":
            self.stolen["IA"] = LayerKeys(
                private_key=secrets[IA_SECRET_SK],
                symmetric_key=secrets[IA_SECRET_K],
            )
        else:
            raise ValueError(f"unknown layer {layer!r}")

    def drop_secrets(self, layer: str) -> None:
        """Key rotation retired the stolen secrets of *layer*."""
        self.stolen.pop(layer, None)
        self.invariant.record_rotation(layer)

    # -- convenience views ----------------------------------------------

    @property
    def ua_keys(self) -> Optional[LayerKeys]:
        """Stolen UA secrets, if any."""
        return self.stolen.get("UA")

    @property
    def ia_keys(self) -> Optional[LayerKeys]:
        """Stolen IA secrets, if any."""
        return self.stolen.get("IA")

    def lrs_dump(self) -> List[FeedbackEvent]:
        """The database contents the adversary can read."""
        if self.lrs_store is None:
            return []
        return self.lrs_store.dump()

    def observed_client_addresses(self) -> Set[str]:
        """Client addresses visible from flows into the UA layer."""
        return {
            obs.source
            for obs in self.observations
            if obs.kind == "request" and obs.source.startswith("client")
        }

    def messages_at(self, address_prefix: str) -> List[ObservedMessage]:
        """Observations into or out of addresses with a given prefix."""
        return [
            obs
            for obs in self.observations
            if obs.source.startswith(address_prefix)
            or obs.destination.startswith(address_prefix)
        ]

    def pseudonyms_observed(
        self,
        hops: Any = (("ua", "ia"), ("ia", "lrs")),
        since: float = 0.0,
        until: Optional[float] = None,
    ) -> Dict[str, Set[str]]:
        """Distinct user/item pseudonym strings seen on the inner hops.

        The cross-epoch linkage probe: collect the pseudonym sets the
        adversary observed before and after a key rotation and check
        they are disjoint — under the new symmetric keys, no wire
        identifier from the old epoch should ever reappear, so a key
        thief who harvested pre-rotation traffic cannot join it with
        post-rotation traffic by field-value equality.
        """
        from repro.privacy.wire import hop_of

        wanted = {tuple(hop) for hop in hops}
        seen: Dict[str, Set[str]] = {"user": set(), "item": set()}
        for obs in self.observations:
            if obs.kind != "request":
                continue
            if obs.time < since or (until is not None and obs.time > until):
                continue
            if hop_of(obs) not in wanted:
                continue
            for name in ("user", "item"):
                value = obs.fields.get(name)
                if isinstance(value, str):
                    seen[name].add(value)
        return seen
