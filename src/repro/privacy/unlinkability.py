"""Mechanical User-Interest unlinkability checking (paper §6.1).

:class:`KnowledgeEngine` computes the *closure* of what the adversary
can derive from its observation surface: it applies every stolen key
to every observed field, reads the LRS database with whatever
pseudonym keys it holds, exploits traffic correlations where the
deployment permits them (no shuffling), and finally reports every
``(user identity, cleartext item)`` pair it could establish.

A user identity is either a user identifier recovered by decryption
or a client network address (the paper counts "their identifier or
any unique characteristic, e.g., their IP address" as identifying).

The six cases of §6.1 are reproduced by configuring which layer's
secrets the engine holds; the test-suite asserts the closure is empty
in every single-layer-compromise case and demonstrates non-emptiness
when the model's assumptions are broken (both layers compromised, or
shuffling disabled under traffic correlation).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto.envelope import (
    FIXED_ID_BYTES,
    EnvelopeCodec,
    decode_identifier,
    strip_padding_items,
    _unb64,
)
from repro.crypto.keys import LayerKeys
from repro.crypto.provider import CryptoProvider
from repro.lrs.store import FeedbackEvent
from repro.privacy.adversary import Adversary, ObservedMessage
from repro.rest.codec import BINARY_WIRE_CODEC

__all__ = ["KnowledgeEngine", "Link", "fifo_correlation"]

Link = Tuple[str, str]  # (user identity, cleartext item)


def _try(fn, *args):
    """Run a decryption attempt; failures simply yield None."""
    try:
        return fn(*args)
    except Exception:
        return None


def _material(value: Any) -> Optional[bytes]:
    """A wire field as ciphertext bytes, whatever the codec.

    The JSON codec carries blobs base64-encoded; the binary codec
    carries them raw.  ``None`` means the value is not blob material
    (e.g. a cleartext identifier under a no-encryption config).
    """
    if isinstance(value, (bytes, bytearray, memoryview)):
        return bytes(value)
    if isinstance(value, str):
        return _try(_unb64, value)
    return None


def fifo_correlation(
    requests: Sequence[ObservedMessage], responses: Sequence[ObservedMessage]
) -> List[Tuple[ObservedMessage, ObservedMessage]]:
    """Pair requests and responses by arrival order.

    This models the traffic-correlation attack of §4.3: when a proxy
    layer forwards in FIFO order (no shuffling), the adversary matches
    the i-th inbound message with the i-th outbound one.  Under
    shuffling the ordering carries no information and this pairing is
    wrong with probability (S-1)/S — the engine must then not be fed
    such a correlation.
    """
    return list(zip(requests, responses))


@dataclass
class KnowledgeEngine:
    """Derives all (user, item) links obtainable by the adversary."""

    provider: CryptoProvider
    ua_keys: Optional[LayerKeys] = None
    ia_keys: Optional[LayerKeys] = None
    #: The application's public item catalog; cleartext item fields
    #: (item pseudonymization disabled) resolve through membership.
    catalog: Set[str] = field(default_factory=set)

    @classmethod
    def for_adversary(cls, adversary: Adversary, provider: CryptoProvider,
                      catalog: Optional[Set[str]] = None) -> "KnowledgeEngine":
        """Build an engine from a live adversary's stolen material."""
        return cls(
            provider=provider,
            ua_keys=adversary.ua_keys,
            ia_keys=adversary.ia_keys,
            catalog=catalog or set(),
        )

    # -- field resolution ------------------------------------------------

    def resolve_user(self, value: Any) -> Optional[str]:
        """Try to turn a ``user`` field into a cleartext identifier."""
        if isinstance(value, str) and self.catalog and value in self.catalog:
            return None  # an item, not a user
        blob = _material(value)
        if blob is None:
            # Cleartext user id (encryption disabled): identity as-is.
            return value if isinstance(value, str) else None
        # Plain-encoded identifier (hardened envelopes carry the user
        # id base64-encoded but not separately encrypted).
        decoded = _try(decode_identifier, blob)
        if decoded is not None:
            return decoded
        if self.ua_keys is not None:
            plain = _try(self.provider.asym_decrypt, self.ua_keys, blob)
            if plain is not None:
                decoded = _try(decode_identifier, plain)
                if decoded is not None:
                    return decoded
            plain = _try(self.provider.depseudonymize, self.ua_keys.symmetric_key, blob)
            if plain is not None:
                decoded = _try(decode_identifier, plain)
                if decoded is not None:
                    return decoded
        return None

    def resolve_item(self, value: Any) -> Optional[str]:
        """Try to turn an ``item`` field into a cleartext identifier."""
        if isinstance(value, str) and value in self.catalog:
            # Cleartext item (pseudonymization disabled): read directly.
            return value
        blob = _material(value)
        if blob is None:
            return None
        if self.ia_keys is not None:
            plain = _try(self.provider.asym_decrypt, self.ia_keys, blob)
            if plain is not None:
                decoded = _try(decode_identifier, plain)
                if decoded is not None:
                    return decoded
            plain = _try(self.provider.depseudonymize, self.ia_keys.symmetric_key, blob)
            if plain is not None:
                decoded = _try(decode_identifier, plain)
                if decoded is not None:
                    return decoded
        return None

    def resolve_temporary_key(self, value: Any) -> Optional[bytes]:
        """Recover ``k_u`` from a ``tmpkey`` field (needs IA secrets)."""
        if self.ia_keys is None:
            return None
        blob = _material(value)
        if blob is None:
            return None
        return _try(self.provider.asym_decrypt, self.ia_keys, blob)

    def unseal(self, fields: Dict[str, Any]) -> Tuple[Dict[str, Any], Optional[bytes]]:
        """Open a hardened-hop envelope with stolen UA secrets.

        Returns the inner fields plus the client's response key, or
        ``(fields, None)`` unchanged when nothing can be opened.
        """
        if self.ua_keys is None:
            return fields, None
        blob = _material(fields.get("sealed"))
        if blob is None:
            return fields, None
        plain = _try(self.provider.asym_decrypt, self.ua_keys, blob)
        if plain is None:
            return fields, None
        # Binary-codec envelope: self-describing field entries.
        unpacked = _try(BINARY_WIRE_CODEC.unpack_envelope, plain)
        if unpacked is not None:
            return unpacked
        payload = _try(json.loads, plain.decode("utf-8", errors="replace"))
        if not isinstance(payload, dict):
            return fields, None
        inner = payload.get("fields")
        response_key = _try(_unb64, payload.get("resp_key", ""))
        return (inner if isinstance(inner, dict) else fields), response_key

    def harvest_keys(
        self, observations: Sequence[ObservedMessage]
    ) -> Tuple[List[bytes], List[bytes]]:
        """All temporary keys and response keys recoverable on the wire.

        With ``skIA``, every ``tmpkey`` field yields a ``k_u``; with
        ``skUA``, every sealed envelope yields the response key.  The
        adversary can then attempt *trial decryption* of any observed
        blob against the full harvested key set — no per-request
        correlation needed.
        """
        temporary_keys: List[bytes] = []
        response_keys: List[bytes] = []
        for message in observations:
            fields, response_key = self.unseal(message.fields)
            if response_key is not None:
                response_keys.append(response_key)
            key = self.resolve_temporary_key(fields.get("tmpkey"))
            if key is not None:
                temporary_keys.append(key)
            for inner in self.open_batch_frames(message.fields):
                key = self.resolve_temporary_key(inner.get("tmpkey"))
                if key is not None:
                    temporary_keys.append(key)
        return temporary_keys, response_keys

    def open_batch_frames(self, fields: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Open a ``sealed_batch`` blob with stolen IA secrets.

        Batch-envelope mode seals a whole shuffle flush under ``pkIA``;
        an adversary holding ``skIA`` recovers every inner request's
        fields (exactly what a compromised IA enclave would see).
        Without those secrets the blob is opaque and yields nothing.
        """
        blob = _material(fields.get("sealed_batch"))
        if blob is None or self.ia_keys is None:
            return []
        opener = EnvelopeCodec(self.provider)
        frames = _try(opener.open_batch, self.ia_keys, blob)
        if frames is None:
            return []
        inner_fields: List[Dict[str, Any]] = []
        for frame in frames:
            decoded = _try(BINARY_WIRE_CODEC.decode_request, frame)
            if decoded is not None:
                inner_fields.append(dict(decoded.fields))
        return inner_fields

    def _trial_decrypt_items(self, blob_field: Any, keys: Sequence[bytes]) -> List[str]:
        """Try every harvested key against an encrypted item list."""
        blob = _material(blob_field)
        if blob is None:
            return []
        for key in keys:
            plain = _try(self.provider.sym_decrypt, key, blob)
            if plain is None:
                continue
            decoded = _try(json.loads, plain.decode("utf-8", errors="replace"))
            if isinstance(decoded, list) and all(isinstance(i, str) for i in decoded):
                items = []
                for entry in decoded:
                    raw = _try(_unb64, entry)
                    text = _try(decode_identifier, raw) if raw is not None else None
                    items.append(text if text is not None else entry)
                return strip_padding_items(items)
            # Binary-codec item payload: a raw concatenation of
            # fixed-size encoded identifiers (no base64, no JSON).
            if len(plain) and len(plain) % FIXED_ID_BYTES == 0:
                items = []
                for start in range(0, len(plain), FIXED_ID_BYTES):
                    text = _try(decode_identifier, plain[start:start + FIXED_ID_BYTES])
                    if text is None:
                        items = None
                        break
                    items.append(text)
                if items is not None:
                    return strip_padding_items(items)
        return []

    def resolve_items_list(self, message: ObservedMessage,
                           temporary_key: Optional[bytes] = None) -> List[str]:
        """All cleartext items extractable from a response message."""
        items: List[str] = []
        for value in message.fields.get("items", []):
            resolved = self.resolve_item(value)
            if resolved is not None:
                items.append(resolved)
        blob_field = message.fields.get("blob")
        if blob_field is not None and temporary_key is not None:
            items.extend(self._trial_decrypt_items(blob_field, [temporary_key]))
        return items

    # -- identity from metadata -------------------------------------------

    @staticmethod
    def message_identity(message: ObservedMessage) -> Optional[str]:
        """Client identity visible from flow endpoints, if any."""
        if message.source.startswith("client"):
            return message.source
        if message.destination.startswith("client"):
            return message.destination
        return None

    # -- closure ------------------------------------------------------------

    def derive_links(
        self,
        observations: Sequence[ObservedMessage],
        lrs_dump: Sequence[FeedbackEvent] = (),
        correlations: Sequence[Tuple[ObservedMessage, ObservedMessage]] = (),
    ) -> Set[Link]:
        """The full set of (identity, item) links the adversary gets."""
        links: Set[Link] = set()
        temporary_keys, response_keys = self.harvest_keys(observations)

        # 1. Per-message: both sides resolvable within one observation.
        for message in observations:
            fields, _ = self.unseal(message.fields)
            # Batch envelopes: with skIA the whole flush opens, and
            # every inner request is mined like a direct observation
            # (exactly what a compromised IA enclave would see).
            for inner in self.open_batch_frames(fields):
                inner_identity = self.resolve_user(inner.get("user"))
                if inner_identity is None:
                    inner_identity = self.message_identity(message)
                if inner_identity is None:
                    continue
                inner_item = self.resolve_item(inner.get("item"))
                if inner_item is not None:
                    links.add((inner_identity, inner_item))
            identity = self.resolve_user(fields.get("user"))
            if identity is None:
                identity = self.message_identity(message)
            if identity is None:
                continue
            item = self.resolve_item(fields.get("item"))
            if item is not None:
                links.add((identity, item))
            temporary_key = self.resolve_temporary_key(fields.get("tmpkey"))
            for resolved in self.resolve_items_list(message, temporary_key):
                links.add((identity, resolved))
            # Trial decryption with every harvested key: a response
            # blob travelling next to a client address falls to the
            # full set of k_u keys recovered anywhere on the wire.
            inner_fields = fields
            blob = _material(fields.get("sealed_resp"))
            if blob is not None:
                for key in response_keys:
                    plain = _try(self.provider.sym_decrypt, key, blob)
                    if plain is None:
                        continue
                    decoded = _try(BINARY_WIRE_CODEC.unpack_response_fields, plain)
                    if decoded is None:
                        decoded = _try(
                            json.loads, plain.decode("utf-8", errors="replace")
                        )
                    if isinstance(decoded, dict):
                        inner_fields = decoded
                        break
            for resolved in self._trial_decrypt_items(
                inner_fields.get("blob"), temporary_keys
            ):
                links.add((identity, resolved))

        # 2. LRS database: pseudonymous rows, resolvable per layer key.
        for event in lrs_dump:
            identity = self.resolve_user(event.user)
            item = self.resolve_item(event.item)
            if identity is not None and item is not None:
                links.add((identity, item))

        # 3. Traffic correlation: identity from one side of the pair,
        #    items from the other.
        for request, response in correlations:
            identity = self.resolve_user(request.fields.get("user"))
            if identity is None:
                identity = self.message_identity(request)
            if identity is None:
                continue
            item = self.resolve_item(response.fields.get("item"))
            if item is not None:
                links.add((identity, item))
            item = self.resolve_item(request.fields.get("item"))
            if item is not None:
                links.add((identity, item))
            temporary_key = self.resolve_temporary_key(request.fields.get("tmpkey"))
            for resolved in self.resolve_items_list(response, temporary_key):
                links.add((identity, resolved))

        return links
