"""Overload scenario: graceful degradation past saturation.

PProx promises SLA-grade latency; this scenario measures what happens
when the offered load *exceeds* capacity, with and without the
:mod:`repro.overload` protection stack armed.  The sweep runs the same
seeded workload at a sub-capacity, saturation and 2x-capacity offered
rate against two deployments:

* **protected** — bounded ingress queues with a shed policy, admission
  control at the UA front door, client deadline budgets propagated
  hop-by-hop, and the breaker/limiter :class:`~repro.overload.guard.
  GuardedLrs` on the IA->LRS edge;
* **baseline** — the identical deployment with ``overload=None``
  (legacy unbounded behaviour).

Acceptance (encoded in :meth:`OverloadResult.problems`):

* at 2x capacity the protected deployment's goodput stays within 20%
  of its saturation goodput (the baseline's collapses under queueing
  and retry amplification);
* the p99 latency of *admitted* requests stays bounded while the
  baseline's diverges;
* privacy holds through the episode: every shuffle flush during the
  overloaded window still carries at least ``S`` entries (sheds are
  pre-shuffle only), every reject on a protected hop is the single
  canonical padded message (:class:`~repro.privacy.wire.
  RejectAuditor`), and the role-aware redaction audit is clean over
  the shed/reject event stream.

Determinism: each load point runs in a fresh
:class:`~repro.context.SimContext` derived from the same seed, so a
fixed seed reproduces identical counters (and, in a fresh process,
byte-identical telemetry artifacts — request-id allocation is
process-global, which is why the CI job diffs two invocations).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.context import Deployment, SimContext
from repro.lrs.stub import StubLrs, make_pseudonymous_payload
from repro.obs.slo import Objective, SloEngine, histogram_quantile
from repro.overload import GuardedLrs, OverloadPolicy
from repro.privacy.wire import RejectAuditor
from repro.proxy.config import PProxConfig
from repro.proxy.costs import DEFAULT_COSTS, ProxyCostModel
from repro.simnet.metrics import LatencyRecorder, percentile
from repro.telemetry import Telemetry, instrument_stack
from repro.workload.injector import Injector

__all__ = [
    "LoadPoint",
    "OverloadResult",
    "run_overload",
    "overload_slo_objectives",
    "default_overload_config",
    "default_overload_policy",
    "overload_cost_model",
    "DEFAULT_CAPACITY_RPS",
    "GOODPUT_RETENTION_FLOOR",
]

#: Estimated per-pair saturation rate under :func:`overload_cost_model`
#: (one UA + one IA node, 2 cores each, costs inflated 4x to keep the
#: sweep cheap).  The sweep multiplies this by 0.5 / 1.0 / 2.0.
DEFAULT_CAPACITY_RPS = 85.0

#: Protected goodput at 2x capacity must stay within this fraction of
#: the saturation goodput.
GOODPUT_RETENTION_FLOOR = 0.8


def default_overload_config() -> PProxConfig:
    """One instance per layer so the capacity cliff is sharp."""
    return PProxConfig(
        ua_instances=1,
        ia_instances=1,
        shuffle_size=4,
        shuffle_timeout=0.2,
        balancing="round-robin",
    )


def overload_cost_model(slowdown: float = 4.0) -> ProxyCostModel:
    """The calibrated cost model, uniformly slowed.

    Inflating per-leg core costs lowers the saturation point to
    ~:data:`DEFAULT_CAPACITY_RPS`, so driving the deployment to 2x
    capacity needs hundreds of virtual requests instead of thousands —
    the physics of the overload episode is unchanged, only cheaper.
    """
    base = DEFAULT_COSTS
    return replace(
        base,
        parse_seconds=base.parse_seconds * slowdown,
        forward_seconds=base.forward_seconds * slowdown,
        rsa_decrypt_seconds=base.rsa_decrypt_seconds * slowdown,
        det_id_seconds=base.det_id_seconds * slowdown,
        det_item_seconds=base.det_item_seconds * slowdown,
        list_encrypt_seconds=base.list_encrypt_seconds * slowdown,
    )


def default_overload_policy() -> OverloadPolicy:
    """Protection knobs matched to the default sweep's scale."""
    return OverloadPolicy(
        ingress_capacity=64,
        shed_policy="codel",
        codel_target=0.05,
        codel_interval=0.1,
        max_inflight=16,
        admission_max_sojourn=0.25,
        breaker_failure_threshold=5,
        breaker_reset_timeout=0.5,
    )


@dataclass
class LoadPoint:
    """Measured outcome of one (offered load, protection) cell."""

    offered_rps: float
    protected: bool
    issued: int = 0
    completed: int = 0
    failed: int = 0
    timeouts: int = 0
    retries_performed: int = 0
    shed_total: int = 0
    shed_by_stage: Dict[str, int] = field(default_factory=dict)
    guard_rejections: int = 0
    breaker_trips: int = 0
    goodput_rps: float = 0.0
    p50_seconds: float = 0.0
    p99_seconds: float = 0.0
    #: Smallest shuffle flush observed while the load was offered.
    min_flush_during_load: Optional[int] = None
    #: min flush x IA instances (the S*I anonymity bound's floor).
    anonymity_floor: float = 0.0
    required_anonymity: float = 0.0
    audit_violations: int = 0
    reject_audit: List[str] = field(default_factory=list)
    #: SLO verdict (:class:`repro.obs.slo.SloReport`) when the cell ran
    #: under an engine; excluded from ``to_dict`` — callers write it as
    #: its own ``slo.json`` artifact.
    slo_report: Optional[Any] = None

    @property
    def shed_rate(self) -> float:
        """Sheds per issued call (client-visible attempts excluded)."""
        return self.shed_total / self.issued if self.issued else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "offered_rps": self.offered_rps,
            "protected": self.protected,
            "issued": self.issued,
            "completed": self.completed,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "retries_performed": self.retries_performed,
            "shed_total": self.shed_total,
            "shed_by_stage": dict(sorted(self.shed_by_stage.items())),
            "shed_rate": round(self.shed_rate, 4),
            "guard_rejections": self.guard_rejections,
            "breaker_trips": self.breaker_trips,
            "goodput_rps": round(self.goodput_rps, 3),
            "p50_seconds": round(self.p50_seconds, 5),
            "p99_seconds": round(self.p99_seconds, 5),
            "min_flush_during_load": self.min_flush_during_load,
            "anonymity_floor": self.anonymity_floor,
            "required_anonymity": self.required_anonymity,
            "audit_violations": self.audit_violations,
            "reject_audit": list(self.reject_audit),
        }


@dataclass
class OverloadResult:
    """Outcome of the full offered-load sweep."""

    seed: int
    duration: float
    capacity_rps: float
    shuffle_size: int
    points: List[LoadPoint] = field(default_factory=list)
    #: The headline cell's SLO verdict (protected deployment at the
    #: highest multiplier), when the sweep ran with an engine.
    slo_report: Optional[Any] = None

    def point(self, *, protected: bool, multiplier: float) -> Optional[LoadPoint]:
        """The cell at ``capacity_rps * multiplier`` for one variant."""
        target = self.capacity_rps * multiplier
        for candidate in self.points:
            if candidate.protected == protected and abs(candidate.offered_rps - target) < 1e-9:
                return candidate
        return None

    def problems(self) -> List[str]:
        """Acceptance-check failures (empty when the episode passed)."""
        found: List[str] = []
        saturation = self.point(protected=True, multiplier=1.0)
        overloaded = self.point(protected=True, multiplier=2.0)
        baseline = self.point(protected=False, multiplier=2.0)
        if saturation is None or overloaded is None:
            return ["sweep did not cover the 1x and 2x protected points"]
        floor = GOODPUT_RETENTION_FLOOR * saturation.goodput_rps
        if overloaded.goodput_rps < floor:
            found.append(
                f"protected goodput at 2x ({overloaded.goodput_rps:.1f} rps) fell"
                f" below {GOODPUT_RETENTION_FLOOR:.0%} of saturation"
                f" ({saturation.goodput_rps:.1f} rps)"
            )
        if overloaded.shed_total == 0:
            found.append("2x offered load never triggered a shed")
        if baseline is not None and baseline.completed and overloaded.completed:
            if overloaded.p99_seconds >= baseline.p99_seconds:
                found.append(
                    f"protected p99 ({overloaded.p99_seconds:.3f}s) did not improve"
                    f" on the unprotected baseline ({baseline.p99_seconds:.3f}s)"
                )
        for point in self.points:
            if not point.protected:
                continue
            if point.min_flush_during_load is not None and (
                point.anonymity_floor < point.required_anonymity
            ):
                found.append(
                    f"anonymity floor {point.anonymity_floor:.0f} fell below"
                    f" S*I={point.required_anonymity:.0f} at"
                    f" {point.offered_rps:.0f} rps (a shed thinned a batch)"
                )
            if point.audit_violations:
                found.append(
                    f"redaction audit found {point.audit_violations} leak(s)"
                    f" at {point.offered_rps:.0f} rps"
                )
            if point.reject_audit:
                found.append(
                    f"reject uniformity violated at {point.offered_rps:.0f} rps:"
                    f" {point.reject_audit[0]}"
                )
        return found

    @property
    def ok(self) -> bool:
        return not self.problems()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "duration": self.duration,
            "capacity_rps": self.capacity_rps,
            "shuffle_size": self.shuffle_size,
            "points": [point.to_dict() for point in self.points],
        }


def overload_slo_objectives(
    required_anonymity: float,
    goodput_floor: float = 0.35,
    shed_ceiling: float = 3.0,
    p99_ceiling: float = 2.5,
) -> List[Objective]:
    """The overload episode's objectives, judged on the headline cell.

    The headline cell offers 2x capacity, so the goodput *ratio*
    (completed/issued) is structurally ~0.5 even when protection works
    perfectly — the floor budgets for that, it is not an availability
    promise.  The shed-rate ceiling bounds retry amplification, not
    shedding itself: sheds count every dropped *attempt* at every stage
    (ingress, admission, guard), so past saturation the rate sits well
    above 1 by design; a runaway retry storm would push it past the
    ceiling.  The anonymity floor, by contrast, is a hard floor: sheds
    are pre-shuffle only, so even under 2x load every released batch
    must still carry S entries (min flush x I >= S*I).
    """
    return [
        Objective(
            name="goodput",
            kind="ratio",
            target=goodput_floor,
            good="completed",
            total="issued",
            description="Fraction of issued calls completed at 2x offered load.",
        ),
        Objective(
            name="anonymity_floor",
            kind="floor",
            target=required_anonymity,
            value="anonymity_floor",
            description="min shuffle flush x IA instances during the load window.",
        ),
        Objective(
            name="shed_rate",
            kind="ceiling",
            target=shed_ceiling,
            value="shed_rate",
            description="Sheds per issued call (protection must not shed everything).",
        ),
        Objective(
            name="p99_latency_seconds",
            kind="ceiling",
            target=p99_ceiling,
            value="p99_latency_seconds",
            description="p99 of admitted requests' end-to-end latency.",
        ),
    ]


def _run_point(
    seed: int,
    rps: float,
    duration: float,
    grace: float,
    *,
    protected: bool,
    config: PProxConfig,
    policy: OverloadPolicy,
    costs: ProxyCostModel,
    telemetry: Telemetry,
    run_label: str,
    enforce_full_batches: bool,
    slo: Optional[SloEngine] = None,
) -> LoadPoint:
    """One cell of the sweep, in a fresh simulation context."""
    ctx = SimContext.fresh(seed, costs=costs, telemetry=telemetry)
    telemetry.bind(ctx.loop, run_label=run_label)

    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    guard: Optional[GuardedLrs] = None
    if protected:
        guard = GuardedLrs(
            inner=stub,
            breaker=policy.make_breaker(clock=lambda: ctx.loop.now),
            limiter=policy.make_limiter(),
            telemetry=telemetry,
        )
    backend: Any = guard if guard is not None else stub
    deployment = Deployment.build(
        ctx=ctx,
        config=config,
        lrs_picker=lambda: backend,
        overload=policy if protected else None,
    )
    service = deployment.service
    if config.encryption and config.item_pseudonymization:
        stub.items = make_pseudonymous_payload(
            ctx.resolved_provider(), service.provisioner.layer_keys["IA"].symmetric_key
        )

    client = deployment.client(
        request_timeout=0.5,
        max_retries=2,
        backoff_base=0.05,
        backoff_jitter=0.02,
        deadline_budget=0.8 if protected else None,
    )

    auditor = RejectAuditor()
    ctx.network.add_wiretap(auditor.observe)

    injector = Injector(
        loop=ctx.loop, rng=ctx.rng.stream("injector"),
        recorder=LatencyRecorder("overload"),
    )
    instrument_stack(
        telemetry,
        service=service,
        provider=ctx.resolved_provider(),
        lrs=stub,
        injector=injector,
        network=ctx.network,
        client=client,
        guard=guard,
    )

    # Track flush sizes while the load is offered, *after*
    # instrument_stack (instrument_service overwrites on_flush; chain
    # behind it, never replace it).
    flushes: List[Tuple[float, int]] = []
    buffers = [b for b in (
        [i.request_buffer for i in service.ua_instances]
        + [i.response_buffer for i in service.ia_instances]
    ) if b is not None]
    for buffer in buffers:
        previous = buffer.on_flush

        def chained(size, timer_fired, _prev=previous):
            flushes.append((ctx.loop.now, size))
            if _prev is not None:
                _prev(size, timer_fired)

        buffer.on_flush = chained

    users = [f"user-{index}" for index in range(200)]
    user_rng = ctx.rng.stream("users")

    def issue(on_complete) -> None:
        client.get(user_rng.choice(users), on_complete=on_complete)

    start, end = injector.inject(rps, duration, issue)

    if slo is not None:
        if slo.telemetry is None:
            slo.telemetry = telemetry
        ia_count = len(service.ia_instances)
        latency_hist = telemetry.registry.histogram(
            "pprox_request_latency_seconds",
            "End-to-end client-observed request latency.",
        )

        def anonymity_floor_source() -> Optional[float]:
            during = [size for when, size in flushes if start <= when <= end]
            if not during:
                return None
            return float(min(during) * ia_count)

        def shed_source() -> Optional[float]:
            issued = injector.report.issued
            if not issued:
                return None
            total = sum(
                count
                for instance in service.ua_instances + service.ia_instances
                for count in instance.shed_totals.values()
            )
            if guard is not None:
                total += (
                    guard.breaker_rejections
                    + guard.limiter_rejections
                    + guard.expired_rejections
                )
            return total / issued

        slo.track("issued", lambda: injector.report.issued)
        slo.track("completed", lambda: injector.report.completed)
        slo.track("anonymity_floor", anonymity_floor_source)
        slo.track("shed_rate", shed_source)
        slo.track(
            "p99_latency_seconds", lambda: histogram_quantile(latency_hist, 0.99)
        )
        # Bounded at the drain horizon (the telemetry scraper also
        # re-arms while work is pending; two unbounded tickers would
        # keep each other alive and the final run() would never drain).
        slo.attach(ctx.loop, until=end + grace)

    ctx.loop.run_until(end + grace)
    ctx.loop.run()

    instances = service.ua_instances + service.ia_instances
    shed_by_stage: Dict[str, int] = {}
    for instance in instances:
        for (stage, _reason), count in instance.shed_totals.items():
            shed_by_stage[stage] = shed_by_stage.get(stage, 0) + count
    guard_rejections = 0
    breaker_trips = 0
    if guard is not None:
        guard_rejections = (
            guard.breaker_rejections + guard.limiter_rejections + guard.expired_rejections
        )
        breaker_trips = guard.breaker.trips
        if guard_rejections:
            shed_by_stage["lrs_guard"] = (
                shed_by_stage.get("lrs_guard", 0) + guard_rejections
            )

    latencies = sorted(injector.recorder.trimmed(start, end))
    during_load = [size for when, size in flushes if start <= when <= end]
    min_flush = min(during_load) if during_load else None
    point = LoadPoint(
        offered_rps=rps,
        protected=protected,
        issued=injector.report.issued,
        completed=injector.report.completed,
        failed=injector.report.failed,
        timeouts=client.timeouts,
        retries_performed=client.retries_performed,
        shed_total=sum(shed_by_stage.values()),
        shed_by_stage=shed_by_stage,
        guard_rejections=guard_rejections,
        breaker_trips=breaker_trips,
        goodput_rps=injector.report.completed / duration if duration else 0.0,
        p50_seconds=percentile(latencies, 0.50) if latencies else 0.0,
        p99_seconds=percentile(latencies, 0.99) if latencies else 0.0,
        min_flush_during_load=min_flush if enforce_full_batches else None,
        anonymity_floor=(
            (min_flush or 0) * len(service.ia_instances)
            if enforce_full_batches
            else 0.0
        ),
        required_anonymity=float(config.shuffle_size * len(service.ia_instances)),
        audit_violations=len(telemetry.audit()),
        reject_audit=auditor.violations(),
    )
    if slo is not None:
        point.slo_report = slo.evaluate(
            overload_slo_objectives(point.required_anonymity), experiment="overload"
        )
    return point


def run_overload(
    seed: int = 7,
    duration: float = 6.0,
    *,
    capacity_rps: float = DEFAULT_CAPACITY_RPS,
    multipliers: Tuple[float, ...] = (0.5, 1.0, 2.0),
    config: Optional[PProxConfig] = None,
    policy: Optional[OverloadPolicy] = None,
    costs: Optional[ProxyCostModel] = None,
    telemetry: Optional[Telemetry] = None,
    slo: Optional[SloEngine] = None,
    grace: float = 3.0,
) -> OverloadResult:
    """Run the offered-load sweep and return its :class:`OverloadResult`.

    The caller's *telemetry* hub (if any) collects the final, headline
    cell — the protected deployment at the highest multiplier — so the
    written artifact describes a real overload episode.  Earlier cells
    run under private hubs (each is a separate deployment; mixing their
    instruments in one registry would alias instance names).  An *slo*
    engine likewise samples only the headline cell and leaves its
    verdict in ``result.slo_report``.
    """
    pprox_config = config if config is not None else default_overload_config()
    overload_policy = policy if policy is not None else default_overload_policy()
    cost_model = costs if costs is not None else overload_cost_model()
    result = OverloadResult(
        seed=seed,
        duration=duration,
        capacity_rps=capacity_rps,
        shuffle_size=pprox_config.shuffle_size,
    )
    cells: List[Tuple[float, bool]] = []
    for multiplier in multipliers:
        cells.append((multiplier, False))
        cells.append((multiplier, True))
    last_protected = max(m for m, _p in cells)
    for multiplier, protected in cells:
        headline = protected and multiplier == last_protected
        hub = (
            telemetry
            if (telemetry is not None and headline)
            else Telemetry(scrape_interval=1.0)
        )
        variant = "protected" if protected else "baseline"
        point = _run_point(
            seed,
            capacity_rps * multiplier,
            duration,
            grace,
            protected=protected,
            config=pprox_config,
            policy=overload_policy,
            costs=cost_model,
            telemetry=hub,
            run_label=f"overload/seed{seed}/{variant}/x{multiplier:g}",
            enforce_full_batches=protected and multiplier >= 1.0,
            slo=slo if headline else None,
        )
        result.points.append(point)
        if headline:
            result.slo_report = point.slo_report
        if telemetry is not None and headline:
            telemetry.finalize_run(
                extra={
                    "scenario": "overload",
                    "seed": seed,
                    **result.to_dict(),
                }
            )
    return result
