"""Rendering of reproduced figures and tables as text reports.

Produces the rows that EXPERIMENTS.md records and the console output
of the benchmark harness: one candlestick summary per
(configuration, RPS) pair, in the format of the paper's figures.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.deployments import (
    MACRO_BASELINES,
    MACRO_FULL,
    MICRO_CONFIGS,
    MacroConfig,
    MicroConfig,
)
from repro.experiments.figures import FigureData

__all__ = [
    "render_figure",
    "render_table2",
    "render_table3",
    "render_medians",
    "render_telemetry",
]


def render_figure(data: FigureData, unit_scale: float = 1000.0) -> str:
    """Multi-line text table of all candlesticks in *data* (ms)."""
    lines = [f"== {data.figure}: {data.title} =="]
    header = (
        f"{'config':8s} {'rps':>6s} {'p25':>8s} {'med':>8s} {'p75':>8s}"
        f" {'wlow':>8s} {'whigh':>8s} {'p99':>8s} {'max':>8s} {'n':>7s} {'sat':>4s}"
    )
    lines.append(header)
    for config_name, points in data.series.items():
        for point in points:
            if point.summary is None:
                lines.append(f"{config_name:8s} {point.rps:6.0f} {'(no samples)':>8s}")
                continue
            s = point.summary
            lines.append(
                f"{config_name:8s} {point.rps:6.0f}"
                f" {s.p25 * unit_scale:8.1f} {s.median * unit_scale:8.1f}"
                f" {s.p75 * unit_scale:8.1f} {s.whisker_low * unit_scale:8.1f}"
                f" {s.whisker_high * unit_scale:8.1f} {s.p99 * unit_scale:8.1f}"
                f" {s.maximum * unit_scale:8.1f} {s.count:7d}"
                f" {'yes' if point.saturated else 'no':>4s}"
            )
    return "\n".join(lines)


def render_medians(data: FigureData) -> str:
    """Compact medians-only view: one line per series."""
    lines = [f"== {data.figure} medians (ms) =="]
    for config_name, points in data.series.items():
        cells = ", ".join(
            f"{p.rps:.0f}rps={p.summary.median * 1000:.0f}"
            for p in points
            if p.summary is not None
        )
        lines.append(f"{config_name}: {cells}")
    return "\n".join(lines)


def _micro_row(config: MicroConfig) -> str:
    enc = "*" if (config.encryption and not config.item_pseudonymization) else (
        "yes" if config.encryption else "no"
    )
    shuffle = str(config.shuffle_size) if config.shuffle_size else "off"
    return (
        f"{config.name:4s} enc={enc:3s} sgx={'yes' if config.sgx else 'no':3s}"
        f" S={shuffle:3s} UA={config.ua_instances} IA={config.ia_instances}"
        f" maxRPS={config.max_rps}"
    )


def render_table2() -> str:
    """Table 2: micro-benchmark configurations."""
    lines = ["== Table 2: micro-benchmark configurations =="]
    lines += [_micro_row(config) for config in MICRO_CONFIGS.values()]
    return "\n".join(lines)


def _macro_row(config: MacroConfig) -> str:
    proxy = (
        f"UA={config.ua_instances} IA={config.ia_instances} S={config.shuffle_size}"
        if config.with_proxy
        else "no proxy"
    )
    return (
        f"{config.name:4s} LRS={config.lrs_nodes:2d} nodes"
        f" ({config.frontends} fe + 4 support)  {proxy:22s} maxRPS={config.max_rps}"
    )


def render_table3() -> str:
    """Table 3: macro-benchmark configurations."""
    lines = ["== Table 3: macro-benchmark configurations =="]
    lines += [_macro_row(config) for config in MACRO_BASELINES.values()]
    lines += [_macro_row(config) for config in MACRO_FULL.values()]
    return "\n".join(lines)


def render_telemetry(telemetry) -> str:
    """Telemetry digest accompanying a figure run.

    *telemetry* is a :class:`repro.telemetry.Telemetry` hub that was
    passed to the runners; the digest covers traces, per-stage
    timings, privacy-health gauges, and the redaction audit verdict.
    """
    lines = [telemetry.render_summary()]
    violations = telemetry.audit()
    if violations:
        lines.append(f"REDACTION AUDIT FAILED: {len(violations)} leak(s)")
        lines += [f"  - {violation.describe()}" for violation in violations[:10]]
    else:
        lines.append("redaction audit: clean (no identifier leaks in telemetry)")
    return "\n".join(lines)
