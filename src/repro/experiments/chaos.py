"""Chaos scenario: availability under injected faults (recovery drill).

The paper's deployment assumes Kubernetes supervision: "failed pods
are restarted" and kube-proxy stops routing to failed endpoints.  This
scenario measures that story end to end in the simulator: a seeded
:class:`~repro.faults.plan.FaultPlan` crashes enclave instances,
partitions the proxy layers, drops and delays wire traffic and browns
out the LRS — while health probes eject and readmit backends, crashed
instances re-attest and re-provision before serving again, and the
client library rides over the damage with timeouts, backoff retries
and hedges.

The headline number is **availability**: the fraction of issued calls
that eventually completed OK.  The scenario fails if availability
drops below the configured floor, if any crash went unrecovered, or if
the telemetry redaction audit is not clean on the error paths.

Determinism: everything runs on the virtual clock from named RNG
streams, so a fixed seed reproduces the identical fault/recovery event
stream (and, in a fresh process, a byte-identical telemetry artifact —
request-id allocation is process-global, which is why the CI job diffs
two separate invocations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.context import Deployment, SimContext
from repro.faults import ChaosSpec, FaultSupervisor, NetworkFaultController
from repro.faults.brownout import BrownoutLrs
from repro.lrs.stub import StubLrs, make_pseudonymous_payload
from repro.obs.slo import Objective, SloEngine, histogram_quantile
from repro.proxy.config import PProxConfig
from repro.simnet.metrics import LatencyRecorder
from repro.telemetry import Telemetry, instrument_stack
from repro.workload.injector import Injector

__all__ = [
    "ChaosResult",
    "run_chaos",
    "default_chaos_config",
    "chaos_slo_objectives",
    "DEFAULT_AVAILABILITY_FLOOR",
]

#: Default availability floor: with retries + hedging the client rides
#: over crashes, partitions and brownouts for the vast majority of
#: calls; only requests whose full retry budget lands inside fault
#: windows are lost.
DEFAULT_AVAILABILITY_FLOOR = 0.9


def default_chaos_config() -> PProxConfig:
    """Two instances per layer so a crash leaves a surviving backend."""
    return PProxConfig(
        ua_instances=2,
        ia_instances=2,
        shuffle_size=4,
        shuffle_timeout=0.2,
        balancing="round-robin",
    )


@dataclass
class ChaosResult:
    """Outcome of one chaos run (all counters are per-run)."""

    seed: int
    rps: float
    duration: float
    availability_floor: float
    issued: int = 0
    completed: int = 0
    failed: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    retries_performed: int = 0
    hedges_launched: int = 0
    retryable_errors: int = 0
    timeouts: int = 0
    crashes_injected: int = 0
    restarts_completed: int = 0
    failovers: int = 0
    readmissions: int = 0
    partition_drops: int = 0
    random_drops: int = 0
    delays_injected: int = 0
    brownout_rejected: int = 0
    brownout_slowed: int = 0
    stale_responses: int = 0
    transform_errors: int = 0
    #: The structured ``fault`` events, in emission order (the
    #: determinism check compares this stream across same-seed runs).
    fault_events: List[Dict[str, Any]] = field(default_factory=list)
    audit_violations: int = 0
    #: SLO verdict (:class:`repro.obs.slo.SloReport`) when the run was
    #: handed an engine; excluded from ``to_dict`` — callers write it
    #: as its own ``slo.json`` artifact.
    slo_report: Optional[Any] = None

    @property
    def availability(self) -> float:
        """Fraction of issued calls that completed OK."""
        return self.completed / self.issued if self.issued else 1.0

    @property
    def recovered(self) -> bool:
        """Every injected crash was restarted and readmitted."""
        return (
            self.restarts_completed == self.crashes_injected
            and self.readmissions == self.failovers
        )

    def problems(self) -> List[str]:
        """Acceptance-check failures (empty when the drill passed)."""
        found: List[str] = []
        if self.availability < self.availability_floor:
            found.append(
                f"availability {self.availability:.3f} below floor"
                f" {self.availability_floor:.3f}"
            )
        if self.crashes_injected == 0:
            found.append("no enclave crash was injected")
        if self.restarts_completed != self.crashes_injected:
            found.append(
                f"{self.crashes_injected} crashes but only"
                f" {self.restarts_completed} restarts completed"
            )
        if self.failovers == 0:
            found.append("health monitor never ejected a dead backend")
        if self.readmissions != self.failovers:
            found.append(
                f"{self.failovers} ejections but {self.readmissions} readmissions"
            )
        if self.partition_drops + self.random_drops + self.delays_injected == 0:
            found.append("no network fault ever hit a message")
        if self.brownout_rejected + self.brownout_slowed == 0:
            found.append("the LRS brownout never degraded a request")
        if self.audit_violations:
            found.append(f"redaction audit found {self.audit_violations} leak(s)")
        return found

    @property
    def ok(self) -> bool:
        return not self.problems()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (fault_events excluded; see the artifact)."""
        return {
            "seed": self.seed,
            "rps": self.rps,
            "duration": self.duration,
            "availability": self.availability,
            "availability_floor": self.availability_floor,
            "issued": self.issued,
            "completed": self.completed,
            "failed": self.failed,
            "outcomes": dict(self.outcomes),
            "retries_performed": self.retries_performed,
            "hedges_launched": self.hedges_launched,
            "retryable_errors": self.retryable_errors,
            "timeouts": self.timeouts,
            "crashes_injected": self.crashes_injected,
            "restarts_completed": self.restarts_completed,
            "failovers": self.failovers,
            "readmissions": self.readmissions,
            "partition_drops": self.partition_drops,
            "random_drops": self.random_drops,
            "delays_injected": self.delays_injected,
            "brownout_rejected": self.brownout_rejected,
            "brownout_slowed": self.brownout_slowed,
            "stale_responses": self.stale_responses,
            "transform_errors": self.transform_errors,
            "fault_event_count": len(self.fault_events),
            "audit_violations": self.audit_violations,
        }


def chaos_slo_objectives(
    availability_floor: float = DEFAULT_AVAILABILITY_FLOOR,
    full_batch_floor: float = 0.85,
    p99_ceiling: float = 2.5,
) -> List[Objective]:
    """The chaos drill's declarative objectives.

    Under chaos the anonymity promise is honestly a *ratio*, not a hard
    floor: failovers legitimately timer-flush a partial batch when the
    balancer stops routing to an ejected instance (the entries must be
    released — holding them would trade availability for anonymity).
    The SLO therefore budgets thin batches instead of pretending they
    cannot happen: at least *full_batch_floor* of released batches must
    be at full size S.
    """
    return [
        Objective(
            name="goodput",
            kind="ratio",
            target=availability_floor,
            good="completed",
            total="issued",
            description="Fraction of issued calls that completed OK.",
        ),
        Objective(
            name="anonymity_floor",
            kind="ratio",
            target=full_batch_floor,
            good="full_flushes",
            total="released_flushes",
            description="Fraction of released shuffle batches at full size S.",
        ),
        Objective(
            name="p99_latency_seconds",
            kind="ceiling",
            target=p99_ceiling,
            value="p99_latency_seconds",
            description="p99 of client-observed end-to-end latency.",
        ),
    ]


def run_chaos(
    seed: int = 7,
    rps: float = 60.0,
    duration: float = 12.0,
    *,
    availability_floor: float = DEFAULT_AVAILABILITY_FLOOR,
    spec: Optional[ChaosSpec] = None,
    config: Optional[PProxConfig] = None,
    telemetry: Optional[Telemetry] = None,
    slo: Optional[SloEngine] = None,
    probe_interval: float = 0.25,
    grace: float = 8.0,
) -> ChaosResult:
    """Run the chaos drill once and return its :class:`ChaosResult`.

    *grace* seconds of drain time after the injection phase let
    backoff retries, hedges and the last fault windows resolve before
    counters are read.  Pass an :class:`SloEngine` as *slo* to sample
    burn rates live and attach an ``slo_report`` verdict to the result.
    """
    telemetry = telemetry if telemetry is not None else Telemetry(scrape_interval=1.0)
    ctx = SimContext.fresh(seed, telemetry=telemetry)
    telemetry.bind(ctx.loop, run_label=f"chaos/seed{seed}")

    stub = StubLrs(loop=ctx.loop, rng=ctx.rng.stream("stub"))
    brownout = BrownoutLrs(inner=stub, loop=ctx.loop, rng=ctx.rng.stream("brownout"))
    pprox_config = config if config is not None else default_chaos_config()
    deployment = Deployment.build(
        ctx=ctx, config=pprox_config, lrs_picker=lambda: brownout
    )
    service = deployment.service
    if pprox_config.encryption and pprox_config.item_pseudonymization:
        stub.items = make_pseudonymous_payload(
            ctx.resolved_provider(), service.provisioner.layer_keys["IA"].symmetric_key
        )

    client = deployment.client(
        request_timeout=0.8,
        max_retries=5,
        backoff_base=0.05,
        backoff_jitter=0.02,
        hedge_delay=0.4,
    )
    monitor = deployment.health_monitor(interval=probe_interval)
    monitor.start()

    netfaults = NetworkFaultController(
        network=ctx.network, rng=ctx.rng.stream("netfaults")
    )
    supervisor = FaultSupervisor(
        loop=ctx.loop,
        service=service,
        netfaults=netfaults,
        lrs=brownout,
        telemetry=telemetry,
    )
    chaos_spec = spec if spec is not None else ChaosSpec(horizon=duration)
    plan = chaos_spec.sample(
        ctx.rng,
        ua_names=[instance.name for instance in service.ua_instances],
        ia_names=[instance.name for instance in service.ia_instances],
    )
    supervisor.arm(plan)

    injector = Injector(
        loop=ctx.loop, rng=ctx.rng.stream("injector"),
        recorder=LatencyRecorder("chaos"),
    )
    instrument_stack(
        telemetry,
        service=service,
        provider=ctx.resolved_provider(),
        lrs=brownout,
        injector=injector,
        network=ctx.network,
        monitor=monitor,
        client=client,
        supervisor=supervisor,
    )

    if slo is not None:
        if slo.telemetry is None:
            slo.telemetry = telemetry
        flush_counts = {"released": 0, "full": 0}
        shuffle_size = pprox_config.shuffle_size
        for instance in service.ua_instances:
            buffer = instance.request_buffer
            if buffer is None:
                continue
            previous_hook = buffer.on_flush

            def flush_hook(size: int, timer_fired: bool, *, _prev=previous_hook) -> None:
                if _prev is not None:
                    _prev(size, timer_fired)
                flush_counts["released"] += 1
                if size >= shuffle_size:
                    flush_counts["full"] += 1

            buffer.on_flush = flush_hook
        latency_hist = telemetry.registry.histogram(
            "pprox_request_latency_seconds",
            "End-to-end client-observed request latency.",
        )
        slo.track("issued", lambda: injector.report.issued)
        slo.track("completed", lambda: injector.report.completed)
        slo.track("released_flushes", lambda: flush_counts["released"])
        slo.track("full_flushes", lambda: flush_counts["full"])
        slo.track(
            "p99_latency_seconds", lambda: histogram_quantile(latency_hist, 0.99)
        )

    users = [f"user-{index}" for index in range(200)]
    user_rng = ctx.rng.stream("users")

    def issue(on_complete) -> None:
        client.get(user_rng.choice(users), on_complete=on_complete)

    start, end = injector.inject(rps, duration, issue)
    if slo is not None:
        # Bounded at the drain horizon: the SLO tick and the telemetry
        # scraper both re-arm while the loop has pending work, so an
        # unbounded engine would keep the final ``run()`` alive forever.
        slo.attach(ctx.loop, until=end + grace)
    ctx.loop.run_until(end + grace)
    monitor.stop()
    ctx.loop.run()

    result = ChaosResult(
        seed=seed, rps=rps, duration=duration,
        availability_floor=availability_floor,
        issued=injector.report.issued,
        completed=injector.report.completed,
        failed=injector.report.failed,
        outcomes=dict(client.outcomes),
        retries_performed=client.retries_performed,
        hedges_launched=client.hedges_launched,
        retryable_errors=client.retryable_errors,
        timeouts=client.timeouts,
        crashes_injected=supervisor.crashes_injected,
        restarts_completed=supervisor.restarts_completed,
        failovers=monitor.failovers,
        readmissions=len(monitor.readmitted),
        partition_drops=netfaults.partition_drops,
        random_drops=netfaults.random_drops,
        delays_injected=netfaults.delays_injected,
        brownout_rejected=brownout.rejected,
        brownout_slowed=brownout.slowed,
        stale_responses=sum(
            instance.stale_responses
            for instance in service.ua_instances + service.ia_instances
        ),
        transform_errors=sum(
            instance.transform_errors
            for instance in service.ua_instances + service.ia_instances
        ),
        fault_events=[
            event.to_dict()
            for event in telemetry.event_log.events
            if event.kind == "fault"
        ],
        audit_violations=len(telemetry.audit()),
    )
    if slo is not None:
        result.slo_report = slo.evaluate(
            chaos_slo_objectives(availability_floor), experiment="chaos"
        )
    telemetry.finalize_run(extra={"scenario": "chaos", "seed": seed, **result.to_dict()})
    return result
