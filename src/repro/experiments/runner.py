"""Experiment runners: one function per benchmark family.

Each runner assembles a fresh simulated deployment from a named
configuration, drives the paper's workload against it, and returns
latency distributions measured with the paper's methodology
(aggregation over repeated runs, 15 s-style trimming, saturation
cut-off).  Runners are deterministic in (config, rps, seed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.client.library import DirectClient
from repro.cluster.deployments import MacroConfig, MicroConfig
from repro.context import Deployment, SimContext
from repro.crypto.provider import CryptoProvider
from repro.lrs.engine import HarnessEngine
from repro.lrs.service import HarnessService
from repro.lrs.stub import StubLrs, make_pseudonymous_payload
from repro.proxy.config import PProxConfig
from repro.proxy.costs import DEFAULT_COSTS, ProxyCostModel
from repro.simnet.clock import EventLoop
from repro.simnet.metrics import CandlestickSummary, LatencyRecorder, trim_window
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry
from repro.simnet.tracing import BreakdownProbe
from repro.telemetry import Telemetry, instrument_stack
from repro.workload.injector import InjectionReport, Injector
from repro.workload.movielens import SyntheticMovieLens
from repro.workload.scenario import ScenarioTimings, TwoPhaseScenario

__all__ = ["RunResult", "run_micro", "run_baseline", "run_full"]

#: Number of repetitions aggregated per (configuration, RPS) pair.
#: The paper uses 6; the default here trades a little smoothing for
#: benchmark wall-clock time.
DEFAULT_RUNS = 2


@dataclass
class RunResult:
    """Aggregated outcome of one (configuration, RPS) measurement."""

    config_name: str
    rps: float
    recorder: LatencyRecorder
    window_latencies: List[float] = field(default_factory=list)
    reports: List[InjectionReport] = field(default_factory=list)
    saturated: bool = False

    def summary(self) -> CandlestickSummary:
        """Candlestick over the trimmed, aggregated samples."""
        return self.recorder.summarize(self.window_latencies)

    @property
    def median(self) -> float:
        """Median trimmed latency in seconds."""
        return self.summary().median


def run_micro(
    config: MicroConfig,
    rps: float,
    seed: int = 1,
    runs: int = DEFAULT_RUNS,
    duration: float = 30.0,
    trim: float = 8.0,
    provider: Optional[CryptoProvider] = None,
    costs: ProxyCostModel = DEFAULT_COSTS,
    shuffle_timeout: float = 0.25,
    user_count: int = 500,
    pprox_override: Optional[PProxConfig] = None,
    verb: str = "get",
    telemetry: Optional[Telemetry] = None,
    probe: Optional[BreakdownProbe] = None,
) -> RunResult:
    """Micro-benchmark: PProx in front of the nginx stub (§8.1).

    Injects only ``get`` requests — "we focus on reporting the
    performance of get requests, as these are the costlier in terms of
    encryption and payload".  *pprox_override* substitutes an explicit
    proxy configuration (ablations of knobs Table 2 does not vary).

    Pass a :class:`~repro.telemetry.Telemetry` hub to collect spans,
    metrics and the structured event log across all runs (one bound
    run label per repetition), and/or a
    :class:`~repro.simnet.tracing.BreakdownProbe` for the independent
    wire-level stage breakdown.
    """
    result = RunResult(config_name=config.name, rps=rps, recorder=LatencyRecorder("micro"))
    for run_index in range(runs):
        ctx = SimContext.fresh(
            seed * 1000 + run_index, costs=costs, telemetry=telemetry
        )
        loop, network, rng = ctx.loop, ctx.network, ctx.rng
        if provider is not None:
            ctx.provider = provider
        if telemetry is not None:
            telemetry.bind(loop, run_label=f"{config.name}@{rps:g}rps/run{run_index}")
        if probe is not None:
            probe.attach(network)
        stub = StubLrs(loop=loop, rng=rng.stream("stub"))
        pprox_config = pprox_override or config.pprox_config(shuffle_timeout)
        deployment = Deployment.build(
            ctx=ctx, config=pprox_config, lrs_picker=lambda: stub
        )
        service, crypto = deployment.service, ctx.resolved_provider()
        if pprox_config.encryption and pprox_config.item_pseudonymization:
            # The static payload must look like a captured Harness
            # response: pseudonymous item identifiers.
            stub.items = make_pseudonymous_payload(
                crypto, service.provisioner.layer_keys["IA"].symmetric_key
            )
        client = deployment.client()
        injector = Injector(loop, rng.stream("injector"), recorder=LatencyRecorder("gets"))
        if telemetry is not None:
            instrument_stack(
                telemetry,
                service=service,
                provider=crypto,
                lrs=stub,
                injector=injector,
                network=network,
            )
        users = [f"user-{index}" for index in range(user_count)]
        user_rng = rng.stream("users")

        if verb == "get":
            def issue(on_complete) -> None:
                client.get(user_rng.choice(users), on_complete=on_complete)
        elif verb == "post":
            def issue(on_complete) -> None:
                client.post(user_rng.choice(users), f"item-{user_rng.randrange(200)}",
                            on_complete=on_complete)
        else:
            raise ValueError(f"unknown verb {verb!r}; expected 'get' or 'post'")

        start, end = injector.inject(rps, duration, issue)
        loop.run()
        loop.run_until(end + 5.0)
        loop.run()

        window = trim_window(start, end, trim)
        result.recorder.extend(injector.recorder)
        result.window_latencies.extend(injector.recorder.trimmed(*window))
        result.reports.append(injector.report)
        if telemetry is not None:
            telemetry.finalize_run(
                extra={"config": config.name, "rps": rps, "run_index": run_index}
            )

    result.saturated = _is_saturated(result)
    return result


def _build_macro_stack(
    config: MacroConfig,
    rng: RngRegistry,
    provider: Optional[CryptoProvider],
    costs: ProxyCostModel,
    shuffle_timeout: float,
    telemetry: Optional[Telemetry] = None,
):
    """Assemble Harness (+ optional PProx) and the matching client."""
    loop = EventLoop()
    network = Network(loop=loop, rng=rng.stream("net"), record_flows=False)
    ctx = SimContext(
        loop=loop, network=network, rng=rng,
        provider=provider, costs=costs, telemetry=telemetry,
    )
    harness = HarnessService(
        loop=loop, rng=rng.stream("lrs"), frontend_count=config.frontends,
        engine=HarnessEngine(),
    )
    if config.with_proxy:
        deployment = Deployment.build(
            ctx=ctx,
            config=config.pprox_config(shuffle_timeout),
            lrs_picker=harness.pick_frontend,
        )
        service = deployment.service
        client = deployment.client()
        if telemetry is not None:
            instrument_stack(
                telemetry,
                service=service,
                provider=ctx.resolved_provider(),
                lrs=harness,
                network=network,
            )
    else:
        client = DirectClient(loop=loop, network=network, lrs_picker=harness.pick_frontend)
        if telemetry is not None:
            instrument_stack(telemetry, lrs=harness, network=network)
    return loop, network, harness, client


def _run_macro(
    config: MacroConfig,
    rps: float,
    seed: int,
    runs: int,
    timings: ScenarioTimings,
    provider: Optional[CryptoProvider],
    costs: ProxyCostModel,
    shuffle_timeout: float,
    workload_scale: float,
    telemetry: Optional[Telemetry] = None,
) -> RunResult:
    result = RunResult(config_name=config.name, rps=rps, recorder=LatencyRecorder("macro"))
    for run_index in range(runs):
        rng = RngRegistry(seed=seed * 1000 + run_index)
        loop, _, harness, client = _build_macro_stack(
            config, rng, provider, costs, shuffle_timeout, telemetry=telemetry
        )
        if telemetry is not None:
            telemetry.bind(loop, run_label=f"{config.name}@{rps:g}rps/run{run_index}")
        workload = SyntheticMovieLens(seed=seed, scale=workload_scale)
        scenario = TwoPhaseScenario(
            loop=loop,
            rng=rng.stream("scenario"),
            client=client,
            lrs=harness,
            workload=workload,
            timings=timings,
            telemetry=telemetry,
        )
        outcome = scenario.run(query_rate=rps)
        result.recorder.extend(outcome.recorder)
        result.window_latencies.extend(outcome.trimmed_latencies())
        result.reports.append(outcome.report)
        if telemetry is not None:
            telemetry.finalize_run(
                extra={"config": config.name, "rps": rps, "run_index": run_index}
            )
    result.saturated = _is_saturated(result)
    return result


def run_baseline(
    config: MacroConfig,
    rps: float,
    seed: int = 1,
    runs: int = DEFAULT_RUNS,
    timings: Optional[ScenarioTimings] = None,
    workload_scale: float = 0.01,
) -> RunResult:
    """Macro baseline: unprotected Harness (Figure 9)."""
    if config.with_proxy:
        raise ValueError(f"{config.name} is not a baseline configuration")
    return _run_macro(
        config, rps, seed, runs, timings or ScenarioTimings(),
        provider=None, costs=DEFAULT_COSTS, shuffle_timeout=0.25,
        workload_scale=workload_scale,
    )


def run_full(
    config: MacroConfig,
    rps: float,
    seed: int = 1,
    runs: int = DEFAULT_RUNS,
    timings: Optional[ScenarioTimings] = None,
    provider: Optional[CryptoProvider] = None,
    costs: ProxyCostModel = DEFAULT_COSTS,
    shuffle_timeout: float = 0.25,
    workload_scale: float = 0.01,
    telemetry: Optional[Telemetry] = None,
) -> RunResult:
    """Full system: PProx + Harness (Figure 10)."""
    if not config.with_proxy:
        raise ValueError(f"{config.name} is not a full-system configuration")
    return _run_macro(
        config, rps, seed, runs, timings or ScenarioTimings(),
        provider=provider, costs=costs, shuffle_timeout=shuffle_timeout,
        workload_scale=workload_scale, telemetry=telemetry,
    )


def _is_saturated(result: RunResult) -> bool:
    """The paper's cut-off: drastic latency growth / lost completions."""
    if any(r.issued and r.completion_ratio < 0.95 for r in result.reports):
        return True
    if not result.window_latencies:
        return True
    ordered = sorted(result.window_latencies)
    return ordered[len(ordered) // 2] > 0.6
