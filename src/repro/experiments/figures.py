"""Per-figure series builders: regenerate every evaluation figure.

Each ``figure*`` function sweeps the RPS grid the paper plots and
returns a :class:`FigureData` whose series mirror the corresponding
candlestick chart.  Figures 6-8 drive the stub LRS (micro);
Figures 9-10 drive Harness (macro).  Rendering to text tables lives
in :mod:`repro.experiments.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.deployments import MACRO_BASELINES, MACRO_FULL, MICRO_CONFIGS
from repro.experiments.runner import RunResult, run_baseline, run_full, run_micro
from repro.simnet.metrics import CandlestickSummary
from repro.workload.scenario import ScenarioTimings

__all__ = [
    "FigurePoint",
    "FigureData",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "MICRO_RPS_GRID",
    "SCALING_RPS_GRID",
]

#: The paper's fine grid for single-instance micro-benchmarks.
MICRO_RPS_GRID = [50, 100, 150, 200, 250]

#: The paper's coarse grid for scalability experiments.
SCALING_RPS_GRID = [50, 250, 500, 750, 1000]


@dataclass(frozen=True)
class FigurePoint:
    """One candlestick of a figure."""

    config_name: str
    rps: float
    summary: CandlestickSummary
    saturated: bool


@dataclass
class FigureData:
    """All series of one reproduced figure."""

    figure: str
    title: str
    series: Dict[str, List[FigurePoint]] = field(default_factory=dict)

    def add(self, result: RunResult) -> Optional[FigurePoint]:
        """Record *result*; saturated points are kept but flagged."""
        point = FigurePoint(
            config_name=result.config_name,
            rps=result.rps,
            summary=result.summary() if result.window_latencies else None,
            saturated=result.saturated,
        )
        self.series.setdefault(result.config_name, []).append(point)
        return point

    def point(self, config_name: str, rps: float) -> FigurePoint:
        """Lookup one candlestick."""
        for point in self.series.get(config_name, []):
            if point.rps == rps:
                return point
        raise KeyError(f"no point for {config_name} at {rps} RPS")

    def medians(self, config_name: str) -> Dict[float, float]:
        """RPS -> median latency for one unsaturated series."""
        return {
            p.rps: p.summary.median
            for p in self.series.get(config_name, [])
            if p.summary is not None and not p.saturated
        }


def figure6(seed: int = 1, runs: int = 2, duration: float = 30.0, trim: float = 8.0,
            rps_grid: Optional[List[int]] = None, telemetry=None) -> FigureData:
    """Figure 6: cost of encryption, SGX, and item pseudonymization.

    Configurations m1 (nothing), m2 (+encryption), m3 (+SGX),
    m4 (encryption without item pseudonymization), all without
    shuffling, 50-250 RPS.
    """
    data = FigureData("fig6", "Privacy feature costs (stub LRS, no shuffling)")
    for name in ("m1", "m2", "m3", "m4"):
        for rps in rps_grid or MICRO_RPS_GRID:
            data.add(run_micro(MICRO_CONFIGS[name], rps, seed=seed, runs=runs,
                               duration=duration, trim=trim, telemetry=telemetry))
    return data


def figure7(seed: int = 1, runs: int = 2, duration: float = 30.0, trim: float = 8.0,
            rps_grid: Optional[List[int]] = None, telemetry=None) -> FigureData:
    """Figure 7: impact of shuffling (m3: S off; m5: S=5; m6: S=10)."""
    data = FigureData("fig7", "Impact of request/response shuffling")
    for name in ("m3", "m5", "m6"):
        for rps in rps_grid or MICRO_RPS_GRID:
            data.add(run_micro(MICRO_CONFIGS[name], rps, seed=seed, runs=runs,
                               duration=duration, trim=trim, telemetry=telemetry))
    return data


def figure8(seed: int = 1, runs: int = 2, duration: float = 30.0, trim: float = 8.0,
            rps_grid: Optional[List[int]] = None, telemetry=None) -> FigureData:
    """Figure 8: horizontal scaling of the proxy (m6-m9, S=10).

    Each configuration is swept up to its pre-saturation maximum from
    Table 2, as in the paper's plot.
    """
    data = FigureData("fig8", "PProx proxy service scaling")
    for name in ("m6", "m7", "m8", "m9"):
        config = MICRO_CONFIGS[name]
        for rps in rps_grid or SCALING_RPS_GRID:
            if rps > config.max_rps:
                continue
            data.add(run_micro(config, rps, seed=seed, runs=runs,
                               duration=duration, trim=trim, telemetry=telemetry))
    return data


def figure9(seed: int = 1, runs: int = 2, timings: Optional[ScenarioTimings] = None,
            rps_grid: Optional[List[int]] = None, workload_scale: float = 0.01) -> FigureData:
    """Figure 9: baseline performance of the Harness LRS (b1-b4)."""
    data = FigureData("fig9", "Harness baseline performance")
    for name in ("b1", "b2", "b3", "b4"):
        config = MACRO_BASELINES[name]
        for rps in rps_grid or SCALING_RPS_GRID:
            if rps > config.max_rps:
                continue
            data.add(run_baseline(config, rps, seed=seed, runs=runs,
                                  timings=timings, workload_scale=workload_scale))
    return data


def figure10(seed: int = 1, runs: int = 2, timings: Optional[ScenarioTimings] = None,
             rps_grid: Optional[List[int]] = None, workload_scale: float = 0.01,
             telemetry=None) -> FigureData:
    """Figure 10: the full system, PProx + Harness (f1-f4)."""
    data = FigureData("fig10", "Full system: Harness with PProx")
    for name in ("f1", "f2", "f3", "f4"):
        config = MACRO_FULL[name]
        for rps in rps_grid or SCALING_RPS_GRID:
            if rps > config.max_rps:
                continue
            data.add(run_full(config, rps, seed=seed, runs=runs,
                              timings=timings, workload_scale=workload_scale,
                              telemetry=telemetry))
    return data
