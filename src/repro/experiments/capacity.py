"""Capacity planning: solve (shards, I, S) for a target, then prove it.

Promotes ``examples/capacity_planner.py`` from a demo sweep into an
experiment: for each ``(target RPS, p99 SLO)`` point the solver picks
a fleet shape — shard count, instances per layer per shard (I) and
shuffle batch size (S) — from the measured per-pair capacity, and the
plan is then **verified in simulation** with chaos *and* overload
armed: a :class:`~repro.faults.plan.ChaosSpec`-sampled fault plan
(crashes, a partition, loss/delay windows, an LRS brownout) runs
against the self-healing fleet while the target rate is injected, and
an :mod:`repro.obs.slo` verdict checks goodput, the released-flush
anonymity floor and the p99 ceiling.  A plan is only *planned
capacity* if it survives its own chaos drill.

The artifact (``capacity.json``) is deterministic for a fixed seed:
virtual clock, named RNG streams, and blake2b ring points.  Wall-clock
measurements go to the separate non-diffable meta report.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.context import Deployment, SimContext
from repro.faults import ChaosSpec, FaultSupervisor, NetworkFaultController
from repro.fleet.drill import default_fleet_overload
from repro.fleet.service import build_fleet
from repro.fleet.supervisor import FleetSupervisor
from repro.lrs.service import HarnessService
from repro.obs.slo import Objective, SloReport, evaluate_static
from repro.proxy.config import PProxConfig
from repro.simnet.metrics import LatencyRecorder, percentile
from repro.telemetry import Telemetry, instrument_stack
from repro.workload.injector import Injector

__all__ = [
    "MEASURED_PER_PAIR_RPS",
    "CapacityTarget",
    "CapacityPlan",
    "CapacityPointResult",
    "DEFAULT_TARGETS",
    "solve_plan",
    "capacity_chaos_spec",
    "degraded_p99_ceiling",
    "capacity_slo_objectives",
    "verify_plan",
    "run_capacity",
    "write_artifacts",
]

#: Sustainable request rate of one UA+IA pair before the latency knee,
#: from the micro sweep (m6: one pair saturates just past 250 RPS;
#: m7's two pairs just past 500 — see ``examples/capacity_planner.py``).
MEASURED_PER_PAIR_RPS = 250.0

#: Headroom factor: plan to run pairs at this fraction of the knee so
#: chaos-driven failovers (a crashed instance shifts its load onto the
#: survivors) don't push the fleet over the edge.
PLANNING_UTILIZATION = 0.8

#: Candidate shuffle batch sizes, largest first: the solver takes the
#: biggest S whose fill time still fits the latency budget.
SHUFFLE_SIZE_LADDER = (16, 10, 8, 4)


@dataclass(frozen=True)
class CapacityTarget:
    """One planning question: sustain *rps* with p99 <= *p99_slo*."""

    rps: float
    p99_slo: float

    def label(self) -> str:
        return f"rps{self.rps:g}-p99{self.p99_slo:g}"


#: The three canonical planning points exercised by the experiment.
DEFAULT_TARGETS: Tuple[CapacityTarget, ...] = (
    CapacityTarget(rps=250.0, p99_slo=0.5),
    CapacityTarget(rps=500.0, p99_slo=0.5),
    CapacityTarget(rps=1000.0, p99_slo=0.75),
)


@dataclass(frozen=True)
class CapacityPlan:
    """A solved fleet shape for one target."""

    shards: int
    instances_per_shard: int  # I, per layer per shard
    shuffle_size: int  # S
    shuffle_timeout: float
    pairs: int

    @property
    def anonymity_bound(self) -> int:
        """The paper's S*I linkage bound for a healthy shard."""
        return self.shuffle_size * self.instances_per_shard

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "instances_per_shard": self.instances_per_shard,
            "shuffle_size": self.shuffle_size,
            "shuffle_timeout": self.shuffle_timeout,
            "pairs": self.pairs,
            "anonymity_bound": self.anonymity_bound,
        }


def solve_plan(
    target: CapacityTarget,
    *,
    per_pair_rps: float = MEASURED_PER_PAIR_RPS,
    utilization: float = PLANNING_UTILIZATION,
    instances_per_shard: int = 2,
    fill_budget_fraction: float = 0.3,
) -> CapacityPlan:
    """Solve (shards, I, S) for one target.

    Sizing is two independent trade-offs:

    * **throughput** — pairs = ceil(rps / (per-pair knee x headroom)),
      rounded up to whole shards of I pairs each;
    * **anonymity vs latency** — the largest ladder S whose expected
      fill time (S / per-instance arrival rate) consumes at most
      *fill_budget_fraction* of the p99 budget; the shuffle timeout is
      then set well above the fill time (so releases are size-driven,
      never timer-driven, while traffic flows) but inside the budget.
    """
    if target.rps <= 0:
        raise ValueError("target rps must be positive")
    pairs = max(1, math.ceil(target.rps / (per_pair_rps * utilization)))
    shards = max(1, math.ceil(pairs / instances_per_shard))
    per_instance_rps = target.rps / (shards * instances_per_shard)
    fill_budget = fill_budget_fraction * target.p99_slo
    shuffle_size = SHUFFLE_SIZE_LADDER[-1]
    for candidate in SHUFFLE_SIZE_LADDER:
        if candidate / per_instance_rps <= fill_budget:
            shuffle_size = candidate
            break
    fill_time = shuffle_size / per_instance_rps
    shuffle_timeout = round(min(max(4.0 * fill_time, 0.2), 0.6 * target.p99_slo), 3)
    return CapacityPlan(
        shards=shards,
        instances_per_shard=instances_per_shard,
        shuffle_size=shuffle_size,
        shuffle_timeout=shuffle_timeout,
        pairs=shards * instances_per_shard,
    )


#: The chaos spec every plan is verified against: two crashes, one
#: role partition, loss + delay windows, one LRS brownout.
def capacity_chaos_spec(duration: float) -> ChaosSpec:
    return ChaosSpec(horizon=duration, crashes=2, crash_outage=0.8)


def degraded_p99_ceiling(target: CapacityTarget, spec: ChaosSpec) -> float:
    """Structural worst-case tail under the armed chaos spec.

    A request caught at the wrong moment waits out the partition plus
    a crash outage on top of the steady-state budget, and the client's
    timeout/retry ladder adds about one more second of backoff before
    the retry lands on a healthy path.
    """
    return round(
        target.p99_slo + spec.partition_duration + spec.crash_outage + 1.0, 3
    )


def capacity_slo_objectives(
    target: CapacityTarget, plan: CapacityPlan, *, chaos: bool, spec: Optional[ChaosSpec] = None
) -> List[Objective]:
    """The verification verdict for one run of one planning point.

    Clean mode proves the plan's steady-state promise: p99 within the
    SLO, essentially no losses, and every released flush at S.  Chaos
    mode proves graceful degradation: goodput >= 0.9 through the fault
    plan, the flush floor held *outside network-interruption windows*
    (during a total path interruption there is no traffic to mix, so
    the shuffle timer's liveness bound legitimately releases partial
    batches — those are reported, not floored), and the tail bounded
    by the structural degraded ceiling.
    """
    if chaos:
        assert spec is not None
        return [
            Objective(
                name="goodput",
                kind="ratio",
                target=0.9,
                good="completed",
                total="issued",
                description="Fraction of issued calls completed under chaos.",
            ),
            Objective(
                name="released_flush_floor",
                kind="floor",
                target=float(plan.shuffle_size),
                value="min_steady_flush",
                description=(
                    "Smallest shuffle batch released outside "
                    "network-interruption windows."
                ),
            ),
            Objective(
                name="p99_latency_seconds",
                kind="ceiling",
                target=degraded_p99_ceiling(target, spec),
                value="p99_latency_seconds",
                description="p99 under chaos vs the structural degraded ceiling.",
            ),
        ]
    return [
        Objective(
            name="goodput",
            kind="ratio",
            target=0.99,
            good="completed",
            total="issued",
            description="Fraction of issued calls completed, fault-free.",
        ),
        Objective(
            name="released_flush_floor",
            kind="floor",
            target=float(plan.shuffle_size),
            value="min_released_flush",
            description="Smallest shuffle batch released while traffic flowed.",
        ),
        Objective(
            name="p99_latency_seconds",
            kind="ceiling",
            target=target.p99_slo,
            value="p99_latency_seconds",
            description="p99 of client-observed end-to-end latency.",
        ),
    ]


@dataclass
class CapacityPointResult:
    """Verification outcome for one (target, plan) point."""

    target: CapacityTarget
    plan: CapacityPlan
    seed: int
    mode: str = "chaos"
    issued: int = 0
    completed: int = 0
    failed: int = 0
    p99_latency_seconds: Optional[float] = None
    min_released_flush: Optional[int] = None
    #: Smallest flush released outside network-interruption windows.
    min_steady_flush: Optional[int] = None
    sub_floor_interrupted_flushes: int = 0
    min_effective_anonymity: Optional[int] = None
    window_flushes: int = 0
    crashes_injected: int = 0
    restarts_completed: int = 0
    ejections: int = 0
    readmissions: int = 0
    failovers: int = 0
    shed_total: int = 0
    fault_kinds: Dict[str, int] = field(default_factory=dict)
    slo_report: Optional[SloReport] = None

    @property
    def goodput(self) -> float:
        return self.completed / self.issued if self.issued else 0.0

    @property
    def ok(self) -> bool:
        return self.slo_report is not None and self.slo_report.ok

    def problems(self) -> List[str]:
        found: List[str] = []
        label = f"{self.target.label()}/{self.mode}"
        if self.slo_report is None:
            found.append(f"{label}: no SLO verdict produced")
            return found
        for measurement in self.slo_report.measurements:
            if not measurement.ok:
                found.append(
                    f"{label}: objective {measurement.name} failed"
                    f" (observed {measurement.value!r}, target {measurement.target})"
                )
        if self.mode == "chaos" and not self.crashes_injected:
            found.append(f"{label}: chaos never crashed an instance")
        return found

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": {"rps": self.target.rps, "p99_slo": self.target.p99_slo},
            "plan": self.plan.to_dict(),
            "seed": self.seed,
            "mode": self.mode,
            "issued": self.issued,
            "completed": self.completed,
            "failed": self.failed,
            "goodput": round(self.goodput, 6),
            "p99_latency_seconds": (
                None
                if self.p99_latency_seconds is None
                else round(self.p99_latency_seconds, 6)
            ),
            "min_released_flush": self.min_released_flush,
            "min_steady_flush": self.min_steady_flush,
            "sub_floor_interrupted_flushes": self.sub_floor_interrupted_flushes,
            "min_effective_anonymity": self.min_effective_anonymity,
            "window_flushes": self.window_flushes,
            "crashes_injected": self.crashes_injected,
            "restarts_completed": self.restarts_completed,
            "ejections": self.ejections,
            "readmissions": self.readmissions,
            "failovers": self.failovers,
            "shed_total": self.shed_total,
            "fault_kinds": dict(sorted(self.fault_kinds.items())),
            "slo": self.slo_report.to_dict() if self.slo_report else None,
        }


def verify_plan(
    target: CapacityTarget,
    plan: CapacityPlan,
    *,
    seed: int,
    duration: float = 8.0,
    grace: float = 4.0,
    chaos: bool = True,
    telemetry: Optional[Telemetry] = None,
) -> CapacityPointResult:
    """Run one solved plan at its target rate, overload always armed.

    With *chaos* a :func:`capacity_chaos_spec` fault plan is sampled
    and armed mid-run; without it the same stack runs fault-free (the
    steady-state leg of the verdict).
    """
    mode = "chaos" if chaos else "clean"
    telemetry = telemetry if telemetry is not None else Telemetry(scrape_interval=1.0)
    ctx = SimContext.fresh(seed, telemetry=telemetry)
    telemetry.bind(ctx.loop, run_label=f"capacity/{target.label()}/{mode}")

    # The planner sizes the proxy fleet; the LRS behind it is assumed
    # provisioned for the target (three stock frontends sustain ~250
    # RPS — scale them with the load so the backend is not the wall).
    frontend_count = max(3, math.ceil(target.rps / 80.0))
    harness = HarnessService(
        loop=ctx.loop, rng=ctx.rng.stream("lrs"), frontend_count=frontend_count
    )
    harness.engine.trainer.llr_threshold = 0.0
    config = PProxConfig(
        ua_instances=plan.instances_per_shard,
        ia_instances=plan.instances_per_shard,
        shuffle_size=plan.shuffle_size,
        shuffle_timeout=plan.shuffle_timeout,
        balancing="round-robin",
    )
    fleet = build_fleet(
        ctx,
        config,
        harness.pick_frontend,
        shards=plan.shards,
        overload=default_fleet_overload(),
        vnodes=128,
    )
    deployment = Deployment(ctx=ctx, service=fleet, config=config)
    client = deployment.client(
        request_timeout=max(0.9, 1.5 * target.p99_slo),
        max_retries=5,
        backoff_base=0.05,
        backoff_jitter=0.02,
        hedge_delay=0.4,
    )

    netfaults = NetworkFaultController(network=ctx.network, rng=ctx.rng.stream("netfaults"))
    fault_supervisor = FaultSupervisor(
        loop=ctx.loop, service=fleet, netfaults=netfaults, telemetry=telemetry
    )
    fleet_supervisor = FleetSupervisor(
        loop=ctx.loop, fleet=fleet, telemetry=telemetry, tick_interval=0.1
    )
    injector = Injector(
        loop=ctx.loop, rng=ctx.rng.stream("injector"), recorder=LatencyRecorder("capacity")
    )
    instrument_stack(
        telemetry,
        service=fleet,
        provider=ctx.resolved_provider(),
        lrs=harness,
        injector=injector,
        network=ctx.network,
        client=client,
        supervisor=fault_supervisor,
    )

    flush_samples: List[Tuple[float, int, int]] = []

    def hook_shard(shard) -> None:
        for instance in shard.instances():
            buffer = getattr(instance, "request_buffer", None) or getattr(
                instance, "response_buffer", None
            )
            if buffer is None:
                continue
            previous_hook = buffer.on_flush

            def on_flush(size, timer_fired, chained=previous_hook, _shard=shard):
                if chained is not None:
                    chained(size, timer_fired)
                flush_samples.append((ctx.loop.now, size, _shard.live_ia_count))

            buffer.on_flush = on_flush

    for shard in fleet.directory.shards.values():
        hook_shard(shard)
    fleet.on_shard_added = hook_shard

    users = [f"user-{index}" for index in range(40)]
    items = [f"item-{index}" for index in range(12)]
    seed_rng = ctx.rng.stream("preload")
    for index in range(160):
        client.post(users[index % len(users)], seed_rng.choice(items))
    ctx.loop.run()
    harness.train()

    user_rng = ctx.rng.stream("users")

    def issue(on_complete) -> None:
        if user_rng.random() < 0.2:
            client.post(user_rng.choice(users), user_rng.choice(items), on_complete=on_complete)
        else:
            client.get(user_rng.choice(users), on_complete=on_complete)

    start, end = injector.inject(target.rps, duration, issue)

    spec = capacity_chaos_spec(duration)
    if chaos:
        chaos_plan = spec.sample(
            ctx.rng,
            [instance.name for instance in fleet.ua_instances],
            [instance.name for instance in fleet.ia_instances],
        )
        fault_supervisor.arm(chaos_plan.shifted(start))
    else:
        chaos_plan = None
    fleet_supervisor.start()
    ctx.loop.run_until(end + grace)
    fleet_supervisor.stop()
    ctx.loop.run()

    window = [(at, size, ia) for at, size, ia in flush_samples if start <= at <= end]
    # Network-interruption windows: while a partition or loss window is
    # open (plus one shuffle-timeout of wash-out) buffers starve, so
    # the timer's liveness bound may release partial batches.  The
    # steady floor is judged outside those windows.
    interruptions: List[Tuple[float, float]] = []
    if chaos_plan is not None:
        for event in chaos_plan.events:
            if event.kind in ("partition", "drop"):
                interruptions.append(
                    (
                        start + event.at,
                        start + event.at + event.duration + plan.shuffle_timeout,
                    )
                )

    def interrupted(at: float) -> bool:
        return any(lo <= at <= hi for lo, hi in interruptions)

    steady = [(at, size, ia) for at, size, ia in window if not interrupted(at)]
    # Steady-state tail: samples completing inside the injection window
    # (requests still in flight at cut-off drain through the shuffle
    # timer and would smear an end-of-run artifact into the p99).
    trimmed = injector.recorder.trimmed(start, end) if injector.recorder else []
    p99 = percentile(sorted(trimmed), 0.99) if trimmed else None
    fault_kinds: Dict[str, int] = {}
    if chaos_plan is not None:
        for event in chaos_plan.events:
            fault_kinds[event.kind] = fault_kinds.get(event.kind, 0) + 1
    result = CapacityPointResult(
        target=target,
        plan=plan,
        seed=seed,
        mode=mode,
        issued=injector.report.issued,
        completed=injector.report.completed,
        failed=injector.report.failed,
        p99_latency_seconds=p99,
        min_released_flush=min((size for _, size, _ in window), default=None),
        min_steady_flush=min((size for _, size, _ in steady), default=None),
        sub_floor_interrupted_flushes=sum(
            1
            for at, size, _ in window
            if size < plan.shuffle_size and interrupted(at)
        ),
        min_effective_anonymity=min((size * ia for _, size, ia in window), default=None),
        window_flushes=len(window),
        crashes_injected=fault_supervisor.crashes_injected,
        restarts_completed=fault_supervisor.restarts_completed,
        ejections=fleet_supervisor.ejections,
        readmissions=fleet_supervisor.readmissions,
        failovers=fleet.directory.failovers,
        shed_total=sum(
            getattr(instance, "requests_shed", 0)
            for instance in fleet.ua_instances + fleet.ia_instances
        ),
        fault_kinds=fault_kinds,
    )
    values: Dict[str, Any] = {
        "issued": float(result.issued),
        "completed": float(result.completed),
        "p99_latency_seconds": p99,
    }
    if result.min_released_flush is not None:
        values["min_released_flush"] = float(result.min_released_flush)
    if result.min_steady_flush is not None:
        values["min_steady_flush"] = float(result.min_steady_flush)
    result.slo_report = evaluate_static(
        capacity_slo_objectives(target, plan, chaos=chaos, spec=spec),
        values,
        experiment=f"capacity/{target.label()}/{mode}",
        generated_at=ctx.loop.now,
    )
    telemetry.finalize_run(
        extra={
            "scenario": "capacity",
            "point": target.label(),
            "mode": mode,
            **result.to_dict(),
        }
    )
    return result


def run_capacity(
    targets: Sequence[CapacityTarget] = DEFAULT_TARGETS,
    *,
    seed: int = 11,
    duration: float = 8.0,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[Dict[str, Any], Dict[str, Any], List[CapacityPointResult]]:
    """Solve and verify every target; returns (artifact, meta, results).

    Each target is verified twice — a fault-free run proving the
    steady-state SLO and a chaos run proving graceful degradation —
    in fresh, independently seeded simulations.  *artifact* is the
    deterministic, diffable ``capacity.json`` body; *meta* carries the
    wall-clock measurements.
    """
    import time

    points: List[Dict[str, Any]] = []
    results: List[CapacityPointResult] = []
    metas: List[Dict[str, Any]] = []
    for index, target in enumerate(targets):
        plan = solve_plan(target)
        legs: Dict[str, Dict[str, Any]] = {}
        for leg, chaos in (("clean", False), ("chaos", True)):
            wall_start = time.perf_counter()
            result = verify_plan(
                target,
                plan,
                seed=seed + index,
                duration=duration,
                chaos=chaos,
                telemetry=telemetry if len(targets) == 1 else None,
            )
            wall = time.perf_counter() - wall_start
            legs[leg] = result.to_dict()
            results.append(result)
            metas.append(
                {"point": target.label(), "mode": leg, "wall_seconds": wall}
            )
        points.append(
            {
                "target": {"rps": target.rps, "p99_slo": target.p99_slo},
                "plan": plan.to_dict(),
                "clean": legs["clean"],
                "chaos": legs["chaos"],
            }
        )
    artifact = {
        "experiment": "capacity",
        "seed": seed,
        "duration": duration,
        "per_pair_rps": MEASURED_PER_PAIR_RPS,
        "planning_utilization": PLANNING_UTILIZATION,
        "points": points,
        "ok": all(result.ok for result in results),
    }
    meta = {
        "points": metas,
        "total_wall_seconds": sum(entry["wall_seconds"] for entry in metas),
    }
    return artifact, meta, results


def write_artifacts(
    artifact: Dict[str, Any], meta: Dict[str, Any], out_dir: str
) -> Tuple[str, str]:
    """Write ``capacity.json`` (diffable) and ``capacity_meta.json`` (not)."""
    os.makedirs(out_dir, exist_ok=True)
    artifact_path = os.path.join(out_dir, "capacity.json")
    meta_path = os.path.join(out_dir, "capacity_meta.json")
    with open(artifact_path, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(meta_path, "w") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return artifact_path, meta_path
