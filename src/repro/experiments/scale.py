"""Million-user proxy-scaling sweep (the Figure-8 shape at 1000x rate).

The paper's Figure 8 sweeps 1-4 UA+IA proxy pairs at up to 1000 RPS
against a stub LRS and shows throughput scaling linearly with proxy
instances.  This experiment reruns that shape at the scale the related
work treats as table stakes — a synthetic population of >= 1 million
users and ~100k requests per second sustained through the pipeline —
which is only tractable because of the calendar-queue engine
(:class:`repro.simnet.clock.EventLoop`): the sweep is pure scheduler
hot path, tens of millions of events per run.

The pipeline is deliberately lightweight: real :class:`SimNode`
service stations for UA/IA/LRS, the real :class:`Network` fabric (flow
recording off — nobody observes this wire, so ``send`` skips the
per-hop ``FlowRecord``), the real least-pending :class:`LoadBalancer`,
PProx-style request shuffling (size-S batches with a flush timeout),
and a per-request deadline timer that is cancelled on completion —
the cancel-heavy churn profile the engine is optimized for.  Service
times use the post-crypto-overhaul fast profile (PR 1 made the crypto
~3 orders of magnitude cheaper, so the enclave transition no longer
dominates); the sweep measures the *engine*, not the cost model.

Determinism: every scheduling decision flows through the public loop
API and every random draw happens inside event callbacks, so both
engines (``calendar`` and ``reference``) replay the identical event
sequence — the artifact is byte-identical across engines and across
same-seed runs.  Engine- and wall-clock-dependent numbers (events/sec,
peak resident queue, compactions) go in a separate meta report that is
*not* part of the diffable artifact.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.slo import Objective, SloReport, evaluate_static
from repro.simnet.clock import make_event_loop
from repro.simnet.loadbalancer import LeastPendingPolicy, LoadBalancer
from repro.simnet.metrics import SlottedLatencyRecorder
from repro.simnet.network import LatencyModel, Network
from repro.simnet.node import SimNode
from repro.simnet.rng import RngRegistry

__all__ = [
    "ScaleConfig",
    "ScalePoint",
    "run_scale_sweep",
    "scale_slo_objectives",
    "scale_slo_verdict",
    "write_artifacts",
    "SMOKE_CONFIG",
    "FULL_CONFIG",
]


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs for one sweep (all virtual-time; see module docstring)."""

    seed: int = 20260808
    users: int = 1_000_000
    #: Proxy pairs per sweep point (Figure-8 x-axis).
    pairs_sweep: Tuple[int, ...] = (1, 2, 4)
    #: Offered load per proxy pair; the top point sustains
    #: ``max(pairs_sweep) * rate_per_pair`` RPS.
    rate_per_pair: float = 25_000.0
    #: Injection window per sweep point, virtual seconds.
    duration: float = 10.0
    #: Seconds trimmed from each end of the measurement window.
    trim: float = 1.0
    #: PProx shuffle batch size (requests buffered per UA before the
    #: IA hop) and the anti-starvation flush timeout.
    shuffle_size: int = 8
    flush_timeout: float = 0.004
    #: Per-request deadline; expired requests count as failed.
    deadline: float = 0.5
    engine: str = "calendar"

    @property
    def peak_rps(self) -> float:
        return max(self.pairs_sweep) * self.rate_per_pair


#: The full acceptance configuration: 1M users, 100k RPS at the top.
FULL_CONFIG = ScaleConfig()

#: Reduced configuration for CI engine-parity runs.
SMOKE_CONFIG = ScaleConfig(users=200_000, pairs_sweep=(1, 2), duration=3.0, trim=0.5)


@dataclass
class ScalePoint:
    """Results of one sweep point (deterministic fields only)."""

    pairs: int
    offered_rps: float
    issued: int = 0
    completed: int = 0
    expired: int = 0
    unique_users: int = 0
    shuffle_flushes: int = 0
    timeout_flushes: int = 0
    min_flush_fill: Optional[int] = None
    latency: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "pairs": self.pairs,
            "offered_rps": self.offered_rps,
            "issued": self.issued,
            "completed": self.completed,
            "expired": self.expired,
            "unique_users": self.unique_users,
            "shuffle_flushes": self.shuffle_flushes,
            "timeout_flushes": self.timeout_flushes,
            "min_flush_fill": self.min_flush_fill,
            "latency": self.latency,
        }


def _run_point(config: ScaleConfig, pairs: int) -> Tuple[ScalePoint, Dict[str, object]]:
    loop = make_event_loop(config.engine)
    rng = RngRegistry(config.seed * 1000 + pairs)
    network = Network(loop=loop, rng=rng.stream("network"), record_flows=False)
    arrivals = rng.stream("arrivals")
    service = rng.stream("service")

    ua_nodes = [SimNode(name=f"ua-{i}", loop=loop, cores=4) for i in range(pairs)]
    ia_nodes = [SimNode(name=f"ia-{i}", loop=loop, cores=4) for i in range(pairs)]
    lrs_nodes = [SimNode(name=f"lrs-{i}", loop=loop, cores=8) for i in range(2 * pairs)]
    balancer: LoadBalancer = LoadBalancer(name="ua-pool", policy=LeastPendingPolicy())
    for index in range(pairs):
        balancer.add(_PairBackend(index, ua_nodes[index]))
    lrs_rr = [0]

    rate = pairs * config.rate_per_pair
    interval = 1.0 / rate
    total = int(rate * config.duration)
    point = ScalePoint(pairs=pairs, offered_rps=rate)
    recorder = SlottedLatencyRecorder(name=f"scale-{pairs}", slot_seconds=0.25)
    touched = bytearray(config.users)

    # Per-UA shuffle buffers: [items, pending flush timer handle].
    shufflers: List[list] = [[[], None] for _ in range(pairs)]
    shuffle_size = config.shuffle_size

    post = loop.post
    uniform = arrivals.uniform
    randrange = arrivals.randrange
    expo = service.expovariate

    def flush(ua_index: int, timed_out: bool) -> None:
        buffer, handle = shufflers[ua_index]
        if handle is not None and not timed_out:
            handle.cancel()
        shufflers[ua_index][1] = None
        if not buffer:
            return
        fill = len(buffer)
        point.shuffle_flushes += 1
        if timed_out:
            point.timeout_flushes += 1
        if point.min_flush_fill is None or fill < point.min_flush_fill:
            point.min_flush_fill = fill
        shufflers[ua_index][0] = []
        ia = ia_nodes[ua_index]
        for forward in buffer:
            network.send(
                f"ua-{ua_index}", f"ia-{ua_index}", forward, 256,
                lambda fwd: ia.submit(0.00002 + expo(1.0) * 0.00002, fwd),
            )

    def finish(start: float, deadline_handle) -> None:
        deadline_handle.cancel()
        point.completed += 1
        recorder.record(loop.now, loop.now - start)

    def at_lrs(job: Callable[[], None]) -> None:
        index = lrs_rr[0]
        lrs_rr[0] = (index + 1) % len(lrs_nodes)
        node = lrs_nodes[index]
        network.send("ia", f"lrs-{index}", job, 384,
                     lambda j: node.submit(0.00006 + expo(1.0) * 0.00004, j))

    def expire() -> None:
        point.expired += 1

    def arrival() -> None:
        issued = point.issued
        point.issued = issued + 1
        user = randrange(config.users)
        touched[user] = 1
        start = loop.now
        deadline_handle = loop.schedule(config.deadline, expire)
        backend = balancer.pick()
        ua_index = backend.index
        node = backend.node

        def after_lrs() -> None:
            network.send("lrs", "client", None, 512,
                         lambda _: finish(start, deadline_handle))

        def after_ia() -> None:
            at_lrs(after_lrs)

        def at_ua() -> None:
            node.submit(0.00003 + expo(1.0) * 0.00003, lambda: enqueue(ua_index, after_ia))

        network.send("client", f"ua-{ua_index}", None, 192, lambda _: at_ua())
        if issued + 1 < total:
            post(interval + uniform(0.0, interval * 0.1), arrival)

    def enqueue(ua_index: int, forward: Callable[[], None]) -> None:
        buffer, handle = shufflers[ua_index]
        buffer.append(forward)
        if len(buffer) >= shuffle_size:
            flush(ua_index, False)
        elif handle is None:
            shufflers[ua_index][1] = loop.schedule(
                config.flush_timeout, lambda: flush(ua_index, True)
            )

    post(0.0, arrival)
    wall_start = time.perf_counter()
    loop.run(max_events=200_000_000)
    wall = time.perf_counter() - wall_start

    # Drain-phase stragglers: flush whatever the last timers left.
    point.unique_users = sum(touched)
    summary = recorder.summarize(config.trim, config.duration - config.trim)
    point.latency = {
        "p25": summary.p25,
        "median": summary.median,
        "p75": summary.p75,
        "p99": summary.p99,
        "mean": summary.mean,
        "max": summary.maximum,
        "window_count": summary.count,
    }
    stats = loop.queue_stats()
    meta = {
        "pairs": pairs,
        "wall_seconds": wall,
        "events_processed": loop.events_processed,
        "events_per_second": loop.events_processed / wall if wall > 0 else 0.0,
        "sim_seconds_per_wall_second": loop.now / wall if wall > 0 else 0.0,
        "final_virtual_time": loop.now,
        "peak_pending": stats.get("peak_pending"),
        "compactions": stats.get("compactions"),
        "cancels_total": stats.get("cancels_total"),
    }
    return point, meta


class _PairBackend:
    """Least-pending view over one UA node (the pair's front door)."""

    __slots__ = ("index", "node")

    def __init__(self, index: int, node: SimNode) -> None:
        self.index = index
        self.node = node

    @property
    def pending(self) -> int:
        return self.node.pending


def run_scale_sweep(config: ScaleConfig = FULL_CONFIG) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Run the sweep; returns ``(artifact, meta)``.

    *artifact* is deterministic — byte-identical for the same seed on
    either engine.  *meta* carries the wall-clock/engine-dependent
    numbers and must never be diffed.
    """
    points: List[ScalePoint] = []
    metas: List[Dict[str, object]] = []
    for pairs in config.pairs_sweep:
        point, meta = _run_point(config, pairs)
        points.append(point)
        metas.append(meta)
    artifact: Dict[str, object] = {
        "experiment": "scale",
        "seed": config.seed,
        "users": config.users,
        "rate_per_pair": config.rate_per_pair,
        "duration": config.duration,
        "shuffle_size": config.shuffle_size,
        "deadline": config.deadline,
        "points": [point.to_dict() for point in points],
    }
    meta: Dict[str, object] = {
        "engine": config.engine,
        "points": metas,
        "total_wall_seconds": sum(m["wall_seconds"] for m in metas),
        "total_events": sum(m["events_processed"] for m in metas),
    }
    return artifact, meta


def scale_slo_objectives(
    full_batch_floor: float = 0.995,
    completion_floor: float = 0.98,
    p99_ceiling: Optional[float] = None,
    deadline: float = 0.5,
) -> List[Objective]:
    """The scale sweep's objectives, evaluated *statically*.

    The sweep is the engine's perf-floor hot path, so no live sampler
    ever attaches to it — :func:`scale_slo_verdict` judges the same
    objective shapes against the finished artifact's totals instead
    (burn fields stay null).  Anonymity at scale is a full-batch ratio:
    timer flushes (partial batches at the drain tail) must stay under
    ``1 - full_batch_floor`` of all shuffle flushes.
    """
    return [
        Objective(
            name="goodput",
            kind="ratio",
            target=completion_floor,
            good="completed",
            total="issued",
            description="Fraction of issued calls completed inside the deadline.",
        ),
        Objective(
            name="anonymity_floor",
            kind="ratio",
            target=full_batch_floor,
            good="full_flushes",
            total="shuffle_flushes",
            description="Fraction of shuffle flushes at full size S.",
        ),
        Objective(
            name="p99_latency_seconds",
            kind="ceiling",
            target=p99_ceiling if p99_ceiling is not None else deadline,
            value="p99_latency_seconds",
            description="Worst per-point p99 latency across the sweep.",
        ),
    ]


def scale_slo_verdict(
    artifact: Dict[str, object],
    objectives: Optional[List[Objective]] = None,
) -> SloReport:
    """Static SLO verdict over a finished sweep's diffable artifact."""
    points = artifact.get("points", [])
    issued = sum(int(p["issued"]) for p in points)
    completed = sum(int(p["completed"]) for p in points)
    shuffle_flushes = sum(int(p["shuffle_flushes"]) for p in points)
    timeout_flushes = sum(int(p["timeout_flushes"]) for p in points)
    p99 = max((float(p["latency"]["p99"]) for p in points), default=0.0)
    if objectives is None:
        objectives = scale_slo_objectives(
            deadline=float(artifact.get("deadline", 0.5))
        )
    return evaluate_static(
        objectives,
        {
            "issued": float(issued),
            "completed": float(completed),
            "shuffle_flushes": float(shuffle_flushes),
            "full_flushes": float(shuffle_flushes - timeout_flushes),
            "p99_latency_seconds": p99,
        },
        experiment="scale",
    )


def write_artifacts(artifact: Dict[str, object], meta: Dict[str, object], out_dir: str) -> Tuple[str, str]:
    """Write ``scale.json`` (diffable) and ``scale_meta.json`` (not)."""
    import os

    os.makedirs(out_dir, exist_ok=True)
    artifact_path = os.path.join(out_dir, "scale.json")
    meta_path = os.path.join(out_dir, "scale_meta.json")
    with open(artifact_path, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(meta_path, "w") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return artifact_path, meta_path
