"""Machine-readable experiment index (DESIGN.md §4, kept in sync).

Maps every reproduced artefact — each table, figure, and analysis of
the paper — to the modules that implement it, the bench that
regenerates it, and the paper's headline claims about it.  Tests
assert the index is complete and that every referenced module/bench
exists, so documentation drift fails CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Experiment", "EXPERIMENT_INDEX", "validate_index"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible artefact of the paper."""

    identifier: str
    title: str
    workload: str
    modules: Tuple[str, ...]
    bench: str
    claims: Tuple[str, ...]


EXPERIMENT_INDEX: Dict[str, Experiment] = {
    "table2": Experiment(
        identifier="table2",
        title="Micro-benchmark configurations m1-m9",
        workload="configuration matrix, no traffic",
        modules=("repro.cluster.deployments", "repro.proxy.config"),
        bench="benchmarks/test_table2_configs.py",
        claims=(
            "feature ladder m1->m6 and scale ladder m6->m9 as printed",
            "every configuration fits the 27-node testbed",
        ),
    ),
    "table3": Experiment(
        identifier="table3",
        title="Macro-benchmark configurations b1-b4 / f1-f4",
        workload="configuration matrix, no traffic",
        modules=("repro.cluster.deployments",),
        bench="benchmarks/test_table3_configs.py",
        claims=(
            "LRS deployments of 7-16 nodes",
            "PProx adds 30% (f1) to 50% (f4) infrastructure",
        ),
    ),
    "fig6": Experiment(
        identifier="fig6",
        title="Latency cost of each privacy feature",
        workload="gets against the nginx stub, 50-250 RPS",
        modules=("repro.proxy", "repro.crypto", "repro.sgx.costs", "repro.lrs.stub"),
        bench="benchmarks/test_fig6_privacy_features.py",
        claims=(
            "encryption costs more than SGX",
            "SGX adds 2-5 ms median",
            "disabling item pseudonymization is negligible",
        ),
    ),
    "fig7": Experiment(
        identifier="fig7",
        title="Impact of request/response shuffling",
        workload="gets against the stub, S in {off,5,10}, 50-250 RPS",
        modules=("repro.proxy.shuffler",),
        bench="benchmarks/test_fig7_shuffling.py",
        claims=(
            "shuffle latency inversely proportional to load",
            "S=10 too costly at 50 RPS, fine at 250 RPS",
        ),
    ),
    "fig8": Experiment(
        identifier="fig8",
        title="Horizontal scaling of the proxy service",
        workload="gets against the stub, 1-4 instance pairs, up to 1000 RPS",
        modules=("repro.proxy.service", "repro.simnet.loadbalancer"),
        bench="benchmarks/test_fig8_proxy_scaling.py",
        claims=(
            "each UA+IA pair buys ~250 RPS",
            "1000 RPS under 200 ms median with 4 pairs",
            "over-provisioning raises shuffle latency",
        ),
    ),
    "fig9": Experiment(
        identifier="fig9",
        title="Harness LRS baseline performance",
        workload="two-phase MovieLens-shaped trace, 3-12 frontends",
        modules=("repro.lrs.service", "repro.lrs.cco", "repro.workload"),
        bench="benchmarks/test_fig9_harness_baseline.py",
        claims=(
            "~250 RPS per 3 frontends before saturation",
            "sub-100 ms medians at low/moderate load",
        ),
    ),
    "fig10": Experiment(
        identifier="fig10",
        title="Full system: PProx + Harness",
        workload="two-phase trace through the complete stack, f1-f4",
        modules=("repro.proxy", "repro.lrs", "repro.client", "repro.workload"),
        bench="benchmarks/test_fig10_full_system.py",
        claims=(
            "latency ~ fig8 + fig9 sums",
            "medians inside the 300 ms SLO for 250-750 RPS",
            "shuffling dominates at 50 RPS",
        ),
    ),
    "sec62": Experiment(
        identifier="sec62",
        title="Shuffling linkage bound 1/(S*I)",
        workload="Monte-Carlo over the real shuffle buffer + balancer",
        modules=("repro.privacy.linkage", "repro.proxy.shuffler"),
        bench="benchmarks/test_sec62_linkage.py",
        claims=("empirical success within 4 sigma of 1/(S*I)",),
    ),
    "sec61": Experiment(
        identifier="sec61",
        title="User-Interest unlinkability case analysis",
        workload="real-crypto end-to-end runs + knowledge closure",
        modules=("repro.privacy.unlinkability", "repro.privacy.adversary"),
        bench="tests/test_privacy_unlinkability.py",
        claims=(
            "cases 1a-c and 2a-c derive zero links",
            "both-layer compromise recovers everything",
            "wire-level case-2 extension (reproduction finding)",
        ),
    ),
    "sec63": Experiment(
        identifier="sec63",
        title="Limitations: history attack, low traffic, clear items",
        workload="intersection attacks and degraded configurations",
        modules=("repro.privacy.history", "repro.tenancy", "repro.client.redirect"),
        bench="tests/test_privacy_history.py",
        claims=(
            "stable profiles converge under intersection",
            "redirection removes the IP anchor",
            "multi-tenancy aggregates traffic at a blast-radius cost",
        ),
    ),
    "sec9": Experiment(
        identifier="sec9",
        title="Contrast with encrypted-processing recommenders",
        workload="Paillier Slope One vs PProx per-request crypto",
        modules=("repro.related.paillier", "repro.related.encrypted_slope_one"),
        bench="benchmarks/test_related_work_contrast.py",
        claims=("order-of-magnitude latency gap in PProx's favour",),
    ),
    "chaos": Experiment(
        identifier="chaos",
        title="Fault injection and failure recovery drill",
        workload="gets against the stub under crashes, partitions, loss, brownouts",
        modules=("repro.faults", "repro.cluster.health", "repro.experiments.chaos"),
        bench="tests/test_chaos_scenario.py",
        claims=(
            "availability stays above the floor with all fault kinds active",
            "crashed enclaves re-attest and re-provision before readmission",
            "same-seed chaos runs are deterministic",
        ),
    ),
    "overload": Experiment(
        identifier="overload",
        title="Overload protection and graceful degradation",
        workload="offered-load sweep at 0.5x/1x/2x capacity, protected vs unprotected",
        modules=(
            "repro.overload",
            "repro.simnet.queueing",
            "repro.experiments.overload",
        ),
        bench="tests/test_overload_scenario.py",
        claims=(
            "protected goodput at 2x capacity stays within 20% of saturation",
            "p99 of admitted requests stays bounded while the baseline diverges",
            "sheds are pre-shuffle only: anonymity never drops below S*I",
            "every reject is the canonical padded message on protected hops",
        ),
    ),
    "rotation": Experiment(
        identifier="rotation",
        title="Epoch-based live re-key without downtime",
        workload="mixed gets/posts through the full stack while the UA keys rotate",
        modules=(
            "repro.proxy.epochs",
            "repro.proxy.rekey",
            "repro.experiments.rotation",
        ),
        bench="tests/test_rotation_scenario.py",
        claims=(
            "the drill completes under live traffic with zero aborted requests",
            "released shuffle batches never drop the anonymity set below S*I",
            "a crash of the rotating instance pauses the drill, never aborts it",
            "no wire pseudonym is linkable across epochs",
        ),
    ),
    "scale": Experiment(
        identifier="scale",
        title="Million-user proxy-scaling sweep (Figure-8 shape at 1000x rate)",
        workload="1M synthetic users, 25k-100k RPS through UA->shuffle->IA->LRS",
        modules=(
            "repro.simnet.clock",
            "repro.experiments.scale",
        ),
        bench="tests/test_scale_scenario.py",
        claims=(
            "the calendar-queue engine sustains the 100k RPS point",
            "the full sweep completes in minutes of wall time",
            "same-seed artifacts are byte-identical on calendar and reference engines",
        ),
    ),
    "fleet": Experiment(
        identifier="fleet",
        title="Self-healing sharded fleet: domain loss mid-split",
        workload="mixed gets/posts across UA+IA shards while one shard's domain dies mid-split",
        modules=(
            "repro.fleet",
            "repro.fleet.ring",
            "repro.fleet.supervisor",
            "repro.experiments.capacity",
        ),
        bench="tests/test_fleet_scenario.py",
        claims=(
            "a whole-domain kill mid-split aborts zero client calls",
            "routing keys are request nonces only; no shard identity on the wire",
            "released flushes never drop the anonymity set below S*I",
            "same-seed fleet drills are byte-identical across processes",
        ),
    ),
    "capacity": Experiment(
        identifier="capacity",
        title="Capacity planning: solve (shards, I, S), verify under chaos",
        workload="solved fleet shapes at 250/500/1000 RPS, clean + chaos verification legs",
        modules=(
            "repro.experiments.capacity",
            "repro.fleet.service",
            "repro.obs.slo",
        ),
        bench="tests/test_capacity_scenario.py",
        claims=(
            "each solved plan meets its p99 SLO fault-free",
            "each plan degrades gracefully (goodput >= 0.9) with chaos + overload armed",
            "the shuffle floor holds outside network-interruption windows",
            "capacity.json is deterministic for a fixed seed",
        ),
    ),
    "ablations": Experiment(
        identifier="ablations",
        title="Design-choice ablations",
        workload="flush timeout, LB policy, hardened hop, padding, providers",
        modules=("repro.proxy", "repro.experiments.runner"),
        bench="benchmarks/test_ablations.py",
        claims=("each knob moves latency/privacy in the documented direction",),
    ),
}


def validate_index() -> List[str]:
    """Check that all referenced modules import and benches exist.

    Returns a list of problems (empty when the index is sound).
    """
    import importlib
    import pathlib

    repo_root = pathlib.Path(__file__).resolve().parents[3]
    problems: List[str] = []
    for experiment in EXPERIMENT_INDEX.values():
        for module in experiment.modules:
            try:
                importlib.import_module(module)
            except ImportError as error:
                problems.append(f"{experiment.identifier}: module {module} ({error})")
        if not (repo_root / experiment.bench).exists():
            problems.append(f"{experiment.identifier}: bench {experiment.bench} missing")
    return problems
