"""Experiment runners and figure reproduction harness."""

from repro.experiments.figures import (
    MICRO_RPS_GRID,
    SCALING_RPS_GRID,
    FigureData,
    FigurePoint,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
)
from repro.experiments.chaos import (
    ChaosResult,
    default_chaos_config,
    run_chaos,
)
from repro.experiments.overload import (
    LoadPoint,
    OverloadResult,
    default_overload_config,
    default_overload_policy,
    overload_cost_model,
    run_overload,
)
from repro.experiments.rotation import (
    RotationResult,
    default_rotation_config,
    default_rotation_plan,
    run_rotation,
)
from repro.experiments.capacity import (
    CapacityPlan,
    CapacityPointResult,
    CapacityTarget,
    run_capacity,
    solve_plan,
    verify_plan,
)
from repro.experiments.runner import RunResult, run_baseline, run_full, run_micro
from repro.experiments.report import (
    render_figure,
    render_medians,
    render_table2,
    render_table3,
    render_telemetry,
)

__all__ = [
    "FigureData",
    "FigurePoint",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "MICRO_RPS_GRID",
    "SCALING_RPS_GRID",
    "RunResult",
    "ChaosResult",
    "default_chaos_config",
    "run_chaos",
    "LoadPoint",
    "OverloadResult",
    "default_overload_config",
    "default_overload_policy",
    "overload_cost_model",
    "run_overload",
    "RotationResult",
    "default_rotation_config",
    "default_rotation_plan",
    "run_rotation",
    "CapacityPlan",
    "CapacityPointResult",
    "CapacityTarget",
    "run_capacity",
    "solve_plan",
    "verify_plan",
    "run_micro",
    "run_baseline",
    "run_full",
    "render_figure",
    "render_medians",
    "render_table2",
    "render_table3",
    "render_telemetry",
]
