"""Rotation scenario: epoch-based live re-key under traffic (drill).

The breach response of footnote 1 stops the world; a production RaaS
fleet cannot.  This scenario rotates the UA layer's keys while a
steady request mix flows, with a crash of a rotating instance and a
network partition injected mid-drill, and asserts the three promises
of :mod:`repro.proxy.epochs`:

* **zero downtime** — no client call is ever aborted by the rotation
  (availability stays exactly 1.0; retries/hedges may fire, failures
  may not);
* **the anonymity floor holds** — every shuffle batch *released*
  during the dual-epoch window has size >= S, so the effective
  anonymity set never drops below ``S*I`` at any point an adversary
  could observe (crash drains discard their batch — nothing thinned
  reaches the wire);
* **restart safety** — the drill pauses (never aborts) while the
  rotating layer is degraded and resumes where it stood once the
  supervisor restarts + the health monitor readmits the instance.

A wiretapping :class:`~repro.privacy.adversary.Adversary` rides the
whole run: the epoch tag must never be visible beyond the client->UA
hop, and the user pseudonyms observed on the inner hops before the
announce must be disjoint from those after retirement (no wire
identifier is linkable across epochs).

Determinism: everything runs on the virtual clock from named RNG
streams, so a fixed seed reproduces the identical drill event stream
(and, in a fresh process, a byte-identical telemetry artifact — the
CI job diffs two separate invocations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.context import Deployment, SimContext
from repro.crypto.keys import KeyFactory
from repro.faults import FaultSupervisor, NetworkFaultController
from repro.faults.plan import FaultEvent, FaultPlan
from repro.lrs.service import HarnessService
from repro.obs.slo import Objective, SloEngine, histogram_quantile
from repro.privacy.adversary import Adversary
from repro.privacy.wire import epoch_tag_exposures
from repro.proxy.config import PProxConfig
from repro.proxy.epochs import RotationCoordinator
from repro.simnet.metrics import LatencyRecorder
from repro.telemetry import Telemetry, instrument_stack
from repro.workload.injector import Injector

__all__ = [
    "RotationResult",
    "run_rotation",
    "rotation_slo_objectives",
    "default_rotation_config",
    "default_rotation_plan",
]


def default_rotation_config() -> PProxConfig:
    """Two instances per layer (a crash leaves a surviving backend),
    S=4 with a timeout comfortably under the drill's retire grace."""
    return PProxConfig(
        ua_instances=2,
        ia_instances=2,
        shuffle_size=4,
        shuffle_timeout=0.25,
        balancing="round-robin",
    )


@dataclass
class RotationResult:
    """Outcome of one live-rotation drill (all counters per-run)."""

    seed: int
    rps: float
    duration: float
    announce_at: float
    #: Workload outcome.
    issued: int = 0
    completed: int = 0
    failed: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    retries_performed: int = 0
    hedges_launched: int = 0
    retryable_errors: int = 0
    timeouts: int = 0
    epoch_bumps: int = 0
    #: Injected damage and its recovery.
    crashes_injected: int = 0
    restarts_completed: int = 0
    failovers: int = 0
    readmissions: int = 0
    partition_drops: int = 0
    stale_generation_blocks: int = 0
    #: Drill progress.
    rotation_completed: bool = False
    final_state: str = "idle"
    old_epoch: Optional[int] = None
    new_epoch: Optional[int] = None
    window_seconds: float = 0.0
    pauses: int = 0
    pause_reasons: Dict[str, int] = field(default_factory=dict)
    reprovisions: int = 0
    ticks: int = 0
    rekey_events_processed: int = 0
    rekey_users_rekeyed: int = 0
    translate_cache_hits: int = 0
    translate_cache_misses: int = 0
    #: Dual-epoch window evidence.
    previous_epoch_decrypts: int = 0
    epoch_tags_seen: int = 0
    #: Privacy checks.
    shuffle_size: int = 0
    ia_instances: int = 0
    window_flushes: int = 0
    min_window_flush: Optional[int] = None
    tag_exposures: List[str] = field(default_factory=list)
    cross_epoch_user_overlap: int = 0
    pre_announce_pseudonyms: int = 0
    post_retire_pseudonyms: int = 0
    audit_violations: int = 0
    #: Structured ``rotation`` events, in emission order (the
    #: determinism check compares this stream across same-seed runs).
    rotation_events: List[Dict[str, Any]] = field(default_factory=list)
    #: SLO verdict (:class:`repro.obs.slo.SloReport`) when the drill ran
    #: under an engine; excluded from ``to_dict`` — callers write it as
    #: its own ``slo.json`` artifact.
    slo_report: Optional[Any] = None

    @property
    def required_anonymity(self) -> int:
        """The ``S*I`` bound the drill must never undercut."""
        return self.shuffle_size * max(1, self.ia_instances)

    @property
    def effective_anonymity_floor(self) -> int:
        """Worst released-batch anonymity inside the window."""
        if self.min_window_flush is None:
            return 0
        return self.min_window_flush * max(1, self.ia_instances)

    def problems(self) -> List[str]:
        """Acceptance-check failures (empty when the drill passed)."""
        found: List[str] = []
        if not self.rotation_completed:
            found.append(
                f"rotation never retired the old epoch (state {self.final_state!r},"
                f" pauses {self.pause_reasons})"
            )
        if self.failed:
            found.append(f"{self.failed} client call(s) aborted during the drill")
        if self.crashes_injected == 0:
            found.append("no crash was injected into the rotating layer")
        if self.restarts_completed != self.crashes_injected:
            found.append(
                f"{self.crashes_injected} crashes but only"
                f" {self.restarts_completed} restarts completed"
            )
        if self.pauses == 0:
            found.append("the drill never paused (crash mid-window went unnoticed)")
        if self.previous_epoch_decrypts == 0:
            found.append("no request ever exercised the dual-epoch window")
        if self.window_flushes == 0:
            found.append("no shuffle batch was released during the window")
        elif self.min_window_flush is not None and self.min_window_flush < self.shuffle_size:
            found.append(
                f"anonymity floor violated: a batch of {self.min_window_flush}"
                f" (< S={self.shuffle_size}) was released mid-window"
            )
        if self.tag_exposures:
            found.append(
                f"epoch tag visible beyond client->ua: {self.tag_exposures[0]}"
            )
        if self.cross_epoch_user_overlap:
            found.append(
                f"{self.cross_epoch_user_overlap} user pseudonym(s) linkable"
                " across epochs"
            )
        if self.audit_violations:
            found.append(f"redaction audit found {self.audit_violations} leak(s)")
        return found

    @property
    def ok(self) -> bool:
        return not self.problems()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (rotation_events excluded; see artifact)."""
        return {
            "seed": self.seed,
            "rps": self.rps,
            "duration": self.duration,
            "announce_at": self.announce_at,
            "issued": self.issued,
            "completed": self.completed,
            "failed": self.failed,
            "outcomes": dict(self.outcomes),
            "retries_performed": self.retries_performed,
            "hedges_launched": self.hedges_launched,
            "retryable_errors": self.retryable_errors,
            "timeouts": self.timeouts,
            "epoch_bumps": self.epoch_bumps,
            "crashes_injected": self.crashes_injected,
            "restarts_completed": self.restarts_completed,
            "failovers": self.failovers,
            "readmissions": self.readmissions,
            "partition_drops": self.partition_drops,
            "stale_generation_blocks": self.stale_generation_blocks,
            "rotation_completed": self.rotation_completed,
            "final_state": self.final_state,
            "old_epoch": self.old_epoch,
            "new_epoch": self.new_epoch,
            "window_seconds": self.window_seconds,
            "pauses": self.pauses,
            "pause_reasons": dict(self.pause_reasons),
            "reprovisions": self.reprovisions,
            "ticks": self.ticks,
            "rekey_events_processed": self.rekey_events_processed,
            "rekey_users_rekeyed": self.rekey_users_rekeyed,
            "translate_cache_hits": self.translate_cache_hits,
            "translate_cache_misses": self.translate_cache_misses,
            "previous_epoch_decrypts": self.previous_epoch_decrypts,
            "epoch_tags_seen": self.epoch_tags_seen,
            "shuffle_size": self.shuffle_size,
            "ia_instances": self.ia_instances,
            "window_flushes": self.window_flushes,
            "min_window_flush": self.min_window_flush,
            "required_anonymity": self.required_anonymity,
            "effective_anonymity_floor": self.effective_anonymity_floor,
            "tag_exposure_count": len(self.tag_exposures),
            "cross_epoch_user_overlap": self.cross_epoch_user_overlap,
            "pre_announce_pseudonyms": self.pre_announce_pseudonyms,
            "post_retire_pseudonyms": self.post_retire_pseudonyms,
            "rotation_event_count": len(self.rotation_events),
            "audit_violations": self.audit_violations,
        }


def default_rotation_plan(config: PProxConfig, announce_at: float) -> FaultPlan:
    """Crash a rotating-layer instance mid-window, partition the proxy
    layers briefly during re-encryption — both must pause, not abort.

    Times are relative to traffic start; the runner shifts them onto
    the virtual clock.
    """
    return FaultPlan.from_events(
        [
            FaultEvent(
                at=announce_at + 0.5, kind="crash", target="pprox-ua-0", duration=0.5
            ),
            FaultEvent(
                at=announce_at + 0.3, kind="partition", target="ua|ia", duration=0.2
            ),
        ]
    )


def rotation_slo_objectives(
    required_anonymity: float,
    goodput_floor: float = 0.995,
    pause_ceiling: float = 3.0,
    p99_ceiling: float = 2.5,
) -> List[Objective]:
    """The live-rotation drill's objectives.

    Rotation promises zero downtime, so goodput is a near-1.0 ratio
    (retries ride over the injected crash/partition; only a failure
    would dent it).  The anonymity floor is hard — a source that only
    reports while the dual-epoch window is open samples ``min released
    flush x I`` at exactly the instants an adversary can observe.  The
    pause budget bounds how long the drill may sit degraded: the crash
    plus partition must pause the rotation, but the supervisor restart
    and health-monitor readmission must unstick it well inside the
    ceiling.
    """
    return [
        Objective(
            name="goodput",
            kind="ratio",
            target=goodput_floor,
            good="completed",
            total="issued",
            description="Fraction of issued calls completed during the drill.",
        ),
        Objective(
            name="anonymity_floor",
            kind="floor",
            target=required_anonymity,
            value="anonymity_floor",
            description="min released flush x IA instances inside the dual window.",
        ),
        Objective(
            name="rotation_pause_seconds",
            kind="ceiling",
            target=pause_ceiling,
            value="rotation_pause_seconds",
            description="Accumulated wall of drill-paused state (virtual seconds).",
        ),
        Objective(
            name="p99_latency_seconds",
            kind="ceiling",
            target=p99_ceiling,
            value="p99_latency_seconds",
            description="p99 of client-observed end-to-end latency.",
        ),
    ]


def run_rotation(
    seed: int = 11,
    rps: float = 140.0,
    duration: float = 10.0,
    *,
    announce_at: float = 2.0,
    preload_events: int = 160,
    config: Optional[PProxConfig] = None,
    plan: Optional[FaultPlan] = None,
    telemetry: Optional[Telemetry] = None,
    slo: Optional[SloEngine] = None,
    probe_interval: float = 0.1,
    grace: float = 6.0,
) -> RotationResult:
    """Run the live-rotation drill once; returns its :class:`RotationResult`.

    *preload_events* feedback posts are stored (and the recommender
    trained) before traffic starts, so the online re-encryption has a
    real old-epoch prefix to translate while new-epoch rows keep
    arriving on top of it.  Pass an :class:`SloEngine` as *slo* to
    sample burn rates live (attached after preload, so the series
    covers only the drill) and attach an ``slo_report`` verdict.
    """
    telemetry = telemetry if telemetry is not None else Telemetry(scrape_interval=1.0)
    ctx = SimContext.fresh(seed, telemetry=telemetry)
    telemetry.bind(ctx.loop, run_label=f"rotation/seed{seed}")

    harness = HarnessService(
        loop=ctx.loop, rng=ctx.rng.stream("lrs"), frontend_count=3
    )
    harness.engine.trainer.llr_threshold = 0.0
    pprox_config = config if config is not None else default_rotation_config()
    deployment = Deployment.build(
        ctx=ctx, config=pprox_config, lrs_picker=harness.pick_frontend
    )
    service = deployment.service

    adversary = Adversary()
    adversary.attach(ctx.network)
    adversary.observe_lrs(harness.engine.store)

    #: epoch_ttl models a stale client population: material is cached
    #: for a second, so requests sealed under the outgoing keys keep
    #: arriving after the announce and the dual window does real work.
    client = deployment.client(
        request_timeout=0.8,
        max_retries=5,
        backoff_base=0.05,
        backoff_jitter=0.02,
        hedge_delay=0.4,
        epoch_ttl=1.0,
    )
    monitor = deployment.health_monitor(interval=probe_interval)

    netfaults = NetworkFaultController(
        network=ctx.network, rng=ctx.rng.stream("netfaults")
    )
    supervisor = FaultSupervisor(
        loop=ctx.loop, service=service, netfaults=netfaults, telemetry=telemetry
    )

    coordinator = RotationCoordinator(
        loop=ctx.loop,
        service=service,
        layer="UA",
        store=harness.engine.store,
        provider=ctx.resolved_provider(),
        factory=KeyFactory(
            rsa_bits=1024,
            rng_int=ctx.rng.int_fn("rot"),
            rng_bytes=ctx.rng.bytes_fn("rot-b"),
        ),
        on_cutover=harness.train,
        batch_size=8,
        tick_interval=0.05,
        retire_grace=0.6,
        telemetry=telemetry,
    )

    injector = Injector(
        loop=ctx.loop, rng=ctx.rng.stream("injector"),
        recorder=LatencyRecorder("rotation"),
    )
    instrument_stack(
        telemetry,
        service=service,
        provider=ctx.resolved_provider(),
        lrs=harness,
        injector=injector,
        network=ctx.network,
        monitor=monitor,
        client=client,
        supervisor=supervisor,
        rotation=coordinator,
    )

    # Chain the window sampler AFTER instrument_stack (which installs
    # its own on_flush): record every *released* batch so the anonymity
    # floor can be checked at exactly the instants an adversary sees.
    flush_samples: List[Tuple[float, int]] = []
    for role_instances in (service.ua_instances, service.ia_instances):
        for instance in role_instances:
            buffer = getattr(instance, "request_buffer", None) or getattr(
                instance, "response_buffer", None
            )
            if buffer is None:
                continue
            previous_hook = buffer.on_flush

            def on_flush(
                size: int, timer_fired: bool, chained=previous_hook
            ) -> None:
                if chained is not None:
                    chained(size, timer_fired)
                flush_samples.append((ctx.loop.now, size))

            buffer.on_flush = on_flush

    # Old-epoch prefix: store + train before any rotation machinery
    # runs (the monitor/supervisor/coordinator are not started yet, so
    # this bare loop.run() terminates).  Counts are a multiple of 2*S
    # so round-robin leaves no partial batch behind for the timer.
    users = [f"user-{index}" for index in range(40)]
    items = [f"item-{index}" for index in range(12)]
    seed_rng = ctx.rng.stream("preload")
    for index in range(preload_events):
        client.post(users[index % len(users)], seed_rng.choice(items))
    ctx.loop.run()
    harness.train()

    user_rng = ctx.rng.stream("users")

    def issue(on_complete) -> None:
        if user_rng.random() < 0.2:
            client.post(
                user_rng.choice(users), user_rng.choice(items),
                on_complete=on_complete,
            )
        else:
            client.get(user_rng.choice(users), on_complete=on_complete)

    # Traffic, faults and the drill are all scheduled relative to the
    # post-preload clock so preload cost never shifts the drill.
    start, end = injector.inject(rps, duration, issue)

    if slo is not None:
        if slo.telemetry is None:
            slo.telemetry = telemetry
        ia_count = len(service.ia_instances)
        latency_hist = telemetry.registry.histogram(
            "pprox_request_latency_seconds",
            "End-to-end client-observed request latency.",
        )

        def anonymity_floor_source() -> Optional[float]:
            opened = coordinator.window_opened_at
            if opened is None:
                return None
            closed = coordinator.window_closed_at
            sizes = [
                size
                for at, size in flush_samples
                if at >= opened and (closed is None or at <= closed)
            ]
            if not sizes:
                return None
            return float(min(sizes) * ia_count)

        # Integrate paused time tick-by-tick: each sample adds the gap
        # since the previous one iff the coordinator is currently
        # paused (interval-resolution, deterministic on virtual time).
        pause_clock = {"seconds": 0.0, "last": None}

        def pause_seconds_source() -> float:
            now = ctx.loop.now
            last = pause_clock["last"]
            if last is not None and coordinator.paused:
                pause_clock["seconds"] += now - last
            pause_clock["last"] = now
            return pause_clock["seconds"]

        slo.track("issued", lambda: injector.report.issued)
        slo.track("completed", lambda: injector.report.completed)
        slo.track("anonymity_floor", anonymity_floor_source)
        slo.track("rotation_pause_seconds", pause_seconds_source)
        slo.track(
            "p99_latency_seconds", lambda: histogram_quantile(latency_hist, 0.99)
        )
        # Bounded at the drain horizon (the telemetry scraper also
        # re-arms while work is pending; two unbounded tickers would
        # keep each other alive and the final run() would never drain).
        slo.attach(ctx.loop, until=end + grace)

    monitor.start()
    relative_plan = (
        plan if plan is not None else default_rotation_plan(pprox_config, announce_at)
    )
    supervisor.arm(relative_plan.shifted(start))
    coordinator.start(start + announce_at)
    ctx.loop.run_until(end + grace)
    monitor.stop()
    if not coordinator.completed:
        # Never hang the runner on a drill that is still pausing at
        # traffic end; the result records the non-retired state.
        coordinator.stop()
    ctx.loop.run()

    window_samples = [
        size
        for at, size in flush_samples
        if coordinator.window_opened_at is not None
        and at >= coordinator.window_opened_at
        and (coordinator.window_closed_at is None or at <= coordinator.window_closed_at)
    ]
    before = adversary.pseudonyms_observed(
        until=coordinator.window_opened_at if coordinator.window_opened_at else 0.0
    )
    after = adversary.pseudonyms_observed(
        since=(
            coordinator.window_closed_at
            if coordinator.window_closed_at is not None
            else float("inf")
        )
    )
    overlap = before["user"] & after["user"]

    rekey_report = (
        coordinator.rekeyer.report() if coordinator.rekeyer is not None else None
    )
    result = RotationResult(
        seed=seed, rps=rps, duration=duration, announce_at=announce_at,
        issued=injector.report.issued,
        completed=injector.report.completed,
        failed=injector.report.failed,
        outcomes=dict(client.outcomes),
        retries_performed=client.retries_performed,
        hedges_launched=client.hedges_launched,
        retryable_errors=client.retryable_errors,
        timeouts=client.timeouts,
        epoch_bumps=client.epoch_bumps,
        crashes_injected=supervisor.crashes_injected,
        restarts_completed=supervisor.restarts_completed,
        failovers=monitor.failovers,
        readmissions=len(monitor.readmitted),
        partition_drops=netfaults.partition_drops,
        stale_generation_blocks=monitor.stale_generation_blocks,
        rotation_completed=coordinator.completed,
        final_state=coordinator.state,
        old_epoch=coordinator.old_epoch,
        new_epoch=coordinator.new_epoch,
        window_seconds=coordinator.dual_window_seconds,
        pauses=coordinator.pauses,
        pause_reasons=dict(coordinator.pause_reasons),
        reprovisions=coordinator.reprovisions,
        ticks=coordinator.ticks,
        rekey_events_processed=rekey_report.events_processed if rekey_report else 0,
        rekey_users_rekeyed=rekey_report.users_rekeyed if rekey_report else 0,
        translate_cache_hits=rekey_report.translate_cache_hits if rekey_report else 0,
        translate_cache_misses=(
            rekey_report.translate_cache_misses if rekey_report else 0
        ),
        previous_epoch_decrypts=sum(
            instance.previous_epoch_decrypts for instance in service.ua_instances
        ),
        epoch_tags_seen=sum(
            instance.epoch_tags_seen for instance in service.ua_instances
        ),
        shuffle_size=pprox_config.shuffle_size,
        ia_instances=len(service.ia_instances),
        window_flushes=len(window_samples),
        min_window_flush=min(window_samples) if window_samples else None,
        tag_exposures=epoch_tag_exposures(adversary.observations),
        cross_epoch_user_overlap=len(overlap),
        pre_announce_pseudonyms=len(before["user"]),
        post_retire_pseudonyms=len(after["user"]),
        rotation_events=[
            event.to_dict()
            for event in telemetry.event_log.events
            if event.kind == "rotation"
        ],
        audit_violations=len(telemetry.audit()),
    )
    if slo is not None:
        result.slo_report = slo.evaluate(
            rotation_slo_objectives(float(result.required_anonymity)),
            experiment="rotation",
        )
    telemetry.finalize_run(
        extra={"scenario": "rotation", "seed": seed, **result.to_dict()}
    )
    return result
