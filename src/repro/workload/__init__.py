"""Workload generation and injection (the paper's §7.1 and §8 setup)."""

from repro.workload.injector import InjectionReport, Injector
from repro.workload.movielens import PAPER_SLICE, SyntheticMovieLens
from repro.workload.scenario import ScenarioResult, ScenarioTimings, TwoPhaseScenario

__all__ = [
    "Injector",
    "InjectionReport",
    "SyntheticMovieLens",
    "PAPER_SLICE",
    "TwoPhaseScenario",
    "ScenarioTimings",
    "ScenarioResult",
]
