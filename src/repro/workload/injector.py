"""Open-loop workload injector (the paper's node.js ``loadtest``).

"We built an HTTP load injector based on the high-performance
loadtest library for node.js.  The injector issues REST API calls and
times their execution" (§7.1).  The injector is open-loop: arrivals
are scheduled at the target rate regardless of completions, which is
what exposes saturation as unbounded latency growth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Tuple

from repro.client.library import CompletedCall
from repro.simnet.clock import EventLoop
from repro.simnet.metrics import LatencyRecorder

__all__ = ["Injector", "InjectionReport"]


@dataclass
class InjectionReport:
    """Counters for one injection phase."""

    issued: int = 0
    completed: int = 0
    failed: int = 0

    @property
    def completion_ratio(self) -> float:
        """Fraction of issued calls that completed."""
        return self.completed / self.issued if self.issued else 1.0


@dataclass
class Injector:
    """Schedules API calls at a fixed rate and records latencies.

    *call_factory* yields ``(issue, description)`` pairs: ``issue`` is
    invoked with a completion callback at each arrival instant.  The
    per-arrival jitter models the injector's own scheduling noise.
    """

    loop: EventLoop
    rng: random.Random
    recorder: LatencyRecorder = field(default_factory=LatencyRecorder)
    report: InjectionReport = field(default_factory=InjectionReport)
    jitter_seconds: float = 0.001
    #: Optional telemetry hook: called with each successful call's
    #: latency (wired to a histogram by ``instrument_injector``).
    latency_observer: Optional[Callable[[float], None]] = None

    def inject(
        self,
        rate_per_second: float,
        duration: float,
        issue_call: Callable[[Callable[[CompletedCall], None]], None],
        start_at: Optional[float] = None,
    ) -> Tuple[float, float]:
        """Schedule arrivals at *rate_per_second* for *duration* seconds.

        Returns the (start, end) times of the phase.  Must be called
        before running the loop across that window.
        """
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        start = start_at if start_at is not None else self.loop.now
        count = int(rate_per_second * duration)
        interval = 1.0 / rate_per_second
        # One shared closure for the whole phase and the handle-free
        # ``post_at`` path: at scale-sweep rates (100k arrivals per
        # simulated second) a closure + EventHandle per arrival is the
        # single largest allocation source in the run.
        fire = self._arrival(issue_call)
        post_at = self.loop.post_at
        uniform = self.rng.uniform
        jitter = self.jitter_seconds
        for index in range(count):
            post_at(start + index * interval + uniform(0, jitter), fire)
        return start, start + duration

    def _arrival(self, issue_call: Callable[[Callable[[CompletedCall], None]], None]) -> Callable[[], None]:
        def fire() -> None:
            self.report.issued += 1
            issue_call(self._on_complete)

        return fire

    def _on_complete(self, call: CompletedCall) -> None:
        if call.ok:
            self.report.completed += 1
            self.recorder.record(call.completed_at, call.latency)
            if self.latency_observer is not None:
                self.latency_observer(call.latency)
        else:
            self.report.failed += 1
