"""Two-phase experiment scenario (paper §8, "Metrics and workload").

"In all of our experiments, we proceed in two phases: We inject
feedback for one minute and trigger the training phase of UR in a
first phase, and collect recommendations for a duration of 5 minutes
in a second phase. ... We trim the first and last 15 seconds of each
measurement period."

:class:`ScenarioTimings` carries those durations; the defaults are a
faithfully-shaped but scaled-down version (the simulator's virtual
minutes are free, but the pure-Python crypto and event processing are
not, and the paper's shapes emerge well before 5 virtual minutes).
``ScenarioTimings.paper()`` returns the full-scale values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Tuple

from repro.simnet.clock import EventLoop
from repro.simnet.metrics import CandlestickSummary, LatencyRecorder, trim_window
from repro.telemetry.types import TelemetryLike
from repro.workload.injector import InjectionReport, Injector
from repro.workload.movielens import SyntheticMovieLens

__all__ = ["ScenarioTimings", "TwoPhaseScenario", "ScenarioResult"]


class _ClientLike(Protocol):
    def post(self, user: str, item: str, payload=None, client_address=None, on_complete=None) -> None: ...
    def get(self, user: str, client_address=None, on_complete=None) -> None: ...


class _TrainableLrs(Protocol):
    def train(self) -> None: ...


@dataclass(frozen=True)
class ScenarioTimings:
    """Durations of the two phases and the trim window."""

    feedback_seconds: float = 20.0
    query_seconds: float = 40.0
    trim_seconds: float = 8.0
    drain_seconds: float = 5.0

    @classmethod
    def paper(cls) -> "ScenarioTimings":
        """The full-scale timings of §8."""
        return cls(feedback_seconds=60.0, query_seconds=300.0, trim_seconds=15.0)

    @classmethod
    def quick(cls) -> "ScenarioTimings":
        """Short timings for unit/integration tests."""
        return cls(feedback_seconds=4.0, query_seconds=10.0, trim_seconds=2.0)


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    recorder: LatencyRecorder
    report: InjectionReport
    window: Tuple[float, float]
    feedback_report: InjectionReport

    def trimmed_latencies(self) -> List[float]:
        """Latencies inside the trimmed measurement window."""
        return self.recorder.trimmed(*self.window)

    def summary(self) -> CandlestickSummary:
        """Candlestick over the trimmed window."""
        return self.recorder.summarize(self.trimmed_latencies())

    @property
    def saturated(self) -> bool:
        """Heuristic saturation check, as the paper's cut-off.

        A configuration is saturated when queues grow without bound:
        completions fall behind or the median latency inside the
        window exceeds 600 ms (twice the SLO median).
        """
        if self.report.issued and self.report.completion_ratio < 0.95:
            return True
        values = self.trimmed_latencies()
        if not values:
            return True
        values = sorted(values)
        return values[len(values) // 2] > 0.6


@dataclass
class TwoPhaseScenario:
    """Drives feedback injection, training, and the query phase."""

    loop: EventLoop
    rng: random.Random
    client: _ClientLike
    lrs: _TrainableLrs
    workload: SyntheticMovieLens
    timings: ScenarioTimings = field(default_factory=ScenarioTimings)
    feedback_rate: float = 250.0
    #: Optional :class:`repro.telemetry.Telemetry` hub: phase
    #: transitions land in the structured event log and the query
    #: injector feeds the latency histogram.
    telemetry: Optional[TelemetryLike] = None

    def _emit_phase(self, phase: str, **payload) -> None:
        if self.telemetry is not None:
            self.telemetry.event_log.emit("phase", "operator", {"phase": phase, **payload})

    def run(self, query_rate: float) -> ScenarioResult:
        """Run both phases at *query_rate* gets per second."""
        feedback_injector = Injector(self.loop, self.rng, recorder=LatencyRecorder("posts"))
        self._emit_phase("feedback", rate=self.feedback_rate,
                         duration=self.timings.feedback_seconds)
        events = list(self.workload.feedback_stream())
        cursor = {"index": 0}

        def issue_post(on_complete) -> None:
            user, item = events[cursor["index"] % len(events)]
            cursor["index"] += 1
            self.client.post(user, item, on_complete=on_complete)

        feedback_injector.inject(
            self.feedback_rate, self.timings.feedback_seconds, issue_post
        )
        self.loop.run()
        self._emit_phase("train")
        self.lrs.train()

        query_injector = Injector(self.loop, self.rng, recorder=LatencyRecorder("gets"))
        if self.telemetry is not None:
            from repro.telemetry.instruments import instrument_injector

            instrument_injector(self.telemetry, query_injector)
        self._emit_phase("query", rate=query_rate, duration=self.timings.query_seconds)
        query_count = int(query_rate * self.timings.query_seconds) + 1
        users = self.workload.query_users(query_count, self.rng)
        user_cursor = {"index": 0}

        def issue_get(on_complete) -> None:
            user = users[user_cursor["index"] % len(users)]
            user_cursor["index"] += 1
            self.client.get(user, on_complete=on_complete)

        phase_start = self.loop.now
        start, end = query_injector.inject(query_rate, self.timings.query_seconds,
                                           issue_get, start_at=phase_start)
        self.loop.run()
        # Allow in-flight requests to drain before closing the books.
        self.loop.run_until(end + self.timings.drain_seconds)
        self.loop.run()
        self._emit_phase("drain_complete", completed=query_injector.report.completed)

        window = trim_window(start, end, self.timings.trim_seconds)
        return ScenarioResult(
            recorder=query_injector.recorder,
            report=query_injector.report,
            window=window,
            feedback_report=feedback_injector.report,
        )
