"""Synthetic MovieLens-like workload.

The paper uses the 2014-2015 slice of the MovieLens ml-20m dataset:
562,888 ratings of 17,141 movies by 7,288 users.  The evaluation uses
it purely as a request stream — feedback insertions followed by
recommendation queries — so what matters for the reproduction is the
*shape* of the interaction distribution, not the actual movie titles:

* item popularity follows a heavy-tailed (Zipf-like) law;
* per-user activity is heavy-tailed too (median ~30 ratings, a long
  tail of power users);
* tastes are clustered: items belong to genres and users concentrate
  on a couple of preferred genres — the latent structure collaborative
  filtering exploits (without it, popularity is the only signal and
  CCO cannot outperform the non-personalized baseline);
* the same identifier space is reused between the feedback and the
  query phases.

:class:`SyntheticMovieLens` generates such a trace deterministically
from a seed, at a configurable scale (``scale=1.0`` approximates the
paper's slice; tests use much smaller scales).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["SyntheticMovieLens", "PAPER_SLICE"]

#: The aggregates of the paper's dataset slice (§8).
PAPER_SLICE = {"ratings": 562_888, "movies": 17_141, "users": 7_288}


@dataclass
class SyntheticMovieLens:
    """Deterministic Zipf-shaped interaction trace generator."""

    seed: int = 2014
    scale: float = 0.01
    zipf_exponent: float = 1.05
    #: Number of genres items are spread over.
    genre_count: int = 12
    #: Probability a user's interaction stays within their preferred
    #: genres (the rest is global Zipf exploration).
    genre_affinity: float = 0.85
    users: List[str] = field(default_factory=list, repr=False)
    items: List[str] = field(default_factory=list, repr=False)
    events: List[Tuple[str, str]] = field(default_factory=list, repr=False)
    #: item -> genre index (public catalog metadata).
    genres: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        rng = random.Random(self.seed)
        user_count = max(int(PAPER_SLICE["users"] * self.scale), 8)
        item_count = max(int(PAPER_SLICE["movies"] * self.scale), 16)
        rating_count = max(int(PAPER_SLICE["ratings"] * self.scale), 64)
        self.users = [f"user-{index}" for index in range(user_count)]
        self.items = [f"movie-{index}" for index in range(item_count)]

        # Genres round-robin over the popularity ranking so every genre
        # gets a share of head and tail items.
        self.genres = {
            item: index % self.genre_count for index, item in enumerate(self.items)
        }
        by_genre: Dict[int, List[str]] = {}
        genre_weights: Dict[int, List[float]] = {}
        for index, item in enumerate(self.items):
            genre = self.genres[item]
            by_genre.setdefault(genre, []).append(item)
            genre_weights.setdefault(genre, []).append(
                1.0 / (index + 1) ** self.zipf_exponent
            )
        weights = [1.0 / (rank + 1) ** self.zipf_exponent for rank in range(item_count)]

        # Heavy-tailed per-user activity: lognormal, normalized to hit
        # the target rating count.
        raw_activity = [rng.lognormvariate(0.0, 1.0) for _ in self.users]
        activity_scale = rating_count / sum(raw_activity)
        events: List[Tuple[str, str]] = []
        for user, activity in zip(self.users, raw_activity):
            count = max(1, round(activity * activity_scale))
            preferred = rng.sample(range(self.genre_count), k=min(2, self.genre_count))
            chosen: List[str] = []
            for _ in range(count):
                if rng.random() < self.genre_affinity:
                    genre = rng.choice(preferred)
                    chosen.append(
                        rng.choices(by_genre[genre], weights=genre_weights[genre], k=1)[0]
                    )
                else:
                    chosen.append(rng.choices(self.items, weights=weights, k=1)[0])
            seen = set()
            for item in chosen:
                if item in seen:
                    continue
                seen.add(item)
                events.append((user, item))
        rng.shuffle(events)
        self.events = events

    @property
    def rating_count(self) -> int:
        """Number of generated (deduplicated) interactions."""
        return len(self.events)

    def user_histories(self) -> Dict[str, List[str]]:
        """Per-user item lists in event order."""
        histories: Dict[str, List[str]] = {}
        for user, item in self.events:
            histories.setdefault(user, []).append(item)
        return histories

    def feedback_stream(self) -> Sequence[Tuple[str, str]]:
        """The (user, item) stream for the feedback injection phase."""
        return self.events

    def query_users(self, count: int, rng: random.Random) -> List[str]:
        """Sample *count* users (with replacement) for the get phase.

        Active users query more often — weight by activity, as real
        front-ends would.
        """
        histories = self.user_histories()
        users = list(histories)
        weights = [len(histories[user]) for user in users]
        return rng.choices(users, weights=weights, k=count)
