"""Cluster deployment descriptions and elastic scaling."""

from repro.cluster.autoscaler import ElasticScaler, ScalingDecision
from repro.cluster.health import HealthMonitor
from repro.cluster.deployments import (
    CLUSTER_NODE_BUDGET,
    MACRO_BASELINES,
    MACRO_FULL,
    MICRO_CONFIGS,
    MacroConfig,
    MicroConfig,
    cluster_plan,
)

__all__ = [
    "ElasticScaler",
    "HealthMonitor",
    "ScalingDecision",
    "MicroConfig",
    "MacroConfig",
    "MICRO_CONFIGS",
    "MACRO_BASELINES",
    "MACRO_FULL",
    "CLUSTER_NODE_BUDGET",
    "cluster_plan",
]
