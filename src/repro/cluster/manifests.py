"""Everything-as-code deployment manifests (paper §7.2).

The paper's artifact deploys every component "as Docker containers in
a cluster managed with MaaS and running Kubernetes", configured
through Helm charts.  This module renders the equivalent declarative
description for any named configuration of Tables 2/3: one YAML-like
document per deployment listing pods, placements, resources and the
wiring between services.  The renderer is pure (configuration in,
text out) so the manifests can be regression-tested and kept in sync
with :mod:`repro.cluster.deployments`.
"""

from __future__ import annotations

from typing import List

from repro.cluster.deployments import (
    MACRO_BASELINES,
    MACRO_FULL,
    MICRO_CONFIGS,
    MacroConfig,
    MicroConfig,
    cluster_plan,
)

__all__ = ["render_manifest", "all_manifest_names"]


def all_manifest_names() -> List[str]:
    """Every configuration a manifest can be rendered for."""
    return list(MICRO_CONFIGS) + list(MACRO_BASELINES) + list(MACRO_FULL)


def _pod(name: str, image: str, node: str, extra: List[str]) -> List[str]:
    lines = [
        f"  - name: {name}",
        f"    image: {image}",
        f"    node: {node}",
        "    resources: {cpu: 2, memory: 32Gi}",
    ]
    lines += [f"    {line}" for line in extra]
    return lines


def render_manifest(config_name: str, shuffle_timeout: float = 0.25) -> str:
    """Render the deployment manifest for a named configuration."""
    roles, node_count = cluster_plan(config_name)
    lines: List[str] = [
        f"# PProx reproduction deployment: {config_name}",
        f"# nodes: {node_count} of 27 (Intel NUC, 2-core i7, SGX-enabled)",
        "apiVersion: repro/v1",
        "kind: Deployment",
        f"name: pprox-{config_name}",
        "pods:",
    ]

    if config_name in MICRO_CONFIGS:
        config: MicroConfig = MICRO_CONFIGS[config_name]
        pprox = config.pprox_config(shuffle_timeout)
        for index in range(config.ua_instances):
            lines += _pod(
                f"pprox-ua-{index}", "pprox/user-anonymizer:1.0", f"node-ua-{index}",
                [
                    "sgx: {enabled: %s, epc: 93Mi}" % str(config.sgx).lower(),
                    f"env: {{SHUFFLE_SIZE: {pprox.shuffle_size},"
                    f" SHUFFLE_TIMEOUT_MS: {int(shuffle_timeout * 1000)},"
                    f" ENCRYPTION: {str(config.encryption).lower()}}}",
                ],
            )
        for index in range(config.ia_instances):
            lines += _pod(
                f"pprox-ia-{index}", "pprox/item-anonymizer:1.0", f"node-ia-{index}",
                [
                    "sgx: {enabled: %s, epc: 93Mi}" % str(config.sgx).lower(),
                    f"env: {{SHUFFLE_SIZE: {pprox.shuffle_size},"
                    f" ITEM_PSEUDONYMIZATION: {str(config.item_pseudonymization).lower()}}}",
                ],
            )
        lines += _pod("lrs-stub", "nginx:stable", "node-stub",
                      ["env: {STATIC_PAYLOAD_ITEMS: 20}"])
    else:
        config = MACRO_BASELINES.get(config_name) or MACRO_FULL[config_name]
        for index in range(config.ua_instances):
            lines += _pod(f"pprox-ua-{index}", "pprox/user-anonymizer:1.0",
                          f"node-ua-{index}", ["sgx: {enabled: true, epc: 93Mi}"])
        for index in range(config.ia_instances):
            lines += _pod(f"pprox-ia-{index}", "pprox/item-anonymizer:1.0",
                          f"node-ia-{index}", ["sgx: {enabled: true, epc: 93Mi}"])
        for index in range(config.frontends):
            lines += _pod(f"harness-fe-{index}", "actionml/harness:ur",
                          f"node-fe-{index}", [])
        for index in range(3):
            lines += _pod(f"elasticsearch-{index}", "elasticsearch:7",
                          f"node-es-{index}", [])
        lines += _pod("mongo-spark", "mongo+spark:bundle", "node-support", [])

    injectors = [role for role in roles if role.startswith("injector")]
    for index, _ in enumerate(injectors):
        lines += _pod(f"injector-{index}", "pprox/loadtest:node", f"node-inj-{index}",
                      [])

    lines.append("services:")
    has_proxy = config_name in MICRO_CONFIGS or config.ua_instances > 0
    if has_proxy:
        lines += [
            "  - {name: ua, selector: pprox-ua-*, policy: random}   # kube-proxy",
            "  - {name: ia, selector: pprox-ia-*, policy: random}",
        ]
    if config_name not in MICRO_CONFIGS:
        lines.append("  - {name: lrs, selector: harness-fe-*, policy: random}")
    else:
        lines.append("  - {name: lrs, selector: lrs-stub, policy: direct}")
    lines += [
        "logging:",
        "  collector: fluentd",
        "  sink: mongodb://observability/logs   # separate from the LRS store",
    ]
    return "\n".join(lines)
