"""Health checking of proxy instances (kube-proxy endpoint pruning).

Kubernetes removes failed pods from a Service's endpoint set once
probes fail; :class:`HealthMonitor` models that: it probes every
instance's ``alive`` flag on an interval and ejects dead ones from
their load balancer, so new traffic stops being routed into the void.
Requests already lost inside a dead instance are recovered by the
client library's timeout + retry (see
:class:`repro.client.library.PProxClient`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.proxy.service import PProxService
from repro.simnet.clock import EventLoop

__all__ = ["HealthMonitor"]


@dataclass
class HealthMonitor:
    """Periodically ejects dead instances from the balancers."""

    loop: EventLoop
    service: PProxService
    interval: float = 2.0
    ejected: List[str] = field(default_factory=list)
    #: Optional :class:`repro.telemetry.Telemetry` hub; ejections are
    #: recorded as structured ``fault`` events.
    telemetry: object = None
    _running: bool = False

    def start(self) -> None:
        """Begin probing."""
        if self._running:
            return
        self._running = True
        self.loop.schedule(self.interval, self._probe)

    def stop(self) -> None:
        """Stop probing (the next tick becomes a no-op)."""
        self._running = False

    def _probe(self) -> None:
        if not self._running:
            return
        for balancer, instances in (
            (self.service.ua_balancer, self.service.ua_instances),
            (self.service.ia_balancer, self.service.ia_instances),
        ):
            for instance in list(balancer.backends):
                if not instance.alive:
                    balancer.remove(instance)
                    self.ejected.append(instance.name)
                    if self.telemetry is not None:
                        self.telemetry.emit_fault(
                            "operator",
                            {
                                "event": "instance_ejected",
                                "instance": instance.name,
                                "balancer": balancer.name,
                            },
                        )
        self.loop.schedule(self.interval, self._probe)
