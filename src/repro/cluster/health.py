"""Health checking of proxy instances (kube-proxy endpoint pruning).

Kubernetes removes failed pods from a Service's endpoint set once
probes fail, and adds them back when their readiness probe passes;
:class:`HealthMonitor` models both halves.  It probes every instance's
``alive`` flag on an interval, ejects dead ones from their load
balancer so new traffic stops being routed into the void, and readmits
instances that came back (an instance only flips alive again after
:meth:`repro.proxy.service.PProxService.restart_instance` completed
re-attestation and re-provisioning, so a readmitted backend always
holds valid layer keys).  Requests already lost inside a dead instance
are recovered by the client library's timeout + retry (see
:class:`repro.client.library.PProxClient`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.proxy.service import PProxService
from repro.simnet.clock import EventLoop
from repro.telemetry.types import TelemetryLike

__all__ = ["HealthMonitor"]


@dataclass
class HealthMonitor:
    """Periodically ejects dead instances and readmits recovered ones."""

    loop: EventLoop
    service: PProxService
    interval: float = 2.0
    ejected: List[str] = field(default_factory=list)
    readmitted: List[str] = field(default_factory=list)
    #: Optional telemetry hub; ejections/readmissions are recorded as
    #: structured ``fault`` events and the eject->readmit span feeds
    #: the ``pprox_recovery_seconds`` histogram.
    telemetry: Optional[TelemetryLike] = None
    #: Flag an instance as overloaded (operator event) when its ingress
    #: sojourn exceeds this; cleared when it drops back under.  ``None``
    #: disables overload probing.
    overload_sojourn_threshold: Optional[float] = None
    #: Readmissions that first required re-provisioning because the
    #: instance's enclave held a stale key generation (it restarted or
    #: was partitioned across an epoch announcement).
    stale_generation_blocks: int = 0
    _running: bool = False
    _ejected_at: Dict[str, float] = field(default_factory=dict)
    _overloaded_now: set = field(default_factory=set)

    def start(self) -> None:
        """Begin probing."""
        if self._running:
            return
        self._running = True
        self.loop.schedule(self.interval, self._probe)

    def stop(self) -> None:
        """Stop probing (the next tick becomes a no-op)."""
        self._running = False

    @property
    def failovers(self) -> int:
        """Backends ejected over this monitor's lifetime."""
        return len(self.ejected)

    def _probe(self) -> None:
        if not self._running:
            return
        for balancer, instances in (
            (self.service.ua_balancer, self.service.ua_instances),
            (self.service.ia_balancer, self.service.ia_instances),
        ):
            for instance in instances:
                if not instance.alive and balancer.contains(instance):
                    balancer.eject(instance)
                    self.ejected.append(instance.name)
                    self._ejected_at[instance.name] = self.loop.now
                    if self.telemetry is not None:
                        self.telemetry.emit_fault(
                            "operator",
                            {
                                "event": "instance_ejected",
                                "instance": instance.name,
                                "balancer": balancer.name,
                            },
                        )
                elif instance.alive and not balancer.contains(instance):
                    # Readiness passed: the instance restarted with a
                    # freshly attested, re-provisioned enclave.  Before
                    # readmitting, re-verify its key generation — an
                    # enclave that missed an epoch announcement (or was
                    # restarted from a stale image) must never rejoin
                    # the balancer mid-rotation with old keys.
                    self._verify_generation(instance, balancer)
                    balancer.readmit(instance)
                    self.readmitted.append(instance.name)
                    self._record_recovery(instance, balancer.name)
                self._probe_overload(instance)
        self.loop.schedule(self.interval, self._probe)

    def _verify_generation(self, instance, balancer) -> None:
        """Re-provision *instance* if its enclave's key generation is
        stale (guarded getattr: pre-epoch provisioners verify nothing)."""
        provisioner = getattr(self.service, "provisioner", None)
        verify = getattr(provisioner, "verify_generation", None)
        if verify is None or verify(instance.enclave):
            return
        layer = "UA" if balancer is self.service.ua_balancer else "IA"
        provisioner.reprovision(layer, instance.enclave)
        self.stale_generation_blocks += 1
        if self.telemetry is not None:
            self.telemetry.emit_fault(
                "operator",
                {
                    "event": "stale_generation_reprovisioned",
                    "instance": instance.name,
                    "layer": layer,
                },
            )

    def _probe_overload(self, instance) -> None:
        """Edge-triggered operator events from the overload signal."""
        if self.overload_sojourn_threshold is None:
            return
        signal_fn = getattr(instance, "overload_signal", None)
        if signal_fn is None:
            return
        overloaded = (
            instance.alive and signal_fn().queue_sojourn > self.overload_sojourn_threshold
        )
        was = instance.name in self._overloaded_now
        if overloaded == was:
            return
        if overloaded:
            self._overloaded_now.add(instance.name)
        else:
            self._overloaded_now.discard(instance.name)
        if self.telemetry is not None:
            self.telemetry.emit_fault(
                "operator",
                {
                    "event": "instance_overloaded" if overloaded else "instance_overload_cleared",
                    "instance": instance.name,
                },
            )

    def _record_recovery(self, instance, balancer_name: str) -> None:
        ejected_at = self._ejected_at.pop(instance.name, None)
        if self.telemetry is None:
            return
        payload = {
            "event": "instance_readmitted",
            "instance": instance.name,
            "balancer": balancer_name,
            "generation": instance.generation,
            "attested": instance.enclave.attested,
        }
        if ejected_at is not None:
            recovery_seconds = self.loop.now - ejected_at
            payload["recovery_seconds"] = recovery_seconds
            self.telemetry.registry.histogram(
                "pprox_recovery_seconds",
                "Time from balancer ejection to readmission of an instance.",
                buckets=(0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0),
            ).observe(recovery_seconds)
        self.telemetry.emit_fault("operator", payload)
