"""Experimental deployment configurations (Tables 2 and 3).

Each named configuration reproduces one row of the paper's tables:

* ``m1``-``m9`` — micro-benchmarks: PProx against the nginx stub,
  toggling encryption / SGX / shuffling and scaling the proxy layers
  (Table 2);
* ``b1``-``b4`` — macro baselines: Harness alone with 3-12 frontends
  plus 4 support nodes (Table 3, top);
* ``f1``-``f4`` — full system: PProx + Harness (Table 3, bottom).

Node accounting follows the paper's 27-node cluster: each proxy
instance, Harness frontend and support service occupies one 2-core
NUC, and one injector node is used per 500 RPS of target load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.proxy.config import PProxConfig

__all__ = [
    "MicroConfig",
    "MacroConfig",
    "MICRO_CONFIGS",
    "MACRO_BASELINES",
    "MACRO_FULL",
    "CLUSTER_NODE_BUDGET",
    "cluster_plan",
]

#: The paper's testbed size.
CLUSTER_NODE_BUDGET = 27

#: Support nodes behind every Harness deployment (3 ES + 1 Mongo/Spark).
HARNESS_SUPPORT_NODES = 4


@dataclass(frozen=True)
class MicroConfig:
    """One Table 2 row: PProx against the stub LRS."""

    name: str
    encryption: bool
    item_pseudonymization: bool
    sgx: bool
    shuffle_size: int
    ua_instances: int
    ia_instances: int
    #: Maximal RPS the paper reports before saturation.
    max_rps: int

    def pprox_config(self, shuffle_timeout: float = 0.25) -> PProxConfig:
        """The corresponding proxy-service configuration."""
        return PProxConfig(
            encryption=self.encryption,
            item_pseudonymization=self.item_pseudonymization,
            sgx=self.sgx,
            shuffle_size=self.shuffle_size,
            shuffle_timeout=shuffle_timeout,
            ua_instances=self.ua_instances,
            ia_instances=self.ia_instances,
        )

    @property
    def proxy_nodes(self) -> int:
        """Nodes used by the proxy layers."""
        return self.ua_instances + self.ia_instances


@dataclass(frozen=True)
class MacroConfig:
    """One Table 3 row: Harness alone (b*) or PProx + Harness (f*)."""

    name: str
    frontends: int
    ua_instances: int
    ia_instances: int
    shuffle_size: int
    max_rps: int

    @property
    def with_proxy(self) -> bool:
        """True for the full (f*) configurations."""
        return self.ua_instances > 0

    def pprox_config(self, shuffle_timeout: float = 0.25) -> Optional[PProxConfig]:
        """Proxy configuration, or None for baseline rows."""
        if not self.with_proxy:
            return None
        return PProxConfig(
            encryption=True,
            item_pseudonymization=True,
            sgx=True,
            shuffle_size=self.shuffle_size,
            shuffle_timeout=shuffle_timeout,
            ua_instances=self.ua_instances,
            ia_instances=self.ia_instances,
        )

    @property
    def lrs_nodes(self) -> int:
        """Nodes of the Harness deployment (frontends + support)."""
        return self.frontends + HARNESS_SUPPORT_NODES

    @property
    def total_nodes(self) -> int:
        """All nodes excluding injectors."""
        return self.lrs_nodes + self.ua_instances + self.ia_instances

    @property
    def proxy_overhead(self) -> float:
        """PProx's infrastructure cost relative to the bare LRS (§8.2)."""
        return (self.ua_instances + self.ia_instances) / self.lrs_nodes


MICRO_CONFIGS: Dict[str, MicroConfig] = {
    "m1": MicroConfig("m1", False, False, False, 0, 1, 1, 250),
    "m2": MicroConfig("m2", True, True, False, 0, 1, 1, 250),
    "m3": MicroConfig("m3", True, True, True, 0, 1, 1, 250),
    "m4": MicroConfig("m4", True, False, True, 0, 1, 1, 250),
    "m5": MicroConfig("m5", True, True, True, 5, 1, 1, 250),
    "m6": MicroConfig("m6", True, True, True, 10, 1, 1, 250),
    "m7": MicroConfig("m7", True, True, True, 10, 2, 2, 500),
    "m8": MicroConfig("m8", True, True, True, 10, 3, 3, 750),
    "m9": MicroConfig("m9", True, True, True, 10, 4, 4, 1000),
}

MACRO_BASELINES: Dict[str, MacroConfig] = {
    "b1": MacroConfig("b1", 3, 0, 0, 0, 250),
    "b2": MacroConfig("b2", 6, 0, 0, 0, 500),
    "b3": MacroConfig("b3", 9, 0, 0, 0, 750),
    "b4": MacroConfig("b4", 12, 0, 0, 0, 1000),
}

MACRO_FULL: Dict[str, MacroConfig] = {
    "f1": MacroConfig("f1", 3, 1, 1, 10, 250),
    "f2": MacroConfig("f2", 6, 2, 2, 10, 500),
    "f3": MacroConfig("f3", 9, 3, 3, 10, 750),
    "f4": MacroConfig("f4", 12, 4, 4, 10, 1000),
}


def cluster_plan(config_name: str) -> Tuple[List[str], int]:
    """Node placement for a named configuration.

    Returns the list of node role labels and the total count; raises
    if the plan exceeds the 27-node testbed.
    """
    roles: List[str] = []
    if config_name in MICRO_CONFIGS:
        config = MICRO_CONFIGS[config_name]
        roles += [f"ua-{i}" for i in range(config.ua_instances)]
        roles += [f"ia-{i}" for i in range(config.ia_instances)]
        roles += ["stub-lrs"]
        injectors = 2 if config.max_rps > 500 else 1
    elif config_name in MACRO_BASELINES or config_name in MACRO_FULL:
        config = (MACRO_BASELINES.get(config_name) or MACRO_FULL[config_name])
        roles += [f"ua-{i}" for i in range(config.ua_instances)]
        roles += [f"ia-{i}" for i in range(config.ia_instances)]
        roles += [f"harness-fe-{i}" for i in range(config.frontends)]
        roles += ["es-0", "es-1", "es-2", "mongo-spark"]
        injectors = 2 if config.max_rps > 500 else 1
    else:
        raise KeyError(f"unknown configuration {config_name!r}")
    roles += [f"injector-{i}" for i in range(injectors)]
    if len(roles) > CLUSTER_NODE_BUDGET:
        raise ValueError(
            f"configuration {config_name} needs {len(roles)} nodes,"
            f" exceeding the {CLUSTER_NODE_BUDGET}-node testbed"
        )
    return roles, len(roles)
