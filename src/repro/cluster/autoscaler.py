"""Elastic scaling of the proxy layers.

The paper observes that shuffling latency explodes when a deployment
is over-provisioned (per-instance traffic too low to fill buffers)
and that throughput collapses when under-provisioned, so "the two
proxy layers need to elastically scale up and down based on observed
request load, dynamically implementing a compromise between
throughput and latency" (§5).  :class:`ElasticScaler` implements that
policy: it keeps the observed per-instance request rate inside a
target band by adding instances (attested + provisioned through the
normal flow) or retiring them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.proxy.service import PProxService
from repro.simnet.clock import EventLoop

__all__ = ["ElasticScaler", "ScalingDecision"]


@dataclass(frozen=True)
class ScalingDecision:
    """One autoscaler action, for the audit log."""

    time: float
    layer: str
    action: str
    instances_after: int
    observed_rps_per_instance: float


@dataclass
class ElasticScaler:
    """Keeps per-instance load inside ``[low_rps, high_rps]``.

    The paper's single-instance capacity is ~250 RPS; the default
    band scales up at 220 RPS per instance (before saturation) and
    down below 60 RPS (where S=10 shuffle delay becomes SLO-hostile).
    """

    loop: EventLoop
    service: PProxService
    low_rps: float = 60.0
    high_rps: float = 220.0
    interval: float = 10.0
    min_instances: int = 1
    max_instances: int = 8
    #: Scale a layer up when any live instance's ingress sojourn (its
    #: :meth:`overload_signal`) exceeds this, even if the rate band
    #: looks fine — standing queues mean the rate signal is lying
    #: (shed requests never count as processed).  ``None`` disables
    #: the overload trigger.
    overload_sojourn_threshold: Optional[float] = None
    #: When set (e.g. to :meth:`repro.proxy.epochs.RotationCoordinator.
    #: guard`), scale-downs of a layer are deferred while the guard
    #: returns True for it: a retired instance's enclave may hold the
    #: only previous-epoch secrets still needed by in-flight traffic.
    rotation_guard: Optional[Callable[[str], bool]] = None
    overload_scale_ups: int = 0
    deferred_scale_downs: int = 0
    decisions: List[ScalingDecision] = field(default_factory=list)
    _last_counts: dict = field(default_factory=dict)
    _running: bool = False

    def start(self) -> None:
        """Begin periodic evaluation."""
        if self._running:
            return
        self._running = True
        self._snapshot()
        self.loop.schedule(self.interval, self._tick)

    def stop(self) -> None:
        """Stop evaluating (the next tick becomes a no-op)."""
        self._running = False

    def _snapshot(self) -> None:
        self._last_counts = {
            "UA": sum(i.requests_processed for i in self.service.ua_instances),
            "IA": sum(i.requests_processed for i in self.service.ia_instances),
        }

    def _tick(self) -> None:
        if not self._running:
            return
        current = {
            "UA": sum(i.requests_processed for i in self.service.ua_instances),
            "IA": sum(i.requests_processed for i in self.service.ia_instances),
        }
        for layer in ("UA", "IA"):
            instances = (
                self.service.ua_instances if layer == "UA" else self.service.ia_instances
            )
            # Capacity decisions count only live instances — a failed
            # one still shows in the inventory but serves nothing.
            live = [i for i in instances if getattr(i, "alive", True)]
            processed = current[layer] - self._last_counts.get(layer, 0)
            rate = processed / self.interval / max(len(live), 1)
            self._evaluate(layer, rate, len(live), live)
        self._snapshot()
        self.loop.schedule(self.interval, self._tick)

    def _overloaded(self, live: List) -> bool:
        if self.overload_sojourn_threshold is None:
            return False
        for instance in live:
            signal_fn = getattr(instance, "overload_signal", None)
            if signal_fn is None:
                continue
            if signal_fn().queue_sojourn > self.overload_sojourn_threshold:
                return True
        return False

    def _evaluate(
        self, layer: str, rate: float, count: int, live: Optional[List] = None
    ) -> None:
        # ``None`` (not a shared tuple masquerading as a List) is the
        # no-liveness-info sentinel; normalize once so every branch
        # sees a real list.
        live = list(live) if live is not None else []
        if self._overloaded(live) and count < self.max_instances:
            if layer == "UA":
                self.service.scale_ua()
            else:
                self.service.scale_ia()
            self.overload_scale_ups += 1
            self.decisions.append(
                ScalingDecision(self.loop.now, layer, "scale-up-overload", count + 1, rate)
            )
            return
        if rate > self.high_rps and count < self.max_instances:
            if layer == "UA":
                self.service.scale_ua()
            else:
                self.service.scale_ia()
            self.decisions.append(
                ScalingDecision(self.loop.now, layer, "scale-up", count + 1, rate)
            )
        elif rate < self.low_rps and count > self.min_instances:
            if self.rotation_guard is not None and self.rotation_guard(layer):
                self.deferred_scale_downs += 1
                self.decisions.append(
                    ScalingDecision(self.loop.now, layer, "scale-down-deferred", count, rate)
                )
                return
            # Scale down: remove the most recently added instance from
            # the balancer (it finishes in-flight work and is retired).
            if layer == "UA":
                instance = self.service.ua_instances.pop()
                balancer = self.service.ua_balancer
            else:
                instance = self.service.ia_instances.pop()
                balancer = self.service.ia_balancer
            # A dead instance may already have been ejected by the
            # health monitor.
            if instance in balancer.backends:
                balancer.remove(instance)
            self.decisions.append(
                ScalingDecision(self.loop.now, layer, "scale-down", count - 1, rate)
            )
