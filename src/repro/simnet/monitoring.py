"""Cluster monitoring: periodic sampling of component health series.

The paper's experimental platform "collect[s] logs in a systematic
fashion using fluentd" (§7.2); operationally, the elastic scaler and
the breach detector both need live utilization signals.  This module
provides the collection side: a :class:`MetricsCollector` samples
registered gauges on an interval into time series that can be
queried, summarized, or rendered — all in virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.simnet.clock import EventLoop

__all__ = ["MetricsCollector", "TimeSeries", "node_gauges", "crypto_cache_gauges"]


@dataclass
class TimeSeries:
    """One sampled metric: (time, value) points."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        self.points.append((time, value))

    def last(self) -> Optional[float]:
        """Most recent value, or None before the first sample."""
        return self.points[-1][1] if self.points else None

    def values(self) -> List[float]:
        return [value for _, value in self.points]

    def maximum(self) -> float:
        values = self.values()
        if not values:
            raise ValueError(f"series {self.name!r} has no samples")
        return max(values)

    def mean(self) -> float:
        values = self.values()
        if not values:
            raise ValueError(f"series {self.name!r} has no samples")
        return sum(values) / len(values)

    def window(self, start: float, end: float) -> List[float]:
        """Values sampled within ``[start, end]``."""
        return [value for time, value in self.points if start <= time <= end]


@dataclass
class MetricsCollector:
    """Samples registered gauge callables every *interval* seconds."""

    loop: EventLoop
    interval: float = 1.0
    series: Dict[str, TimeSeries] = field(default_factory=dict)
    _gauges: Dict[str, Callable[[], float]] = field(default_factory=dict)
    _running: bool = False
    samples_taken: int = 0

    def register(self, name: str, gauge: Callable[[], float]) -> None:
        """Register a gauge; its values land in the series *name*."""
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        self._gauges[name] = gauge
        self.series[name] = TimeSeries(name=name)

    def start(self) -> None:
        """Begin periodic sampling."""
        if self._running:
            return
        self._running = True
        self.loop.schedule(self.interval, self._sample)

    def stop(self) -> None:
        """Stop sampling (the next tick becomes a no-op)."""
        self._running = False

    def _sample(self) -> None:
        if not self._running:
            return
        now = self.loop.now
        for name, gauge in self._gauges.items():
            self.series[name].append(now, float(gauge()))
        self.samples_taken += 1
        self.loop.schedule(self.interval, self._sample)

    def render(self) -> str:
        """One summary line per series."""
        lines = [f"{'series':36s} {'last':>10s} {'mean':>10s} {'max':>10s} {'n':>6s}"]
        for name in sorted(self.series):
            series = self.series[name]
            if not series.points:
                lines.append(f"{name:36s} {'-':>10s} {'-':>10s} {'-':>10s} {0:6d}")
                continue
            lines.append(
                f"{name:36s} {series.last():10.3f} {series.mean():10.3f}"
                f" {series.maximum():10.3f} {len(series.points):6d}"
            )
        return "\n".join(lines)


def node_gauges(collector: MetricsCollector, node, prefix: Optional[str] = None) -> None:
    """Register the standard gauges of a :class:`~repro.simnet.node.SimNode`."""
    label = prefix or node.name
    collector.register(f"{label}.queue_length", lambda: node.queue_length)
    collector.register(f"{label}.busy_cores", lambda: node.busy_cores)
    collector.register(f"{label}.utilization", lambda: node.utilization())


def crypto_cache_gauges(collector: MetricsCollector, provider, prefix: str = "crypto") -> None:
    """Register pseudonym-memo hit/miss gauges for a crypto provider.

    Providers without a ``cache_stats()`` method (the fast/sim tiers)
    are silently skipped, so callers can register whatever provider the
    experiment configuration selected.
    """
    if not callable(getattr(provider, "cache_stats", None)):
        return
    for operation in ("pseudonymize", "depseudonymize"):
        for counter in ("hits", "misses", "size"):
            collector.register(
                f"{prefix}.{operation}.{counter}",
                lambda operation=operation, counter=counter: float(
                    provider.cache_stats()[operation][counter]
                ),
            )
