"""Cluster monitoring: periodic sampling of component health series.

The paper's experimental platform "collect[s] logs in a systematic
fashion using fluentd" (§7.2); operationally, the elastic scaler and
the breach detector both need live utilization signals.

This module is now a thin adapter over the unified telemetry layer:
every gauge registered here becomes a callback
:class:`~repro.telemetry.registry.Gauge` in a private
:class:`~repro.telemetry.registry.MetricRegistry`, so the same series
are queryable through the legacy :attr:`MetricsCollector.series` dict
*and* renderable as Prometheus text exposition
(:meth:`MetricsCollector.render_prometheus`).  Scheduling is
handle-based: ``stop()`` cancels the pending tick, so a stop→start
cycle can never double-schedule sampling.

Naming note: series here keep their dotted legacy names (e.g.
``node.utilization``) inside this *private* registry — they never
reach the Prometheus-rendered telemetry registry, which is why
``tools/check_metric_names.py`` exempts this file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.simnet.clock import EventHandle, EventLoop
from repro.telemetry.registry import Gauge, MetricRegistry, TimeSeries

__all__ = ["MetricsCollector", "TimeSeries", "node_gauges", "crypto_cache_gauges", "loop_gauges"]


@dataclass
class MetricsCollector:
    """Samples registered gauge callables every *interval* seconds."""

    loop: EventLoop
    interval: float = 1.0
    series: Dict[str, TimeSeries] = field(default_factory=dict)
    registry: MetricRegistry = field(default_factory=MetricRegistry)
    _instruments: Dict[str, Gauge] = field(default_factory=dict)
    _handle: Optional[EventHandle] = None
    samples_taken: int = 0

    def register(self, name: str, gauge: Callable[[], float]) -> None:
        """Register a gauge; its values land in the series *name*."""
        if name in self._instruments:
            raise ValueError(f"gauge {name!r} already registered")
        # The "series" label preserves uniqueness even when two dotted
        # names sanitize to the same Prometheus metric name.
        instrument = self.registry.gauge(name, labels={"series": name}, callback=gauge)
        # Legacy views index by the original dotted name.
        instrument.series.name = name
        self._instruments[name] = instrument
        self.series[name] = instrument.series

    @property
    def running(self) -> bool:
        """True while periodic sampling is scheduled."""
        return self._handle is not None

    def start(self) -> None:
        """Begin periodic sampling (idempotent while running)."""
        if self._handle is not None:
            return
        self._handle = self.loop.schedule(self.interval, self._sample)

    def stop(self) -> None:
        """Stop sampling; the pending tick is cancelled, so a
        subsequent :meth:`start` cannot double-schedule."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _sample(self) -> None:
        self._handle = None
        now = self.loop.now
        self.registry.sample_all(now)
        self.samples_taken += 1
        self._handle = self.loop.schedule(self.interval, self._sample)

    def render(self) -> str:
        """One summary line per series."""
        lines = [f"{'series':36s} {'last':>10s} {'mean':>10s} {'max':>10s} {'n':>6s}"]
        for name in sorted(self.series):
            series = self.series[name]
            if not series.points:
                lines.append(f"{name:36s} {'-':>10s} {'-':>10s} {'-':>10s} {0:6d}")
                continue
            lines.append(
                f"{name:36s} {series.last():10.3f} {series.mean():10.3f}"
                f" {series.maximum():10.3f} {len(series.points):6d}"
            )
        return "\n".join(lines)

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every registered gauge."""
        return self.registry.render_prometheus()


def node_gauges(collector: MetricsCollector, node, prefix: Optional[str] = None) -> None:
    """Register the standard gauges of a :class:`~repro.simnet.node.SimNode`."""
    label = prefix or node.name
    collector.register(f"{label}.queue_length", lambda: node.queue_length)
    collector.register(f"{label}.busy_cores", lambda: node.busy_cores)
    collector.register(f"{label}.utilization", lambda: node.utilization())


def crypto_cache_gauges(collector: MetricsCollector, provider, prefix: str = "crypto") -> None:
    """Register pseudonym-memo hit/miss gauges for a crypto provider.

    Providers without a ``cache_stats()`` method (the fast/sim tiers)
    are silently skipped, so callers can register whatever provider the
    experiment configuration selected.

    ``cache_stats()`` is called once per sample tick: the six gauges
    read a shared snapshot memoized on the collector's virtual clock,
    not one provider call each.
    """
    if not callable(getattr(provider, "cache_stats", None)):
        return
    memo: Dict[str, object] = {"at": None, "stats": None}

    def stats() -> Dict[str, Dict[str, int]]:
        now = collector.loop.now
        if memo["at"] != now:
            memo["stats"] = provider.cache_stats()
            memo["at"] = now
        return memo["stats"]  # type: ignore[return-value]

    for operation in ("pseudonymize", "depseudonymize"):
        for counter in ("hits", "misses", "size"):
            collector.register(
                f"{prefix}.{operation}.{counter}",
                lambda operation=operation, counter=counter: float(
                    stats()[operation][counter]
                ),
            )


def loop_gauges(collector: MetricsCollector, loop: Optional[EventLoop] = None, prefix: str = "simloop") -> None:
    """Register scheduler-health gauges from ``loop.queue_stats()``.

    Sampled-on-tick, like every other gauge here: ``queue_stats()`` is
    called once per collector tick (memoized on the virtual clock), not
    once per gauge, so arming six series costs one snapshot per sample.
    Defaults to the collector's own loop.
    """
    target = loop if loop is not None else collector.loop
    memo: Dict[str, object] = {"at": None, "stats": None}

    def stats() -> Dict[str, object]:
        now = collector.loop.now
        if memo["at"] != now:
            memo["stats"] = target.queue_stats()
            memo["at"] = now
        return memo["stats"]  # type: ignore[return-value]

    for key in ("live", "cancelled", "queued", "peak_pending", "events_processed", "compactions"):
        collector.register(
            f"{prefix}.{key}",
            lambda key=key: float(stats().get(key, 0)),
        )
