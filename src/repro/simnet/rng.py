"""Seeded randomness discipline for reproducible experiments.

Every stochastic component (network jitter, service-time noise,
shuffling order, workload arrivals, key generation) draws from its own
named child stream, so adding a new component never perturbs the draws
of existing ones — the property that makes A/B ablations meaningful.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable

__all__ = ["RngRegistry"]


class RngRegistry:
    """A registry of independent named :class:`random.Random` streams."""

    def __init__(self, seed: int):
        self._seed = int(seed)
        self._streams: dict = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return (and memoize) the child stream called *name*."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def bytes_fn(self, name: str) -> Callable[[int], bytes]:
        """A ``rng(n) -> n bytes`` function over the named stream."""
        stream = self.stream(name)
        return lambda n: stream.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def int_fn(self, name: str) -> Callable[[int], int]:
        """A ``rng(bound) -> int in [0, bound)`` function over the stream."""
        stream = self.stream(name)
        return lambda bound: stream.randrange(bound)
