"""Latency and throughput metrics matching the paper's methodology.

The paper reports round-trip latency distributions as candlestick
charts: box = 25th/75th percentiles, middle line = median, whiskers =
most distant point within 1.5 IQR of the box (footnote 7).  Samples
from the first and last 15 seconds of each measurement period are
trimmed (§8, "Metrics and workload"), and each configuration is run
several times with the distributions aggregated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["LatencyRecorder", "CandlestickSummary", "percentile", "trim_window"]


def percentile(sorted_samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of pre-sorted *sorted_samples*."""
    if not sorted_samples:
        raise ValueError("cannot take a percentile of no samples")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    position = fraction * (len(sorted_samples) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return sorted_samples[lower]
    weight = position - lower
    lower_value = sorted_samples[lower]
    # lerp via the delta form: exact when both endpoints are equal
    # (the a*(1-w)+b*w form can round away from a == b and push an
    # interpolated quartile above the data's own maximum).
    return lower_value + weight * (sorted_samples[upper] - lower_value)


@dataclass(frozen=True)
class CandlestickSummary:
    """Five-value summary used by the paper's candlestick charts."""

    p25: float
    median: float
    p75: float
    whisker_low: float
    whisker_high: float
    count: int
    mean: float
    p99: float
    maximum: float

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.p75 - self.p25

    def row(self, unit_scale: float = 1000.0) -> str:
        """Render a fixed-width table row (default unit: milliseconds)."""
        return (
            f"p25={self.p25 * unit_scale:8.1f}  med={self.median * unit_scale:8.1f}"
            f"  p75={self.p75 * unit_scale:8.1f}  wlo={self.whisker_low * unit_scale:8.1f}"
            f"  whi={self.whisker_high * unit_scale:8.1f}  p99={self.p99 * unit_scale:8.1f}"
            f"  max={self.maximum * unit_scale:8.1f}  n={self.count}"
        )


@dataclass
class LatencyRecorder:
    """Accumulates (completion_time, latency) samples for one series."""

    name: str = "latency"
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, completion_time: float, latency: float) -> None:
        """Add one round-trip sample."""
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self.samples.append((completion_time, latency))

    def extend(self, other: "LatencyRecorder") -> None:
        """Merge another recorder's samples (multi-run aggregation)."""
        self.samples.extend(other.samples)

    def latencies(self) -> List[float]:
        """All recorded latencies, in completion order."""
        return [latency for _, latency in self.samples]

    def trimmed(self, start: float, end: float) -> List[float]:
        """Latencies of samples completing within ``[start, end]``."""
        return [lat for t, lat in self.samples if start <= t <= end]

    def summarize(self, values: Optional[Iterable[float]] = None) -> CandlestickSummary:
        """Compute the candlestick summary over *values* (or everything)."""
        data = sorted(values if values is not None else self.latencies())
        if not data:
            raise ValueError(f"recorder {self.name!r} has no samples to summarize")
        p25 = percentile(data, 0.25)
        median = percentile(data, 0.50)
        p75 = percentile(data, 0.75)
        iqr = p75 - p25
        low_bound = p25 - 1.5 * iqr
        high_bound = p75 + 1.5 * iqr
        whisker_low = min(v for v in data if v >= low_bound)
        whisker_high = max(v for v in data if v <= high_bound)
        # Exact-summation mean, clamped to the data range: the final
        # division can round 1 ulp past min/max (e.g. three identical
        # samples), and a mean outside its own data is nonsense.
        mean = min(max(math.fsum(data) / len(data), data[0]), data[-1])
        return CandlestickSummary(
            p25=p25,
            median=median,
            p75=p75,
            whisker_low=whisker_low,
            whisker_high=whisker_high,
            count=len(data),
            mean=mean,
            p99=percentile(data, 0.99),
            maximum=data[-1],
        )


def trim_window(phase_start: float, phase_end: float, trim: float = 15.0) -> Tuple[float, float]:
    """The paper's measurement window: trim *trim* seconds at each end."""
    start = phase_start + trim
    end = phase_end - trim
    if end <= start:
        raise ValueError(
            f"phase [{phase_start}, {phase_end}] too short for a {trim}s trim at each end"
        )
    return start, end
