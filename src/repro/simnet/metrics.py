"""Latency and throughput metrics matching the paper's methodology.

The paper reports round-trip latency distributions as candlestick
charts: box = 25th/75th percentiles, middle line = median, whiskers =
most distant point within 1.5 IQR of the box (footnote 7).  Samples
from the first and last 15 seconds of each measurement period are
trimmed (§8, "Metrics and workload"), and each configuration is run
several times with the distributions aggregated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "LatencyRecorder",
    "SlottedLatencyRecorder",
    "CandlestickSummary",
    "percentile",
    "trim_window",
]


def percentile(sorted_samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of pre-sorted *sorted_samples*."""
    if not sorted_samples:
        raise ValueError("cannot take a percentile of no samples")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    position = fraction * (len(sorted_samples) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return sorted_samples[lower]
    weight = position - lower
    lower_value = sorted_samples[lower]
    # lerp via the delta form: exact when both endpoints are equal
    # (the a*(1-w)+b*w form can round away from a == b and push an
    # interpolated quartile above the data's own maximum).
    return lower_value + weight * (sorted_samples[upper] - lower_value)


@dataclass(frozen=True)
class CandlestickSummary:
    """Five-value summary used by the paper's candlestick charts."""

    p25: float
    median: float
    p75: float
    whisker_low: float
    whisker_high: float
    count: int
    mean: float
    p99: float
    maximum: float

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.p75 - self.p25

    def row(self, unit_scale: float = 1000.0) -> str:
        """Render a fixed-width table row (default unit: milliseconds)."""
        return (
            f"p25={self.p25 * unit_scale:8.1f}  med={self.median * unit_scale:8.1f}"
            f"  p75={self.p75 * unit_scale:8.1f}  wlo={self.whisker_low * unit_scale:8.1f}"
            f"  whi={self.whisker_high * unit_scale:8.1f}  p99={self.p99 * unit_scale:8.1f}"
            f"  max={self.maximum * unit_scale:8.1f}  n={self.count}"
        )


@dataclass
class LatencyRecorder:
    """Accumulates (completion_time, latency) samples for one series."""

    name: str = "latency"
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, completion_time: float, latency: float) -> None:
        """Add one round-trip sample."""
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        self.samples.append((completion_time, latency))

    def extend(self, other: "LatencyRecorder") -> None:
        """Merge another recorder's samples (multi-run aggregation)."""
        self.samples.extend(other.samples)

    def latencies(self) -> List[float]:
        """All recorded latencies, in completion order."""
        return [latency for _, latency in self.samples]

    def trimmed(self, start: float, end: float) -> List[float]:
        """Latencies of samples completing within ``[start, end]``."""
        return [lat for t, lat in self.samples if start <= t <= end]

    def summarize(self, values: Optional[Iterable[float]] = None) -> CandlestickSummary:
        """Compute the candlestick summary over *values* (or everything)."""
        data = sorted(values if values is not None else self.latencies())
        if not data:
            raise ValueError(f"recorder {self.name!r} has no samples to summarize")
        p25 = percentile(data, 0.25)
        median = percentile(data, 0.50)
        p75 = percentile(data, 0.75)
        iqr = p75 - p25
        low_bound = p25 - 1.5 * iqr
        high_bound = p75 + 1.5 * iqr
        whisker_low = min(v for v in data if v >= low_bound)
        whisker_high = max(v for v in data if v <= high_bound)
        # Exact-summation mean, clamped to the data range: the final
        # division can round 1 ulp past min/max (e.g. three identical
        # samples), and a mean outside its own data is nonsense.
        mean = min(max(math.fsum(data) / len(data), data[0]), data[-1])
        return CandlestickSummary(
            p25=p25,
            median=median,
            p75=p75,
            whisker_low=whisker_low,
            whisker_high=whisker_high,
            count=len(data),
            mean=mean,
            p99=percentile(data, 0.99),
            maximum=data[-1],
        )


class SlottedLatencyRecorder:
    """Bounded-memory latency accumulator for million-request sweeps.

    :class:`LatencyRecorder` keeps every ``(time, latency)`` pair —
    exact, but at 100k RPS a 60-second phase is 6M tuples and the
    recorder dominates the run's memory and GC time.  This recorder
    instead bins samples twice:

    * **time slots** of ``slot_seconds`` (so the paper's trim-15s
      windowing still works, at slot granularity), and
    * **log-spaced latency buckets** (``buckets_per_decade`` per decade
      between ``min_latency`` and ``max_latency``) per slot, plus exact
      per-slot count/sum/min/max.

    Memory is O(slots x buckets) integers regardless of sample count.
    ``summarize`` returns the same :class:`CandlestickSummary` shape
    with percentiles interpolated inside their bucket — the relative
    error is bounded by the bucket width (<6% per value at the default
    40 buckets/decade); count, mean, min and max are exact.  Entirely
    deterministic: same samples, same summary.
    """

    __slots__ = (
        "name",
        "slot_seconds",
        "min_latency",
        "max_latency",
        "buckets_per_decade",
        "_slots",
        "_nbuckets",
        "_log_min",
        "_inv_log_width",
        "count",
        "total",
    )

    def __init__(
        self,
        name: str = "latency",
        slot_seconds: float = 1.0,
        min_latency: float = 1e-4,
        max_latency: float = 100.0,
        buckets_per_decade: int = 40,
    ) -> None:
        if slot_seconds <= 0:
            raise ValueError(f"slot_seconds must be positive, got {slot_seconds}")
        if not (0 < min_latency < max_latency):
            raise ValueError(f"need 0 < min_latency < max_latency, got {min_latency}..{max_latency}")
        if buckets_per_decade <= 0:
            raise ValueError(f"buckets_per_decade must be positive, got {buckets_per_decade}")
        self.name = name
        self.slot_seconds = slot_seconds
        self.min_latency = min_latency
        self.max_latency = max_latency
        self.buckets_per_decade = buckets_per_decade
        decades = math.log10(max_latency / min_latency)
        #: bucket 0 = underflow (< min_latency); last = overflow.
        self._nbuckets = int(math.ceil(decades * buckets_per_decade)) + 2
        self._log_min = math.log10(min_latency)
        self._inv_log_width = buckets_per_decade
        #: slot index -> [bucket counts, count, sum, min, max]
        self._slots: Dict[int, list] = {}
        self.count = 0
        self.total = 0.0

    def _bucket_index(self, latency: float) -> int:
        if latency < self.min_latency:
            return 0
        index = int((math.log10(latency) - self._log_min) * self._inv_log_width) + 1
        last = self._nbuckets - 1
        return last if index > last else index

    def _bucket_bound(self, index: int) -> float:
        """Lower latency bound of bucket *index* (>= 1)."""
        return 10.0 ** (self._log_min + (index - 1) / self._inv_log_width)

    def record(self, completion_time: float, latency: float) -> None:
        """Add one round-trip sample (same signature as LatencyRecorder)."""
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        slot_key = int(completion_time / self.slot_seconds)
        slot = self._slots.get(slot_key)
        if slot is None:
            slot = self._slots[slot_key] = [[0] * self._nbuckets, 0, 0.0, latency, latency]
        slot[0][self._bucket_index(latency)] += 1
        slot[1] += 1
        slot[2] += latency
        if latency < slot[3]:
            slot[3] = latency
        if latency > slot[4]:
            slot[4] = latency
        self.count += 1
        self.total += latency

    def merge(self, other: "SlottedLatencyRecorder") -> None:
        """Fold another recorder's bins in (must share the geometry)."""
        if (
            other.slot_seconds != self.slot_seconds
            or other._nbuckets != self._nbuckets
            or other.min_latency != self.min_latency
        ):
            raise ValueError("cannot merge recorders with different binning geometry")
        for key, slot in other._slots.items():
            mine = self._slots.get(key)
            if mine is None:
                self._slots[key] = [list(slot[0]), slot[1], slot[2], slot[3], slot[4]]
            else:
                counts = mine[0]
                for i, c in enumerate(slot[0]):
                    counts[i] += c
                mine[1] += slot[1]
                mine[2] += slot[2]
                mine[3] = min(mine[3], slot[3])
                mine[4] = max(mine[4], slot[4])
        self.count += other.count
        self.total += other.total

    def _aggregate(self, start: Optional[float], end: Optional[float]) -> Tuple[List[int], int, float, float, float]:
        counts = [0] * self._nbuckets
        total_count = 0
        total_sum = 0.0
        minimum = math.inf
        maximum = -math.inf
        width = self.slot_seconds
        for key, slot in self._slots.items():
            if start is not None and key * width < start:
                continue
            if end is not None and (key + 1) * width > end + 1e-12:
                continue
            for i, c in enumerate(slot[0]):
                counts[i] += c
            total_count += slot[1]
            total_sum += slot[2]
            minimum = min(minimum, slot[3])
            maximum = max(maximum, slot[4])
        return counts, total_count, total_sum, minimum, maximum

    def _estimate_percentile(
        self, counts: List[int], total: int, fraction: float, minimum: float, maximum: float
    ) -> float:
        """Percentile from the histogram, interpolated within its bucket."""
        target = fraction * (total - 1) + 1.0 if total > 1 else 1.0
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                position = (target - cumulative) / bucket_count
                if index == 0:
                    low, high = minimum, min(self.min_latency, maximum)
                elif index == self._nbuckets - 1:
                    low, high = self.max_latency, maximum
                else:
                    low = self._bucket_bound(index)
                    high = self._bucket_bound(index + 1)
                value = low + position * (high - low)
                return min(max(value, minimum), maximum)
            cumulative += bucket_count
        return maximum

    def summarize(self, start: Optional[float] = None, end: Optional[float] = None) -> CandlestickSummary:
        """Candlestick estimate over slots inside ``[start, end]``.

        Trimming is at slot granularity: a slot contributes only when
        its whole window lies inside the range (pass ``None`` for an
        open end).  Raises if no samples land in the window, matching
        :meth:`LatencyRecorder.summarize`.
        """
        counts, total, total_sum, minimum, maximum = self._aggregate(start, end)
        if not total:
            raise ValueError(f"recorder {self.name!r} has no samples to summarize")
        def est(fraction: float) -> float:
            return self._estimate_percentile(counts, total, fraction, minimum, maximum)

        p25 = est(0.25)
        median = est(0.50)
        p75 = est(0.75)
        iqr = p75 - p25
        low_bound = p25 - 1.5 * iqr
        high_bound = p75 + 1.5 * iqr
        # Bucket-resolution whiskers: most extreme occupied bucket
        # bounds that stay within 1.5 IQR of the box.
        whisker_low = minimum if minimum >= low_bound else None
        whisker_high = maximum if maximum <= high_bound else None
        if whisker_low is None or whisker_high is None:
            for index, bucket_count in enumerate(counts):
                if not bucket_count:
                    continue
                low = minimum if index == 0 else self._bucket_bound(index)
                high = maximum if index == self._nbuckets - 1 else self._bucket_bound(index + 1)
                if whisker_low is None and low >= low_bound:
                    whisker_low = min(max(low, minimum), maximum)
                if high <= high_bound:
                    whisker_high = min(max(high, minimum), maximum)
        if whisker_low is None:
            whisker_low = minimum
        if whisker_high is None:
            whisker_high = maximum
        mean = min(max(total_sum / total, minimum), maximum)
        return CandlestickSummary(
            p25=p25,
            median=median,
            p75=p75,
            whisker_low=whisker_low,
            whisker_high=whisker_high,
            count=total,
            mean=mean,
            p99=est(0.99),
            maximum=maximum,
        )

    def stats(self) -> Dict[str, object]:
        """Introspection: resident slots and total bins."""
        return {
            "name": self.name,
            "samples": self.count,
            "slots": len(self._slots),
            "buckets_per_slot": self._nbuckets,
            "slot_seconds": self.slot_seconds,
        }


def trim_window(phase_start: float, phase_end: float, trim: float = 15.0) -> Tuple[float, float]:
    """The paper's measurement window: trim *trim* seconds at each end."""
    start = phase_start + trim
    end = phase_end - trim
    if end <= start:
        raise ValueError(
            f"phase [{phase_start}, {phase_end}] too short for a {trim}s trim at each end"
        )
    return start, end
