"""Deterministic discrete-event loop with a virtual clock.

All performance experiments in the reproduction run on this engine:
time is virtual (seconds as floats), events fire in timestamp order
with FIFO tie-breaking, and nothing depends on wall-clock time, so a
given seed always reproduces the same latency distributions.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["EventLoop", "EventHandle", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on inconsistent use of the event loop."""


@dataclass
class EventHandle:
    """Handle returned by :meth:`EventLoop.schedule`; allows cancelling."""

    time: float
    sequence: int
    callback: Optional[Callable[[], None]]

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped by the loop."""
        self.callback = None

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self.callback is None


@dataclass
class EventLoop:
    """A minimal, deterministic discrete-event scheduler."""

    _now: float = 0.0
    _queue: List[Tuple[float, int, EventHandle]] = field(default_factory=list)
    _sequence: "itertools.count" = field(default_factory=itertools.count)
    _events_processed: int = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* after *delay* seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* at absolute virtual *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, current time is {self._now:.6f}"
            )
        handle = EventHandle(time=time, sequence=next(self._sequence), callback=callback)
        heapq.heappush(self._queue, (time, handle.sequence, handle))
        return handle

    def step(self) -> bool:
        """Execute the next event; returns False when none remain."""
        while self._queue:
            time, _, handle = heapq.heappop(self._queue)
            if handle.callback is None:
                continue
            self._now = time
            callback, handle.callback = handle.callback, None
            callback()
            self._events_processed += 1
            return True
        return False

    def run_until(self, time: float) -> None:
        """Run events with timestamps <= *time*, then advance to *time*."""
        while self._queue:
            next_time = self._queue[0][0]
            if next_time > time:
                break
            if not self.step():
                break
        if time > self._now:
            self._now = time

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains (or *max_events* fire)."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"event budget exhausted after {max_events} events"
                    " — likely a runaway feedback loop"
                )
