"""Deterministic discrete-event loop with a virtual clock.

All performance experiments in the reproduction run on this engine:
time is virtual (seconds as floats), events fire in timestamp order
with FIFO tie-breaking, and nothing depends on wall-clock time, so a
given seed always reproduces the same latency distributions.

Two engines share the same contract:

* :class:`EventLoop` (alias :class:`CalendarEventLoop`) — the
  production scheduler: a calendar queue (hash-bucketed time slots
  with lazily sorted buckets) giving O(1) amortized insert and
  batched, same-slot dispatch.  Cancelled handles are skipped lazily
  and bulk-compacted once they outnumber live events, so timer churn
  (hedges, deadlines, CoDel sojourn checks, health probes) cannot
  bloat the queue.  ``post()``/``post_at()`` are handle-free fast
  paths for the fire-and-forget events that dominate the hot path
  (message deliveries, service completions).
* :class:`ReferenceEventLoop` — the seed implementation (one binary
  heap, one :class:`EventHandle` per event), kept verbatim as the
  behavioural anchor.  Property tests drive both engines through
  random schedule/cancel/run interleavings and assert identical event
  order, identical clocks and identical counters; the experiment
  suite asserts byte-identical same-seed artifacts on either engine.

The determinism contract both engines honour: events fire ordered by
``(time, sequence)`` where ``sequence`` is a global monotonically
increasing schedule counter — earlier ``schedule``/``post`` calls win
ties.  Callbacks may schedule new events (never into the past) and
cancel pending handles; neither perturbs the order of other events.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "EventLoop",
    "CalendarEventLoop",
    "ReferenceEventLoop",
    "EventHandle",
    "ReferenceEventHandle",
    "SimulationError",
    "make_event_loop",
    "ENGINES",
    "DEFAULT_SLOT_WIDTH",
]


class SimulationError(RuntimeError):
    """Raised on inconsistent use of the event loop."""


#: Calendar slot width in virtual seconds.  Chosen so that intra-DC
#: hops (~0.3-0.5 ms) land one or two slots ahead while a saturated
#: slot still holds enough events to amortize its single sort.
DEFAULT_SLOT_WIDTH = 0.0005

#: Retired slot buckets kept for reuse (list object pool).
_BUCKET_POOL_MAX = 64

#: Lazy-cancel compaction: sweep once at least this many cancelled
#: entries are resident *and* they outnumber live events — the
#: classic lazy-deletion bound (resident <= 2x live), which keeps the
#: sweep amortized O(1) per cancellation: each C-speed sweep touches
#: at most two entries per entry it removes.
_COMPACT_MIN_CANCELLED = 256

_new_handle = object.__new__


class EventHandle:
    """Handle returned by ``schedule``/``schedule_at``; allows cancelling.

    Slotted: a million pending timers is a normal working set for the
    scale experiments, so per-handle ``__dict__`` overhead matters.
    """

    __slots__ = ("time", "sequence", "callback", "_loop")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Optional[Callable[[], None]],
        _loop: Optional[object] = None,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self._loop = _loop

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped by the loop."""
        if self.callback is None:
            return
        self.callback = None
        loop = self._loop
        if loop is None:
            return
        # Inlined loop._note_cancel(): cancellation is hot (every
        # completed request cancels its hedge + deadline timers).
        loop._live -= 1
        cancelled = loop._cancelled + 1
        loop._cancelled = cancelled
        loop._cancels_total += 1
        if cancelled >= _COMPACT_MIN_CANCELLED and cancelled > loop._live:
            loop._compact()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called (or the event fired)."""
        return self.callback is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.callback is None else "pending"
        return f"EventHandle(time={self.time!r}, sequence={self.sequence}, {state})"


#: A queue entry: ``(time, sequence, payload)`` where payload is either
#: an :class:`EventHandle` (cancellable) or a bare callable (the
#: ``post`` fast path).  Tuples compare by (time, sequence); sequences
#: are unique so the payload is never compared.
_Entry = Tuple[float, int, object]


class EventLoop:
    """Calendar-queue discrete-event scheduler (the production engine).

    Events are hashed into fixed-width time slots (a dict keyed by
    ``int(time / slot_width)``); a small heap orders the non-empty
    slots.  Inserting is an O(1) dict lookup + list append; the next
    slot's bucket is sorted once when the clock reaches it and then
    drained as a batch without re-entering the scheduler.  An event
    scheduled into the window already being drained is placed into the
    sorted remainder by binary insertion, preserving exact
    ``(time, sequence)`` order.
    """

    __slots__ = (
        "slot_width",
        "_inv_width",
        "_now",
        "_seq",
        "_wheel",
        "_slot_heap",
        "_active",
        "_active_pos",
        "_active_slot",
        "_live",
        "_cancelled",
        "_cancels_total",
        "_events_processed",
        "_compactions",
        "_peak_pending",
        "_bucket_pool",
    )

    def __init__(self, slot_width: float = DEFAULT_SLOT_WIDTH) -> None:
        if slot_width <= 0:
            raise SimulationError(f"slot width must be positive, got {slot_width}")
        self.slot_width = slot_width
        self._inv_width = 1.0 / slot_width
        self._now = 0.0
        self._seq = 0
        #: slot index -> unsorted bucket of entries due in that slot.
        self._wheel: Dict[int, List[_Entry]] = {}
        #: heap of slot indices with a (possibly stale) bucket.
        self._slot_heap: List[int] = []
        #: the sorted bucket currently being drained, and the cursor
        #: into it; ``None`` between slots.
        self._active: Optional[List[_Entry]] = None
        self._active_pos = 0
        self._active_slot = -1
        self._live = 0
        self._cancelled = 0
        self._cancels_total = 0
        self._events_processed = 0
        self._compactions = 0
        self._peak_pending = 0
        self._bucket_pool: List[List[_Entry]] = []

    # -- clock & introspection ---------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of *live* (non-cancelled) events still queued.

        Cancelled handles awaiting lazy removal are excluded; see
        :meth:`queue_stats` for the resident total.
        """
        return self._live

    def queue_stats(self) -> Dict[str, object]:
        """Scheduler introspection (``cache_stats()``-style snapshot).

        ``live`` is the number of events that will still fire,
        ``cancelled`` the lazily-cancelled entries not yet compacted
        away, ``queued`` their sum (resident queue footprint), and
        ``peak_pending`` the high-water mark of live events.
        """
        return {
            "engine": "calendar",
            "live": self._live,
            "cancelled": self._cancelled,
            "queued": self._live + self._cancelled,
            "cancels_total": self._cancels_total,
            "compactions": self._compactions,
            "peak_pending": self._peak_pending,
            "slots": len(self._wheel) + (1 if self._active is not None else 0),
            "slot_width": self.slot_width,
            "events_processed": self._events_processed,
        }

    # -- scheduling ---------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* after *delay* seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* at absolute virtual *time* (cancellable)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, current time is {self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        # object.__new__ + attribute stores skips the __init__ frame —
        # measurably cheaper on a path taken once per timer.
        handle = _new_handle(EventHandle)
        handle.time = time
        handle.sequence = seq
        handle.callback = callback
        handle._loop = self
        # Inlined _insert: one call per timer (hedges, deadlines,
        # retransmits) makes the extra frame measurable.
        slot = int(time * self._inv_width)
        active = self._active
        if active is not None and slot <= self._active_slot:
            insort(active, (time, seq, handle), self._active_pos)
        else:
            bucket = self._wheel.get(slot)
            if bucket is None:
                pool = self._bucket_pool
                bucket = pool.pop() if pool else []
                bucket.append((time, seq, handle))
                self._wheel[slot] = bucket
                heapq.heappush(self._slot_heap, slot)
            else:
                bucket.append((time, seq, handle))
        live = self._live + 1
        self._live = live
        if live > self._peak_pending:
            self._peak_pending = live
        return handle

    def post(self, delay: float, callback: Callable[[], None]) -> None:
        """Handle-free :meth:`schedule` for fire-and-forget events.

        Skips the :class:`EventHandle` allocation entirely — the hot
        path for message deliveries and service completions, which are
        never cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self.post_at(self._now + delay, callback)

    def post_at(self, time: float, callback: Callable[[], None]) -> None:
        """Handle-free :meth:`schedule_at` (event cannot be cancelled)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, current time is {self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        # Inlined _insert (this is the hottest line in the simulator:
        # one call per message delivery / service completion).
        slot = int(time * self._inv_width)
        active = self._active
        if active is not None and slot <= self._active_slot:
            insort(active, (time, seq, callback), self._active_pos)
        else:
            bucket = self._wheel.get(slot)
            if bucket is None:
                pool = self._bucket_pool
                bucket = pool.pop() if pool else []
                bucket.append((time, seq, callback))
                self._wheel[slot] = bucket
                heapq.heappush(self._slot_heap, slot)
            else:
                bucket.append((time, seq, callback))
        live = self._live + 1
        self._live = live
        if live > self._peak_pending:
            self._peak_pending = live

    # -- cancellation & compaction -----------------------------------

    def _compact(self) -> None:
        """Bulk-remove lazily-cancelled entries from every bucket."""
        handle_type = EventHandle
        wheel = self._wheel
        for slot in list(wheel):
            bucket = wheel[slot]
            kept = [
                entry
                for entry in bucket
                if entry[2].__class__ is not handle_type or entry[2].callback is not None
            ]
            if kept:
                wheel[slot] = kept
            else:
                # The slot index may linger in the heap; _advance skips
                # stale indices whose bucket is gone.
                del wheel[slot]
        active = self._active
        if active is not None:
            pos = self._active_pos
            self._active = [
                entry
                for entry in active[pos:]
                if entry[2].__class__ is not handle_type or entry[2].callback is not None
            ]
            self._active_pos = 0
        self._cancelled = 0
        self._compactions += 1

    # -- dispatch -----------------------------------------------------

    def _advance(self) -> bool:
        """Load the next non-empty slot as the active batch."""
        heap = self._slot_heap
        wheel = self._wheel
        while heap:
            slot = heapq.heappop(heap)
            bucket = wheel.pop(slot, None)
            if not bucket:
                continue  # stale index (compacted away) or re-pushed twin
            bucket.sort()
            self._active = bucket
            self._active_pos = 0
            self._active_slot = slot
            return True
        return False

    def _retire_active(self) -> None:
        bucket = self._active
        self._active = None
        if bucket is not None and len(self._bucket_pool) < _BUCKET_POOL_MAX:
            bucket.clear()
            self._bucket_pool.append(bucket)

    def step(self) -> bool:
        """Execute the next event; returns False when none remain."""
        handle_type = EventHandle
        while True:
            active = self._active
            if active is None:
                if not self._advance():
                    return False
                active = self._active
            pos = self._active_pos
            if pos >= len(active):
                self._retire_active()
                continue
            self._active_pos = pos + 1
            time, _, payload = active[pos]
            if payload.__class__ is handle_type:
                callback = payload.callback
                if callback is None:
                    self._cancelled -= 1
                    continue
                payload.callback = None
            else:
                callback = payload
            self._now = time
            self._live -= 1
            callback()
            self._events_processed += 1
            return True

    def run_until(self, time: float) -> None:
        """Run events with timestamps <= *time*, then advance to *time*."""
        handle_type = EventHandle
        while True:
            active = self._active
            if active is None:
                if not self._advance():
                    break
                active = self._active
            pos = self._active_pos
            if pos >= len(active):
                self._retire_active()
                continue
            entry = active[pos]
            event_time = entry[0]
            if event_time > time:
                break
            self._active_pos = pos + 1
            payload = entry[2]
            if payload.__class__ is handle_type:
                callback = payload.callback
                if callback is None:
                    self._cancelled -= 1
                    continue
                payload.callback = None
            else:
                callback = payload
            self._now = event_time
            self._live -= 1
            callback()
            self._events_processed += 1
        if time > self._now:
            self._now = time

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains (or *max_events* fire).

        The drain is batched: the active slot's sorted bucket is
        consumed in a tight loop with no per-event scheduler re-entry.
        """
        handle_type = EventHandle
        executed = 0
        budget = max_events
        while True:
            active = self._active
            if active is None:
                if not self._advance():
                    return
                active = self._active
            pos = self._active_pos
            length = len(active)
            while pos < length:
                entry = active[pos]
                pos += 1
                payload = entry[2]
                if payload.__class__ is handle_type:
                    callback = payload.callback
                    if callback is None:
                        self._cancelled -= 1
                        continue
                    payload.callback = None
                else:
                    callback = payload
                self._now = entry[0]
                self._live -= 1
                self._active_pos = pos
                callback()
                self._events_processed += 1
                if budget is not None:
                    executed += 1
                    if executed >= budget:
                        raise SimulationError(
                            f"event budget exhausted after {max_events} events"
                            f" ({self._events_processed} events processed in total)"
                            " — likely a runaway feedback loop"
                        )
                # The callback may have scheduled into this slot
                # (insort), cancelled entries (compaction swaps the
                # list), or drained further — reload the cursor.
                active = self._active
                if active is None:
                    break
                pos = self._active_pos
                length = len(active)
            if active is not None and pos >= length:
                self._active_pos = pos
                self._retire_active()


#: Explicit alias for configuration tables and docs.
CalendarEventLoop = EventLoop


class ReferenceEventHandle:
    """The seed's per-event handle: a plain ``__dict__``-backed object.

    Preserved alongside :class:`ReferenceEventLoop` so the anchor keeps
    the seed's allocation profile (one dict-carrying object per event)
    as well as its algorithm.  The only addition is the loop backref
    that lets :meth:`cancel` keep the live-event count accurate — the
    introspection fix both engines share.
    """

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Optional[Callable[[], None]],
        _loop: Optional[object] = None,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self._loop = _loop

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped by the loop."""
        if self.callback is None:
            return
        self.callback = None
        loop = self._loop
        if loop is not None:
            loop._live -= 1
            loop._cancelled += 1
            loop._cancels_total += 1

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called (or the event fired)."""
        return self.callback is None


class ReferenceEventLoop:
    """The seed engine: one binary heap, one handle per event.

    Kept as the behavioural anchor for the calendar queue, the same
    way :mod:`repro.crypto.reference` anchors the optimized AES stack:
    property tests assert both engines fire identical event sequences,
    and the experiment suite asserts byte-identical same-seed
    artifacts.  Do not optimize this class.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_live",
        "_cancelled",
        "_cancels_total",
        "_events_processed",
        "_peak_pending",
    )

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[_Entry] = []
        self._seq = 0
        self._live = 0
        self._cancelled = 0
        self._cancels_total = 0
        self._events_processed = 0
        self._peak_pending = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def queue_stats(self) -> Dict[str, object]:
        """Same introspection surface as :meth:`EventLoop.queue_stats`."""
        return {
            "engine": "reference-heap",
            "live": self._live,
            "cancelled": self._cancelled,
            "queued": len(self._queue),
            "cancels_total": self._cancels_total,
            "compactions": 0,
            "peak_pending": self._peak_pending,
            "slots": 0,
            "slot_width": 0.0,
            "events_processed": self._events_processed,
        }

    def schedule(self, delay: float, callback: Callable[[], None]) -> ReferenceEventHandle:
        """Run *callback* after *delay* seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ReferenceEventHandle:
        """Run *callback* at absolute virtual *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, current time is {self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = ReferenceEventHandle(time, seq, callback, self)
        heapq.heappush(self._queue, (time, seq, handle))
        self._live += 1
        if self._live > self._peak_pending:
            self._peak_pending = self._live
        return handle

    def post(self, delay: float, callback: Callable[[], None]) -> None:
        """API parity with :meth:`EventLoop.post` (no fast path here)."""
        self.schedule(delay, callback)

    def post_at(self, time: float, callback: Callable[[], None]) -> None:
        """API parity with :meth:`EventLoop.post_at` (no fast path here)."""
        self.schedule_at(time, callback)

    def step(self) -> bool:
        """Execute the next event; returns False when none remain."""
        while self._queue:
            time, _, handle = heapq.heappop(self._queue)
            if handle.callback is None:
                self._cancelled -= 1
                continue
            self._now = time
            callback, handle.callback = handle.callback, None
            self._live -= 1
            callback()
            self._events_processed += 1
            return True
        return False

    def run_until(self, time: float) -> None:
        """Run events with timestamps <= *time*, then advance to *time*.

        Cancelled heads are purged before the boundary test: the seed
        implementation decided "one more step" by looking at the head's
        timestamp even when that head was already cancelled, which let
        ``step()`` overshoot *time* by running the next live event.
        Both engines now honour the documented contract exactly.
        """
        queue = self._queue
        while queue:
            next_time, _, head = queue[0]
            if head.callback is None:
                heapq.heappop(queue)
                self._cancelled -= 1
                continue
            if next_time > time:
                break
            if not self.step():
                break
        if time > self._now:
            self._now = time

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains (or *max_events* fire)."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"event budget exhausted after {max_events} events"
                    f" ({self._events_processed} events processed in total)"
                    " — likely a runaway feedback loop"
                )


#: Engine registry for CLI flags and experiment configuration.
ENGINES = {
    "calendar": CalendarEventLoop,
    "reference": ReferenceEventLoop,
}


def make_event_loop(engine: str = "calendar", **options):
    """Construct an event loop by engine name (``calendar``/``reference``)."""
    try:
        factory = ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown event-loop engine {engine!r}; expected one of {sorted(ENGINES)}"
        ) from None
    return factory(**options)
