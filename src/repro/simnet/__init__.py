"""Discrete-event simulation substrate.

Provides the deterministic event loop, node/queue/network models, load
balancers, seeded RNG streams and latency metrics that the proxy, LRS
and workload layers are built on.
"""

from repro.simnet.clock import (
    DEFAULT_SLOT_WIDTH,
    ENGINES,
    CalendarEventLoop,
    EventHandle,
    EventLoop,
    ReferenceEventHandle,
    ReferenceEventLoop,
    SimulationError,
    make_event_loop,
)
from repro.simnet.loadbalancer import (
    BalancerError,
    BalancingPolicy,
    LeastPendingPolicy,
    LoadBalancer,
    NoUpstream,
    RandomPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.simnet.metrics import (
    CandlestickSummary,
    LatencyRecorder,
    SlottedLatencyRecorder,
    percentile,
    trim_window,
)
from repro.simnet.network import FaultDecision, FlowRecord, LatencyModel, Network
from repro.simnet.node import NodeStats, SimNode
from repro.simnet.queueing import (
    SHED_FRONT,
    SHED_SOJOURN,
    SHED_TAIL,
    CoDelPolicy,
    ConcurrentQueue,
    FrontDropPolicy,
    ShedPolicy,
    TailDropPolicy,
    make_shed_policy,
)
from repro.simnet.rng import RngRegistry
from repro.simnet.tracing import BreakdownProbe, RequestTimeline, STAGES

__all__ = [
    "EventLoop",
    "CalendarEventLoop",
    "ReferenceEventLoop",
    "EventHandle",
    "ReferenceEventHandle",
    "SimulationError",
    "make_event_loop",
    "ENGINES",
    "DEFAULT_SLOT_WIDTH",
    "LoadBalancer",
    "BalancerError",
    "NoUpstream",
    "BalancingPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "LeastPendingPolicy",
    "make_policy",
    "CandlestickSummary",
    "LatencyRecorder",
    "SlottedLatencyRecorder",
    "percentile",
    "trim_window",
    "Network",
    "FlowRecord",
    "FaultDecision",
    "LatencyModel",
    "SimNode",
    "NodeStats",
    "ConcurrentQueue",
    "ShedPolicy",
    "TailDropPolicy",
    "FrontDropPolicy",
    "CoDelPolicy",
    "make_shed_policy",
    "SHED_TAIL",
    "SHED_FRONT",
    "SHED_SOJOURN",
    "RngRegistry",
    "BreakdownProbe",
    "RequestTimeline",
    "STAGES",
]
