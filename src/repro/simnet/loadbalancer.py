"""Load balancing across replicated service instances.

The paper balances client requests "to any of the enclaves in the UA
layer" and UA->IA traffic "to any of the enclaves of the latter" using
Kubernetes' kube-proxy.  kube-proxy's default iptables mode picks a
random backend; we provide that plus round-robin and least-pending
policies for the ablation benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generic, List, Protocol, Sequence, TypeVar

__all__ = [
    "LoadBalancer",
    "BalancerError",
    "NoUpstream",
    "RandomPolicy",
    "RoundRobinPolicy",
    "LeastPendingPolicy",
    "BalancingPolicy",
    "make_policy",
]


class BalancerError(RuntimeError):
    """Raised on invalid pool operations (unknown backend, empty pool)."""


class NoUpstream(BalancerError):
    """Typed rejection: every backend is ejected right now.

    Raised by :meth:`LoadBalancer.pick` on an empty pool so callers in
    the data plane (the UA picking an IA, the client picking a UA) can
    convert "nowhere to route" into a uniform retryable reject instead
    of crashing or looping.  Subclasses :class:`BalancerError`, so
    pre-existing ``except BalancerError`` handlers keep working.
    """


class _HasPending(Protocol):
    @property
    def pending(self) -> int: ...


BackendT = TypeVar("BackendT")


class BalancingPolicy(Generic[BackendT]):
    """Strategy interface: choose one backend from a non-empty pool."""

    name = "abstract"

    def choose(self, backends: Sequence[BackendT]) -> BackendT:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget rotation state (called when the pool empties)."""


@dataclass
class RandomPolicy(BalancingPolicy):
    """Uniform random choice (kube-proxy iptables default)."""

    rng: random.Random
    name: str = field(default="random", init=False)

    def choose(self, backends: Sequence[BackendT]) -> BackendT:
        return backends[self.rng.randrange(len(backends))]


@dataclass
class RoundRobinPolicy(BalancingPolicy):
    """Cycle through backends in order (kube-proxy ipvs rr)."""

    _next: int = 0
    name: str = field(default="round-robin", init=False)

    def choose(self, backends: Sequence[BackendT]) -> BackendT:
        # Clamp the cursor when the pool shrank (backend ejected
        # mid-rotation) so the rotation stays a pure cycle over the
        # surviving pool rather than skipping members.
        if self._next >= len(backends):
            self._next = 0
        backend = backends[self._next]
        self._next = (self._next + 1) % len(backends)
        return backend

    def reset(self) -> None:
        self._next = 0


@dataclass
class LeastPendingPolicy(BalancingPolicy):
    """Pick the backend with the fewest outstanding jobs.

    Requires backends exposing a ``pending`` property (our proxy
    instances and LRS frontends do).  Ties break by pool order.
    """

    name: str = field(default="least-pending", init=False)

    def choose(self, backends: Sequence["_HasPending"]) -> "_HasPending":
        return min(backends, key=lambda backend: backend.pending)


@dataclass
class LoadBalancer(Generic[BackendT]):
    """A named pool of backends behind a balancing policy."""

    name: str
    policy: BalancingPolicy
    backends: List[BackendT] = field(default_factory=list)
    decisions: int = 0
    ejections: int = 0
    readmissions: int = 0

    def add(self, backend: BackendT) -> None:
        """Register a backend with the pool."""
        self.backends.append(backend)

    def remove(self, backend: BackendT) -> None:
        """Deregister a backend (elastic scale-down).

        Removing the final backend leaves the pool empty-but-valid:
        the next :meth:`pick` raises :class:`NoUpstream` (an upstream
        shed, not a crash), and the policy's rotation state is reset
        so backends added later are served strictly in (re)admission
        order rather than from a stale mid-cycle cursor.
        """
        if backend not in self.backends:
            raise BalancerError(
                f"load balancer {self.name!r} has no backend "
                f"{getattr(backend, 'name', backend)!r} to remove"
            )
        self.backends.remove(backend)
        if not self.backends:
            self.policy.reset()

    def contains(self, backend: BackendT) -> bool:
        """True when *backend* is currently in the pool."""
        return backend in self.backends

    def eject(self, backend: BackendT) -> bool:
        """Health-driven removal; returns False if already absent."""
        if backend not in self.backends:
            return False
        self.backends.remove(backend)
        if not self.backends:
            self.policy.reset()
        self.ejections += 1
        return True

    def readmit(self, backend: BackendT) -> bool:
        """Re-add a recovered backend; returns False if already pooled."""
        if backend in self.backends:
            return False
        self.backends.append(backend)
        self.readmissions += 1
        return True

    def pick(self) -> BackendT:
        """Choose a backend for the next request.

        Raises :class:`NoUpstream` when every backend is ejected
        (overload + health-eject interplay: the caller should reject
        the request retryably, not crash).
        """
        if not self.backends:
            raise NoUpstream(f"load balancer {self.name!r} has no backends")
        self.decisions += 1
        return self.policy.choose(self.backends)

    def __len__(self) -> int:
        return len(self.backends)


def make_policy(name: str, rng: random.Random) -> BalancingPolicy:
    """Construct a policy by name: random, round-robin or least-pending."""
    if name == "random":
        return RandomPolicy(rng=rng)
    if name == "round-robin":
        return RoundRobinPolicy()
    if name == "least-pending":
        return LeastPendingPolicy()
    raise ValueError(f"unknown load-balancing policy {name!r}")
