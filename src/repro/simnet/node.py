"""Simulated compute nodes: a multi-core FIFO service station.

Each cluster node in the paper's testbed is an Intel NUC with a 2-core
3.50 GHz i7.  We model a node as ``cores`` parallel servers draining a
FIFO queue of jobs with caller-supplied service times.  This M/G/c
structure is what produces the latency knee at saturation that all of
the paper's figures exhibit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional, Tuple

from repro.simnet.clock import EventLoop

__all__ = ["SimNode", "NodeStats"]


@dataclass
class NodeStats:
    """Utilization counters maintained by :class:`SimNode`."""

    jobs_completed: int = 0
    busy_time: float = 0.0
    total_queue_wait: float = 0.0
    max_queue_length: int = 0

    def mean_queue_wait(self) -> float:
        """Average time jobs spent queued before starting service."""
        if not self.jobs_completed:
            return 0.0
        return self.total_queue_wait / self.jobs_completed


@dataclass
class SimNode:
    """A named node with *cores* parallel execution units.

    Jobs are submitted with an explicit service time (computed by the
    caller's cost model) and a completion callback.  Jobs start in FIFO
    order as cores free up.
    """

    name: str
    loop: EventLoop
    cores: int = 2
    stats: NodeStats = field(default_factory=NodeStats)
    _busy: int = 0
    _queue: Deque[Tuple[float, float, Callable[[], None]]] = field(default_factory=deque)

    def submit(self, service_time: float, on_complete: Callable[[], None]) -> None:
        """Enqueue a job taking *service_time* seconds of one core."""
        if service_time < 0:
            raise ValueError(f"negative service time: {service_time}")
        self._queue.append((self.loop.now, service_time, on_complete))
        self.stats.max_queue_length = max(self.stats.max_queue_length, len(self._queue))
        self._dispatch()

    @property
    def queue_length(self) -> int:
        """Jobs waiting for a core (not counting running jobs)."""
        return len(self._queue)

    @property
    def pending(self) -> int:
        """Jobs waiting plus jobs currently running."""
        return len(self._queue) + self._busy

    @property
    def busy_cores(self) -> int:
        """Cores currently executing a job."""
        return self._busy

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of core-time spent busy up to now (or *horizon*)."""
        elapsed = horizon if horizon is not None else self.loop.now
        if elapsed <= 0:
            return 0.0
        return self.stats.busy_time / (elapsed * self.cores)

    def _dispatch(self) -> None:
        """Start queued jobs while cores are free."""
        while self._queue and self._busy < self.cores:
            enqueued_at, service_time, on_complete = self._queue.popleft()
            self._busy += 1
            self.stats.total_queue_wait += self.loop.now - enqueued_at
            # Handle-free fast path: completions are never cancelled.
            self.loop.post(service_time, self._completer(service_time, on_complete))

    def _completer(self, service_time: float, on_complete: Callable[[], None]) -> Callable[[], None]:
        def finish() -> None:
            self._busy -= 1
            self.stats.jobs_completed += 1
            self.stats.busy_time += service_time
            # Free the core before running the callback so that work the
            # callback submits can start immediately.
            self._dispatch()
            on_complete()

        return finish
