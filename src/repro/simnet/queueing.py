"""Queueing primitives mirroring the proxy server implementation (§5).

The paper's proxy server is an event-driven single thread pushing
incoming connections' file descriptors into "a lock-free, scalable
concurrent queue" (Desrochers' moodycamel queue), drained by a pool of
data-processing threads running inside the SGX enclave.  We model the
queue as a FIFO with registered consumers, which is behaviourally
equivalent under the simulator's sequential execution.

Overload protection (PR 5): the queue can be *bounded*.  A saturated
queue hands overflow to a pluggable :class:`ShedPolicy` — tail-drop
(refuse the newcomer), front-drop (evict the oldest entry) or a
CoDel-style sojourn controller that drops at dequeue time once queueing
delay stays above target for a full interval.  The legacy default is
*explicitly* unbounded (capacity ``None``): nothing sheds, but the
``unbounded`` flag feeds a warning gauge so operators can see which
queues run without protection.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

__all__ = [
    "ConcurrentQueue",
    "ShedPolicy",
    "TailDropPolicy",
    "FrontDropPolicy",
    "CoDelPolicy",
    "make_shed_policy",
    "SHED_TAIL",
    "SHED_FRONT",
    "SHED_SOJOURN",
]

#: Shed-reason labels (the ``reason`` label of ``pprox_shed_total``).
SHED_TAIL = "tail_drop"
SHED_FRONT = "front_drop"
SHED_SOJOURN = "sojourn"


class ShedPolicy:
    """Strategy interface: what to do when a bounded queue saturates.

    ``on_full`` decides between refusing the newcomer (return it) and
    evicting queued entries to make room; ``on_dequeue`` may veto the
    entry about to be handed to a consumer (CoDel-style control).
    """

    name = "abstract"

    def on_full(self, queue: "ConcurrentQueue", item: Any) -> List[Tuple[Any, str]]:
        """Return the ``(item, reason)`` pairs to shed; the queue sheds
        them and admits the newcomer iff it is not among them."""
        raise NotImplementedError

    def on_dequeue(self, sojourn: float, now: float) -> Optional[str]:
        """Shed reason for the entry being dequeued, or ``None`` to
        deliver it.  Default: always deliver."""
        return None


@dataclass
class TailDropPolicy(ShedPolicy):
    """Refuse the incoming item when the queue is full (classic FIFO)."""

    name: str = field(default="tail-drop", init=False)

    def on_full(self, queue: "ConcurrentQueue", item: Any) -> List[Tuple[Any, str]]:
        return [(item, SHED_TAIL)]


@dataclass
class FrontDropPolicy(ShedPolicy):
    """Evict the oldest queued entry to admit the newcomer.

    Under overload the oldest entry is the one most likely to have
    blown its deadline already, so front-drop spends the shed on the
    request with the least chance of completing in time.
    """

    name: str = field(default="front-drop", init=False)

    def on_full(self, queue: "ConcurrentQueue", item: Any) -> List[Tuple[Any, str]]:
        oldest = queue._evict_oldest()
        return [] if oldest is None else [(oldest, SHED_FRONT)]


@dataclass
class CoDelPolicy(ShedPolicy):
    """Sojourn-time controller in the style of CoDel (Nichols & Jacobson).

    Tracks how long queueing delay has continuously exceeded *target*;
    once that streak reaches *interval*, entries are dropped at dequeue
    time until sojourn falls back under target.  Capacity overflow
    (a burst arriving faster than the controller can react) falls back
    to tail-drop.
    """

    #: Acceptable standing queueing delay.
    target: float = 0.05
    #: How long sojourn must stay above target before dropping starts.
    interval: float = 0.1
    name: str = field(default="codel", init=False)
    _first_above: Optional[float] = field(default=None, init=False)

    def on_full(self, queue: "ConcurrentQueue", item: Any) -> List[Tuple[Any, str]]:
        return [(item, SHED_TAIL)]

    def on_dequeue(self, sojourn: float, now: float) -> Optional[str]:
        if sojourn < self.target:
            self._first_above = None
            return None
        if self._first_above is None:
            self._first_above = now
            return None
        if now - self._first_above >= self.interval:
            return SHED_SOJOURN
        return None


def make_shed_policy(name: str, **options: Any) -> ShedPolicy:
    """Construct a shed policy by name: tail-drop, front-drop or codel."""
    if name == "tail-drop":
        return TailDropPolicy()
    if name == "front-drop":
        return FrontDropPolicy()
    if name == "codel":
        return CoDelPolicy(**options)
    raise ValueError(f"unknown shed policy {name!r}")


@dataclass
class ConcurrentQueue:
    """FIFO work queue with pull-style consumers and an optional bound.

    Consumers register a readiness callback; when an item is pushed
    and a consumer is idle, the item is handed over immediately,
    preserving the FIFO fairness objective the paper calls out
    ("no request gets delayed arbitrarily more than the delay that
    shuffling already introduces").

    ``capacity=None`` (the legacy default) is explicitly unbounded:
    ``push`` never sheds and ``unbounded`` stays True so the warning
    gauge can flag the configuration.  With a capacity set, overflow
    is resolved by ``shed_policy`` (tail-drop when unset) and every
    shed invokes ``on_shed(item, reason)``.
    """

    name: str = "queue"
    #: Maximum queued entries; ``None`` = unbounded (legacy default).
    capacity: Optional[int] = None
    shed_policy: Optional[ShedPolicy] = None
    #: Virtual-clock source for sojourn accounting; the zero default
    #: keeps clock-less (unit-test) queues working with zero sojourns.
    clock: Callable[[], float] = lambda: 0.0
    _items: Deque[Tuple[Any, float]] = field(default_factory=deque)
    _idle_consumers: Deque[Callable[[Any], None]] = field(default_factory=deque)
    enqueued: int = 0
    max_depth: int = 0
    #: Entries shed, total and by reason label.
    shed: int = 0
    shed_by_reason: Dict[str, int] = field(default_factory=dict)
    #: Hook invoked once per shed entry with ``(item, reason)``.
    on_shed: Optional[Callable[[Any, str], None]] = None
    #: Hook invoked once per delivered entry with its sojourn seconds.
    on_pop: Optional[Callable[[float], None]] = None

    @property
    def unbounded(self) -> bool:
        """True when no capacity is enforced (warning-gauge signal)."""
        return self.capacity is None

    def push(self, item: Any) -> bool:
        """Add *item*; dispatches immediately if a consumer is idle.

        Returns True when the item was admitted (delivered or queued),
        False when the active shed policy refused it.
        """
        self.enqueued += 1
        if self._idle_consumers:
            consumer = self._idle_consumers.popleft()
            if self.on_pop is not None:
                self.on_pop(0.0)
            consumer(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            policy = self.shed_policy if self.shed_policy is not None else _TAIL_DROP
            admitted = True
            for victim, reason in policy.on_full(self, item):
                self._record_shed(victim, reason)
                if victim is item:
                    admitted = False
            if not admitted:
                return False
        self._items.append((item, self.clock()))
        self.max_depth = max(self.max_depth, len(self._items))
        return True

    def push_all(self, items: List[Any]) -> None:
        """Push a batch of items in order."""
        for item in items:
            self.push(item)

    def request_item(self, consumer: Callable[[Any], None]) -> None:
        """A consumer asks for the next item (now or when one arrives)."""
        entry = self._next_entry()
        if entry is not None:
            item, sojourn = entry
            if self.on_pop is not None:
                self.on_pop(sojourn)
            consumer(item)
            return
        self._idle_consumers.append(consumer)

    def pop(self) -> Optional[Any]:
        """Take the next deliverable item, or ``None`` when empty.

        Applies the same dequeue-time shed decisions as
        :meth:`request_item` (pull-style drain used by the proxy
        ingress pump).
        """
        entry = self._next_entry()
        if entry is None:
            return None
        item, sojourn = entry
        if self.on_pop is not None:
            self.on_pop(sojourn)
        return item

    def _next_entry(self) -> Optional[Tuple[Any, float]]:
        """Pop entries until one survives the dequeue-time policy."""
        while self._items:
            item, enqueued_at = self._items.popleft()
            sojourn = max(0.0, self.clock() - enqueued_at)
            if self.shed_policy is not None:
                reason = self.shed_policy.on_dequeue(sojourn, self.clock())
                if reason is not None:
                    self._record_shed(item, reason)
                    continue
            return item, sojourn
        return None

    def _evict_oldest(self) -> Optional[Any]:
        """Remove and return the oldest queued entry (front-drop)."""
        if not self._items:
            return None
        item, _ = self._items.popleft()
        return item

    def _record_shed(self, item: Any, reason: str) -> None:
        self.shed += 1
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        if self.on_shed is not None:
            self.on_shed(item, reason)

    @property
    def depth(self) -> int:
        """Items currently waiting."""
        return len(self._items)

    @property
    def idle_consumers(self) -> int:
        """Consumers currently blocked waiting for work."""
        return len(self._idle_consumers)

    def oldest_sojourn(self) -> float:
        """Queueing delay of the head entry (0 when empty) — the
        overload signal's sojourn input."""
        if not self._items:
            return 0.0
        _, enqueued_at = self._items[0]
        return max(0.0, self.clock() - enqueued_at)


_TAIL_DROP = TailDropPolicy()
