"""Queueing primitives mirroring the proxy server implementation (§5).

The paper's proxy server is an event-driven single thread pushing
incoming connections' file descriptors into "a lock-free, scalable
concurrent queue" (Desrochers' moodycamel queue), drained by a pool of
data-processing threads running inside the SGX enclave.  We model the
queue as a FIFO with registered consumers, which is behaviourally
equivalent under the simulator's sequential execution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List

__all__ = ["ConcurrentQueue"]


@dataclass
class ConcurrentQueue:
    """FIFO work queue with pull-style consumers.

    Consumers register a readiness callback; when an item is pushed
    and a consumer is idle, the item is handed over immediately,
    preserving the FIFO fairness objective the paper calls out
    ("no request gets delayed arbitrarily more than the delay that
    shuffling already introduces").
    """

    name: str = "queue"
    _items: Deque[Any] = field(default_factory=deque)
    _idle_consumers: Deque[Callable[[Any], None]] = field(default_factory=deque)
    enqueued: int = 0
    max_depth: int = 0

    def push(self, item: Any) -> None:
        """Add *item*; dispatches immediately if a consumer is idle."""
        self.enqueued += 1
        if self._idle_consumers:
            consumer = self._idle_consumers.popleft()
            consumer(item)
            return
        self._items.append(item)
        self.max_depth = max(self.max_depth, len(self._items))

    def push_all(self, items: List[Any]) -> None:
        """Push a batch of items in order."""
        for item in items:
            self.push(item)

    def request_item(self, consumer: Callable[[Any], None]) -> None:
        """A consumer asks for the next item (now or when one arrives)."""
        if self._items:
            consumer(self._items.popleft())
            return
        self._idle_consumers.append(consumer)

    @property
    def depth(self) -> int:
        """Items currently waiting."""
        return len(self._items)

    @property
    def idle_consumers(self) -> int:
        """Consumers currently blocked waiting for work."""
        return len(self._idle_consumers)
