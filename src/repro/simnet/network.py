"""Simulated cluster network with an adversary observation tap.

The PProx adversary "may monitor network flows between the nodes
forming this infrastructure, both with the outside world and
internally, and correlate in time its observations" (paper §2.3).
Every message delivered through :class:`Network` is therefore recorded
as a :class:`FlowRecord` — endpoints, timestamp and *size only* (the
payload itself is encrypted; the observation model must not grant the
adversary plaintext access).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.simnet.clock import EventLoop

__all__ = ["Network", "FlowRecord", "FaultDecision", "LatencyModel", "UNKNOWN_ROLE"]

#: Role assigned to addresses nobody registered.  Explicit, so
#: downstream classifiers never silently lump strangers into ``lrs``.
UNKNOWN_ROLE = "unknown"


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """One observed network transmission (metadata only).

    ``source_role``/``destination_role`` carry the *operator-side* role
    directory entries (see :meth:`Network.register_role`); they default
    to :data:`UNKNOWN_ROLE` for records built without a directory.
    Slotted: scale sweeps retain millions of these when flow recording
    is on.
    """

    time: float
    source: str
    destination: str
    size_bytes: int
    flow_id: int
    source_role: str = UNKNOWN_ROLE
    destination_role: str = UNKNOWN_ROLE


@dataclass(frozen=True)
class FaultDecision:
    """Verdict of a fault filter for one transmission.

    ``drop`` loses the message after the adversary tap has seen it (a
    dropped packet is still observable on the wire); ``extra_delay``
    adds seconds on top of the sampled latency (delay spike / congested
    path).
    """

    drop: bool = False
    extra_delay: float = 0.0


#: A filter consulted once per :meth:`Network.send`; ``None`` verdicts
#: mean "no fault".
FaultFilter = Callable[[FlowRecord], Optional[FaultDecision]]


@dataclass
class LatencyModel:
    """Per-hop latency: base + uniform jitter + size-proportional term.

    Defaults approximate an intra-datacenter hop (the paper co-locates
    PProx with the LRS "to avoid indirections through multiple data
    centers").
    """

    base_seconds: float = 0.0003
    jitter_seconds: float = 0.0002
    seconds_per_byte: float = 1.0 / 1_000_000_000  # ~1 GbE payload cost

    def sample(self, size_bytes: int, rng: random.Random) -> float:
        """Draw a delivery latency for a message of *size_bytes*."""
        jitter = rng.uniform(0, self.jitter_seconds)
        return self.base_seconds + jitter + size_bytes * self.seconds_per_byte


@dataclass
class Network:
    """Message fabric connecting simulation actors by name."""

    loop: EventLoop
    rng: random.Random
    latency: LatencyModel = field(default_factory=LatencyModel)
    record_flows: bool = True
    flows: List[FlowRecord] = field(default_factory=list)
    _observers: List[Callable[[FlowRecord], None]] = field(default_factory=list)
    _wiretaps: List[Callable[[FlowRecord, Any], None]] = field(default_factory=list)
    _flow_counter: int = 0
    messages_sent: int = 0
    bytes_sent: int = 0
    messages_dropped: int = 0
    #: Optional fault hook (set by the fault injector): may drop the
    #: message or stretch its delivery.  Faults act *after* the
    #: adversary tap — a lost packet was still on the wire.
    fault_filter: Optional[FaultFilter] = None
    #: Operator-side role directory: address -> ua/ia/lrs/client/...
    #: Populated at deployment time (service assembly, client attach),
    #: NOT inferred from address spelling.
    roles: Dict[str, str] = field(default_factory=dict)

    def register_role(self, address: str, role: str) -> None:
        """Record that *address* plays *role* (idempotent re-register ok)."""
        self.roles[address] = role

    def role_of(self, address: str) -> str:
        """The registered role of *address*, or :data:`UNKNOWN_ROLE`."""
        return self.roles.get(address, UNKNOWN_ROLE)

    def add_observer(self, observer: Callable[[FlowRecord], None]) -> None:
        """Attach a live observer (e.g. the adversary) to the tap."""
        self._observers.append(observer)

    def add_wiretap(self, wiretap: Callable[[FlowRecord, Any], None]) -> None:
        """Attach a payload-level tap.

        The PProx adversary bypasses TLS and sees traffic "in the
        clear" (§2.3) — but cleartext on this wire is JSON whose
        sensitive fields are ciphertext, so a wiretap grants exactly
        what the paper grants: encrypted bodies plus flow metadata.
        """
        self._wiretaps.append(wiretap)

    def send(
        self,
        source: str,
        destination: str,
        payload: Any,
        size_bytes: int,
        on_deliver: Callable[[Any], None],
        extra_delay: float = 0.0,
    ) -> int:
        """Deliver *payload* after a sampled network latency.

        Returns the flow id assigned to this transmission.  The
        adversary tap sees endpoints, time and size — never *payload*.
        """
        self._flow_counter += 1
        flow_id = self._flow_counter
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        fault_delay = 0.0
        if self.record_flows or self._observers or self._wiretaps or self.fault_filter:
            record = FlowRecord(
                time=self.loop.now,
                source=source,
                destination=destination,
                size_bytes=size_bytes,
                flow_id=flow_id,
                source_role=self.role_of(source),
                destination_role=self.role_of(destination),
            )
            if self.record_flows:
                self.flows.append(record)
            for observer in self._observers:
                observer(record)
            for wiretap in self._wiretaps:
                wiretap(record, payload)
            if self.fault_filter is not None:
                decision = self.fault_filter(record)
                if decision is not None:
                    if decision.drop:
                        self.messages_dropped += 1
                        return flow_id
                    fault_delay = decision.extra_delay
        # else: nobody is watching this wire — skip building the record
        # entirely (the dominant allocation per hop at scale-sweep
        # sizes; the rng draw below stays in the same stream position
        # either way, so seeds reproduce identically).
        delay = self.latency.sample(size_bytes, self.rng) + extra_delay + fault_delay
        # Handle-free fast path: deliveries are never cancelled.
        self.loop.post(delay, lambda: on_deliver(payload))
        return flow_id

    def clear_flows(self) -> None:
        """Drop recorded flow metadata (e.g. between experiment phases)."""
        self.flows.clear()
