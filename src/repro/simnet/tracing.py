"""Per-request latency breakdown, reconstructed from wire events.

Operators (not the adversary!) can attach a :class:`BreakdownProbe`
to the simulated network; it watches payload-level events and
reconstructs, for every request id, how long each pipeline stage
held the request:

======================  ===================================================
``ua_inbound``          client send -> UA forwards to IA (client-side
                        crypto, network, UA shuffle buffer + processing)
``ia_inbound``          UA send -> IA forwards to the LRS
``lrs``                 IA send -> LRS replies
``ia_outbound``         LRS reply -> IA forwards to UA (response shuffle
                        buffer + de-pseudonymization + re-encryption)
``ua_outbound``         IA reply -> UA replies to the client
======================  ===================================================

This is how Figure 7/8-style anomalies are diagnosed: at low RPS the
``ua_inbound`` and ``ia_outbound`` stages (the two shuffle buffers)
dominate; near saturation the bottleneck layer's processing time does.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.rest.messages import Request, Response
from repro.simnet.metrics import percentile
from repro.simnet.network import FlowRecord, Network

__all__ = ["BreakdownProbe", "RequestTimeline", "STAGES"]

STAGES = ("ua_inbound", "ia_inbound", "lrs", "ia_outbound", "ua_outbound")


def _role(address: str) -> str:
    if address.startswith("client") or address.startswith("app-frontend"):
        return "client"
    if address.startswith("pprox-ua"):
        return "ua"
    if address.startswith("pprox-ia"):
        return "ia"
    return "lrs"


@dataclass
class RequestTimeline:
    """Send timestamps of one request's traversal, by hop."""

    request_id: int
    send_times: Dict[str, float] = field(default_factory=dict)

    def record(self, hop: str, time: float) -> None:
        self.send_times.setdefault(hop, time)

    def stage_durations(self) -> Optional[Dict[str, float]]:
        """Per-stage durations, or None while the trace is incomplete."""
        hops = self.send_times
        required = ["client->ua", "ua->ia", "ia->lrs", "lrs->ia", "ia->ua", "ua->client"]
        if any(hop not in hops for hop in required):
            return None
        return {
            "ua_inbound": hops["ua->ia"] - hops["client->ua"],
            "ia_inbound": hops["ia->lrs"] - hops["ua->ia"],
            "lrs": hops["lrs->ia"] - hops["ia->lrs"],
            "ia_outbound": hops["ia->ua"] - hops["lrs->ia"],
            "ua_outbound": hops["ua->client"] - hops["ia->ua"],
        }


@dataclass
class BreakdownProbe:
    """Collects request timelines from a network's payload tap."""

    timelines: Dict[int, RequestTimeline] = field(default_factory=dict)

    def attach(self, network: Network) -> None:
        """Start observing *network* (operator-side, sees request ids)."""
        network.add_wiretap(self._observe)

    def _observe(self, record: FlowRecord, payload: object) -> None:
        if isinstance(payload, (Request, Response)):
            request_id = payload.request_id
        else:
            return
        if request_id == 0:
            return
        hop = f"{_role(record.source)}->{_role(record.destination)}"
        timeline = self.timelines.get(request_id)
        if timeline is None:
            timeline = RequestTimeline(request_id=request_id)
            self.timelines[request_id] = timeline
        timeline.record(hop, record.time)

    def complete_traces(self) -> List[Dict[str, float]]:
        """Stage durations of every fully-observed request."""
        out = []
        for timeline in self.timelines.values():
            durations = timeline.stage_durations()
            if durations is not None:
                out.append(durations)
        return out

    def aggregate(self, fraction: float = 0.5) -> Dict[str, float]:
        """Per-stage percentile (default median) across all traces."""
        traces = self.complete_traces()
        if not traces:
            raise ValueError("no complete traces collected")
        by_stage: Dict[str, List[float]] = defaultdict(list)
        for durations in traces:
            for stage, value in durations.items():
                by_stage[stage].append(value)
        return {
            stage: percentile(sorted(values), fraction)
            for stage, values in by_stage.items()
        }

    def render(self) -> str:
        """Text table of the median breakdown."""
        aggregated = self.aggregate()
        total = sum(aggregated.values())
        lines = [f"{'stage':14s} {'median ms':>10s} {'share':>7s}"]
        for stage in STAGES:
            value = aggregated.get(stage, 0.0)
            share = value / total if total else 0.0
            lines.append(f"{stage:14s} {value * 1000:10.2f} {share:7.1%}")
        lines.append(f"{'total':14s} {total * 1000:10.2f}")
        return "\n".join(lines)
