"""Per-request latency breakdown, reconstructed from wire events.

Operators (not the adversary!) can attach a :class:`BreakdownProbe`
to the simulated network; it watches payload-level events and
reconstructs, for every request id, how long each pipeline stage
held the request:

======================  ===================================================
``ua_inbound``          client send -> UA forwards to IA (client-side
                        crypto, network, UA shuffle buffer + processing)
``ia_inbound``          UA send -> IA forwards to the LRS
``lrs``                 IA send -> LRS replies
``ia_outbound``         LRS reply -> IA forwards to UA (response shuffle
                        buffer + de-pseudonymization + re-encryption)
``ua_outbound``         IA reply -> UA replies to the client
======================  ===================================================

This is how Figure 7/8-style anomalies are diagnosed: at low RPS the
``ua_inbound`` and ``ia_outbound`` stages (the two shuffle buffers)
dominate; near saturation the bottleneck layer's processing time does.

Hops are classified by the **role directory** the deployment registers
on the :class:`~repro.simnet.network.Network` (``register_role``), not
by address spelling: an address nobody registered is explicitly
``unknown`` and its flows never complete a timeline, instead of being
silently misfiled as LRS traffic.

The richer, span-based view of the same pipeline lives in
:mod:`repro.telemetry.spans`; this probe remains as the independent
wire-level cross-check (the two must agree to float precision on the
same run).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.rest.messages import Request, Response
from repro.simnet.metrics import percentile
from repro.simnet.network import FlowRecord, Network

__all__ = ["BreakdownProbe", "RequestTimeline", "STAGES"]

STAGES = ("ua_inbound", "ia_inbound", "lrs", "ia_outbound", "ua_outbound")

_REQUIRED_HOPS = ("client->ua", "ua->ia", "ia->lrs", "lrs->ia", "ia->ua", "ua->client")


@dataclass
class RequestTimeline:
    """Send timestamps of one request's traversal, by hop."""

    request_id: int
    send_times: Dict[str, float] = field(default_factory=dict)

    def record(self, hop: str, time: float) -> None:
        self.send_times.setdefault(hop, time)

    def stage_durations(self) -> Optional[Dict[str, float]]:
        """Per-stage durations, or None while the trace is incomplete."""
        hops = self.send_times
        if any(hop not in hops for hop in _REQUIRED_HOPS):
            return None
        return {
            "ua_inbound": hops["ua->ia"] - hops["client->ua"],
            "ia_inbound": hops["ia->lrs"] - hops["ua->ia"],
            "lrs": hops["lrs->ia"] - hops["ia->lrs"],
            "ia_outbound": hops["ia->ua"] - hops["lrs->ia"],
            "ua_outbound": hops["ua->client"] - hops["ia->ua"],
        }


@dataclass
class BreakdownProbe:
    """Collects request timelines from a network's payload tap.

    Memory stays bounded over arbitrarily long runs: a timeline is
    folded into the per-stage running aggregates (and evicted) the
    moment it completes, and the incomplete set — requests that died
    mid-pipeline, timed out, or were retried under a fresh id — is an
    LRU capped at ``max_incomplete``.
    """

    #: In-flight (incomplete) timelines only, LRU-ordered by last touch.
    timelines: "OrderedDict[int, RequestTimeline]" = field(default_factory=OrderedDict)
    max_incomplete: int = 4096
    completed_count: int = 0
    evicted_count: int = 0
    #: Aligned per-stage duration lists of every completed timeline:
    #: index i across all five lists is one request's breakdown.
    _stage_values: Dict[str, List[float]] = field(
        default_factory=lambda: {stage: [] for stage in STAGES}
    )

    def attach(self, network: Network) -> None:
        """Start observing *network* (operator-side, sees request ids)."""
        network.add_wiretap(self._observe)

    def _observe(self, record: FlowRecord, payload: object) -> None:
        if isinstance(payload, (Request, Response)):
            request_id = payload.request_id
        else:
            return
        if request_id == 0:
            return
        hop = f"{record.source_role}->{record.destination_role}"
        timeline = self.timelines.get(request_id)
        if timeline is None:
            timeline = RequestTimeline(request_id=request_id)
            self.timelines[request_id] = timeline
            if len(self.timelines) > self.max_incomplete:
                self.timelines.popitem(last=False)
                self.evicted_count += 1
        else:
            self.timelines.move_to_end(request_id)
        timeline.record(hop, record.time)
        durations = timeline.stage_durations()
        if durations is not None:
            for stage in STAGES:
                self._stage_values[stage].append(durations[stage])
            self.completed_count += 1
            del self.timelines[request_id]

    def stage_values(self) -> Dict[str, List[float]]:
        """Durations grouped by stage across all completed timelines."""
        return {stage: list(values) for stage, values in self._stage_values.items()}

    def complete_traces(self) -> List[Dict[str, float]]:
        """Stage durations of every fully-observed request."""
        return [
            {stage: self._stage_values[stage][index] for stage in STAGES}
            for index in range(self.completed_count)
        ]

    def aggregate(self, fraction: float = 0.5) -> Dict[str, float]:
        """Per-stage percentile (default median) across all traces."""
        if not self.completed_count:
            raise ValueError("no complete traces collected")
        return {
            stage: percentile(sorted(values), fraction)
            for stage, values in self._stage_values.items()
        }

    def render(self) -> str:
        """Text table of the median breakdown."""
        aggregated = self.aggregate()
        total = sum(aggregated.values())
        lines = [f"{'stage':14s} {'median ms':>10s} {'share':>7s}"]
        for stage in STAGES:
            value = aggregated.get(stage, 0.0)
            share = value / total if total else 0.0
            lines.append(f"{stage:14s} {value * 1000:10.2f} {share:7.1%}")
        lines.append(f"{'total':14s} {total * 1000:10.2f}")
        return "\n".join(lines)
