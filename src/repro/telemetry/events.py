"""Structured event log: the fluentd-style JSONL sink.

Every telemetry signal — span completions, metric snapshots, chaos and
fault events, run lifecycle markers — flows through one
:class:`EventLog` so a single per-run artifact captures the whole
story.  Events pass the redaction boundary on the way in: the payload
is scrubbed according to the emitting role *before* it is stored, so
nothing downstream (renderers, JSONL files, CI artifacts) can leak
what the boundary removed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.telemetry.redaction import DEFAULT_POLICY, RedactionPolicy, Violation

__all__ = ["EventLog", "TelemetryEvent"]


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured record: who said what, when, in virtual time."""

    time: float
    kind: str  # "span" | "metrics" | "fault" | "run" | ...
    role: str  # emitting role: client/ua/ia/lrs/operator/unknown
    payload: Dict[str, Any]
    #: Per-run monotonic sequence number: many events share a virtual
    #: timestamp, so this is what makes same-seed artifact diffs (and
    #: any post-hoc sort) ordering-stable.
    seq: int = 0

    def to_dict(self) -> Dict[str, Any]:
        record = {"time": self.time, "seq": self.seq, "kind": self.kind, "role": self.role}
        record.update(self.payload)
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


@dataclass
class EventLog:
    """Append-only in-memory event log with JSONL serialization."""

    clock: Callable[[], float] = lambda: 0.0
    policy: RedactionPolicy = field(default_factory=lambda: DEFAULT_POLICY)
    events: List[TelemetryEvent] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    run_label: str = ""
    next_seq: int = 1

    def emit(self, kind: str, role: str, payload: Mapping[str, Any]) -> TelemetryEvent:
        """Scrub *payload* for *role* and append the clean event."""
        clean, violations = self.policy.scrub(role, payload)
        self.violations.extend(violations)
        return self._append(kind, role, clean)

    def emit_raw(self, kind: str, role: str, payload: Mapping[str, Any]) -> TelemetryEvent:
        """Append without scrubbing.

        Exists so tests can plant a deliberate leak and prove the audit
        catches it; production code paths must use :meth:`emit`.
        """
        return self._append(kind, role, dict(payload))

    def _append(self, kind: str, role: str, payload: Dict[str, Any]) -> TelemetryEvent:
        if self.run_label:
            payload.setdefault("run", self.run_label)
        event = TelemetryEvent(
            time=self.clock(), kind=kind, role=role, payload=payload, seq=self.next_seq
        )
        self.next_seq += 1
        self.events.append(event)
        return event

    # -- queries ---------------------------------------------------------

    def of_kind(self, kind: str) -> List[TelemetryEvent]:
        return [event for event in self.events if event.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    # -- serialization ---------------------------------------------------

    def to_jsonl(self) -> str:
        return "\n".join(event.to_json() for event in self.events) + ("\n" if self.events else "")

    def write_jsonl(self, path) -> int:
        """Write the log to *path*; returns the number of events written."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
        return len(self.events)

    @staticmethod
    def parse_jsonl(text: str) -> List[Dict[str, Any]]:
        """Parse a JSONL artifact back into event dicts (for audits)."""
        records: List[Dict[str, Any]] = []
        for line_number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"telemetry JSONL line {line_number} is not valid JSON: {exc}") from exc
        return records
