"""Unified privacy-safe telemetry: spans, events, metrics, redaction.

The paper's platform "collect[s] logs in a systematic fashion using
fluentd" (§7.2) and diagnoses its latency anomalies from per-stage
breakdowns.  This package is the reproduction's equivalent — built so
that *operating* the system never turns the operator into the
traffic-correlation adversary of §4:

* :mod:`repro.telemetry.spans` — a virtual-time span tracer with
  explicit trace/span ids propagated along the
  ``client -> UA -> IA -> LRS -> IA -> UA -> client`` pipeline;
* :mod:`repro.telemetry.registry` — Counter/Gauge/Histogram
  instruments with Prometheus-style text exposition and a
  virtual-time scraper;
* :mod:`repro.telemetry.events` — the fluentd-style structured event
  log (JSONL artifact per experiment run);
* :mod:`repro.telemetry.redaction` — the privacy boundary: UA-origin
  events may never carry item ids, IA-origin events never user ids;
* :mod:`repro.telemetry.instruments` — wiring helpers that register
  the standard instruments of every hot path plus the live
  privacy-health gauges (shuffle fill ``S``, effective anonymity set
  ``S*I``, time-to-flush);
* :mod:`repro.telemetry.hub` — the :class:`Telemetry` facade the
  experiment runners and the CLI plumb through the stack.
"""

from repro.telemetry.events import EventLog, TelemetryEvent
from repro.telemetry.hub import Telemetry
from repro.telemetry.instruments import (
    instrument_crypto,
    instrument_injector,
    instrument_lrs,
    instrument_network,
    instrument_overload,
    instrument_recovery,
    instrument_service,
    instrument_stack,
)
from repro.telemetry.redaction import RedactionPolicy, Violation, audit_events
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Scraper,
    TimeSeries,
)
from repro.telemetry.spans import PIPELINE_STAGES, Span, Tracer
from repro.telemetry.types import TelemetryLike, TracerLike

__all__ = [
    "Telemetry",
    "TelemetryLike",
    "TracerLike",
    "EventLog",
    "TelemetryEvent",
    "RedactionPolicy",
    "Violation",
    "audit_events",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Scraper",
    "TimeSeries",
    "Tracer",
    "Span",
    "PIPELINE_STAGES",
    "instrument_stack",
    "instrument_service",
    "instrument_crypto",
    "instrument_lrs",
    "instrument_injector",
    "instrument_network",
    "instrument_recovery",
    "instrument_overload",
]
