"""Structural types for telemetry consumers.

The data-plane modules (proxy layers, client library, runners, health
probes) accept an *optional* telemetry hub.  Annotating those slots
``Optional[object]`` hid the contract; these Protocols spell out the
surface the stack actually relies on without making any package import
:mod:`repro.telemetry.hub` (or vice versa) — structural typing keeps
the dependency graph acyclic: any object with these members, including
the real :class:`repro.telemetry.Telemetry`, satisfies them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Protocol, runtime_checkable

__all__ = ["TracerLike", "TelemetryLike"]


@runtime_checkable
class TracerLike(Protocol):
    """The span-tracer surface the pipeline hot path calls."""

    def record_hop(self, request_id: int, source_role: str, destination_role: str) -> None:
        """Mark a wire hop between pipeline roles."""
        ...

    def annotate(self, request_id: int, **attributes: Any) -> None:
        """Attach attributes to the currently open span."""
        ...

    def end_trace(self, request_id: int, ok: bool) -> None:
        """Settle the trace when the client-side call completes."""
        ...

    def abandon(self, request_id: int) -> None:
        """Discard an attempt's trace (timeout, lost hedge)."""
        ...


@runtime_checkable
class TelemetryLike(Protocol):
    """The hub surface plumbed through the stack.

    Attribute requirements (``tracer``, ``registry``) are structural:
    any facade exposing them plus the two methods below — above all
    :class:`repro.telemetry.Telemetry` — satisfies this Protocol.
    """

    tracer: TracerLike
    registry: Any
    event_log: Any

    def now(self) -> float:
        """Current virtual time of the bound event loop."""
        ...

    def emit_fault(self, role: str, payload: Dict[str, Any]) -> None:
        """Record a structured chaos/fault event."""
        ...
