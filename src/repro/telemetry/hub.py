"""The :class:`Telemetry` facade: one handle plumbed through the stack.

A :class:`Telemetry` owns the tracer, the metric registry, the event
log, and the scraper, and survives across the multiple
``EventLoop`` instances an experiment sweep creates (one per run):
:meth:`bind` re-points the virtual clocks at each fresh loop, while
instruments and accumulated events carry over so the final artifact
covers the whole sweep.

Per-run artifacts land under ``results/`` as a JSONL event log plus a
Prometheus text-format metrics dump; :meth:`audit` re-checks every
recorded event against the redaction policy (the adversary's-eye
pass), and :meth:`render_summary` gives the human-readable digest the
report module embeds.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional

from repro.telemetry.events import EventLog
from repro.telemetry.redaction import DEFAULT_POLICY, RedactionPolicy, Violation, audit_events
from repro.telemetry.registry import MetricRegistry, Scraper
from repro.telemetry.spans import PIPELINE_STAGES, Tracer

__all__ = ["Telemetry"]


class Telemetry:
    """Facade bundling tracer + registry + event log + scraper."""

    def __init__(
        self,
        policy: Optional[RedactionPolicy] = None,
        scrape_interval: float = 1.0,
        emit_snapshots: bool = False,
        max_active_traces: int = 8192,
    ) -> None:
        self.policy = policy or DEFAULT_POLICY
        self.scrape_interval = scrape_interval
        self.emit_snapshots = emit_snapshots
        self._clock: Callable[[], float] = lambda: 0.0
        self.event_log = EventLog(clock=self.now, policy=self.policy)
        self.registry = MetricRegistry()
        self.tracer = Tracer(
            clock=self.now, event_log=self.event_log, max_active=max_active_traces
        )
        self.scraper: Optional[Scraper] = None
        self.run_label = ""

    # -- virtual time ----------------------------------------------------

    def now(self) -> float:
        return self._clock()

    # -- lifecycle -------------------------------------------------------

    def bind(self, loop: Any, run_label: str = "") -> None:
        """Attach to a (fresh) event loop; restarts the scraper."""
        self._clock = lambda: loop.now
        self.run_label = run_label
        self.event_log.run_label = run_label
        if self.scraper is not None:
            self.scraper.stop()
            self.scraper.bind(loop)
        else:
            self.scraper = Scraper(
                loop=loop,
                registry=self.registry,
                interval=self.scrape_interval,
                event_log=self.event_log,
                emit_snapshots=self.emit_snapshots,
            )
        self.scraper.start()
        self.event_log.emit("run", "operator", {"phase": "start", "label": run_label})

    def finalize_run(self, extra: Optional[Dict[str, Any]] = None) -> None:
        """Close out the bound run: stop scraping, snapshot metrics."""
        if self.scraper is not None:
            self.scraper.stop()
        payload: Dict[str, Any] = {
            "phase": "end",
            "label": self.run_label,
            "traces_started": self.tracer.traces_started,
            "traces_completed": self.tracer.traces_completed,
            "traces_abandoned": self.tracer.traces_abandoned,
            "metrics": self.registry.snapshot(),
        }
        if extra:
            payload.update(extra)
        self.event_log.emit("run", "operator", payload)

    def emit_fault(self, role: str, payload: Dict[str, Any]) -> None:
        """Record a chaos/fault event (instance failure, ejection, ...)."""
        self.event_log.emit("fault", role, payload)

    # -- privacy audit ---------------------------------------------------

    def audit(self) -> List[Violation]:
        """Adversary's-eye re-scan of every recorded event.

        Returns violations found in the *stored* events; a clean
        pipeline returns ``[]`` even though the boundary would already
        have scrubbed (and recorded) anything caught at emission time.
        """
        return audit_events(
            (event.to_dict() for event in self.event_log.events), self.policy
        )

    @property
    def boundary_violations(self) -> List[Violation]:
        """Leaks caught (and scrubbed) at emission time."""
        return self.event_log.violations

    # -- artifacts -------------------------------------------------------

    def write_artifact(self, directory: str, basename: str = "telemetry") -> Dict[str, str]:
        """Write the JSONL event log + Prometheus dump under *directory*."""
        os.makedirs(directory, exist_ok=True)
        jsonl_path = os.path.join(directory, f"{basename}.jsonl")
        prom_path = os.path.join(directory, f"{basename}.prom")
        self.event_log.write_jsonl(jsonl_path)
        with open(prom_path, "w", encoding="utf-8") as handle:
            handle.write(self.registry.render_prometheus())
        return {"events": jsonl_path, "metrics": prom_path}

    # -- rendering -------------------------------------------------------

    def render_summary(self) -> str:
        """Human-readable digest: traces, stages, privacy health."""
        lines = ["telemetry summary", "================="]
        tracer = self.tracer
        lines.append(
            f"traces: {tracer.traces_completed} complete,"
            f" {tracer.traces_abandoned} abandoned,"
            f" {tracer.active_count} in flight"
        )
        stage_values = tracer.stage_values()
        if any(stage_values.values()):
            lines.append(f"{'stage':14s} {'mean_ms':>10s} {'max_ms':>10s} {'n':>8s}")
            for stage in PIPELINE_STAGES:
                values = stage_values[stage]
                if not values:
                    continue
                lines.append(
                    f"{stage:14s} {1e3 * sum(values) / len(values):10.3f}"
                    f" {1e3 * max(values):10.3f} {len(values):8d}"
                )
        for gauge_name in (
            "pprox_shuffle_batch_fill",
            "pprox_effective_anonymity_set",
            "pprox_shuffle_time_to_flush_seconds",
        ):
            instrument = self.registry.get(gauge_name)
            if instrument is not None:
                lines.append(f"{gauge_name} = {instrument.value():.3f}")
        lines.append(
            f"events: {len(self.event_log)} recorded,"
            f" {len(self.event_log.violations)} boundary redactions"
        )
        return "\n".join(lines)
